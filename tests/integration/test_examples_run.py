"""Every shipped example must run to completion (guards against rot).

Each example's ``main()`` is executed in-process with stdout captured;
they build their own connections, so the tests are independent.
"""

import importlib
import io
import sys
from contextlib import redirect_stdout

import pytest

sys.path.insert(0, "examples")

EXAMPLES = [
    ("quickstart", ("Model populated", "Predicted age buckets")),
    ("market_basket", ("Top frequent itemsets", "recommendations")),
    ("customer_segmentation", ("Clusters:", "re-imported")),
    ("model_management", ("Provider services", "After DELETE FROM")),
    ("clickstream_sequences", ("Behavioural chains", "next page")),
    ("model_validation", ("Classification report", "Lift chart")),
    ("provider_telemetry", ("Query log", "Provider metrics")),
]


@pytest.mark.parametrize("module_name,markers",
                         EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs_and_reports(module_name, markers):
    module = importlib.import_module(module_name)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    output = buffer.getvalue()
    for marker in markers:
        assert marker.lower() in output.lower(), \
            f"{module_name}: expected {marker!r} in its output"
