"""End-to-end mining quality on the planted-signal warehouse.

The generator plants real structure (segments drive age, purchases, cars);
these tests assert each service finds it through the full DMX path —
parse -> shape -> bind -> encode -> train -> prediction join.
"""

import pytest

import repro
from repro.datagen import WarehouseConfig, load_warehouse


@pytest.fixture(scope="module")
def big_warehouse():
    conn = repro.connect()
    data = load_warehouse(conn.database, WarehouseConfig(customers=1500,
                                                         seed=13))
    return conn, data


TRAIN_SHAPE = """
INSERT INTO [{name}] ([Customer ID], [Gender], [Age],
    [Product Purchases]([Product Name]))
SHAPE {{SELECT [Customer ID], Gender, Age FROM Customers
        ORDER BY [Customer ID]}}
APPEND ({{SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}}
        RELATE [Customer ID] TO CustID) AS [Product Purchases]
"""

SCORE_SHAPE = """
SELECT t.[Customer ID], [{name}].[Age] AS predicted
FROM [{name}] NATURAL PREDICTION JOIN
    (SHAPE {{SELECT [Customer ID], Gender FROM Customers
             ORDER BY [Customer ID]}}
     APPEND ({{SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}}
             RELATE [Customer ID] TO CustID) AS [Product Purchases]) AS t
"""


def bucket_accuracy(conn, name):
    """Fraction of customers whose predicted age bucket is their true one."""
    truth = dict(conn.execute(
        "SELECT [Customer ID], Age FROM Customers").rows)
    target = conn.model(name).space.for_column("Age")
    scored = conn.execute(SCORE_SHAPE.format(name=name))
    hits = 0
    for customer_id, predicted in scored.rows:
        true_bucket = target.discretizer.label(
            target.discretizer.bucket_of(truth[customer_id]))
        if predicted == true_bucket:
            hits += 1
    return hits / len(scored)


MAJORITY_BASELINE = 0.45  # the largest bucket's share is below this


@pytest.mark.parametrize("service", [
    "Microsoft_Decision_Trees", "Microsoft_Naive_Bayes",
    "Microsoft_Clustering",
])
def test_age_prediction_beats_majority_baseline(big_warehouse, service):
    conn, _ = big_warehouse
    name = f"E2E {service}"
    conn.execute(f"""
        CREATE MINING MODEL [{name}] (
            [Customer ID] LONG KEY,
            [Gender] TEXT DISCRETE,
            [Age] DOUBLE DISCRETIZED(EQUAL_COUNT, 3) PREDICT,
            [Product Purchases] TABLE([Product Name] TEXT KEY)
        ) USING {service}
    """)
    conn.execute(TRAIN_SHAPE.format(name=name))
    accuracy = bucket_accuracy(conn, name)
    assert accuracy > MAJORITY_BASELINE, \
        f"{service}: accuracy {accuracy:.2%} not above baseline"


def test_clustering_recovers_generator_segments(big_warehouse):
    conn, data = big_warehouse
    conn.execute("""
        CREATE MINING MODEL [E2E Segments] (
            [Customer ID] LONG KEY,
            [Age] DOUBLE CONTINUOUS,
            [Product Purchases] TABLE([Product Name] TEXT KEY)
        ) USING Microsoft_Clustering(CLUSTER_COUNT = 4, CLUSTER_SEED = 1)
    """)
    conn.execute("""
        INSERT INTO [E2E Segments] ([Customer ID], [Age],
            [Product Purchases]([Product Name]))
        SHAPE {SELECT [Customer ID], Age FROM Customers
               ORDER BY [Customer ID]}
        APPEND ({SELECT CustID, [Product Name] FROM Sales
                 ORDER BY CustID}
                RELATE [Customer ID] TO CustID) AS [Product Purchases]
    """)
    scored = conn.execute("""
        SELECT t.[Customer ID], Cluster() AS c
        FROM [E2E Segments] NATURAL PREDICTION JOIN
            (SHAPE {SELECT [Customer ID], Age FROM Customers
                    ORDER BY [Customer ID]}
             APPEND ({SELECT CustID, [Product Name] FROM Sales
                      ORDER BY CustID}
                     RELATE [Customer ID] TO CustID)
                    AS [Product Purchases]) AS t
    """)
    # purity: each cluster dominated by one ground-truth segment
    clusters = {}
    for customer_id, cluster in scored.rows:
        clusters.setdefault(cluster, []).append(
            data.segments[customer_id])
    weighted_purity = 0.0
    for members in clusters.values():
        top = max(set(members), key=members.count)
        weighted_purity += members.count(top)
    weighted_purity /= len(scored)
    assert weighted_purity > 0.7


def test_association_rules_find_planted_copurchases(big_warehouse):
    conn, _ = big_warehouse
    conn.execute("""
        CREATE MINING MODEL [E2E Basket] (
            [Customer ID] LONG KEY,
            [Product Purchases] TABLE([Product Name] TEXT KEY) PREDICT
        ) USING Apriori(MINIMUM_SUPPORT = 0.05, MINIMUM_PROBABILITY = 0.4)
    """)
    conn.execute("""
        INSERT INTO [E2E Basket] ([Customer ID],
            [Product Purchases]([Product Name]))
        SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
        APPEND ({SELECT CustID, [Product Name] FROM Sales
                 ORDER BY CustID}
                RELATE [Customer ID] TO CustID) AS [Product Purchases]
    """)
    # The 'family' segment plants Diapers+Formula co-purchases.
    rules = conn.model("E2E Basket").algorithm.rules_as_tuples()
    assert any(
        "Diapers" in left and right == "Formula"
        for left, right, _, _ in rules), \
        "expected the planted Diapers => Formula rule"


def test_regression_tracks_age_signal(big_warehouse):
    conn, _ = big_warehouse
    conn.execute("""
        CREATE MINING MODEL [E2E Regression] (
            [Customer ID] LONG KEY,
            [Gender] TEXT DISCRETE,
            [Age] DOUBLE CONTINUOUS PREDICT,
            [Product Purchases] TABLE([Product Name] TEXT KEY)
        ) USING Microsoft_Linear_Regression
    """)
    conn.execute(TRAIN_SHAPE.format(name="E2E Regression"))
    truth = dict(conn.execute(
        "SELECT [Customer ID], Age FROM Customers").rows)
    scored = conn.execute(SCORE_SHAPE.format(name="E2E Regression"))
    errors = [abs(predicted - truth[customer_id])
              for customer_id, predicted in scored.rows]
    mean_error = sum(errors) / len(errors)
    ages = list(truth.values())
    mean_age = sum(ages) / len(ages)
    baseline_error = sum(abs(a - mean_age) for a in ages) / len(ages)
    assert mean_error < 0.8 * baseline_error


def test_chained_deployment_into_sql(big_warehouse):
    """Predictions flow back into plain SQL — the deployment claim."""
    conn, _ = big_warehouse
    conn.execute("""
        CREATE MINING MODEL [E2E Deploy] (
            [Customer ID] LONG KEY,
            [Gender] TEXT DISCRETE,
            [Age] DOUBLE DISCRETIZED(EQUAL_COUNT, 3) PREDICT,
            [Product Purchases] TABLE([Product Name] TEXT KEY)
        ) USING Microsoft_Decision_Trees
    """)
    conn.execute(TRAIN_SHAPE.format(name="E2E Deploy"))
    scored = conn.execute(SCORE_SHAPE.format(name="E2E Deploy"))
    conn.execute("CREATE TABLE [Deployed] ([Customer ID] LONG, "
                 "Bucket TEXT)")
    conn.database.table("Deployed").insert_many(scored.rows)
    summary = conn.execute(
        "SELECT Bucket, COUNT(*) AS n FROM [Deployed] GROUP BY Bucket "
        "ORDER BY n DESC")
    assert sum(row[1] for row in summary.rows) == 1500
