"""Failure injection and awkward-input robustness across the stack."""

import pytest

import repro
from repro.errors import Error, TrainError


class TestAwkwardTrainingData:
    def test_all_null_input_column_still_trains(self, conn):
        conn.execute("CREATE TABLE T (Id LONG, G TEXT, V DOUBLE, L TEXT)")
        conn.execute("INSERT INTO T VALUES (1, NULL, NULL, 'x'), "
                     "(2, NULL, NULL, 'y'), (3, NULL, NULL, 'x')")
        conn.execute("CREATE MINING MODEL M (Id LONG KEY, G TEXT "
                     "DISCRETE, V DOUBLE CONTINUOUS, L TEXT DISCRETE "
                     "PREDICT) USING Repro_Naive_Bayes")
        conn.execute("INSERT INTO M SELECT Id, G, V, L FROM T")
        result = conn.execute(
            "SELECT [M].[L] FROM M NATURAL PREDICTION JOIN "
            "(SELECT NULL AS G) AS t")
        assert result.single_value() == "x"  # prior wins

    def test_all_null_discretized_target_fails_cleanly(self, conn):
        conn.execute("CREATE TABLE T (Id LONG, V DOUBLE, L TEXT)")
        conn.execute("INSERT INTO T VALUES (1, NULL, 'x'), (2, NULL, 'y')")
        conn.execute("CREATE MINING MODEL M (Id LONG KEY, "
                     "V DOUBLE DISCRETIZED PREDICT, L TEXT DISCRETE) "
                     "USING Repro_Decision_Trees")
        with pytest.raises(TrainError, match="discretize"):
            conn.execute("INSERT INTO M SELECT Id, V, L FROM T")

    def test_single_case_trains_everywhere_sensible(self, conn):
        conn.execute("CREATE TABLE T (Id LONG, G TEXT, L TEXT)")
        conn.execute("INSERT INTO T VALUES (1, 'a', 'x')")
        conn.execute("CREATE MINING MODEL M (Id LONG KEY, G TEXT "
                     "DISCRETE, L TEXT DISCRETE PREDICT) "
                     "USING Repro_Decision_Trees")
        conn.execute("INSERT INTO M SELECT Id, G, L FROM T")
        result = conn.execute(
            "SELECT [M].[L] FROM M NATURAL PREDICTION JOIN "
            "(SELECT 'a' AS G) AS t")
        assert result.single_value() == "x"

    def test_constant_target_is_fine(self, conn):
        conn.execute("CREATE TABLE T (Id LONG, G TEXT, L TEXT)")
        conn.execute("INSERT INTO T VALUES (1,'a','x'), (2,'b','x'), "
                     "(3,'a','x')")
        conn.execute("CREATE MINING MODEL M (Id LONG KEY, G TEXT "
                     "DISCRETE, L TEXT DISCRETE PREDICT) "
                     "USING Repro_Decision_Trees")
        conn.execute("INSERT INTO M SELECT Id, G, L FROM T")
        result = conn.execute(
            "SELECT [M].[L], PredictProbability([L]) FROM M NATURAL "
            "PREDICTION JOIN (SELECT 'a' AS G) AS t")
        assert result.rows[0] == ("x", 1.0)

    def test_unicode_and_quote_values_survive(self, conn):
        conn.execute("CREATE TABLE T (Id LONG, G TEXT, L TEXT)")
        conn.execute("INSERT INTO T VALUES (1, 'héllo — wörld', 'x'), "
                     "(2, 'it''s', 'y')")
        conn.execute("CREATE MINING MODEL [Ünïcode M] (Id LONG KEY, "
                     "G TEXT DISCRETE, L TEXT DISCRETE PREDICT) "
                     "USING Repro_Naive_Bayes")
        conn.execute("INSERT INTO [Ünïcode M] SELECT Id, G, L FROM T")
        result = conn.execute(
            "SELECT [Ünïcode M].[L] FROM [Ünïcode M] NATURAL PREDICTION "
            "JOIN (SELECT 'it''s' AS G) AS t")
        assert result.single_value() == "y"
        from repro.pmml import read_pmml, to_pmml
        restored = read_pmml(to_pmml(conn.model("Ünïcode M")))
        assert restored.name == "Ünïcode M"


class TestEmptyAndDegenerateQueries:
    @pytest.fixture
    def trained(self, conn):
        conn.execute("CREATE TABLE T (Id LONG, G TEXT, L TEXT)")
        conn.execute("INSERT INTO T VALUES (1,'a','x'), (2,'b','y')")
        conn.execute("CREATE MINING MODEL M (Id LONG KEY, G TEXT "
                     "DISCRETE, L TEXT DISCRETE PREDICT) "
                     "USING Repro_Naive_Bayes")
        conn.execute("INSERT INTO M SELECT Id, G, L FROM T")
        return conn

    def test_prediction_join_with_zero_source_rows(self, trained):
        result = trained.execute(
            "SELECT t.Id, [M].[L] FROM M NATURAL PREDICTION JOIN "
            "(SELECT Id, G FROM T WHERE Id > 99) AS t")
        assert len(result) == 0
        assert result.column_names() == ["Id", "L"]

    def test_source_row_with_no_recognised_columns(self, trained):
        result = trained.execute(
            "SELECT [M].[L] FROM M NATURAL PREDICTION JOIN "
            "(SELECT 'nothing relevant' AS shoe) AS t")
        assert result.single_value() in ("x", "y")  # pure prior

    def test_top_zero(self, trained):
        result = trained.execute("SELECT TOP 0 Id FROM T")
        assert len(result) == 0

    def test_group_by_over_empty_table(self, conn):
        conn.execute("CREATE TABLE E (a TEXT)")
        result = conn.execute("SELECT a, COUNT(*) FROM E GROUP BY a")
        assert len(result) == 0

    def test_order_by_on_empty_result(self, trained):
        result = trained.execute(
            "SELECT Id FROM T WHERE Id > 99 ORDER BY Id DESC")
        assert result.rows == []

    def test_shape_with_empty_master(self, conn):
        conn.execute("CREATE TABLE C (Id LONG)")
        conn.execute("CREATE TABLE S (Cid LONG, P TEXT)")
        result = conn.execute(
            "SHAPE {SELECT Id FROM C} APPEND ({SELECT Cid, P FROM S} "
            "RELATE Id TO Cid) AS N")
        assert len(result) == 0


class TestSnapshotRobustness:
    def test_snapshot_of_unicode_provider(self, conn):
        conn.execute("CREATE TABLE [Tabelle Ü] ([Spalte ß] TEXT)")
        conn.execute("INSERT INTO [Tabelle Ü] VALUES ('grüß gott')")
        from repro.core.persistence import dump_provider, load_provider
        restored = load_provider(dump_provider(conn.provider))
        assert restored.execute(
            "SELECT * FROM [Tabelle Ü]").rows == [("grüß gott",)]

    def test_snapshot_ignores_statement_level_state(self, conn):
        # Dump twice; byte-identical output (no timestamps/ids inside).
        conn.execute("CREATE TABLE T (a LONG)")
        from repro.core.persistence import dump_provider
        assert dump_provider(conn.provider) == dump_provider(conn.provider)


class TestDeepNesting:
    def test_many_nested_tables_in_one_model(self, conn):
        conn.execute("CREATE TABLE C (Id LONG)")
        conn.execute("INSERT INTO C VALUES (1), (2), (3), (4)")
        for name in ("A", "B", "D"):
            conn.execute(f"CREATE TABLE {name} (Cid LONG, K TEXT)")
            conn.execute(f"INSERT INTO {name} VALUES (1, '{name}1'), "
                         f"(2, '{name}2'), (3, '{name}1')")
        conn.execute("""
            CREATE MINING MODEL M (Id LONG KEY,
                TA TABLE(K TEXT KEY), TB TABLE(K TEXT KEY),
                TD TABLE(K TEXT KEY) PREDICT)
            USING Repro_Decision_Trees(MINIMUM_SUPPORT = 1)
        """)
        count = conn.execute("""
            INSERT INTO M (Id, TA(K), TB(K), TD(K))
            SHAPE {SELECT Id FROM C ORDER BY Id}
            APPEND ({SELECT Cid, K FROM A} RELATE Id TO Cid) AS TA,
                   ({SELECT Cid, K FROM B} RELATE Id TO Cid) AS TB,
                   ({SELECT Cid, K FROM D} RELATE Id TO Cid) AS TD
        """)
        assert count == 4
        result = conn.execute("""
            SELECT PredictAssociation([TD], 2) FROM M
            NATURAL PREDICTION JOIN
            (SHAPE {SELECT Id FROM C WHERE Id = 4}
             APPEND ({SELECT Cid, K FROM A} RELATE Id TO Cid) AS TA,
                    ({SELECT Cid, K FROM B} RELATE Id TO Cid) AS TB,
                    ({SELECT Cid, K FROM D} RELATE Id TO Cid) AS TD) AS t
        """)
        assert len(result.rows[0][0]) <= 2
