"""The paper's section-3 statements, verbatim, against the live provider.

These tests lock in that the exact command strings printed in the paper —
including its ``%`` comment annotations, its mixed-case ``To`` keyword, and
its ``as t`` lower-case alias — parse and execute.  They are the core of
experiment C2 (the four key operations each map to one statement).
"""

import pytest

import repro
from repro.datagen import WarehouseConfig, load_warehouse

# --- verbatim from section 3.2 ------------------------------------------------
CREATE_STATEMENT = """
CREATE MINING MODEL [Age Prediction] (
%Name of Model
[Customer ID] LONG KEY,
[Gender] TEXT DISCRETE,
[Age] DOUBLE DISCRETIZED PREDICT, %prediction column
[Product Purchases] TABLE(
[Product Name] TEXT KEY,
[Quantity] DOUBLE NORMAL CONTINUOUS,
[Product Type] TEXT DISCRETE
RELATED TO [Product Name]
)) USING [Decision_Trees_101]
%Mining Algorithm used
"""

# --- verbatim from section 3.3 ("Populating a Mining Model") -------------------
INSERT_STATEMENT = """
INSERT INTO [Age Prediction] ([Customer ID], [Gender], [Age],
[Product Purchases]([Product Name], [Quantity], [Product Type]))
SHAPE
{SELECT [Customer ID], [Gender], [Age] FROM Customers
ORDER BY [Customer ID]}
APPEND (
{SELECT [CustID], [Product Name], [Quantity], [Product Type] FROM Sales ORDER BY [CustID]}
RELATE [Customer ID] To [CustID]) AS [Product Purchases]
"""

# --- verbatim from section 3.3 ("Using Data Model to Predict") -----------------
PREDICTION_STATEMENT = """
SELECT t.[Customer ID], [Age Prediction].[Age]
FROM [Age Prediction]
PREDICTION JOIN (SHAPE {
SELECT [Customer ID], [Gender] FROM Customers ORDER BY [Customer ID]}
APPEND ({SELECT [CustID], [Product Name], [Quantity] FROM Sales
ORDER BY [CustID]}
RELATE [Customer ID] To [CustID]) AS [Product Purchases]) as t
ON [Age Prediction].Gender = t.Gender and
[Age Prediction].[Product Purchases].[Product Name] = t.[Product Purchases].[Product Name] and
[Age Prediction].[Product Purchases].[Quantity] = t.[Product Purchases].[Quantity]
"""

CONTENT_STATEMENT = "SELECT * FROM [Age Prediction].CONTENT"


@pytest.fixture
def paper_provider(conn):
    load_warehouse(conn.database, WarehouseConfig(customers=300))
    return conn


class TestVerbatimStatements:
    def test_operation_1_define(self, paper_provider):
        assert paper_provider.execute(CREATE_STATEMENT) == 0
        model = paper_provider.model("Age Prediction")
        assert model.algorithm.SERVICE_NAME == "Repro_Decision_Trees"

    def test_operation_2_populate(self, paper_provider):
        paper_provider.execute(CREATE_STATEMENT)
        count = paper_provider.execute(INSERT_STATEMENT)
        assert count == 300
        assert paper_provider.model("Age Prediction").is_trained

    def test_operation_3_predict(self, paper_provider):
        paper_provider.execute(CREATE_STATEMENT)
        paper_provider.execute(INSERT_STATEMENT)
        rowset = paper_provider.execute(PREDICTION_STATEMENT)
        assert rowset.column_names() == ["Customer ID", "Age"]
        assert len(rowset) == 300
        assert all(row[1] is not None for row in rowset.rows)

    def test_operation_4_browse(self, paper_provider):
        paper_provider.execute(CREATE_STATEMENT)
        paper_provider.execute(INSERT_STATEMENT)
        rowset = paper_provider.execute(CONTENT_STATEMENT)
        assert len(rowset) >= 2
        assert "NODE_RULE" in rowset.column_names()

    def test_full_life_cycle_plus_management(self, paper_provider):
        paper_provider.execute(CREATE_STATEMENT)
        paper_provider.execute(INSERT_STATEMENT)
        paper_provider.execute(PREDICTION_STATEMENT)
        paper_provider.execute("DELETE FROM MINING MODEL [Age Prediction]")
        assert not paper_provider.model("Age Prediction").is_trained
        paper_provider.execute(INSERT_STATEMENT)
        assert paper_provider.model("Age Prediction").is_trained
        paper_provider.execute("DROP MINING MODEL [Age Prediction]")
        assert not paper_provider.provider.has_model("Age Prediction")


class TestTable1:
    """The nested-vs-flattened representation of section 3.1."""

    FLATTEN_JOIN = """
        SELECT c.[Customer ID], c.Gender, c.[Hair Color], c.Age,
               c.[Age Prob], s.[Product Name], s.Quantity,
               s.[Product Type], o.Car, o.[Car Prob]
        FROM Customers c
        JOIN Sales s ON c.[Customer ID] = s.CustID
        JOIN [Car Ownership] o ON c.[Customer ID] = o.CustID
        WHERE c.[Customer ID] = 1
    """

    NESTED_SHAPE = """
        SHAPE {SELECT [Customer ID], Gender, [Hair Color], Age, [Age Prob]
               FROM Customers WHERE [Customer ID] = 1}
        APPEND ({SELECT CustID, [Product Name], Quantity, [Product Type]
                 FROM Sales} RELATE [Customer ID] TO CustID)
               AS [Product Purchases],
               ({SELECT CustID, Car, [Car Prob] FROM [Car Ownership]}
                RELATE [Customer ID] TO CustID) AS [Car Ownership]
    """

    def test_flattened_join_replicates_rows(self, paper_tables):
        rowset = paper_tables.execute(self.FLATTEN_JOIN)
        # The paper claims 12 rows; Table 1's actual data (4 purchases x 2
        # cars x 1 customer) joins to 8.  Either way: heavy replication.
        assert len(rowset) == 8
        genders = set(rowset.column_values("Gender"))
        assert genders == {"Male"}  # the scalar replicated 8 times

    def test_nested_caseset_is_one_case(self, paper_tables):
        rowset = paper_tables.execute(self.NESTED_SHAPE)
        assert len(rowset) == 1
        row = dict(zip(rowset.column_names(), rowset.rows[0]))
        assert row["Gender"] == "Male"
        assert row["Age"] == 35.0
        assert row["Age Prob"] == 1.0
        purchases = row["Product Purchases"].to_dicts()
        assert [(p["Product Name"], p["Quantity"], p["Product Type"])
                for p in purchases] == [
            ("TV", 1.0, "Electronic"), ("VCR", 1.0, "Electronic"),
            ("Ham", 2.0, "Food"), ("Beer", 6.0, "Beverage")]
        cars = row["Car Ownership"].to_dicts()
        assert [(c["Car"], c["Car Prob"]) for c in cars] == \
            [("Truck", 1.0), ("Van", 0.5)]

    def test_replication_factor(self, paper_tables):
        flattened = paper_tables.execute(self.FLATTEN_JOIN)
        nested = paper_tables.execute(self.NESTED_SHAPE)
        assert len(flattened) // len(nested) == 8
