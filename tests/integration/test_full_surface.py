"""One living script that walks the entire statement surface in order.

Doubles as executable documentation: every statement family from
docs/language_reference.md appears below at least once, executed through
``Connection.execute_script`` exactly as a user would paste it into dmxsh.
"""

import pytest

import repro
from repro.sqlstore.rowset import Rowset

SCRIPT = """
-- 1. SQL core -------------------------------------------------------------
CREATE TABLE Customers ([Customer ID] LONG PRIMARY KEY, Gender TEXT,
                        Age DOUBLE, City TEXT);
CREATE TABLE Sales (CustID LONG, [Product Name] TEXT, Quantity DOUBLE);
INSERT INTO Customers VALUES
    (1, 'Male', 25.0, 'Metropolis'), (2, 'Female', 52.0, 'Smallville'),
    (3, 'Male', 31.0, 'Metropolis'), (4, 'Female', 47.0, 'Metropolis'),
    (5, 'Male', 24.0, 'Smallville'), (6, 'Female', 58.0, 'Smallville'),
    (7, 'Male', 29.0, 'Metropolis'), (8, 'Female', 44.0, 'Metropolis');
INSERT INTO Sales VALUES
    (1, 'Beer', 6.0), (1, 'Chips', 2.0), (3, 'Beer', 4.0),
    (2, 'Wine', 1.0), (4, 'Wine', 2.0), (6, 'Wine', 1.0),
    (5, 'Beer', 8.0), (7, 'Chips', 3.0), (8, 'Wine', 3.0),
    (2, 'Bread', 1.0), (6, 'Bread', 2.0);
CREATE VIEW Drinkers AS
    SELECT DISTINCT CustID FROM Sales
    WHERE [Product Name] IN ('Beer', 'Wine');
UPDATE Customers SET City = 'Gotham' WHERE [Customer ID] = 5;
SELECT Gender, COUNT(*) AS n, AVG(Age) AS mean_age FROM Customers
    GROUP BY Gender HAVING COUNT(*) > 1 ORDER BY n DESC;
SELECT c.[Customer ID] FROM Customers c
    WHERE c.[Customer ID] IN (SELECT CustID FROM Drinkers)
    AND c.Age > (SELECT MIN(Age) FROM Customers)
    ORDER BY c.[Customer ID];
SELECT 'young' AS label FROM Customers WHERE Age < 30
    UNION SELECT 'old' FROM Customers WHERE Age >= 30;

-- 2. SHAPE ---------------------------------------------------------------
SHAPE {SELECT [Customer ID], Gender, Age FROM Customers
       ORDER BY [Customer ID]}
APPEND ({SELECT CustID, [Product Name], Quantity FROM Sales}
        RELATE [Customer ID] TO CustID) AS [Basket];

-- 3. model life cycle ------------------------------------------------------
CREATE MINING MODEL [Surface] (
    [Customer ID] LONG KEY,
    [Gender] TEXT DISCRETE,
    [Age] DOUBLE DISCRETIZED(EQUAL_COUNT, 2) PREDICT,
    [Basket] TABLE([Product Name] TEXT KEY,
                   [Quantity] DOUBLE NORMAL CONTINUOUS)
) USING Microsoft_Decision_Trees(MINIMUM_SUPPORT = 1);
INSERT INTO [Surface] ([Customer ID], [Gender], [Age],
    [Basket]([Product Name], [Quantity]))
SHAPE {SELECT [Customer ID], Gender, Age FROM Customers
       ORDER BY [Customer ID]}
APPEND ({SELECT CustID, [Product Name], Quantity FROM Sales}
        RELATE [Customer ID] TO CustID) AS [Basket];

-- 4. prediction -------------------------------------------------------------
SELECT t.[Customer ID], [Surface].[Age],
       PredictProbability([Age]) AS p,
       TopCount(PredictHistogram([Age]), [$PROBABILITY], 1) AS best,
       RangeMid([Age]) AS midpoint
FROM [Surface] NATURAL PREDICTION JOIN
    (SHAPE {SELECT [Customer ID], Gender FROM Customers
            ORDER BY [Customer ID]}
     APPEND ({SELECT CustID, [Product Name], Quantity FROM Sales}
             RELATE [Customer ID] TO CustID) AS [Basket]) AS t
WHERE PredictProbability([Age]) > 0.1
ORDER BY t.[Customer ID];
SELECT FLATTENED PredictHistogram([Age]) AS h
FROM [Surface] NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t;

-- 5. browsing + metadata ------------------------------------------------------
SELECT TOP 5 NODE_UNIQUE_NAME, NODE_TYPE_NAME, NODE_SUPPORT
    FROM [Surface].CONTENT;
SELECT COUNT(*) AS populated FROM $SYSTEM.MINING_MODELS
    WHERE IS_POPULATED = TRUE;
SELECT COLUMN_NAME FROM $SYSTEM.MINING_COLUMNS
    WHERE MODEL_NAME = 'Surface' AND IS_PREDICTABLE = TRUE;
SELECT * FROM [Surface].CASES;

-- 6. management ---------------------------------------------------------------
DELETE FROM MINING MODEL [Surface];
INSERT INTO [Surface] ([Customer ID], [Gender], [Age],
    [Basket]([Product Name], [Quantity]))
SHAPE {SELECT [Customer ID], Gender, Age FROM Customers
       ORDER BY [Customer ID]}
APPEND ({SELECT CustID, [Product Name], Quantity FROM Sales}
        RELATE [Customer ID] TO CustID) AS [Basket];
DROP MINING MODEL [Surface];
DROP TABLE IF EXISTS Ghost;
DELETE FROM Sales WHERE Quantity > 7;
"""


def test_full_surface_script(conn):
    results = conn.execute_script(SCRIPT)
    # A few load-bearing spot checks along the way:
    rowsets = [r for r in results if isinstance(r, Rowset)]
    counts = [r for r in results if isinstance(r, int)]

    # The GROUP BY result: two genders, four customers each... (4,4).
    grouped = rowsets[0]
    assert sorted(grouped.column_values("n")) == [4, 4]

    # Subquery + view filter returns drinkers older than the youngest.
    drinkers = rowsets[1]
    assert len(drinkers) >= 3

    # UNION collapsed the two constant branches into two labels.
    union = rowsets[2]
    assert sorted(union.column_values("label")) == ["old", "young"]

    # SHAPE produced one case per customer.
    shaped = rowsets[3]
    assert len(shaped) == 8
    assert shaped.columns[-1].nested_columns is not None

    # The big prediction query covered every customer.
    predictions = rowsets[4]
    assert len(predictions) == 8
    assert predictions.column_names() == [
        "Customer ID", "Age", "p", "best", "midpoint"]

    # FLATTENED histogram has the $-columns un-nested.
    flattened = rowsets[5]
    assert any("$PROBABILITY" in name
               for name in flattened.column_names())

    # Content browse, schema rowsets, drillthrough.
    content = rowsets[6]
    assert content.column_values("NODE_TYPE_NAME")[0] == "Model"
    assert rowsets[7].single_value() == 1      # one populated model
    assert rowsets[8].column_values("COLUMN_NAME") == ["Age"]
    assert len(rowsets[9]) == 8                # CASES drillthrough

    # Management statements really executed (counts of affected rows).
    assert 8 in counts                         # both INSERT INTO model runs
    assert counts[-1] == 1                     # one sale deleted (8.0 beer)

    # The model is gone after DROP.
    assert not conn.provider.has_model("Surface")
