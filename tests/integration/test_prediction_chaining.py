"""Chaining predictions into subsequent training (paper section 3.2.1).

"These qualifiers ... apply ... if the output of previous predictions is
being chained as input to a subsequent DMM training step."  Full pipeline:

1. model A learns Gender -> Age bucket on labelled customers;
2. A's predictions **and their probabilities** are deployed into a plain
   SQL table (prediction -> table, the deployment story);
3. model B trains on that table, binding A's probability column as
   ``PROBABILITY OF`` the chained label — closing the loop the paper
   describes.
"""

import pytest

import repro
from repro.datagen import WarehouseConfig, load_warehouse


@pytest.fixture
def chained(conn):
    load_warehouse(conn.database, WarehouseConfig(customers=600, seed=9))
    conn.execute("""
        CREATE MINING MODEL [Stage A] (
            [Customer ID] LONG KEY,
            [Gender] TEXT DISCRETE,
            [Age] DOUBLE DISCRETIZED(EQUAL_COUNT, 3) PREDICT,
            [Product Purchases] TABLE([Product Name] TEXT KEY)
        ) USING Microsoft_Decision_Trees
    """)
    conn.execute("""
        INSERT INTO [Stage A] ([Customer ID], [Gender], [Age],
            [Product Purchases]([Product Name]))
        SHAPE {SELECT [Customer ID], Gender, Age FROM Customers
               WHERE [Customer ID] <= 300 ORDER BY [Customer ID]}
        APPEND ({SELECT CustID, [Product Name] FROM Sales
                 ORDER BY CustID}
                RELATE [Customer ID] TO CustID) AS [Product Purchases]
    """)
    return conn


def test_chain_predictions_into_second_model(chained):
    # Step 2: deploy A's predictions (value + probability) into SQL.
    scored = chained.execute("""
        SELECT t.[Customer ID], [Stage A].[Age] AS bucket,
               PredictProbability([Age]) AS p
        FROM [Stage A] NATURAL PREDICTION JOIN
            (SHAPE {SELECT [Customer ID], Gender FROM Customers
                    WHERE [Customer ID] > 300 ORDER BY [Customer ID]}
             APPEND ({SELECT CustID, [Product Name] FROM Sales
                      ORDER BY CustID}
                     RELATE [Customer ID] TO CustID)
                    AS [Product Purchases]) AS t
    """)
    chained.execute("CREATE TABLE [Stage A Output] "
                    "([Customer ID] LONG, Bucket TEXT, P DOUBLE)")
    chained.database.table("Stage A Output").insert_many(scored.rows)

    # Step 3: train B on the chained output, with PROBABILITY OF binding.
    chained.execute("""
        CREATE MINING MODEL [Stage B] (
            [Customer ID] LONG KEY,
            [Hair Color] TEXT DISCRETE,
            [Bucket] TEXT DISCRETE PREDICT,
            [Bucket P] DOUBLE PROBABILITY OF [Bucket]
        ) USING Repro_Naive_Bayes
    """)
    count = chained.execute("""
        INSERT INTO [Stage B] ([Customer ID], [Hair Color], [Bucket],
            [Bucket P])
        SELECT o.[Customer ID], c.[Hair Color], o.Bucket, o.P
        FROM [Stage A Output] o
        JOIN Customers c ON o.[Customer ID] = c.[Customer ID]
    """)
    assert count == 300

    # The chained qualifier is live: low-confidence labels weigh less.
    model = chained.model("Stage B")
    bucket = model.space.for_column("Bucket")
    marginal = model.space.marginals[bucket.index]
    # Total marginal weight equals the sum of A's probabilities, not the
    # raw row count — the proof that the qualifier was honoured.
    total_probability = sum(
        row[2] for row in chained.execute(
            "SELECT * FROM [Stage A Output]").rows)
    assert marginal.total == pytest.approx(total_probability)
    assert marginal.total < 300  # some of A's predictions were uncertain

    # And B predicts end to end.
    result = chained.execute("""
        SELECT [Stage B].[Bucket], PredictProbability([Bucket])
        FROM [Stage B] NATURAL PREDICTION JOIN
            (SELECT 'Black' AS [Hair Color]) AS t
    """)
    value, probability = result.rows[0]
    assert value is not None
    assert 0.0 <= probability <= 1.0


def test_chained_support_qualifier_aggregates(conn):
    """SUPPORT OF as a replication factor for pre-aggregated input."""
    conn.execute("CREATE TABLE Agg (G TEXT, L TEXT, N DOUBLE)")
    conn.execute("INSERT INTO Agg VALUES ('a','x',30), ('a','y',10), "
                 "('b','x',5), ('b','y',55)")
    conn.execute("""
        CREATE MINING MODEL [FromAgg] (
            [G] TEXT DISCRETE,
            [L] TEXT DISCRETE PREDICT,
            [N] DOUBLE SUPPORT OF [L]
        ) USING Repro_Naive_Bayes
    """)
    conn.execute("INSERT INTO [FromAgg] SELECT G, L, N FROM Agg")
    model = conn.model("FromAgg")
    assert model.space.total_weight == pytest.approx(100.0)
    result = conn.execute(
        "SELECT [FromAgg].[L] FROM [FromAgg] NATURAL PREDICTION JOIN "
        "(SELECT 'b' AS G) AS t")
    assert result.single_value() == "y"  # 55 vs 5 after weighting
