"""PMML persistence: structure, export/import, lossless round trips."""

import xml.etree.ElementTree as ET

import pytest

import repro
from repro.errors import CatalogError, Error
from repro.pmml import read_pmml, to_pmml
from repro.pmml.writer import definition_to_ddl

WAREHOUSE_SETUP = [
    "CREATE TABLE C (Id LONG, G TEXT, Age DOUBLE)",
    "INSERT INTO C VALUES " + ", ".join(
        f"({i}, '{'m' if i % 2 else 'f'}', {20.0 + (i % 4) * 10})"
        for i in range(1, 41)),
    "CREATE TABLE S (Cid LONG, P TEXT)",
    "INSERT INTO S VALUES " + ", ".join(
        f"({i}, '{p}')" for i in range(1, 41)
        for p in (("tv", "beer") if i % 2 else ("wine",))),
]

MODEL_DDLS = {
    "Repro_Decision_Trees": (
        "CREATE MINING MODEL [M] (Id LONG KEY, G TEXT DISCRETE, "
        "Age DOUBLE DISCRETIZED(EQUAL_COUNT, 3) PREDICT, "
        "B TABLE(P TEXT KEY)) "
        "USING Repro_Decision_Trees(MINIMUM_SUPPORT = 2)"),
    "Repro_Naive_Bayes": (
        "CREATE MINING MODEL [M] (Id LONG KEY, G TEXT DISCRETE PREDICT, "
        "Age DOUBLE CONTINUOUS, B TABLE(P TEXT KEY)) "
        "USING Repro_Naive_Bayes"),
    "Repro_Clustering": (
        "CREATE MINING MODEL [M] (Id LONG KEY, G TEXT DISCRETE, "
        "Age DOUBLE CONTINUOUS PREDICT, B TABLE(P TEXT KEY)) "
        "USING Repro_Clustering(CLUSTER_COUNT = 2)"),
    "Repro_KMeans": (
        "CREATE MINING MODEL [M] (Id LONG KEY, G TEXT DISCRETE, "
        "Age DOUBLE CONTINUOUS PREDICT, B TABLE(P TEXT KEY)) "
        "USING Repro_KMeans(CLUSTER_COUNT = 2)"),
    "Repro_Association_Rules": (
        "CREATE MINING MODEL [M] (Id LONG KEY, "
        "B TABLE(P TEXT KEY) PREDICT) "
        "USING Repro_Association_Rules(MINIMUM_SUPPORT = 0.1, "
        "MINIMUM_PROBABILITY = 0.2)"),
    "Repro_Linear_Regression": (
        "CREATE MINING MODEL [M] (Id LONG KEY, G TEXT DISCRETE, "
        "Age DOUBLE CONTINUOUS PREDICT, B TABLE(P TEXT KEY)) "
        "USING Repro_Linear_Regression"),
}

TRAIN = """
INSERT INTO [M] SHAPE {SELECT Id, G, Age FROM C ORDER BY Id}
APPEND ({SELECT Cid, P FROM S ORDER BY Cid} RELATE Id TO Cid) AS B
"""

TRAIN_BASKET_ONLY = """
INSERT INTO [M] (Id, B(P))
SHAPE {SELECT Id FROM C ORDER BY Id}
APPEND ({SELECT Cid, P FROM S ORDER BY Cid} RELATE Id TO Cid) AS B
"""

PREDICT = """
SELECT [M].* FROM [M] NATURAL PREDICTION JOIN
(SHAPE {SELECT Id, G, Age FROM C WHERE Id <= 10 ORDER BY Id}
 APPEND ({SELECT Cid, P FROM S ORDER BY Cid} RELATE Id TO Cid) AS B) AS t
"""


def trained_connection(service):
    conn = repro.connect()
    for statement in WAREHOUSE_SETUP:
        conn.execute(statement)
    conn.execute(MODEL_DDLS[service])
    if service == "Repro_Association_Rules":
        conn.execute(TRAIN_BASKET_ONLY)
    else:
        conn.execute(TRAIN)
    return conn


class TestDocumentStructure:
    def test_is_valid_xml_with_expected_sections(self):
        conn = trained_connection("Repro_Decision_Trees")
        document = to_pmml(conn.model("M"))
        root = ET.fromstring(document)
        assert root.tag == "PMML"
        tags = {child.tag for child in root}
        assert {"Header", "DataDictionary", "MiningSchema",
                "ModelContent", "Extension"} <= tags

    def test_pmml_facet_query(self):
        conn = trained_connection("Repro_Decision_Trees")
        rowset = conn.execute("SELECT PMML FROM [M].PMML")
        assert rowset.single_value().startswith("<?xml")

    def test_ddl_reconstruction_round_trips(self):
        conn = trained_connection("Repro_Decision_Trees")
        ddl = definition_to_ddl(conn.model("M").definition)
        from repro.lang.parser import parse_statement
        from repro.core.columns import compile_model_definition
        definition = compile_model_definition(parse_statement(ddl))
        assert definition.name == "M"
        assert [c.name for c in definition.columns] == \
            [c.name for c in conn.model("M").definition.columns]


@pytest.mark.parametrize("service", sorted(MODEL_DDLS))
def test_round_trip_preserves_predictions(service):
    conn = trained_connection(service)
    before = conn.execute(PREDICT)
    document = to_pmml(conn.model("M"))

    conn2 = repro.connect()
    for statement in WAREHOUSE_SETUP:
        conn2.execute(statement)
    model = read_pmml(document)
    conn2.provider.models[model.name.upper()] = model
    after = conn2.execute(PREDICT)

    assert before.column_names() == after.column_names()
    for row_before, row_after in zip(before.rows, after.rows):
        for a, b in zip(row_before, row_after):
            if isinstance(a, float):
                assert a == pytest.approx(b)
            else:
                assert a == b


def test_sequence_model_round_trip():
    conn = repro.connect()
    conn.execute("CREATE TABLE E (Id LONG, Step LONG, Page TEXT)")
    rows = []
    for i in range(30):
        pages = ["A", "B", "C"] if i % 2 else ["X", "Y", "X"]
        for step, page in enumerate(pages):
            rows.append(f"({i}, {step}, '{page}')")
    conn.execute("INSERT INTO E VALUES " + ", ".join(rows))
    conn.execute("CREATE MINING MODEL SeqM (Id LONG KEY, "
                 "Clicks TABLE(Step LONG KEY SEQUENCE_TIME, "
                 "Page TEXT DISCRETE)) "
                 "USING Repro_Sequence_Clustering(CLUSTER_COUNT = 2)")
    conn.execute("INSERT INTO SeqM (Id, Clicks(Step, Page)) "
                 "SHAPE {SELECT DISTINCT Id FROM E ORDER BY Id} "
                 "APPEND ({SELECT Id AS EID, Step, Page FROM E "
                 "ORDER BY Id} RELATE Id TO EID) AS Clicks")
    model = conn.model("SeqM")
    restored = read_pmml(to_pmml(model))
    assert restored.algorithm.states == model.algorithm.states
    import numpy as np
    assert np.allclose(restored.algorithm.transition,
                       model.algorithm.transition)


class TestExportImportStatements:
    def test_export_import_via_dmx(self, tmp_path):
        conn = trained_connection("Repro_Decision_Trees")
        path = tmp_path / "model.xml"
        conn.execute(f"EXPORT MINING MODEL [M] TO '{path}'")
        assert path.exists()
        conn.execute(f"IMPORT MINING MODEL FROM '{path}' AS [M2]")
        assert conn.model("M2").is_trained

    def test_import_duplicate_name_rejected(self, tmp_path):
        conn = trained_connection("Repro_Decision_Trees")
        path = tmp_path / "model.xml"
        conn.execute(f"EXPORT MINING MODEL [M] TO '{path}'")
        with pytest.raises(CatalogError):
            conn.execute(f"IMPORT MINING MODEL FROM '{path}'")

    def test_imported_model_content_browsable(self, tmp_path):
        conn = trained_connection("Repro_Decision_Trees")
        path = tmp_path / "model.xml"
        conn.execute(f"EXPORT MINING MODEL [M] TO '{path}'")
        conn.execute(f"IMPORT MINING MODEL FROM '{path}' AS [M2]")
        content = conn.execute("SELECT COUNT(*) FROM [M2].CONTENT")
        assert content.single_value() >= 2


class TestReaderErrors:
    def test_rejects_non_xml(self):
        with pytest.raises(Error):
            read_pmml("this is not xml")

    def test_rejects_wrong_root(self):
        with pytest.raises(Error):
            read_pmml("<NotPmml/>")

    def test_rejects_foreign_pmml(self):
        with pytest.raises(Error, match="repro-state"):
            read_pmml("<PMML version='1.0'><TreeModel/></PMML>")
