"""Exception hierarchy and the public package surface."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_everything_derives_from_error(self):
        for name in ("ParseError", "BindError", "SchemaError", "TypeError_",
                     "TrainError", "PredictionError", "NotTrainedError",
                     "CatalogError", "CapabilityError"):
            assert issubclass(getattr(errors, name), errors.Error)

    def test_not_trained_is_a_prediction_error(self):
        assert issubclass(errors.NotTrainedError, errors.PredictionError)

    def test_parse_error_carries_position(self):
        error = errors.ParseError("bad token", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)

    def test_parse_error_without_position(self):
        error = errors.ParseError("bad token")
        assert error.line is None
        assert "line" not in str(error)

    def test_one_except_catches_all_provider_failures(self, conn):
        failing_statements = [
            "SELEKT 1",                                   # ParseError
            "SELECT * FROM Missing",                      # BindError
            "DROP MINING MODEL Ghost",                    # CatalogError
            "CREATE TABLE T (a BLOB)",                    # TypeError_
        ]
        for statement in failing_statements:
            with pytest.raises(errors.Error):
                conn.execute(statement)


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_connect_returns_fresh_providers(self):
        a = repro.connect()
        b = repro.connect()
        a.execute("CREATE TABLE T (x LONG)")
        assert not b.database.has_table("T")

    def test_rowset_is_importable_and_usable(self):
        rowset = repro.Rowset([repro.RowsetColumn("a")], [("x",)])
        assert rowset.column_values("a") == ["x"]

    def test_algorithm_services_listing(self):
        names = {cls.SERVICE_NAME for cls in repro.algorithm_services()}
        assert "Repro_Decision_Trees" in names

    def test_caseset_helpers_exported(self, conn):
        conn.execute("CREATE TABLE T (a LONG)")
        conn.execute("INSERT INTO T VALUES (1)")
        rowset = conn.execute("SELECT * FROM T")
        cases = list(repro.Caseset(rowset))
        assert cases[0].get("a") == 1

    def test_flatten_rowset_exported(self, conn):
        conn.execute("CREATE TABLE T (a LONG)")
        conn.execute("INSERT INTO T VALUES (1)")
        rowset = conn.execute("SELECT * FROM T")
        assert repro.flatten_rowset(rowset).rows == rowset.rows
