"""Incremental model maintenance (the paper's section-2 capability).

Naive Bayes declares SUPPORTS_INCREMENTAL: a second INSERT INTO is folded
into the counts, which must be *exactly* equivalent to a full retrain over
the union (sums are associative).  Any case falling outside the fitted
attribute space — a new category, a new nested item, an out-of-range
DISCRETIZED value — forces a transparent full refit.
"""

import pytest

import repro
from repro.errors import CapabilityError

NB_DDL = """
CREATE MINING MODEL [Inc] (Id LONG KEY, G TEXT DISCRETE,
    V DOUBLE CONTINUOUS, L TEXT DISCRETE PREDICT)
USING Repro_Naive_Bayes
"""

PREDICT = """
SELECT [Inc].[L], PredictProbability([L]) FROM [Inc]
NATURAL PREDICTION JOIN (SELECT 'a' AS G, 1.5 AS V) AS t
"""


def insert_rows(conn, rows):
    values = ", ".join(f"({i}, '{g}', {v}, '{l}')"
                       for i, (g, v, l) in enumerate(rows, start=1))
    conn.execute("DELETE FROM T")
    conn.execute(f"INSERT INTO T VALUES {values}")
    conn.execute("INSERT INTO [Inc] SELECT Id, G, V, L FROM T")


@pytest.fixture
def inc_conn(conn):
    conn.execute("CREATE TABLE T (Id LONG, G TEXT, V DOUBLE, L TEXT)")
    conn.execute(NB_DDL)
    return conn


FIRST = [("a", 1.0, "x"), ("a", 2.0, "x"), ("b", 5.0, "y"),
         ("b", 6.0, "y"), ("a", 1.5, "x"), ("b", 5.5, "y")]
SECOND = [("a", 1.2, "y"), ("b", 5.2, "x"), ("a", 1.8, "x"),
          ("b", 6.2, "y")]


class TestIncrementalEqualsFullRetrain:
    def test_posteriors_identical(self, inc_conn):
        insert_rows(inc_conn, FIRST)
        insert_rows(inc_conn, SECOND)  # incremental path
        incremental = inc_conn.execute(PREDICT).rows

        # A second provider trained on the union in one INSERT.
        full = repro.connect()
        full.execute("CREATE TABLE T (Id LONG, G TEXT, V DOUBLE, L TEXT)")
        full.execute(NB_DDL)
        insert_rows(full, FIRST + SECOND)
        expected = full.execute(PREDICT).rows

        assert incremental[0][0] == expected[0][0]
        assert incremental[0][1] == pytest.approx(expected[0][1])

    def test_marginals_absorbed(self, inc_conn):
        insert_rows(inc_conn, FIRST)
        space_before = inc_conn.model("Inc").space
        insert_rows(inc_conn, SECOND)
        model = inc_conn.model("Inc")
        assert model.space is space_before  # no refit happened
        assert model.space.case_count == len(FIRST) + len(SECOND)
        assert model.case_count == len(FIRST) + len(SECOND)


class TestFallbacks:
    def test_unseen_category_forces_refit(self, inc_conn):
        insert_rows(inc_conn, FIRST)
        space_before = inc_conn.model("Inc").space
        insert_rows(inc_conn, [("c", 3.0, "x")])  # 'c' unseen
        model = inc_conn.model("Inc")
        assert model.space is not space_before  # refit
        g = model.space.by_name("G")
        assert g.encode("c") is not None  # new category learnt

    def test_unseen_target_state_forces_refit(self, inc_conn):
        insert_rows(inc_conn, FIRST)
        space_before = inc_conn.model("Inc").space
        insert_rows(inc_conn, [("a", 1.0, "z")])
        assert inc_conn.model("Inc").space is not space_before

    def test_tree_service_always_refits(self, conn):
        conn.execute("CREATE TABLE T (Id LONG, G TEXT, L TEXT)")
        conn.execute("CREATE MINING MODEL [TreeInc] (Id LONG KEY, "
                     "G TEXT DISCRETE, L TEXT DISCRETE PREDICT) "
                     "USING Repro_Decision_Trees(MINIMUM_SUPPORT = 1)")
        conn.execute("INSERT INTO T VALUES (1, 'a', 'x'), (2, 'b', 'y')")
        conn.execute("INSERT INTO [TreeInc] SELECT Id, G, L FROM T")
        space_before = conn.model("TreeInc").space
        conn.execute("INSERT INTO [TreeInc] SELECT Id, G, L FROM T")
        assert conn.model("TreeInc").space is not space_before

    def test_partial_train_unsupported_raises(self):
        from repro.algorithms.decision_tree import DecisionTreeAlgorithm
        algorithm = DecisionTreeAlgorithm()
        with pytest.raises(CapabilityError):
            algorithm.partial_train([])

    def test_discretized_out_of_range_forces_refit(self, conn):
        conn.execute("CREATE TABLE T (Id LONG, V DOUBLE, L TEXT)")
        conn.execute("CREATE MINING MODEL [DInc] (Id LONG KEY, "
                     "V DOUBLE DISCRETIZED(EQUAL_RANGE, 2), "
                     "L TEXT DISCRETE PREDICT) USING Repro_Naive_Bayes")
        conn.execute("INSERT INTO T VALUES (1, 1.0, 'x'), (2, 2.0, 'y')")
        conn.execute("INSERT INTO [DInc] SELECT Id, V, L FROM T")
        space_before = conn.model("DInc").space
        conn.execute("DELETE FROM T")
        conn.execute("INSERT INTO T VALUES (3, 99.0, 'x')")  # out of range
        conn.execute("INSERT INTO [DInc] SELECT Id, V, L FROM T")
        assert conn.model("DInc").space is not space_before

    def test_within_range_stays_incremental(self, conn):
        conn.execute("CREATE TABLE T (Id LONG, V DOUBLE, L TEXT)")
        conn.execute("CREATE MINING MODEL [DInc2] (Id LONG KEY, "
                     "V DOUBLE DISCRETIZED(EQUAL_RANGE, 2), "
                     "L TEXT DISCRETE PREDICT) USING Repro_Naive_Bayes")
        conn.execute("INSERT INTO T VALUES (1, 1.0, 'x'), (2, 2.0, 'y')")
        conn.execute("INSERT INTO [DInc2] SELECT Id, V, L FROM T")
        space_before = conn.model("DInc2").space
        conn.execute("DELETE FROM T")
        conn.execute("INSERT INTO T VALUES (3, 1.5, 'x')")
        conn.execute("INSERT INTO [DInc2] SELECT Id, V, L FROM T")
        assert conn.model("DInc2").space is space_before
