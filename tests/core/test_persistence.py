"""Provider snapshots: tables, views, and trained models round-trip."""

import datetime

import pytest

import repro
from repro.errors import Error
from repro.core.persistence import (
    dump_provider,
    load_provider,
    open_provider,
    save_provider,
)


@pytest.fixture
def populated(conn):
    conn.execute("CREATE TABLE T (Id LONG PRIMARY KEY, G TEXT, "
                 "Age DOUBLE, D DATE)")
    rows = ", ".join(
        f"({i}, '{'m' if i % 2 else 'f'}', {20 + (i % 4) * 10}.0, "
        f"'2001-0{1 + i % 9}-01')" for i in range(1, 41))
    conn.execute(f"INSERT INTO T VALUES {rows}")
    conn.execute("CREATE VIEW Men AS SELECT * FROM T WHERE G = 'm'")
    conn.execute("CREATE MINING MODEL M (Id LONG KEY, G TEXT DISCRETE, "
                 "Age DOUBLE DISCRETIZED(EQUAL_COUNT, 2) PREDICT) "
                 "USING Repro_Decision_Trees(MINIMUM_SUPPORT = 2)")
    conn.execute("INSERT INTO M SELECT Id, G, Age FROM T")
    conn.execute("CREATE MINING MODEL Untrained (Id LONG KEY, "
                 "G TEXT DISCRETE) USING Repro_Naive_Bayes")
    return conn


def restore(conn):
    provider = load_provider(dump_provider(conn.provider))
    return repro.Connection(provider)


class TestRoundTrip:
    def test_tables_restored_with_types(self, populated):
        restored = restore(populated)
        assert restored.execute("SELECT COUNT(*) FROM T") \
            .single_value() == 40
        row = restored.execute("SELECT * FROM T WHERE Id = 1").rows[0]
        assert row[2] == 30.0
        assert row[3] == datetime.date(2001, 2, 1)

    def test_primary_key_enforced_after_restore(self, populated):
        restored = restore(populated)
        from repro.errors import SchemaError
        with pytest.raises(SchemaError):
            restored.execute(
                "INSERT INTO T VALUES (1, 'm', 1.0, '2001-01-01')")

    def test_views_restored(self, populated):
        restored = restore(populated)
        assert restored.execute("SELECT COUNT(*) FROM Men") \
            .single_value() == 20

    def test_trained_model_predicts_identically(self, populated):
        query = ("SELECT [M].[Age] FROM M NATURAL PREDICTION JOIN "
                 "(SELECT G FROM T WHERE Id <= 5) AS t")
        before = populated.execute(query)
        restored = restore(populated)
        after = restored.execute(query)
        assert before.rows == after.rows

    def test_untrained_model_restored_as_untrained(self, populated):
        restored = restore(populated)
        model = restored.model("Untrained")
        assert not model.is_trained
        restored.execute("INSERT INTO Untrained SELECT Id, G FROM T")
        assert model.is_trained

    def test_file_round_trip(self, populated, tmp_path):
        path = tmp_path / "snapshot.json"
        save_provider(populated.provider, str(path))
        provider = open_provider(str(path))
        assert provider.model("M").is_trained

    def test_empty_provider(self, conn):
        restored = restore(conn)
        assert restored.models() == []


class TestTemporalValues:
    """Regression: datetime.datetime subclasses date — it used to be tagged
    ``$date`` and its time part rejected or truncated on restore."""

    def test_datetime_date_and_none_round_trip(self, conn):
        conn.execute("CREATE TABLE Times (Id LONG, At DATETIME)")
        table = conn.database.table("Times")
        moment = datetime.datetime(2001, 3, 4, 10, 30, 59)
        day = datetime.date(2001, 3, 4)
        table.insert([1, moment])
        table.insert([2, day])
        table.insert([3, None])
        restored = restore(conn)
        rows = restored.execute("SELECT At FROM Times").rows
        assert rows == [(moment,), (day,), (None,)]
        # The restored values keep their exact types: a datetime stays a
        # datetime (with its time), a date stays a plain date.
        assert type(rows[0][0]) is datetime.datetime
        assert type(rows[1][0]) is datetime.date

    def test_datetime_microseconds_survive(self, conn):
        conn.execute("CREATE TABLE Ts (At DATETIME)")
        moment = datetime.datetime(2020, 1, 2, 3, 4, 5, 678901)
        conn.database.table("Ts").insert([moment])
        restored = restore(conn)
        assert restored.execute("SELECT At FROM Ts").rows == [(moment,)]

    def test_encode_tags_are_distinct(self):
        from repro.core.persistence import _encode_value
        assert _encode_value(datetime.datetime(2001, 1, 1, 12)) == \
            {"$datetime": "2001-01-01T12:00:00"}
        assert _encode_value(datetime.date(2001, 1, 1)) == \
            {"$date": "2001-01-01"}


class TestViewValidation:
    """Regression: restored views used to be installed unvalidated and
    exploded at first query when the snapshot was inconsistent."""

    def _snapshot_with_broken_view(self, conn):
        import json
        conn.execute("CREATE TABLE Known (Id LONG)")
        conn.execute("CREATE VIEW V AS SELECT * FROM Known")
        snapshot = json.loads(dump_provider(conn.provider))
        snapshot["views"]["V"] = "SELECT * FROM NoSuchTable"
        return json.dumps(snapshot)

    def test_unresolvable_view_fails_at_load_naming_the_view(self, conn):
        with pytest.raises(Error, match="view 'V'"):
            load_provider(self._snapshot_with_broken_view(conn))

    def test_view_over_view_resolves(self, populated):
        populated.execute(
            "CREATE VIEW OldMen AS SELECT * FROM Men WHERE Age > 40")
        restored = restore(populated)
        assert restored.execute("SELECT COUNT(*) FROM OldMen") \
            .single_value() > 0

    def test_view_over_untrained_model_content_loads(self, conn):
        conn.execute("CREATE MINING MODEL NotYet (Id LONG KEY, G TEXT "
                     "DISCRETE) USING Repro_Naive_Bayes")
        conn.execute("CREATE VIEW C AS SELECT * FROM NotYet.CONTENT")
        # NotTrainedError is not a resolution failure: the view loads.
        restored = restore(conn)
        assert "C" in restored.database.views


class TestAtomicSave:
    def test_interrupted_save_keeps_previous_snapshot(self, populated,
                                                      tmp_path):
        from repro.store.faults import FaultInjector, InjectedCrash
        path = tmp_path / "snapshot.json"
        save_provider(populated.provider, str(path))
        good = path.read_text()
        populated.execute("INSERT INTO T VALUES (99, 'm', 1.0, "
                          "'2009-09-09')")
        faults = FaultInjector()
        faults.arm("snapshot.before_replace")
        with pytest.raises(InjectedCrash):
            save_provider(populated.provider, str(path), faults=faults)
        assert path.read_text() == good
        assert open_provider(str(path)).database.table("T") is not None

    def test_export_model_is_atomic(self, populated, tmp_path):
        path = tmp_path / "m.pmml"
        populated.execute(f"EXPORT MINING MODEL M TO '{path}'")
        text = path.read_text()
        assert text.startswith("<?xml")
        # Re-export replaces atomically (same content, no truncation window).
        populated.execute(f"EXPORT MINING MODEL M TO '{path}'")
        assert path.read_text() == text


class TestErrors:
    def test_rejects_garbage(self):
        with pytest.raises(Error):
            load_provider("not json at all")

    def test_rejects_wrong_kind(self):
        with pytest.raises(Error, match="snapshot"):
            load_provider('{"kind": "something-else"}')

    def test_rejects_future_format(self):
        with pytest.raises(Error, match="format"):
            load_provider('{"kind": "repro-provider-snapshot", '
                          '"format": 99}')
