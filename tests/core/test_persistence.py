"""Provider snapshots: tables, views, and trained models round-trip."""

import datetime

import pytest

import repro
from repro.errors import Error
from repro.core.persistence import (
    dump_provider,
    load_provider,
    open_provider,
    save_provider,
)


@pytest.fixture
def populated(conn):
    conn.execute("CREATE TABLE T (Id LONG PRIMARY KEY, G TEXT, "
                 "Age DOUBLE, D DATE)")
    rows = ", ".join(
        f"({i}, '{'m' if i % 2 else 'f'}', {20 + (i % 4) * 10}.0, "
        f"'2001-0{1 + i % 9}-01')" for i in range(1, 41))
    conn.execute(f"INSERT INTO T VALUES {rows}")
    conn.execute("CREATE VIEW Men AS SELECT * FROM T WHERE G = 'm'")
    conn.execute("CREATE MINING MODEL M (Id LONG KEY, G TEXT DISCRETE, "
                 "Age DOUBLE DISCRETIZED(EQUAL_COUNT, 2) PREDICT) "
                 "USING Repro_Decision_Trees(MINIMUM_SUPPORT = 2)")
    conn.execute("INSERT INTO M SELECT Id, G, Age FROM T")
    conn.execute("CREATE MINING MODEL Untrained (Id LONG KEY, "
                 "G TEXT DISCRETE) USING Repro_Naive_Bayes")
    return conn


def restore(conn):
    provider = load_provider(dump_provider(conn.provider))
    return repro.Connection(provider)


class TestRoundTrip:
    def test_tables_restored_with_types(self, populated):
        restored = restore(populated)
        assert restored.execute("SELECT COUNT(*) FROM T") \
            .single_value() == 40
        row = restored.execute("SELECT * FROM T WHERE Id = 1").rows[0]
        assert row[2] == 30.0
        assert row[3] == datetime.date(2001, 2, 1)

    def test_primary_key_enforced_after_restore(self, populated):
        restored = restore(populated)
        from repro.errors import SchemaError
        with pytest.raises(SchemaError):
            restored.execute(
                "INSERT INTO T VALUES (1, 'm', 1.0, '2001-01-01')")

    def test_views_restored(self, populated):
        restored = restore(populated)
        assert restored.execute("SELECT COUNT(*) FROM Men") \
            .single_value() == 20

    def test_trained_model_predicts_identically(self, populated):
        query = ("SELECT [M].[Age] FROM M NATURAL PREDICTION JOIN "
                 "(SELECT G FROM T WHERE Id <= 5) AS t")
        before = populated.execute(query)
        restored = restore(populated)
        after = restored.execute(query)
        assert before.rows == after.rows

    def test_untrained_model_restored_as_untrained(self, populated):
        restored = restore(populated)
        model = restored.model("Untrained")
        assert not model.is_trained
        restored.execute("INSERT INTO Untrained SELECT Id, G FROM T")
        assert model.is_trained

    def test_file_round_trip(self, populated, tmp_path):
        path = tmp_path / "snapshot.json"
        save_provider(populated.provider, str(path))
        provider = open_provider(str(path))
        assert provider.model("M").is_trained

    def test_empty_provider(self, conn):
        restored = restore(conn)
        assert restored.models() == []


class TestErrors:
    def test_rejects_garbage(self):
        with pytest.raises(Error):
            load_provider("not json at all")

    def test_rejects_wrong_kind(self):
        with pytest.raises(Error, match="snapshot"):
            load_provider('{"kind": "something-else"}')

    def test_rejects_future_format(self):
        with pytest.raises(Error, match="format"):
            load_provider('{"kind": "repro-provider-snapshot", '
                          '"format": 99}')
