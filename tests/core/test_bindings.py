"""Binding source rowsets to model columns: positional, by-name, pairs."""

import pytest

from repro.errors import BindError, SchemaError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_statement
from repro.core.bindings import map_rowset, map_rowset_with_pairs
from repro.core.columns import compile_model_definition
from repro.sqlstore.rowset import Rowset, RowsetColumn
from repro.sqlstore.types import DOUBLE, LONG, TEXT


@pytest.fixture
def definition():
    return compile_model_definition(parse_statement("""
        CREATE MINING MODEL m (
            [Customer ID] LONG KEY,
            [Gender] TEXT DISCRETE,
            [Age] DOUBLE CONTINUOUS PREDICT,
            [Age Prob] DOUBLE PROBABILITY OF [Age],
            [Purchases] TABLE([Product] TEXT KEY,
                              [Quantity] DOUBLE CONTINUOUS)
        ) USING Repro_Decision_Trees
    """))


def nested(rows):
    return Rowset([RowsetColumn("CustID", LONG),
                   RowsetColumn("Product", TEXT),
                   RowsetColumn("Quantity", DOUBLE)], rows)


def source_rowset():
    columns = [
        RowsetColumn("Customer ID", LONG),
        RowsetColumn("Gender", TEXT),
        RowsetColumn("Age", DOUBLE),
        RowsetColumn("Age Prob", DOUBLE),
        RowsetColumn("Purchases", nested_columns=[
            RowsetColumn("CustID", LONG), RowsetColumn("Product", TEXT),
            RowsetColumn("Quantity", DOUBLE)]),
    ]
    rows = [
        (1, "Male", 35.0, 0.9, nested([(1, "TV", 1.0), (1, "Beer", 6.0)])),
        (2, "Female", None, None, nested([])),
    ]
    return Rowset(columns, rows)


class TestByNameBinding:
    def test_maps_scalars_tables_and_qualifiers(self, definition):
        cases = map_rowset(definition, source_rowset())
        assert len(cases) == 2
        first = cases[0]
        assert first.scalars["CUSTOMER ID"] == 1
        assert first.scalars["AGE"] == 35.0
        assert first.qualifier("Age", "PROBABILITY") == 0.9
        assert [r["PRODUCT"] for r in first.tables["PURCHASES"]] == \
            ["TV", "Beer"]

    def test_extra_source_columns_ignored(self, definition):
        rowset = Rowset([RowsetColumn("Gender", TEXT),
                         RowsetColumn("Shoe Size", DOUBLE)],
                        [("Male", 44.0)])
        cases = map_rowset(definition, rowset)
        assert "SHOE SIZE" not in cases[0].scalars

    def test_missing_model_columns_are_absent(self, definition):
        rowset = Rowset([RowsetColumn("Gender", TEXT)], [("Male",)])
        case = map_rowset(definition, rowset)[0]
        assert "AGE" not in case.scalars

    def test_coercion_applies_model_types(self, definition):
        rowset = Rowset([RowsetColumn("Age", TEXT)], [("35",)])
        case = map_rowset(definition, rowset)[0]
        assert case.scalars["AGE"] == 35.0


class TestPositionalBinding:
    def binding(self):
        return [
            ast.BindingColumn("Customer ID"),
            ast.BindingColumn("Gender"),
            ast.BindingColumn("Age"),
            ast.BindingSkip(),
            ast.BindingTable("Purchases", [
                ast.BindingColumn("Product"),
                ast.BindingColumn("Quantity")]),
        ]

    def test_positional_with_skip(self, definition):
        cases = map_rowset(definition, source_rowset(), self.binding())
        first = cases[0]
        assert first.scalars["GENDER"] == "Male"
        assert "AGE PROB" not in first.qualifiers.get("AGE", {})
        assert len(first.tables["PURCHASES"]) == 2

    def test_unknown_binding_name(self, definition):
        bindings = [ast.BindingColumn("Ghost")]
        with pytest.raises(BindError):
            map_rowset(definition, source_rowset(), bindings)

    def test_table_bound_as_scalar_rejected(self, definition):
        bindings = [ast.BindingColumn("Purchases")]
        with pytest.raises(SchemaError):
            map_rowset(definition, source_rowset(), bindings)

    def test_scalar_bound_as_table_rejected(self, definition):
        bindings = [ast.BindingTable("Gender", [ast.BindingColumn("x")])]
        with pytest.raises(BindError):
            map_rowset(definition, source_rowset(), bindings)

    def test_too_many_bindings(self, definition):
        bindings = [ast.BindingColumn("Gender")] * 9
        with pytest.raises(SchemaError):
            map_rowset(definition, source_rowset(), bindings)

    def test_nested_binding_skips_relate_column(self, definition):
        # The SHAPE child keeps CustID; bindings name only Product/Quantity.
        cases = map_rowset(definition, source_rowset(), self.binding())
        row = cases[0].tables["PURCHASES"][0]
        assert row["PRODUCT"] == "TV"
        assert row["QUANTITY"] == 1.0
        assert "CUSTID" not in row

    def test_weight_defaults_to_one(self, definition):
        cases = map_rowset(definition, source_rowset(), self.binding())
        assert cases[0].weight() == 1.0


class TestSupportQualifier:
    def test_support_becomes_case_weight(self):
        definition = compile_model_definition(parse_statement(
            "CREATE MINING MODEL m (k LONG KEY, g TEXT DISCRETE, "
            "w DOUBLE SUPPORT OF g) USING Repro_Decision_Trees"))
        rowset = Rowset([RowsetColumn("k", LONG), RowsetColumn("g", TEXT),
                         RowsetColumn("w", DOUBLE)],
                        [(1, "a", 3.0), (2, "b", None)])
        cases = map_rowset(definition, rowset)
        assert cases[0].weight() == 3.0
        assert cases[1].weight() == 1.0


class TestPairBinding:
    def test_on_clause_paths(self, definition):
        pairs = [
            (("Gender",), ("t", "Gender")),
            (("Purchases", "Product"), ("Purchases", "Product")),
            (("Purchases", "Quantity"), ("Purchases", "Quantity")),
        ]
        cases = map_rowset_with_pairs(definition, source_rowset(), pairs,
                                      source_alias="t")
        first = cases[0]
        assert first.scalars["GENDER"] == "Male"
        assert len(first.tables["PURCHASES"]) == 2
        assert "AGE" not in first.scalars  # not mapped by the ON clause

    def test_unknown_model_column(self, definition):
        with pytest.raises(BindError):
            map_rowset_with_pairs(definition, source_rowset(),
                                  [(("Ghost",), ("Gender",))], None)

    def test_unknown_source_column(self, definition):
        with pytest.raises(BindError):
            map_rowset_with_pairs(definition, source_rowset(),
                                  [(("Gender",), ("Ghost",))], None)

    def test_nested_model_path_needs_nested_source(self, definition):
        with pytest.raises(BindError):
            map_rowset_with_pairs(
                definition, source_rowset(),
                [(("Purchases", "Product"), ("Gender",))], None)
