"""Model-definition compilation and validation (paper section 3.2)."""

import pytest

from repro.errors import SchemaError
from repro.lang.parser import parse_statement
from repro.core.columns import (
    AttributeType,
    ContentRole,
    compile_model_definition,
)


def compile_ddl(text):
    return compile_model_definition(parse_statement(text))


def test_paper_model_compiles():
    definition = compile_ddl("""
        CREATE MINING MODEL [Age Prediction] (
            [Customer ID] LONG KEY,
            [Gender] TEXT DISCRETE,
            [Age] DOUBLE DISCRETIZED PREDICT,
            [Product Purchases] TABLE(
                [Product Name] TEXT KEY,
                [Quantity] DOUBLE NORMAL CONTINUOUS,
                [Product Type] TEXT DISCRETE RELATED TO [Product Name]
            )) USING [Decision_Trees_101]
    """)
    assert definition.case_key().name == "Customer ID"
    assert definition.find("Gender").role is ContentRole.ATTRIBUTE
    assert definition.find("Age").attribute_type is \
        AttributeType.DISCRETIZED
    assert definition.output_columns() == [definition.find("Age")]
    table = definition.find("Product Purchases")
    assert table.is_table
    assert table.key_column().name == "Product Name"
    assert table.find_nested("Product Type").role is ContentRole.RELATION


def test_roles_and_flags():
    definition = compile_ddl(
        "CREATE MINING MODEL m (k LONG KEY, a TEXT DISCRETE, "
        "b DOUBLE CONTINUOUS PREDICT_ONLY, "
        "p DOUBLE PROBABILITY OF a) USING z")
    a, b, p = (definition.find(n) for n in "abp")
    assert a.is_input and not a.is_output
    assert b.is_output and not b.is_input  # PREDICT_ONLY
    assert p.role is ContentRole.QUALIFIER
    assert definition.qualifiers_for(a) == [p]


def test_default_attribute_type_is_discrete():
    definition = compile_ddl(
        "CREATE MINING MODEL m (k LONG KEY, g TEXT) USING z")
    assert definition.find("g").attribute_type is AttributeType.DISCRETE


def test_parameters_are_upper_cased():
    definition = compile_ddl(
        "CREATE MINING MODEL m (k LONG KEY, g TEXT DISCRETE) "
        "USING z(minimum_support = 3)")
    assert definition.parameters == {"MINIMUM_SUPPORT": 3}


class TestValidation:
    def test_duplicate_column(self):
        with pytest.raises(SchemaError):
            compile_ddl("CREATE MINING MODEL m (k LONG KEY, a TEXT, "
                        "A TEXT) USING z")

    def test_two_keys_per_level(self):
        with pytest.raises(SchemaError):
            compile_ddl("CREATE MINING MODEL m (k LONG KEY, "
                        "j LONG KEY) USING z")

    def test_nested_table_requires_key(self):
        with pytest.raises(SchemaError):
            compile_ddl("CREATE MINING MODEL m (k LONG KEY, "
                        "n TABLE(x TEXT DISCRETE)) USING z")

    def test_related_to_must_resolve(self):
        with pytest.raises(SchemaError):
            compile_ddl("CREATE MINING MODEL m (k LONG KEY, "
                        "a TEXT RELATED TO ghost) USING z")

    def test_qualifier_target_must_resolve(self):
        with pytest.raises(SchemaError):
            compile_ddl("CREATE MINING MODEL m (k LONG KEY, "
                        "p DOUBLE PROBABILITY OF ghost) USING z")

    def test_qualifier_cannot_modify_key(self):
        with pytest.raises(SchemaError):
            compile_ddl("CREATE MINING MODEL m (k LONG KEY, "
                        "p DOUBLE PROBABILITY OF k) USING z")

    def test_key_cannot_be_predict(self):
        with pytest.raises(SchemaError):
            compile_ddl("CREATE MINING MODEL m (k LONG KEY PREDICT, "
                        "a TEXT) USING z")

    def test_relation_cannot_be_predict(self):
        with pytest.raises(SchemaError):
            compile_ddl("CREATE MINING MODEL m (k LONG KEY, a TEXT, "
                        "b TEXT RELATED TO a PREDICT) USING z")

    def test_continuous_requires_numeric_type(self):
        with pytest.raises(SchemaError):
            compile_ddl("CREATE MINING MODEL m (k LONG KEY, "
                        "a TEXT CONTINUOUS) USING z")

    def test_discretized_requires_numeric_type(self):
        with pytest.raises(SchemaError):
            compile_ddl("CREATE MINING MODEL m (k LONG KEY, "
                        "a TEXT DISCRETIZED) USING z")

    def test_double_nesting_rejected(self):
        with pytest.raises(SchemaError):
            compile_ddl("CREATE MINING MODEL m (k LONG KEY, "
                        "n TABLE(nk TEXT KEY, "
                        "inner_t TABLE(ik TEXT KEY))) USING z")
