"""PREDICTION JOIN execution and the prediction UDF surface."""

import pytest

import repro
from repro.errors import BindError, PredictionError
from repro.sqlstore.rowset import Rowset

DDL = """
CREATE MINING MODEL [AgeM] (
    [Id] LONG KEY,
    [Gender] TEXT DISCRETE,
    [City] TEXT DISCRETE,
    [Age] DOUBLE DISCRETIZED(EQUAL_RANGE, 3) PREDICT
) USING Repro_Decision_Trees(MINIMUM_SUPPORT = 2)
"""


@pytest.fixture
def trained(conn):
    conn.execute("CREATE TABLE T (Id LONG, Gender TEXT, City TEXT, "
                 "Age DOUBLE)")
    rows = []
    for i in range(1, 61):
        gender = "Male" if i % 2 else "Female"
        city = "Metropolis" if i % 3 else "Smallville"
        age = 25.0 if gender == "Male" else 55.0
        rows.append(f"({i}, '{gender}', '{city}', {age})")
    conn.execute("INSERT INTO T VALUES " + ", ".join(rows))
    conn.execute(DDL)
    conn.execute("INSERT INTO [AgeM] SELECT Id, Gender, City, Age FROM T")
    return conn


class TestJoinForms:
    def test_natural_prediction_join(self, trained):
        rowset = trained.execute(
            "SELECT t.Id, [AgeM].[Age] FROM [AgeM] NATURAL PREDICTION "
            "JOIN (SELECT Id, Gender FROM T WHERE Id <= 2) AS t")
        assert len(rowset) == 2
        assert rowset.rows[0][1] is not None

    def test_on_clause_prediction_join(self, trained):
        rowset = trained.execute(
            "SELECT t.Id, [AgeM].[Age] FROM [AgeM] PREDICTION JOIN "
            "(SELECT Id, Gender AS Sex FROM T WHERE Id <= 2) AS t "
            "ON [AgeM].Gender = t.Sex")
        assert len(rowset) == 2

    def test_predictions_differ_by_evidence(self, trained):
        rowset = trained.execute(
            "SELECT t.Gender, [AgeM].[Age] FROM [AgeM] NATURAL "
            "PREDICTION JOIN (SELECT DISTINCT Gender FROM T) AS t "
            "ORDER BY t.Gender")
        buckets = dict(rowset.rows)
        assert buckets["Male"] != buckets["Female"]

    def test_table_source(self, trained):
        rowset = trained.execute(
            "SELECT [AgeM].[Age] FROM [AgeM] NATURAL PREDICTION JOIN "
            "T AS t")
        assert len(rowset) == 60

    def test_bare_output_column_resolves_to_model(self, trained):
        rowset = trained.execute(
            "SELECT Age FROM [AgeM] NATURAL PREDICTION JOIN "
            "(SELECT Gender FROM T WHERE Id = 1) AS t")
        assert rowset.rows[0][0] is not None

    def test_star_expansion(self, trained):
        rowset = trained.execute(
            "SELECT * FROM [AgeM] NATURAL PREDICTION JOIN "
            "(SELECT Id, Gender FROM T WHERE Id = 1) AS t")
        assert rowset.column_names() == ["Id", "Gender", "Age"]

    def test_where_on_prediction(self, trained):
        rowset = trained.execute(
            "SELECT t.Id FROM [AgeM] NATURAL PREDICTION JOIN "
            "(SELECT Id, Gender FROM T) AS t "
            "WHERE PredictProbability([Age]) > 0.9")
        assert len(rowset) == 60  # deterministic signal: all confident

    def test_order_and_top(self, trained):
        rowset = trained.execute(
            "SELECT TOP 3 t.Id FROM [AgeM] NATURAL PREDICTION JOIN "
            "(SELECT Id, Gender FROM T) AS t ORDER BY t.Id DESC")
        assert rowset.column_values("Id") == [60, 59, 58]

    def test_unknown_model_column_in_select(self, trained):
        with pytest.raises(BindError):
            trained.execute(
                "SELECT [AgeM].[Ghost] FROM [AgeM] NATURAL PREDICTION "
                "JOIN (SELECT Gender FROM T) AS t")

    def test_mixed_on_equality_rejected(self, trained):
        with pytest.raises(PredictionError):
            trained.execute(
                "SELECT t.Id FROM [AgeM] PREDICTION JOIN "
                "(SELECT Id, Gender FROM T) AS t ON t.Id = t.Id")


class TestUdfs:
    def test_predict_matches_direct_reference(self, trained):
        rowset = trained.execute(
            "SELECT [AgeM].[Age], Predict([Age]) FROM [AgeM] NATURAL "
            "PREDICTION JOIN (SELECT Gender FROM T WHERE Id = 1) AS t")
        assert rowset.rows[0][0] == rowset.rows[0][1]

    def test_probability_support_consistency(self, trained):
        rowset = trained.execute(
            "SELECT PredictProbability([Age]) AS p, "
            "PredictSupport([Age]) AS s FROM [AgeM] NATURAL PREDICTION "
            "JOIN (SELECT Gender FROM T WHERE Id = 1) AS t")
        p, s = rowset.rows[0]
        assert 0.0 <= p <= 1.0
        assert s > 0

    def test_probability_of_specific_value(self, trained):
        rowset = trained.execute(
            "SELECT PredictHistogram([Age]) AS h FROM [AgeM] NATURAL "
            "PREDICTION JOIN (SELECT Gender FROM T WHERE Id = 1) AS t")
        histogram = rowset.rows[0][0]
        value, _, probability = histogram.rows[0][:3]
        specific = trained.execute(
            f"SELECT PredictProbability([Age], '{value}') FROM [AgeM] "
            f"NATURAL PREDICTION JOIN (SELECT Gender FROM T WHERE Id = 1) "
            f"AS t")
        assert specific.single_value() == pytest.approx(probability)

    def test_histogram_probabilities_sum_to_one(self, trained):
        rowset = trained.execute(
            "SELECT PredictHistogram([Age]) FROM [AgeM] NATURAL "
            "PREDICTION JOIN (SELECT Gender FROM T WHERE Id = 1) AS t")
        histogram = rowset.rows[0][0]
        assert isinstance(histogram, Rowset)
        total = sum(row[histogram.index_of("$PROBABILITY")]
                    for row in histogram.rows)
        assert total == pytest.approx(1.0)

    def test_topcount_limits_histogram(self, trained):
        rowset = trained.execute(
            "SELECT TopCount(PredictHistogram([Age]), [$PROBABILITY], 1) "
            "FROM [AgeM] NATURAL PREDICTION JOIN "
            "(SELECT Gender FROM T WHERE Id = 1) AS t")
        assert len(rowset.rows[0][0]) == 1

    def test_topsum_and_toppercent(self, trained):
        full = trained.execute(
            "SELECT PredictHistogram([Age]) FROM [AgeM] NATURAL "
            "PREDICTION JOIN (SELECT Gender FROM T WHERE Id = 1) AS t"
        ).rows[0][0]
        top_sum = trained.execute(
            "SELECT TopSum(PredictHistogram([Age]), [$PROBABILITY], 0.99) "
            "FROM [AgeM] NATURAL PREDICTION JOIN "
            "(SELECT Gender FROM T WHERE Id = 1) AS t").rows[0][0]
        assert 1 <= len(top_sum) <= len(full)
        top_percent = trained.execute(
            "SELECT TopPercent(PredictHistogram([Age]), [$PROBABILITY], "
            "50) FROM [AgeM] NATURAL PREDICTION JOIN "
            "(SELECT Gender FROM T WHERE Id = 1) AS t").rows[0][0]
        assert len(top_percent) >= 1

    def test_range_functions_bracket_the_bucket(self, trained):
        rowset = trained.execute(
            "SELECT RangeMin([Age]) AS lo, RangeMid([Age]) AS mid, "
            "RangeMax([Age]) AS hi FROM [AgeM] NATURAL PREDICTION JOIN "
            "(SELECT Gender FROM T WHERE Id = 1) AS t")
        lo, mid, hi = rowset.rows[0]
        assert lo <= mid <= hi
        assert mid == pytest.approx((lo + hi) / 2)

    def test_range_requires_discretized(self, conn):
        conn.execute("CREATE TABLE T2 (Id LONG, G TEXT, Y DOUBLE)")
        conn.execute("INSERT INTO T2 VALUES (1,'a',1.0),(2,'b',2.0),"
                     "(3,'a',1.5),(4,'b',2.5)")
        conn.execute("CREATE MINING MODEL C (Id LONG KEY, G TEXT "
                     "DISCRETE, Y DOUBLE CONTINUOUS PREDICT) USING "
                     "Repro_Decision_Trees(MINIMUM_SUPPORT=1)")
        conn.execute("INSERT INTO C SELECT Id, G, Y FROM T2")
        with pytest.raises(PredictionError):
            conn.execute("SELECT RangeMid([Y]) FROM C NATURAL PREDICTION "
                         "JOIN (SELECT G FROM T2) AS t")

    def test_cluster_udf_on_non_clustering_model(self, trained):
        with pytest.raises(PredictionError):
            trained.execute(
                "SELECT Cluster() FROM [AgeM] NATURAL PREDICTION JOIN "
                "(SELECT Gender FROM T WHERE Id = 1) AS t")

    def test_scalar_functions_still_work(self, trained):
        rowset = trained.execute(
            "SELECT UPPER(t.Gender) FROM [AgeM] NATURAL PREDICTION JOIN "
            "(SELECT Gender FROM T WHERE Id = 1) AS t")
        assert rowset.single_value() == "MALE"

    def test_continuous_prediction_variance(self, conn):
        conn.execute("CREATE TABLE T3 (Id LONG, G TEXT, Y DOUBLE)")
        rows = ", ".join(f"({i}, '{'a' if i % 2 else 'b'}', "
                         f"{10.0 if i % 2 else 20.0})"
                         for i in range(1, 21))
        conn.execute(f"INSERT INTO T3 VALUES {rows}")
        conn.execute("CREATE MINING MODEL R (Id LONG KEY, G TEXT "
                     "DISCRETE, Y DOUBLE CONTINUOUS PREDICT) USING "
                     "Repro_Decision_Trees(MINIMUM_SUPPORT=2)")
        conn.execute("INSERT INTO R SELECT Id, G, Y FROM T3")
        rowset = conn.execute(
            "SELECT [R].[Y], PredictVariance([Y]), PredictStdev([Y]) "
            "FROM R NATURAL PREDICTION JOIN (SELECT 'a' AS G) AS t")
        y, variance, stdev = rowset.rows[0]
        assert y == pytest.approx(10.0)
        assert variance == pytest.approx(0.0, abs=1e-9)
        assert stdev == pytest.approx(0.0, abs=1e-9)


class TestFlattened:
    def test_flattened_prediction(self, trained):
        rowset = trained.execute(
            "SELECT FLATTENED t.Id, PredictHistogram([Age]) AS h "
            "FROM [AgeM] NATURAL PREDICTION JOIN "
            "(SELECT Id, Gender FROM T WHERE Id = 1) AS t")
        assert "h.Age" in rowset.column_names()
        assert len(rowset) >= 1
        assert not any(isinstance(v, Rowset) for v in rowset.rows[0])
