"""Provider-level behaviours not covered elsewhere: scripts, facets,
connection semantics, dispatch corners."""

import pytest

import repro
from repro.errors import BindError, Error, NotTrainedError
from repro.sqlstore.rowset import Rowset


class TestConnection:
    def test_context_manager_closes(self):
        with repro.connect() as conn:
            conn.execute("SELECT 1")
        with pytest.raises(Error):
            conn.execute("SELECT 1")

    def test_execute_script_returns_each_result(self, conn):
        results = conn.execute_script("""
            CREATE TABLE T (a LONG);
            INSERT INTO T VALUES (1), (2);
            SELECT COUNT(*) AS n FROM T;
        """)
        assert results[0] == 0
        assert results[1] == 2
        assert results[2].single_value() == 2

    def test_models_listing_sorted(self, conn):
        conn.execute("CREATE MINING MODEL Zeta (k LONG KEY, a TEXT "
                     "DISCRETE) USING Repro_Decision_Trees")
        conn.execute("CREATE MINING MODEL Alpha (k LONG KEY, a TEXT "
                     "DISCRETE) USING Repro_Decision_Trees")
        assert [m.name for m in conn.models()] == ["Alpha", "Zeta"]


class TestModelFacets:
    @pytest.fixture
    def trained(self, conn):
        conn.execute("CREATE TABLE T (Id LONG, G TEXT, L TEXT)")
        conn.execute("INSERT INTO T VALUES (1,'a','x'), (2,'b','y'), "
                     "(3,'a','x'), (4,'b','y')")
        conn.execute("CREATE MINING MODEL M (Id LONG KEY, G TEXT "
                     "DISCRETE, L TEXT DISCRETE PREDICT) "
                     "USING Repro_Decision_Trees(MINIMUM_SUPPORT=1)")
        conn.execute("INSERT INTO M SELECT Id, G, L FROM T")
        return conn

    def test_cases_facet_drillthrough(self, trained):
        rowset = trained.execute("SELECT * FROM M.CASES")
        assert len(rowset) == 4
        assert "G" in rowset.column_names()

    def test_cases_requires_training(self, conn):
        conn.execute("CREATE MINING MODEL M (Id LONG KEY, G TEXT "
                     "DISCRETE) USING Repro_Decision_Trees")
        with pytest.raises(NotTrainedError):
            conn.execute("SELECT * FROM M.CASES")

    def test_pmml_facet(self, trained):
        rowset = trained.execute(
            "SELECT MODEL_NAME, PMML FROM M.PMML")
        assert rowset.rows[0][0] == "M"
        assert "<PMML" in rowset.rows[0][1]

    def test_content_facet_with_alias(self, trained):
        rowset = trained.execute(
            "SELECT c.NODE_CAPTION FROM M.CONTENT AS c "
            "WHERE c.NODE_UNIQUE_NAME = '0'")
        assert rowset.single_value() == "M"

    def test_content_joins_with_sql(self, trained):
        # The content rowset is a first-class FROM source: join it.
        rowset = trained.execute("""
            SELECT a.NODE_CAPTION, b.NODE_CAPTION
            FROM M.CONTENT a JOIN M.CONTENT b
            ON a.NODE_UNIQUE_NAME = b.PARENT_UNIQUE_NAME
        """)
        assert len(rowset) >= 1


class TestDispatchCorners:
    def test_drop_table_statement_removes_model(self, conn):
        # "model as table": DROP TABLE on a model name drops the model.
        conn.execute("CREATE MINING MODEL M (k LONG KEY, a TEXT "
                     "DISCRETE) USING Repro_Decision_Trees")
        conn.execute("DROP TABLE M")
        assert not conn.provider.has_model("M")

    def test_flattened_plain_select(self, conn):
        conn.execute("CREATE TABLE C (Id LONG)")
        conn.execute("CREATE TABLE S (Cid LONG, P TEXT)")
        conn.execute("INSERT INTO C VALUES (1), (2)")
        conn.execute("INSERT INTO S VALUES (1,'x'), (1,'y')")
        rowset = conn.execute("""
            SELECT FLATTENED * FROM (SHAPE {SELECT Id FROM C ORDER BY Id}
            APPEND ({SELECT Cid, P FROM S} RELATE Id TO Cid) AS N) AS t
        """)
        assert not any(isinstance(v, Rowset)
                       for row in rowset.rows for v in row)
        assert len(rowset) == 3  # 2 rows for customer 1, NULL row for 2

    def test_insert_select_into_model_via_generic_insert(self, conn):
        conn.execute("CREATE TABLE T (Id LONG, A TEXT)")
        conn.execute("INSERT INTO T VALUES (1, 'x'), (2, 'y')")
        conn.execute("CREATE MINING MODEL M (Id LONG KEY, A TEXT "
                     "DISCRETE) USING Repro_Decision_Trees")
        # No binding list at all: by-name mapping.
        count = conn.execute("INSERT INTO M SELECT Id, A FROM T")
        assert count == 2

    def test_shape_as_top_level_command(self, conn):
        conn.execute("CREATE TABLE C (Id LONG)")
        conn.execute("INSERT INTO C VALUES (1)")
        conn.execute("CREATE TABLE S (Cid LONG, P TEXT)")
        rowset = conn.execute(
            "SHAPE {SELECT Id FROM C} APPEND ({SELECT Cid, P FROM S} "
            "RELATE Id TO Cid) AS N")
        assert rowset.column_names() == ["Id", "N"]

    def test_unknown_model_errors_name_it(self, conn):
        with pytest.raises(BindError, match="Ghost"):
            conn.execute("SELECT * FROM Ghost.CONTENT")

    def test_prediction_join_requires_model_not_table(self, conn):
        conn.execute("CREATE TABLE T (a LONG)")
        with pytest.raises(BindError):
            conn.execute("SELECT 1 FROM T NATURAL PREDICTION JOIN "
                         "(SELECT 1 AS a) AS s")


class TestPredictionCorners:
    @pytest.fixture
    def nb(self, conn):
        conn.execute("CREATE TABLE T (Id LONG, G TEXT, L TEXT)")
        conn.execute("INSERT INTO T VALUES (1,'a','x'), (2,'b','y'), "
                     "(3,'a','x'), (4,'b','y')")
        conn.execute("CREATE MINING MODEL M (Id LONG KEY, G TEXT "
                     "DISCRETE, L TEXT DISCRETE PREDICT) "
                     "USING Repro_Naive_Bayes")
        conn.execute("INSERT INTO M SELECT Id, G, L FROM T")
        return conn

    def test_predict_on_input_column_falls_back_to_marginal(self, nb):
        rowset = nb.execute(
            "SELECT Predict([G]) FROM M NATURAL PREDICTION JOIN "
            "(SELECT 'x' AS L) AS t")
        assert rowset.single_value() in ("a", "b")

    def test_distinct_prediction_rows(self, nb):
        rowset = nb.execute(
            "SELECT DISTINCT [M].[L] FROM M NATURAL PREDICTION JOIN "
            "(SELECT G FROM T) AS t")
        assert len(rowset) == 2

    def test_prediction_filter_and_order_combo(self, nb):
        rowset = nb.execute(
            "SELECT t.Id FROM M NATURAL PREDICTION JOIN "
            "(SELECT Id, G FROM T) AS t "
            "WHERE [M].[L] = 'x' ORDER BY t.Id DESC")
        assert rowset.column_values("Id") == [3, 1]

    def test_expression_over_prediction(self, nb):
        rowset = nb.execute(
            "SELECT UPPER([M].[L]) || '!' FROM M NATURAL PREDICTION "
            "JOIN (SELECT 'a' AS G) AS t")
        assert rowset.single_value() == "X!"

    def test_case_expression_in_prediction(self, nb):
        rowset = nb.execute(
            "SELECT CASE WHEN PredictProbability([L]) > 0.5 "
            "THEN 'confident' ELSE 'unsure' END FROM M "
            "NATURAL PREDICTION JOIN (SELECT 'a' AS G) AS t")
        assert rowset.single_value() in ("confident", "unsure")
