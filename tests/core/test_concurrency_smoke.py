"""Concurrency smoke test: one provider, many threads, exact counters.

N worker threads hammer a single :class:`repro.core.provider.Provider`
concurrently with the full statement mix — INSERT, SELECT, CREATE MINING
MODEL, training INSERT, and NATURAL PREDICTION JOIN.  Afterwards the
provider's metrics registry (the backing store of
``$SYSTEM.DM_PROVIDER_METRICS``) must account for every statement and every
bound case exactly: counters are locked, span stacks are thread-local, so
nothing may be lost or double-counted under interleaving.
"""

import threading

import pytest

import repro

THREADS = 6
LOOPS = 5
ROWS_PER_INSERT = 4
SEED_ROWS = 10


@pytest.fixture()
def conn():
    connection = repro.connect(batch_size=3, caseset_cache_capacity=0)
    yield connection
    connection.close()


SETUP = [
    "CREATE TABLE People (pid INT, age INT, grade TEXT)",
    "CREATE TABLE Seed (pid INT, age INT, grade TEXT)",
    "INSERT INTO Seed VALUES " + ", ".join(
        f"({pid}, {20 + pid * 3}, '{'pass' if pid % 2 else 'fail'}')"
        for pid in range(1, SEED_ROWS + 1)),
]


def _worker(conn, index, errors):
    try:
        for loop in range(LOOPS):
            base = index * 10_000 + loop * 100
            values = ", ".join(
                f"({base + k}, {18 + (base + k) % 50}, 'g{index}')"
                for k in range(ROWS_PER_INSERT))
            conn.execute(f"INSERT INTO People VALUES {values}")
            conn.execute("SELECT COUNT(*) AS n FROM People")
        model = f"M{index}"
        conn.execute(
            f"CREATE MINING MODEL {model} (pid LONG KEY, "
            f"age LONG CONTINUOUS, grade TEXT DISCRETE PREDICT) "
            f"USING Microsoft_Decision_Trees")
        conn.execute(f"INSERT INTO {model} (pid, age, grade) "
                     f"SELECT pid, age, grade FROM Seed")
        predicted = conn.execute(
            f"SELECT t.pid, {model}.grade FROM {model} "
            f"NATURAL PREDICTION JOIN (SELECT pid, age FROM Seed) AS t")
        assert len(predicted) == SEED_ROWS
    except Exception as exc:  # pragma: no cover - failure path
        errors.append((index, exc))


def test_concurrent_statement_mix_counts_exactly(conn):
    for statement in SETUP:
        conn.execute(statement)
    errors = []
    threads = [
        threading.Thread(target=_worker, args=(conn, index, errors))
        for index in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []

    # Every row from every thread landed.
    count = conn.execute("SELECT COUNT(*) AS n FROM People")
    assert count.rows[0][0] == THREADS * LOOPS * ROWS_PER_INSERT

    metrics = conn.provider.metrics
    per_thread = 2 * LOOPS + 3  # inserts+selects, DDL, train, predict
    expected_total = len(SETUP) + THREADS * per_thread + 1  # +1 final SELECT
    assert metrics.value("statements.total") == expected_total
    assert metrics.value("statements.errors") == 0
    assert metrics.value("training.cases_total") == THREADS * SEED_ROWS
    assert metrics.value("activity.prediction_cases") == THREADS * SEED_ROWS
    # Each training pass binds the seed caseset once (cache disabled).
    assert metrics.value("activity.cases_bound") >= 2 * THREADS * SEED_ROWS

    # The same numbers through the SQL surface.
    rowset = conn.execute("SELECT METRIC, VALUE FROM "
                          "$SYSTEM.DM_PROVIDER_METRICS")
    values = {row[0]: row[1] for row in rowset.rows}
    assert values["training.cases_total"] == THREADS * SEED_ROWS
    # The errors counter is created lazily; absent means zero errors.
    assert values.get("statements.errors", 0) == 0


SHARED_DDL = ("CREATE MINING MODEL Shared (pid LONG KEY, "
              "color TEXT DISCRETE, grade TEXT DISCRETE PREDICT) "
              "USING Repro_Naive_Bayes")
SHARED_TRAIN = ("INSERT INTO Shared (pid, color, grade) "
                "SELECT pid, color, grade FROM Cat WITH MAXDOP 3")
SHARED_PREDICT = ("SELECT t.pid, Shared.grade FROM Shared "
                  "NATURAL PREDICTION JOIN (SELECT pid, color FROM Cat) AS t")


def test_same_model_name_stress_with_active_pool():
    """Threads create/train/predict/DROP one model name over a live pool.

    Every worker races the SAME model name, barrier-synchronized so each
    round's operations collide as hard as the scheduler allows, while the
    worker pool parallelizes eligible training and prediction underneath.
    Lifecycle races must surface as the package's own errors (model missing,
    not trained, already exists) — never deadlock, never a torn counter:
    ``statements.total`` must equal the number of attempts exactly, the
    pool's task ledger must balance, and the caseset cache must respect its
    invariants.
    """
    connection = repro.connect(max_workers=3, pool_mode="thread",
                               batch_size=3)
    try:
        connection.execute("CREATE TABLE Cat (pid INT, color TEXT, "
                           "grade TEXT)")
        connection.execute("INSERT INTO Cat VALUES " + ", ".join(
            f"({pid}, '{('red', 'green', 'blue')[pid % 3]}', "
            f"'{'pass' if pid % 2 else 'fail'}')"
            for pid in range(1, 13)))
        setup_statements = 2

        barrier = threading.Barrier(THREADS)
        ledger_lock = threading.Lock()
        attempts = [0]
        expected_errors = [0]
        unexpected = []

        def worker(index):
            for loop in range(LOOPS):
                try:
                    barrier.wait(timeout=60)
                except threading.BrokenBarrierError as exc:
                    unexpected.append((index, loop, exc))
                    return
                op = (index + loop) % 4
                if op == 0:
                    statements = [SHARED_DDL, SHARED_TRAIN]
                elif op == 3:
                    statements = ["DROP MINING MODEL Shared"]
                else:
                    statements = [SHARED_PREDICT]
                for statement in statements:
                    try:
                        with ledger_lock:
                            attempts[0] += 1
                        connection.execute(statement)
                    except repro.Error:
                        # Lifecycle race lost: model already exists, was
                        # dropped mid-flight, or is not trained yet.
                        with ledger_lock:
                            expected_errors[0] += 1
                    except Exception as exc:
                        unexpected.append((index, loop, exc))
                        return

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        hung = [thread for thread in threads if thread.is_alive()]
        assert not hung, f"deadlock: {len(hung)} worker(s) never finished"
        assert unexpected == []

        metrics = connection.provider.metrics

        # No torn statement counts: every attempt was traced exactly once,
        # and every lifecycle race surfaced as a counted error.
        assert metrics.value("statements.total") == \
            setup_statements + attempts[0]
        assert metrics.value("statements.errors") == expected_errors[0]

        # The pool's task ledger balances: nothing lost, nothing leaked.
        submitted = metrics.value("pool.tasks_submitted")
        accounted = (metrics.value("pool.tasks_completed")
                     + metrics.value("pool.tasks_cancelled")
                     + metrics.value("pool.tasks_abandoned"))
        assert submitted == accounted

        # Caseset cache invariants hold under interleaving.
        cache = connection.provider.caseset_cache
        assert len(cache) <= cache.capacity
        stats = cache.stats()
        assert stats["evictions"] <= stats["misses"]

        # The provider is still fully functional after the melee.
        try:
            connection.execute("DROP MINING MODEL Shared")
        except repro.Error:
            pass  # a worker's DROP already won the last round
        connection.execute(SHARED_DDL)
        connection.execute(SHARED_TRAIN)
        after = connection.execute(SHARED_PREDICT)
        assert len(after) == 12
    finally:
        connection.close()


def test_concurrent_reads_of_one_stream_source(conn):
    """Parallel SELECTs over the same tables return consistent results."""
    for statement in SETUP:
        conn.execute(statement)
    results = [None] * THREADS

    def reader(index):
        rowset = conn.execute(
            "SELECT pid, age FROM Seed ORDER BY pid")
        results[index] = [tuple(row) for row in rowset.rows]

    threads = [threading.Thread(target=reader, args=(i,))
               for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(result == results[0] for result in results)
    assert len(results[0]) == SEED_ROWS
