"""Content graph browsing and the $SYSTEM schema rowsets."""

import pytest

import repro
from repro.core.content import (
    NODE_MODEL,
    NODE_TREE,
    ContentNode,
    DistributionRow,
)


class TestContentNode:
    def test_walk_preorder(self):
        root = ContentNode("0", NODE_MODEL, "root")
        a = root.add_child(ContentNode("0.0", NODE_TREE, "a"))
        a.add_child(ContentNode("0.0.0", NODE_TREE, "aa"))
        root.add_child(ContentNode("0.1", NODE_TREE, "b"))
        assert [n.node_id for n in root.walk()] == \
            ["0", "0.0", "0.0.0", "0.1"]

    def test_parent_ids(self):
        root = ContentNode("0", NODE_MODEL, "root")
        child = root.add_child(ContentNode("0.0", NODE_TREE, "a"))
        assert root.parent_id == ""
        assert child.parent_id == "0"

    def test_find_and_leaf_count(self):
        root = ContentNode("0", NODE_MODEL, "root")
        a = root.add_child(ContentNode("0.0", NODE_TREE, "a"))
        a.add_child(ContentNode("0.0.0", NODE_TREE, "aa"))
        root.add_child(ContentNode("0.1", NODE_TREE, "b"))
        assert root.find("0.0.0").caption == "aa"
        assert root.find("zzz") is None
        assert root.leaf_count() == 2

    def test_xml_escapes(self):
        node = ContentNode("0", NODE_MODEL, 'a"b<c>', support=5.0,
                           probability=0.5)
        node.distribution.append(DistributionRow("attr", "x&y", 1.0, 1.0))
        xml = node.to_xml()
        assert "&quot;" in xml and "&lt;c&gt;" in xml and "x&amp;y" in xml


class TestContentQuery:
    def test_content_columns(self, age_model):
        rowset = age_model.execute(
            "SELECT * FROM [Age Prediction].CONTENT")
        names = rowset.column_names()
        for expected in ("MODEL_NAME", "NODE_UNIQUE_NAME", "NODE_TYPE",
                         "NODE_CAPTION", "PARENT_UNIQUE_NAME",
                         "NODE_SUPPORT", "NODE_PROBABILITY", "NODE_RULE",
                         "NODE_DISTRIBUTION", "CHILDREN_CARDINALITY"):
            assert expected in names
        assert len(rowset) >= 2  # model node + at least one tree

    def test_root_is_model_node(self, age_model):
        rowset = age_model.execute(
            "SELECT NODE_TYPE_NAME FROM [Age Prediction].CONTENT "
            "WHERE NODE_UNIQUE_NAME = '0'")
        assert rowset.single_value() == "Model"

    def test_parent_child_ids_consistent(self, age_model):
        rowset = age_model.execute(
            "SELECT NODE_UNIQUE_NAME, PARENT_UNIQUE_NAME "
            "FROM [Age Prediction].CONTENT")
        ids = {row[0] for row in rowset.rows}
        for node_id, parent_id in rowset.rows:
            if parent_id:
                assert parent_id in ids

    def test_distribution_nested_rowset(self, age_model):
        rowset = age_model.execute(
            "SELECT NODE_DISTRIBUTION FROM [Age Prediction].CONTENT "
            "WHERE NODE_UNIQUE_NAME = '0.0'")
        nested = rowset.rows[0][0]
        assert nested.column_names() == [
            "ATTRIBUTE_NAME", "ATTRIBUTE_VALUE", "SUPPORT", "PROBABILITY",
            "VARIANCE"]

    def test_node_rule_is_xml(self, age_model):
        rowset = age_model.execute(
            "SELECT NODE_RULE FROM [Age Prediction].CONTENT "
            "WHERE NODE_UNIQUE_NAME = '0'")
        assert rowset.single_value().startswith("<Node ")

    def test_content_filter_with_sql(self, age_model):
        rowset = age_model.execute(
            "SELECT COUNT(*) FROM [Age Prediction].CONTENT "
            "WHERE NODE_TYPE_NAME = 'Model'")
        assert rowset.single_value() == 1


class TestSystemRowsets:
    def test_mining_models(self, age_model):
        rowset = age_model.execute("SELECT * FROM $SYSTEM.MINING_MODELS")
        assert rowset.rows[0][rowset.index_of("MODEL_NAME")] == \
            "Age Prediction"
        assert rowset.rows[0][rowset.index_of("IS_POPULATED")] is True

    def test_mining_columns_include_nested(self, age_model):
        rowset = age_model.execute(
            "SELECT COLUMN_NAME, NESTED_TABLE FROM $SYSTEM.MINING_COLUMNS "
            "WHERE MODEL_NAME = 'Age Prediction'")
        by_name = {row[0]: row[1] for row in rowset.rows}
        assert by_name["Quantity"] == "Product Purchases"
        assert by_name["Gender"] is None

    def test_mining_services_lists_builtins(self, conn):
        rowset = conn.execute("SELECT SERVICE_NAME FROM "
                              "$SYSTEM.MINING_SERVICES")
        names = set(rowset.column_values("SERVICE_NAME"))
        assert {"Repro_Decision_Trees", "Repro_Naive_Bayes",
                "Repro_Clustering", "Repro_KMeans",
                "Repro_Association_Rules", "Repro_Linear_Regression",
                "Repro_Sequence_Clustering"} <= names

    def test_service_parameters(self, conn):
        rowset = conn.execute(
            "SELECT PARAMETER_NAME FROM $SYSTEM.SERVICE_PARAMETERS "
            "WHERE SERVICE_NAME = 'Repro_Decision_Trees'")
        assert "MINIMUM_SUPPORT" in rowset.column_values("PARAMETER_NAME")

    def test_mining_functions(self, conn):
        rowset = conn.execute("SELECT FUNCTION_NAME FROM "
                              "$SYSTEM.MINING_FUNCTIONS")
        names = rowset.column_values("FUNCTION_NAME")
        assert "PREDICTHISTOGRAM" in names and "TOPCOUNT" in names

    def test_mining_model_content_all_models(self, age_model):
        rowset = age_model.execute(
            "SELECT DISTINCT MODEL_NAME FROM "
            "$SYSTEM.MINING_MODEL_CONTENT")
        assert rowset.column_values("MODEL_NAME") == ["Age Prediction"]

    def test_unknown_system_rowset(self, conn):
        from repro.errors import BindError
        with pytest.raises(BindError):
            conn.execute("SELECT * FROM $SYSTEM.NOPE")

    def test_empty_catalog_rowsets(self, conn):
        assert len(conn.execute(
            "SELECT * FROM $SYSTEM.MINING_MODELS")) == 0
        assert len(conn.execute(
            "SELECT * FROM $SYSTEM.MINING_MODEL_CONTENT")) == 0
