"""MiningModel life cycle: train, refresh, reset, drop (paper section 2)."""

import pytest

import repro
from repro.errors import (
    BindError,
    CatalogError,
    Error,
    NotTrainedError,
    TrainError,
)

DDL = """
CREATE MINING MODEL [M] (
    [Id] LONG KEY,
    [Gender] TEXT DISCRETE,
    [Age] DOUBLE CONTINUOUS PREDICT
) USING Repro_Decision_Trees(MINIMUM_SUPPORT = 2)
"""


@pytest.fixture
def conn_with_data(conn):
    conn.execute("CREATE TABLE T (Id LONG, Gender TEXT, Age DOUBLE)")
    rows = ", ".join(
        f"({i}, '{'Male' if i % 2 else 'Female'}', {20 + (i % 5) * 10}.0)"
        for i in range(1, 41))
    conn.execute(f"INSERT INTO T VALUES {rows}")
    return conn


class TestCreate:
    def test_create_registers_model(self, conn_with_data):
        conn_with_data.execute(DDL)
        model = conn_with_data.model("M")
        assert not model.is_trained
        assert model.algorithm.SERVICE_NAME == "Repro_Decision_Trees"

    def test_duplicate_create_rejected(self, conn_with_data):
        conn_with_data.execute(DDL)
        with pytest.raises(CatalogError):
            conn_with_data.execute(DDL)

    def test_model_name_clash_with_table(self, conn_with_data):
        with pytest.raises(CatalogError):
            conn_with_data.execute(DDL.replace("[M]", "[T]"))

    def test_unknown_algorithm(self, conn_with_data):
        with pytest.raises(BindError):
            conn_with_data.execute(
                "CREATE MINING MODEL X (k LONG KEY, a TEXT DISCRETE) "
                "USING No_Such_Service")

    def test_unknown_parameter_rejected_at_create(self, conn_with_data):
        from repro.errors import SchemaError
        with pytest.raises(SchemaError):
            conn_with_data.execute(
                "CREATE MINING MODEL X (k LONG KEY, a TEXT DISCRETE) "
                "USING Repro_Decision_Trees(BOGUS_KNOB = 1)")


class TestTrain:
    def test_insert_select_by_name(self, conn_with_data):
        conn_with_data.execute(DDL)
        count = conn_with_data.execute(
            "INSERT INTO [M] SELECT Id, Gender, Age FROM T")
        assert count == 40
        assert conn_with_data.model("M").is_trained

    def test_insert_with_explicit_bindings(self, conn_with_data):
        conn_with_data.execute(DDL)
        conn_with_data.execute(
            "INSERT INTO [M] ([Id], [Gender], [Age]) "
            "SELECT Id, Gender, Age FROM T")
        assert conn_with_data.model("M").case_count == 40

    def test_insert_values_into_model_rejected(self, conn_with_data):
        conn_with_data.execute(DDL)
        with pytest.raises(Error):
            conn_with_data.execute("INSERT INTO [M] (Id) VALUES (1)")

    def test_empty_source_rejected(self, conn_with_data):
        conn_with_data.execute(DDL)
        with pytest.raises(TrainError):
            conn_with_data.execute(
                "INSERT INTO [M] SELECT Id, Gender, Age FROM T "
                "WHERE Id > 999")

    def test_refresh_accumulates(self, conn_with_data):
        conn_with_data.execute(DDL)
        conn_with_data.execute(
            "INSERT INTO [M] SELECT Id, Gender, Age FROM T WHERE Id <= 20")
        conn_with_data.execute(
            "INSERT INTO [M] SELECT Id, Gender, Age FROM T WHERE Id > 20")
        model = conn_with_data.model("M")
        assert model.case_count == 40
        assert model.insert_count == 2


class TestResetAndDrop:
    def test_delete_from_resets(self, conn_with_data):
        conn_with_data.execute(DDL)
        conn_with_data.execute("INSERT INTO [M] SELECT Id, Gender, Age "
                               "FROM T")
        conn_with_data.execute("DELETE FROM MINING MODEL [M]")
        model = conn_with_data.model("M")
        assert not model.is_trained
        assert model.case_count == 0
        # definition survives: retraining works
        conn_with_data.execute("INSERT INTO [M] SELECT Id, Gender, Age "
                               "FROM T")
        assert model.is_trained

    def test_plain_delete_from_also_resets(self, conn_with_data):
        conn_with_data.execute(DDL)
        conn_with_data.execute("INSERT INTO [M] SELECT Id, Gender, Age "
                               "FROM T")
        conn_with_data.execute("DELETE FROM [M]")
        assert not conn_with_data.model("M").is_trained

    def test_delete_from_model_with_where_rejected(self, conn_with_data):
        conn_with_data.execute(DDL)
        with pytest.raises(Error):
            conn_with_data.execute("DELETE FROM [M] WHERE 1 = 1")

    def test_drop(self, conn_with_data):
        conn_with_data.execute(DDL)
        conn_with_data.execute("DROP MINING MODEL [M]")
        with pytest.raises(BindError):
            conn_with_data.model("M")

    def test_drop_missing(self, conn_with_data):
        with pytest.raises(CatalogError):
            conn_with_data.execute("DROP MINING MODEL ghost")
        conn_with_data.execute("DROP MINING MODEL IF EXISTS ghost")

    def test_predict_before_training(self, conn_with_data):
        conn_with_data.execute(DDL)
        with pytest.raises(NotTrainedError):
            conn_with_data.execute(
                "SELECT [M].[Age] FROM [M] NATURAL PREDICTION JOIN "
                "(SELECT Gender FROM T) AS t")

    def test_content_before_training(self, conn_with_data):
        conn_with_data.execute(DDL)
        with pytest.raises(NotTrainedError):
            conn_with_data.execute("SELECT * FROM [M].CONTENT")

    def test_select_from_model_directly_is_guided(self, conn_with_data):
        conn_with_data.execute(DDL)
        with pytest.raises(Error, match="CONTENT"):
            conn_with_data.execute("SELECT * FROM [M]")
