"""Paged-storage invariants over random data: codec, store oracle, index."""

import tempfile
from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlstore.indexes import TableIndex
from repro.sqlstore.pages import decode_page, decode_row, encode_page, \
    encode_row
from repro.sqlstore.storage import ListRowStore, StorageManager
from repro.sqlstore.values import group_key

scalar_strategy = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False),
    st.text(max_size=24),          # hypothesis text is unicode-rich
    st.dates(),
    st.datetimes(),
)

row_strategy = st.tuples(st.integers(min_value=0, max_value=50),
                         scalar_strategy, scalar_strategy)


# -- codec ---------------------------------------------------------------------

@given(st.lists(scalar_strategy, max_size=8))
@settings(max_examples=120, deadline=None)
def test_row_codec_round_trips(cells):
    assert decode_row(encode_row(tuple(cells))) == tuple(cells)


@given(st.lists(row_strategy, max_size=20),
       st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_page_codec_round_trips(rows, page_id):
    page = decode_page(encode_page(page_id, rows), expect_page_id=page_id)
    assert page.rows == rows and page.page_id == page_id


# -- paged store vs the in-memory reference ------------------------------------

operation_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("append"), row_strategy),
        st.tuples(st.just("replace"),
                  st.lists(row_strategy, max_size=25)),
    ),
    min_size=1, max_size=25)


@given(operation_strategy,
       st.integers(min_value=1, max_value=9),    # batch size
       st.integers(min_value=1, max_value=3),    # buffer pages
       st.integers(min_value=64, max_value=512))  # page bytes
@settings(max_examples=50, deadline=None)
def test_paged_store_matches_list_store(operations, batch_size,
                                        buffer_pages, page_bytes):
    """Any append/replace sequence read back through any scan surface must
    agree with the plain-list oracle, whatever the page/pool geometry."""
    oracle = ListRowStore()
    with tempfile.TemporaryDirectory() as root:
        manager = StorageManager(root, buffer_pages=buffer_pages,
                                 page_bytes=page_bytes)
        store = manager.make_store(SimpleNamespace(name="T"))
        for kind, payload in operations:
            if kind == "append":
                oracle.append(payload)
                store.append(payload)
            else:
                oracle.replace_all(payload)
                store.replace_all(payload)
        assert store.snapshot() == oracle.snapshot()
        assert len(store) == len(oracle)
        assert [batch for batch in store.iter_batches(batch_size)] == \
            [batch for batch in oracle.iter_batches(batch_size)]
        if len(oracle):
            positions = list(range(0, len(oracle), 2))
            assert store.fetch_rows(positions) == \
                oracle.fetch_rows(positions)
            assert store.row_at(len(oracle) - 1) == \
                oracle.row_at(len(oracle) - 1)
        assert len(manager.pool) <= buffer_pages


# -- index vs brute force ------------------------------------------------------

keys_strategy = st.lists(st.one_of(st.none(),
                                   st.integers(min_value=-30, max_value=30)),
                         max_size=40)


@given(keys_strategy, st.integers(min_value=-30, max_value=30))
@settings(max_examples=80, deadline=None)
def test_long_index_point_lookup_matches_brute_force(keys, probe):
    index = TableIndex("IX", "k", 0, "LONG")
    for position, key in enumerate(keys):
        index.note_insert((key,), position)
    expected = [i for i, key in enumerate(keys)
                if group_key(key) == group_key(probe)]
    assert index.positions_equal(probe) == expected


@given(keys_strategy,
       st.integers(min_value=-30, max_value=30),
       st.integers(min_value=-30, max_value=30))
@settings(max_examples=80, deadline=None)
def test_long_index_range_matches_brute_force(keys, a, b):
    low, high = min(a, b), max(a, b)
    index = TableIndex("IX", "k", 0, "LONG")
    for position, key in enumerate(keys):
        index.note_insert((key,), position)
    expected = [i for i, key in enumerate(keys)
                if key is not None and low <= key <= high]
    assert index.positions_range(low, high) == expected


@given(st.lists(st.one_of(st.none(), st.text(max_size=6)), max_size=30),
       st.text(max_size=6), st.text(max_size=6))
@settings(max_examples=60, deadline=None)
def test_text_index_range_matches_brute_force(keys, a, b):
    low, high = min(a, b), max(a, b)
    index = TableIndex("IX", "k", 0, "TEXT")
    for position, key in enumerate(keys):
        index.note_insert((key,), position)
    expected = [i for i, key in enumerate(keys)
                if key is not None and low <= key <= high]
    assert index.positions_range(low, high) == expected


@given(keys_strategy)
@settings(max_examples=60, deadline=None)
def test_rebuild_equals_incremental_maintenance(keys):
    incremental = TableIndex("IX", "k", 0, "LONG")
    for position, key in enumerate(keys):
        incremental.note_insert((key,), position)
    rebuilt = TableIndex("IX", "k", 0, "LONG")
    rebuilt.rebuild([(key,) for key in keys])
    assert rebuilt.hash == incremental.hash
    assert rebuilt.entries == incremental.entries
    assert rebuilt.positions_range(-30, 30) == \
        incremental.positions_range(-30, 30)
