"""Invariants of the validation tooling over random inputs."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    classification_report,
    holdout_split,
    lift_chart,
    regression_report,
)

pairs_strategy = st.lists(
    st.tuples(st.sampled_from("abc"), st.sampled_from("abc")),
    min_size=1, max_size=200)


@given(pairs_strategy)
@settings(max_examples=100, deadline=None)
def test_confusion_matrix_partitions_cases(pairs):
    report = classification_report(pairs)
    assert sum(report.confusion.values()) == len(pairs)
    assert sum(report.support(value) for value in report.classes) == \
        len(pairs)
    assert 0.0 <= report.accuracy <= 1.0
    assert report.accuracy <= 1.0


@given(pairs_strategy)
@settings(max_examples=100, deadline=None)
def test_accuracy_bounded_by_recall_extremes(pairs):
    report = classification_report(pairs)
    recalls = [report.recall(value) for value in report.classes
               if report.recall(value) is not None]
    if recalls:
        assert min(recalls) - 1e-9 <= report.accuracy <= \
            max(recalls) + 1e-9


@given(pairs_strategy)
@settings(max_examples=100, deadline=None)
def test_perfect_predictions_have_accuracy_one(pairs):
    perfect = [(actual, actual) for actual, _ in pairs]
    assert classification_report(perfect).accuracy == 1.0


@given(st.lists(st.floats(min_value=-100, max_value=100,
                          allow_nan=False), min_size=2, max_size=100))
@settings(max_examples=100, deadline=None)
def test_regression_on_self_is_perfect(values):
    report = regression_report([(v, v) for v in values])
    assert report.mean_absolute_error == 0.0
    assert report.root_mean_squared_error == 0.0


@given(st.lists(st.tuples(st.booleans(),
                          st.floats(min_value=0, max_value=1,
                                    allow_nan=False)),
                min_size=5, max_size=300),
       st.integers(min_value=1, max_value=20))
@settings(max_examples=100, deadline=None)
def test_lift_curve_is_monotone_and_ends_at_one(scored, buckets):
    assume(any(hit for hit, _ in scored))
    chart = lift_chart(scored, buckets)
    previous = 0.0
    for population, captured in chart.points:
        assert captured >= previous - 1e-12
        assert 0.0 <= captured <= 1.0
        previous = captured
    assert chart.points[-1] == (1.0, 1.0)


@given(st.lists(st.integers(), min_size=4, max_size=500, unique=True),
       st.floats(min_value=0.1, max_value=0.9),
       st.integers(min_value=0, max_value=5))
@settings(max_examples=100, deadline=None)
def test_holdout_is_a_partition(keys, fraction, seed):
    try:
        train, test = holdout_split(keys, fraction, seed)
    except Exception:
        assume(False)  # degenerate splits are allowed to raise
    assert sorted(train + test) == sorted(keys)
    assert not set(train) & set(test)
