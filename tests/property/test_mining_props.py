"""Mining invariants: discretizers, statistics, Apriori, predictions."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.algorithms.discretization import fit_discretizer
from repro.algorithms.statistics import CategoricalDistribution, GaussianStats

values_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1, max_size=200)

methods = st.sampled_from(["EQUAL_RANGE", "EQUAL_COUNT", "CLUSTERS"])


@given(values_strategy, methods, st.integers(min_value=1, max_value=12))
@settings(max_examples=80, deadline=None)
def test_discretizer_covers_all_training_values(values, method, buckets):
    discretizer = fit_discretizer(values, method, buckets)
    for value in values:
        bucket = discretizer.bucket_of(value)
        assert 0 <= bucket < discretizer.bucket_count
        low, high = discretizer.range_of(bucket)
        assert low <= high


@given(values_strategy, methods, st.integers(min_value=1, max_value=12))
@settings(max_examples=80, deadline=None)
def test_discretizer_edges_sorted_and_within_range(values, method, buckets):
    discretizer = fit_discretizer(values, method, buckets)
    edges = discretizer.edges
    assert edges == sorted(edges)
    assert len(set(edges)) == len(edges)
    for edge in edges:
        assert discretizer.minimum <= edge <= discretizer.maximum


@given(values_strategy, methods, st.integers(min_value=1, max_value=12))
@settings(max_examples=80, deadline=None)
def test_discretizer_is_monotonic(values, method, buckets):
    discretizer = fit_discretizer(values, method, buckets)
    ordered = sorted(values)
    previous = -1
    for value in ordered:
        bucket = discretizer.bucket_of(value)
        assert bucket >= previous
        previous = bucket


@given(st.lists(st.floats(min_value=-1e4, max_value=1e4,
                          allow_nan=False), min_size=2, max_size=100))
@settings(max_examples=100, deadline=None)
def test_gaussian_matches_numpy(values):
    stats = GaussianStats()
    for value in values:
        stats.add(value)
    assert stats.mean == np.mean(values) or \
        abs(stats.mean - np.mean(values)) < 1e-6 * (1 + abs(np.mean(values)))
    assert abs(stats.variance - np.var(values)) < \
        1e-6 * (1 + abs(np.var(values)))


@given(st.lists(st.tuples(st.sampled_from("abcde"),
                          st.floats(min_value=0.01, max_value=10,
                                    allow_nan=False)),
                min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_categorical_probabilities_form_distribution(pairs):
    distribution = CategoricalDistribution()
    for value, weight in pairs:
        distribution.add(value, weight)
    total = sum(distribution.probability(v) for v in set(distribution.counts))
    assert abs(total - 1.0) < 1e-9
    assert 0.0 <= distribution.entropy() <= math.log2(
        max(len(distribution), 1)) + 1e-9


baskets_strategy = st.lists(
    st.frozensets(st.sampled_from("abcdefg"), max_size=5),
    min_size=1, max_size=60)


@given(baskets_strategy, st.floats(min_value=0.05, max_value=0.8))
@settings(max_examples=50, deadline=None)
def test_apriori_downward_closure_and_exact_supports(baskets, threshold):
    from repro.lang.parser import parse_statement
    from repro.core.bindings import MappedCase
    from repro.core.columns import compile_model_definition
    from repro.algorithms.attributes import AttributeSpace
    from repro.algorithms.association import AssociationRulesAlgorithm

    assume(any(baskets))
    definition = compile_model_definition(parse_statement(
        "CREATE MINING MODEL m (Id LONG KEY, B TABLE(I TEXT KEY) PREDICT) "
        "USING Repro_Association_Rules"))
    cases = []
    for position, basket in enumerate(baskets):
        case = MappedCase()
        case.scalars["ID"] = position
        case.tables["B"] = [{"I": item} for item in sorted(basket)]
        cases.append(case)
    space = AttributeSpace(definition)
    space.fit(cases)
    algorithm = AssociationRulesAlgorithm({
        "MINIMUM_SUPPORT": threshold, "MINIMUM_PROBABILITY": 0.1})
    algorithm.train(space, space.encode_many(cases))

    by_index = {a.index: str(a.key_value) for a in algorithm.items}
    minimum = threshold * len(baskets)
    for itemset, support in algorithm.itemsets.items():
        names = {by_index[i] for i in itemset}
        # support is the exact count of covering baskets
        exact = sum(1 for basket in baskets if names <= set(basket))
        assert support == exact
        assert support >= minimum - 1e-9
        # downward closure
        for item in itemset:
            subset = itemset - {item}
            if subset:
                assert subset in algorithm.itemsets
                assert algorithm.itemsets[subset] >= support

    for rule in algorithm.rules:
        left_support = algorithm.itemsets[rule.left]
        union_support = algorithm.itemsets[rule.left | {rule.right}]
        assert rule.confidence == union_support / left_support


@given(st.lists(st.tuples(st.sampled_from(["x", "y"]),
                          st.floats(min_value=0, max_value=10,
                                    allow_nan=False),
                          st.sampled_from(["p", "q"])),
                min_size=8, max_size=60))
@settings(max_examples=30, deadline=None)
def test_tree_histograms_are_distributions(rows):
    from repro.lang.parser import parse_statement
    from repro.core.bindings import MappedCase
    from repro.core.columns import compile_model_definition
    from repro.algorithms.attributes import AttributeSpace
    from repro.algorithms.decision_tree import DecisionTreeAlgorithm

    assume(len({r[2] for r in rows}) > 0)
    definition = compile_model_definition(parse_statement(
        "CREATE MINING MODEL m (Id LONG KEY, A TEXT DISCRETE, "
        "V DOUBLE CONTINUOUS, L TEXT DISCRETE PREDICT) "
        "USING Repro_Decision_Trees"))
    cases = []
    for position, (a, v, label) in enumerate(rows):
        case = MappedCase()
        case.scalars.update({"ID": position, "A": a, "V": v, "L": label})
        cases.append(case)
    space = AttributeSpace(definition)
    space.fit(cases)
    algorithm = DecisionTreeAlgorithm({"MINIMUM_SUPPORT": 2.0})
    algorithm.train(space, space.encode_many(cases))
    label_attribute = space.by_name("L")
    for probe in cases[:10]:
        prediction = algorithm.predict(space.encode(probe)) \
            .get(label_attribute)
        total = sum(b.probability for b in prediction.histogram)
        assert abs(total - 1.0) < 1e-6
        assert prediction.value == prediction.histogram[0].value
        assert all(0.0 <= b.probability <= 1.0 + 1e-9
                   for b in prediction.histogram)
