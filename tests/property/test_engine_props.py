"""Engine invariants over random data: filters, ordering, grouping, joins."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlstore import Database
from repro.sqlstore.values import sort_key

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=20),                # key
        st.one_of(st.none(), st.sampled_from(["a", "b", "c"])),  # category
        st.one_of(st.none(),
                  st.floats(min_value=-100, max_value=100,
                            allow_nan=False))),                # value
    min_size=0, max_size=40)


def load(rows):
    database = Database()
    database.execute("CREATE TABLE T (k LONG, c TEXT, v DOUBLE)")
    table = database.table("T")
    for row in rows:
        table.insert(row)
    return database


@given(rows_strategy, st.floats(min_value=-100, max_value=100,
                                allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_where_selects_exactly_matching_rows(rows, threshold):
    database = load(rows)
    result = database.execute(f"SELECT k, c, v FROM T WHERE v > {threshold!r}")
    expected = [row for row in rows
                if row[2] is not None and row[2] > threshold]
    assert sorted(result.rows, key=lambda r: sort_key(r[0])) == \
        sorted([tuple(r) for r in expected], key=lambda r: sort_key(r[0]))


@given(rows_strategy)
@settings(max_examples=60, deadline=None)
def test_order_by_is_sorted_and_preserves_multiset(rows):
    database = load(rows)
    result = database.execute("SELECT v FROM T ORDER BY v")
    values = result.column_values("v")
    assert sorted(values, key=sort_key) == values
    assert sorted(map(repr, values)) == \
        sorted(repr(row[2]) for row in rows)


@given(rows_strategy)
@settings(max_examples=60, deadline=None)
def test_distinct_removes_exactly_duplicates(rows):
    database = load(rows)
    result = database.execute("SELECT DISTINCT c FROM T")
    expected = {row[1] for row in rows}
    assert set(result.column_values("c")) == expected
    assert len(result) == len(expected)


@given(rows_strategy)
@settings(max_examples=60, deadline=None)
def test_group_by_counts_partition_the_table(rows):
    database = load(rows)
    result = database.execute("SELECT c, COUNT(*) AS n FROM T GROUP BY c")
    assert sum(row[1] for row in result.rows) == len(rows)
    # one output row per distinct group key
    assert len(result) == len({row[1] for row in rows})


@given(rows_strategy)
@settings(max_examples=60, deadline=None)
def test_sum_matches_python(rows):
    database = load(rows)
    result = database.execute("SELECT SUM(v) FROM T")
    values = [row[2] for row in rows if row[2] is not None]
    if not values:
        assert result.single_value() is None
    else:
        assert result.single_value() == sum(values)


@given(rows_strategy, rows_strategy)
@settings(max_examples=40, deadline=None)
def test_inner_join_matches_nested_loop_semantics(left_rows, right_rows):
    database = Database()
    database.execute("CREATE TABLE L (k LONG, c TEXT, v DOUBLE)")
    database.execute("CREATE TABLE R (k LONG, c TEXT, v DOUBLE)")
    for row in left_rows:
        database.table("L").insert(row)
    for row in right_rows:
        database.table("R").insert(row)
    result = database.execute(
        "SELECT l.k, r.k FROM L l JOIN R r ON l.k = r.k")
    expected = sorted((a[0], b[0]) for a in left_rows for b in right_rows
                      if a[0] == b[0])
    assert sorted(result.rows) == expected


@given(rows_strategy, rows_strategy)
@settings(max_examples=40, deadline=None)
def test_left_join_covers_every_left_row(left_rows, right_rows):
    database = Database()
    database.execute("CREATE TABLE L (k LONG, c TEXT, v DOUBLE)")
    database.execute("CREATE TABLE R (k LONG, c TEXT, v DOUBLE)")
    for row in left_rows:
        database.table("L").insert(row)
    for row in right_rows:
        database.table("R").insert(row)
    result = database.execute(
        "SELECT l.k, r.k FROM L l LEFT JOIN R r ON l.k = r.k")
    right_keys = {row[0] for row in right_rows}
    expected_count = sum(
        max(1, sum(1 for b in right_rows if b[0] == a[0]))
        if a[0] in right_keys else 1
        for a in left_rows)
    assert len(result) == expected_count
    # every left key appears
    left_keys = sorted(row[0] for row in left_rows)
    produced_left = sorted(set(row[0] for row in result.rows)) if result.rows \
        else []
    assert set(produced_left) == set(left_keys)


@given(rows_strategy, st.integers(min_value=0, max_value=10))
@settings(max_examples=60, deadline=None)
def test_top_truncates_after_order(rows, limit):
    database = load(rows)
    full = database.execute("SELECT v FROM T ORDER BY v DESC")
    top = database.execute(f"SELECT TOP {limit} v FROM T ORDER BY v DESC")
    assert top.rows == full.rows[:limit]
