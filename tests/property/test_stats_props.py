"""Optimizer-statistics invariants over random mutation histories.

The cost model trusts incrementally maintained statistics (note_insert /
note_delete inline in Table mutations) to be *exactly* what a wholesale
rebuild from the stored rows would derive — row counts, NDVs, null counts,
min/max, and the equi-depth histograms.  Any drift would mean UPDATE
STATISTICS changes plans, which the differential suite forbids.  The
estimator helpers are additionally pinned to their documented ranges so a
malformed estimate can never turn into a negative or exploding plan cost.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlstore.schema import ColumnSchema, TableSchema
from repro.sqlstore.stats import (
    TableStatistics,
    estimate_group_rows,
    estimate_join_rows,
)
from repro.sqlstore.table import Table
from repro.sqlstore.types import DOUBLE, LONG, TEXT


def _schema():
    return TableSchema("P", [ColumnSchema("id", LONG),
                             ColumnSchema("name", TEXT),
                             ColumnSchema("score", DOUBLE)])


row_strategy = st.tuples(
    st.one_of(st.none(), st.integers(min_value=-50, max_value=50)),
    st.one_of(st.none(), st.sampled_from(["ann", "bob", "cy", "dee", "ed"])),
    st.one_of(st.none(), st.floats(min_value=-8, max_value=8,
                                   allow_nan=False)),
)

operation_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), row_strategy),
        st.tuples(st.just("delete"),
                  st.integers(min_value=-50, max_value=50)),
        st.tuples(st.just("update"),
                  st.integers(min_value=-50, max_value=50), row_strategy),
        st.tuples(st.just("truncate")),
    ),
    max_size=40,
)


def _apply(table, operations):
    for operation in operations:
        if operation[0] == "insert":
            table.insert(operation[1])
        elif operation[0] == "delete":
            threshold = operation[1]
            table.delete_where(
                lambda row: row[0] is not None and row[0] < threshold)
        elif operation[0] == "update":
            threshold, replacement = operation[1], operation[2]
            table.update_where(
                lambda row: row[0] is not None and row[0] >= threshold,
                lambda row: replacement)
        else:
            table.truncate()


@given(operation_strategy)
@settings(max_examples=80, deadline=None)
def test_incremental_stats_match_wholesale_rebuild(operations):
    table = Table(_schema(), with_stats=True)
    _apply(table, operations)
    rebuilt = TableStatistics(table.schema)
    rebuilt.rebuild(table.rows)
    assert table.stats.snapshot() == rebuilt.snapshot()


@given(operation_strategy, operation_strategy)
@settings(max_examples=40, deadline=None)
def test_stale_statistics_recover_then_stay_incremental(first, second):
    """A reopen-style staleness mark (lazy rebuild) must leave statistics
    on the same trajectory as never having gone stale."""
    table = Table(_schema(), with_stats=True)
    _apply(table, first)
    table.mark_statistics_stale()
    _apply(table, second)
    rebuilt = TableStatistics(table.schema)
    rebuilt.rebuild(table.rows)
    assert table.statistics().snapshot() == rebuilt.snapshot()


@given(st.integers(min_value=0, max_value=10**6),
       st.integers(min_value=0, max_value=10**6),
       st.one_of(st.none(), st.lists(
           st.integers(min_value=1, max_value=1000), max_size=3)),
       st.sampled_from(["INNER", "LEFT", "CROSS"]))
@settings(max_examples=120, deadline=None)
def test_join_estimates_stay_in_bounds(left, right, ndvs, kind):
    equi = ndvs is not None
    estimate = estimate_join_rows(kind, left, right, equi, ndvs or [])
    assert 0 <= estimate <= max(left * right, left, right)
    if kind == "LEFT":
        assert estimate >= left or left * right < left
    if kind == "CROSS":
        assert estimate == left * right


@given(st.integers(min_value=0, max_value=10**6),
       st.lists(st.one_of(st.none(),
                          st.integers(min_value=1, max_value=100)),
                max_size=4))
@settings(max_examples=120, deadline=None)
def test_group_estimates_never_exceed_input(rows, ndvs):
    estimate = estimate_group_rows(rows, ndvs)
    assert 0 <= estimate <= max(rows, 1)
