"""Shaping invariants: SHAPE partitions children; FLATTENED obeys the
cross-product law."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import Parser
from repro.shaping import execute_shape, flatten_rowset
from repro.sqlstore import Database

masters = st.lists(st.integers(min_value=0, max_value=8),
                   min_size=1, max_size=10, unique=True)
children = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10),
              st.sampled_from("abcd")),
    min_size=0, max_size=30)


def build(master_keys, child_rows, second_child_rows=None):
    database = Database()
    database.execute("CREATE TABLE M (k LONG)")
    for key in master_keys:
        database.table("M").insert((key,))
    database.execute("CREATE TABLE C (fk LONG, v TEXT)")
    for fk, v in child_rows:
        database.table("C").insert((fk, v))
    if second_child_rows is not None:
        database.execute("CREATE TABLE D (fk LONG, w TEXT)")
        for fk, w in second_child_rows:
            database.table("D").insert((fk, w))
    return database


def shape_of(text):
    return Parser(text).parse_shape()


@given(masters, children)
@settings(max_examples=80, deadline=None)
def test_shape_partitions_matching_children(master_keys, child_rows):
    database = build(master_keys, child_rows)
    rowset = execute_shape(shape_of(
        "SHAPE {SELECT k FROM M ORDER BY k} "
        "APPEND ({SELECT fk, v FROM C} RELATE k TO fk) AS N"), database)
    # One output row per master, independent of child count.
    assert len(rowset) == len(master_keys)
    # Every child with a matching master appears in exactly one nest,
    # under its own master.
    total_nested = 0
    for row in rowset.rows:
        key, nested = row
        assert all(child[0] == key for child in nested.rows)
        total_nested += len(nested)
    matching = sum(1 for fk, _ in child_rows if fk in set(master_keys))
    assert total_nested == matching


@given(masters, children, children)
@settings(max_examples=60, deadline=None)
def test_flatten_obeys_cross_product_law(master_keys, child_rows,
                                         second_child_rows):
    database = build(master_keys, child_rows, second_child_rows)
    rowset = execute_shape(shape_of(
        "SHAPE {SELECT k FROM M ORDER BY k} "
        "APPEND ({SELECT fk, v FROM C} RELATE k TO fk) AS N1, "
        "({SELECT fk, w FROM D} RELATE k TO fk) AS N2"), database)
    flat = flatten_rowset(rowset)
    expected = 0
    for key in master_keys:
        n1 = sum(1 for fk, _ in child_rows if fk == key)
        n2 = sum(1 for fk, _ in second_child_rows if fk == key)
        expected += max(n1, 1) * max(n2, 1)
    assert len(flat) == expected


@given(masters, children)
@settings(max_examples=60, deadline=None)
def test_flatten_preserves_scalar_values(master_keys, child_rows):
    database = build(master_keys, child_rows)
    rowset = execute_shape(shape_of(
        "SHAPE {SELECT k FROM M ORDER BY k} "
        "APPEND ({SELECT fk, v FROM C} RELATE k TO fk) AS N"), database)
    flat = flatten_rowset(rowset)
    # Each flattened row's master key matches its nested fk (or NULL pad).
    key_index = flat.index_of("k")
    fk_index = flat.index_of("N.fk")
    for row in flat.rows:
        assert row[fk_index] is None or row[fk_index] == row[key_index]
