"""Property: format(parse(format(ast))) is a fixed point, for random ASTs."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast_nodes as ast
from repro.lang.formatter import format_expression, format_statement
from repro.lang.parser import parse_expression, parse_statement

# Identifiers: printable, no control characters; brackets are escaped by the
# formatter so ']' is fair game.
identifiers = st.text(
    alphabet=string.ascii_letters + string.digits + " _]",
    min_size=1, max_size=12).filter(lambda s: s.strip() == s and s.strip())

literals = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=string.printable, max_size=20),
).map(ast.Literal)

column_refs = st.lists(identifiers, min_size=1, max_size=3).map(
    lambda parts: ast.ColumnRef(parts=tuple(parts)))

# Function names are bare identifiers: letter/underscore first, and never a
# keyword that would change the parse (NOT, CASE, NULL, ...).
_RESERVED = {"NOT", "CASE", "NULL", "TRUE", "FALSE", "AND", "OR", "IS",
             "IN", "BETWEEN", "LIKE", "SELECT", "END", "WHEN", "THEN",
             "ELSE", "DISTINCT"}
function_names = st.text(
    alphabet=string.ascii_letters + "_", min_size=1, max_size=10).filter(
    lambda s: s.upper() not in _RESERVED)


def expressions(max_depth=3):
    base = st.one_of(literals, column_refs)
    if max_depth == 0:
        return base
    sub = expressions(max_depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["+", "-", "*", "/", "=", "<>", "<",
                                   "<=", ">", ">=", "AND", "OR", "||"]),
                  sub, sub).map(lambda t: ast.BinaryOp(*t)),
        sub.map(lambda e: ast.UnaryOp("NOT", e)),
        sub.map(lambda e: ast.UnaryOp("-", e)),
        st.tuples(sub, st.booleans()).map(
            lambda t: ast.IsNull(t[0], negated=t[1])),
        st.tuples(sub, st.lists(sub, min_size=1, max_size=3),
                  st.booleans()).map(
            lambda t: ast.InList(t[0], items=t[1], negated=t[2])),
        st.tuples(sub, sub, sub, st.booleans()).map(
            lambda t: ast.Between(t[0], low=t[1], high=t[2],
                                  negated=t[3])),
        st.tuples(function_names, st.lists(sub, max_size=3)).map(
            lambda t: ast.FuncCall(name=t[0], args=t[1])),
    )


@given(expressions())
@settings(max_examples=200)
def test_expression_round_trip(expr):
    # One parse normalises (e.g. the literal -1 becomes unary minus on 1);
    # after that, format/parse must be a fixed point.
    normalized = format_expression(parse_expression(format_expression(expr)))
    assert format_expression(parse_expression(normalized)) == normalized


select_items = st.lists(
    st.tuples(expressions(2), st.one_of(st.none(), identifiers)).map(
        lambda t: ast.SelectItem(t[0], t[1])),
    min_size=1, max_size=4)


@st.composite
def select_statements(draw):
    statement = ast.SelectStatement()
    statement.select_list = draw(select_items)
    if draw(st.booleans()):
        statement.from_clause = ast.NamedTable(
            name=draw(identifiers),
            alias=draw(st.one_of(st.none(), identifiers)))
        if draw(st.booleans()):
            statement.where = draw(expressions(2))
        if draw(st.booleans()):
            statement.order_by = [
                ast.OrderItem(draw(expressions(1)), draw(st.booleans()))]
        if draw(st.booleans()):
            statement.group_by = [draw(column_refs)]
    if draw(st.booleans()):
        statement.distinct = True
    if draw(st.booleans()):
        statement.top = draw(st.integers(min_value=0, max_value=1000))
    return statement


@given(select_statements())
@settings(max_examples=150)
def test_select_round_trip(statement):
    normalized = format_statement(parse_statement(format_statement(statement)))
    assert format_statement(parse_statement(normalized)) == normalized


@st.composite
def model_columns(draw, allow_table=True):
    name = draw(identifiers)
    if allow_table and draw(st.integers(0, 4)) == 0:
        nested = [draw(model_columns(allow_table=False))
                  for _ in range(draw(st.integers(1, 3)))]
        # ensure a key
        nested[0].content_type = "KEY"
        nested[0].qualifier = None
        nested[0].predict = False
        return ast.ModelColumnDef(name=name, nested_columns=nested)
    column = ast.ModelColumnDef(
        name=name,
        data_type=draw(st.sampled_from(["LONG", "DOUBLE", "TEXT"])),
        content_type=draw(st.one_of(
            st.none(), st.sampled_from(["DISCRETE", "KEY", "ORDERED"]))),
        predict=draw(st.booleans()))
    if column.data_type == "DOUBLE" and draw(st.booleans()):
        column.content_type = "DISCRETIZED"
        column.discretization_method = draw(st.sampled_from(
            ["EQUAL_RANGE", "EQUAL_COUNT", "CLUSTERS"]))
        column.discretization_buckets = draw(st.integers(2, 10))
    if column.content_type == "KEY":
        column.predict = False
    return column


@st.composite
def create_model_statements(draw):
    columns = [draw(model_columns())
               for _ in range(draw(st.integers(1, 5)))]
    # unique names
    seen = set()
    unique_columns = []
    for column in columns:
        if column.name.upper() not in seen:
            seen.add(column.name.upper())
            unique_columns.append(column)
    return ast.CreateMiningModelStatement(
        name=draw(identifiers), columns=unique_columns,
        algorithm=draw(st.sampled_from(
            ["Repro_Decision_Trees", "Custom_Algo_99"])),
        parameters=draw(st.lists(
            st.tuples(st.sampled_from(["A", "B2", "LONG_NAME"]),
                      st.one_of(st.integers(0, 99),
                                st.sampled_from(["x", "y"]))),
            max_size=2, unique_by=lambda t: t[0])))


@given(create_model_statements())
@settings(max_examples=150)
def test_create_mining_model_round_trip(statement):
    text = format_statement(statement)
    reparsed = parse_statement(text)
    assert format_statement(reparsed) == text
