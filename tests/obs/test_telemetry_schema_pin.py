"""Golden pin of the telemetry rowset schemas.

Dashboards, log scrapers, and the differential harness all key on the exact
column names and types of the ``$SYSTEM`` telemetry rowsets.  This test is
the contract: any column rename, reorder, retype, addition, or removal must
show up as a diff against these literals and be made deliberately.

The pool's ``pool.*`` metric family is pinned the same way: the parallel
subsystem promises these names to operators, and a silent rename would
leave fleets graphing empty series.
"""

import pytest

import repro

# -- golden schemas: (name, type) in exact column order ------------------------

DM_QUERY_LOG_SCHEMA = [
    ("STATEMENT_ID", "LONG"),
    ("STATEMENT", "TEXT"),
    ("KIND", "TEXT"),
    ("STATUS", "TEXT"),
    ("ERROR", "TEXT"),
    ("STARTED_AT", "TEXT"),
    ("DURATION_MS", "DOUBLE"),
    ("ROWS_SCANNED", "LONG"),
    ("ROWS_OUT", "LONG"),
    ("CASES", "LONG"),
    ("SPAN_COUNT", "LONG"),
    ("THREAD", "TEXT"),
    ("SESSION", "LONG"),
]

DM_TRACE_EVENTS_SCHEMA = [
    ("STATEMENT_ID", "LONG"),
    ("SPAN_ID", "TEXT"),
    ("PARENT_SPAN_ID", "TEXT"),
    ("DEPTH", "LONG"),
    ("SPAN", "TEXT"),
    ("DURATION_MS", "DOUBLE"),
    ("COUNTERS", "TEXT"),
    ("ATTRIBUTES", "TEXT"),
]

DM_PROVIDER_METRICS_SCHEMA = [
    ("METRIC", "TEXT"),
    ("KIND", "TEXT"),
    ("COUNT", "LONG"),
    ("VALUE", "DOUBLE"),
    ("SUM", "DOUBLE"),
    ("MIN", "DOUBLE"),
    ("MAX", "DOUBLE"),
    ("MEAN", "DOUBLE"),
    ("P50", "DOUBLE"),
    ("P95", "DOUBLE"),
    ("P99", "DOUBLE"),
]

DM_ACTIVE_STATEMENTS_SCHEMA = [
    ("STATEMENT_ID", "LONG"),
    ("STATEMENT", "TEXT"),
    ("KIND", "TEXT"),
    ("PHASE", "TEXT"),
    ("STARTED_AT", "TEXT"),
    ("ELAPSED_MS", "DOUBLE"),
    ("ROWS_PROCESSED", "LONG"),
    ("BATCHES", "LONG"),
    ("PARTITIONS_DONE", "LONG"),
    ("PARTITIONS_TOTAL", "LONG"),
    ("POOL_TASKS_IN_FLIGHT", "LONG"),
    ("LOCK_WAIT_MS", "DOUBLE"),
    ("THREAD", "TEXT"),
    ("SESSION", "LONG"),
    ("CANCEL_REQUESTED", "BOOLEAN"),
]

DM_STATEMENT_RESOURCES_SCHEMA = [
    ("STATEMENT_ID", "LONG"),
    ("STATEMENT", "TEXT"),
    ("KIND", "TEXT"),
    ("STATUS", "TEXT"),
    ("DURATION_MS", "DOUBLE"),
    ("CPU_MS", "DOUBLE"),
    ("POOL_CPU_MS", "DOUBLE"),
    ("LOCK_WAIT_MS", "DOUBLE"),
    ("LOCK_WAITS", "LONG"),
    ("ROWS_PROCESSED", "LONG"),
    ("PEAK_BATCH_ROWS", "LONG"),
    ("BATCHES", "LONG"),
    ("POOL_TASKS", "LONG"),
    ("CACHE_HITS", "LONG"),
    ("CACHE_MISSES", "LONG"),
]

DM_LOCK_WAITS_SCHEMA = [
    ("LOCK", "TEXT"),
    ("MODE", "TEXT"),
    ("WAITS", "LONG"),
    ("TOTAL_WAIT_MS", "DOUBLE"),
    ("MAX_WAIT_MS", "DOUBLE"),
    ("LAST_WAIT_AT", "TEXT"),
]

DM_SESSIONS_SCHEMA = [
    ("SESSION_ID", "LONG"),
    ("REMOTE", "TEXT"),
    ("STATE", "TEXT"),
    ("CONNECTED_AT", "TEXT"),
    ("STATEMENTS", "LONG"),
    ("ROWS_SENT", "LONG"),
    ("BYTES_IN", "LONG"),
    ("BYTES_OUT", "LONG"),
    ("BATCH_SIZE", "LONG"),
    ("MAX_DOP", "LONG"),
    ("LAST_STATEMENT", "TEXT"),
]

DM_BUFFER_POOL_SCHEMA = [
    ("TABLE_NAME", "TEXT"),
    ("PAGE_ID", "LONG"),
    ("ROWS", "LONG"),
    ("DIRTY", "BOOLEAN"),
    ("PINS", "LONG"),
    ("SIZE_BYTES", "LONG"),
]

DM_INDEXES_SCHEMA = [
    ("TABLE_NAME", "TEXT"),
    ("INDEX_NAME", "TEXT"),
    ("COLUMN_NAME", "TEXT"),
    ("KIND", "TEXT"),
    ("KEYS", "LONG"),
    ("ENTRIES", "LONG"),
    ("SEEKS", "LONG"),
    ("RANGE_SEEKS", "LONG"),
    ("JOIN_PROBES", "LONG"),
]

DM_COLUMN_STATISTICS_SCHEMA = [
    ("TABLE_NAME", "TEXT"),
    ("COLUMN_NAME", "TEXT"),
    ("ROW_COUNT", "LONG"),
    ("NDV", "LONG"),
    ("NULL_COUNT", "LONG"),
    ("NULL_FRACTION", "DOUBLE"),
    ("MIN_VALUE", "TEXT"),
    ("MAX_VALUE", "TEXT"),
    ("HISTOGRAM_BUCKETS", "LONG"),
    ("HISTOGRAM", "TEXT"),
]

DM_STATEMENT_STATS_SCHEMA = [
    ("FINGERPRINT", "TEXT"),
    ("STATEMENT", "TEXT"),
    ("EXEMPLAR", "TEXT"),
    ("KIND", "TEXT"),
    ("CALLS", "LONG"),
    ("ERRORS", "LONG"),
    ("CANCELS", "LONG"),
    ("TOTAL_MS", "DOUBLE"),
    ("MEAN_MS", "DOUBLE"),
    ("MIN_MS", "DOUBLE"),
    ("MAX_MS", "DOUBLE"),
    ("P50_MS", "DOUBLE"),
    ("P95_MS", "DOUBLE"),
    ("P99_MS", "DOUBLE"),
    ("ROWS_RETURNED", "LONG"),
    ("CPU_MS", "DOUBLE"),
    ("CACHE_HITS", "LONG"),
    ("CACHE_MISSES", "LONG"),
    ("BUFFER_READS", "LONG"),
    ("POOL_TASKS", "LONG"),
    ("PLANS", "LONG"),
    ("PLAN_HASH", "TEXT"),
    ("FIRST_AT", "TEXT"),
    ("LAST_AT", "TEXT"),
]

DM_PLAN_HISTORY_SCHEMA = [
    ("FINGERPRINT", "TEXT"),
    ("PLAN_HASH", "TEXT"),
    ("IS_ACTIVE", "BOOLEAN"),
    ("FIRST_SEEN", "TEXT"),
    ("LAST_SEEN", "TEXT"),
    ("EXECUTIONS", "LONG"),
    ("MEAN_MS", "DOUBLE"),
    ("Q_SAMPLES", "LONG"),
    ("MEAN_Q_ERROR", "DOUBLE"),
    ("MAX_Q_ERROR", "DOUBLE"),
    ("SKELETON", "TEXT"),
]

DM_PLAN_CHANGES_SCHEMA = [
    ("CHANGE_ID", "LONG"),
    ("FINGERPRINT", "TEXT"),
    ("STATEMENT", "TEXT"),
    ("CHANGED_AT", "TEXT"),
    ("OLD_PLAN_HASH", "TEXT"),
    ("NEW_PLAN_HASH", "TEXT"),
    ("TRIGGER_STATEMENT", "TEXT"),
    ("BEFORE_MEAN_MS", "DOUBLE"),
    ("AFTER_MEAN_MS", "DOUBLE"),
]

# The pool metric names the parallel subsystem promises to operators.
POOL_METRIC_FAMILY = [
    "pool.max_workers",
    "pool.workers_live",
    "pool.parallel_statements",
    "pool.parallel_statements.train",
    "pool.parallel_statements.predict",
    "pool.serial_fallbacks",
    "pool.serial_fallbacks.algorithm",
    "pool.tasks_submitted",
    "pool.tasks_completed",
    "pool.task_ms",
]


@pytest.fixture(scope="module")
def conn():
    connection = repro.connect(max_workers=2, pool_mode="thread")
    # One statement of each flavour so every telemetry rowset has rows and
    # the pool counters materialize: a parallel train, a fallback train,
    # and a parallel prediction.
    connection.execute("CREATE TABLE T (Id LONG, G TEXT, Age DOUBLE, "
                       "Buys TEXT)")
    connection.execute("INSERT INTO T VALUES " + ", ".join(
        f"({i}, '{'m' if i % 2 else 'f'}', {20 + i % 5}, "
        f"'{'yes' if i % 3 else 'no'}')" for i in range(1, 13)))
    connection.execute("CREATE MINING MODEL NB (Id LONG KEY, "
                       "G TEXT DISCRETE, Buys TEXT DISCRETE PREDICT) "
                       "USING Repro_Naive_Bayes")
    connection.execute("INSERT INTO NB (Id, G, Buys) "
                       "SELECT Id, G, Buys FROM T")
    connection.execute("CREATE MINING MODEL DT (Id LONG KEY, "
                       "Age DOUBLE CONTINUOUS, Buys TEXT DISCRETE PREDICT) "
                       "USING Repro_Decision_Trees")
    connection.execute("INSERT INTO DT (Id, Age, Buys) "
                       "SELECT Id, Age, Buys FROM T")
    connection.execute("SELECT t.Id, NB.Buys FROM NB "
                       "NATURAL PREDICTION JOIN (SELECT Id, G FROM T) AS t")
    yield connection
    connection.close()


def _schema(conn, rowset_name):
    rowset = conn.execute(f"SELECT * FROM $SYSTEM.{rowset_name}")
    return [(c.name, c.type.name) for c in rowset.columns]


@pytest.mark.parametrize("rowset_name, expected", [
    ("DM_QUERY_LOG", DM_QUERY_LOG_SCHEMA),
    ("DM_TRACE_EVENTS", DM_TRACE_EVENTS_SCHEMA),
    ("DM_PROVIDER_METRICS", DM_PROVIDER_METRICS_SCHEMA),
    ("DM_ACTIVE_STATEMENTS", DM_ACTIVE_STATEMENTS_SCHEMA),
    ("DM_STATEMENT_RESOURCES", DM_STATEMENT_RESOURCES_SCHEMA),
    ("DM_LOCK_WAITS", DM_LOCK_WAITS_SCHEMA),
    ("DM_SESSIONS", DM_SESSIONS_SCHEMA),
    ("DM_BUFFER_POOL", DM_BUFFER_POOL_SCHEMA),
    ("DM_INDEXES", DM_INDEXES_SCHEMA),
    ("DM_COLUMN_STATISTICS", DM_COLUMN_STATISTICS_SCHEMA),
    ("DM_STATEMENT_STATS", DM_STATEMENT_STATS_SCHEMA),
    ("DM_PLAN_HISTORY", DM_PLAN_HISTORY_SCHEMA),
    ("DM_PLAN_CHANGES", DM_PLAN_CHANGES_SCHEMA),
])
def test_telemetry_rowset_schema_is_pinned(conn, rowset_name, expected):
    assert _schema(conn, rowset_name) == expected, (
        f"$SYSTEM.{rowset_name} changed shape; telemetry consumers key on "
        f"exact column names, order, and types — update the golden schema "
        f"only with a deliberate, documented migration")


def test_telemetry_rowsets_have_rows(conn):
    for name in ("DM_QUERY_LOG", "DM_TRACE_EVENTS", "DM_PROVIDER_METRICS"):
        assert len(conn.execute(f"SELECT * FROM $SYSTEM.{name}").rows) > 0


def test_pool_metric_family_is_pinned(conn):
    rows = conn.execute(
        "SELECT METRIC FROM $SYSTEM.DM_PROVIDER_METRICS").rows
    published = {row[0] for row in rows}
    missing = [name for name in POOL_METRIC_FAMILY if name not in published]
    assert not missing, (
        f"pool metrics vanished from DM_PROVIDER_METRICS: {missing}")


# The storage metric names the paged-store subsystem promises to
# operators.  (buffer.pin_overflow exists too, but only materializes when
# every frame is pinned at once — asserted in the buffer-pool unit suite.)
BUFFER_METRIC_FAMILY = [
    "buffer.hits",
    "buffer.misses",
    "buffer.evictions",
    "buffer.flushes",
    "buffer.commits",
    "buffer.pages_resident",
    "index.seeks",
    "index.range_seeks",
    "index.join_probes",
]


def test_storage_metric_family_is_pinned(tmp_path):
    connection = repro.connect(storage_path=str(tmp_path / "store"),
                               buffer_pages=2, storage_page_bytes=256)
    try:
        connection.execute("CREATE TABLE S (id INT, v TEXT)")
        connection.execute("INSERT INTO S VALUES " + ", ".join(
            f"({i}, 'value-{i:04d}-xxxxxxxxxx')" for i in range(40)))
        connection.execute("CREATE INDEX IX_ID ON S (id)")
        connection.execute("SELECT * FROM S WHERE id = 7")
        connection.execute("SELECT * FROM S WHERE id > 30")
        connection.execute("CREATE TABLE O (sid INT)")
        connection.execute("INSERT INTO O VALUES (1), (2)")
        connection.execute("CREATE INDEX IX_SID ON O (sid)")
        connection.execute("SELECT s.id FROM S AS s JOIN O AS o "
                           "ON s.id = o.sid")
        published = {row[0] for row in connection.execute(
            "SELECT METRIC FROM $SYSTEM.DM_PROVIDER_METRICS").rows}
    finally:
        connection.close()
    missing = [name for name in BUFFER_METRIC_FAMILY
               if name not in published]
    assert not missing, (
        f"storage metrics vanished from DM_PROVIDER_METRICS: {missing}")


def test_pool_metrics_carry_sane_values(conn):
    rows = conn.execute("SELECT METRIC, KIND, VALUE FROM "
                        "$SYSTEM.DM_PROVIDER_METRICS").rows
    values = {metric: (kind, value) for metric, kind, value in rows}
    assert values["pool.max_workers"] == ("gauge", 2.0)
    assert values["pool.parallel_statements"][0] == "counter"
    submitted = values["pool.tasks_submitted"][1]
    completed = values["pool.tasks_completed"][1]
    cancelled = values.get("pool.tasks_cancelled", ("counter", 0.0))[1]
    abandoned = values.get("pool.tasks_abandoned", ("counter", 0.0))[1]
    assert submitted == completed + cancelled + abandoned
    assert values["pool.task_ms"][0] == "histogram"
