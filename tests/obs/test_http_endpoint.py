"""The HTTP telemetry endpoint: /metrics, /healthz, /queries."""

import json
import urllib.error
import urllib.request

import pytest

import repro
from tests.obs.test_export import parse_exposition


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8"), \
                response.headers.get("Content-Type", "")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8"), \
            error.headers.get("Content-Type", "")


@pytest.fixture
def served(conn):
    server = conn.provider.serve_metrics(port=0)
    conn.execute("CREATE TABLE T (x INT)")
    conn.execute("INSERT INTO T VALUES (1), (2), (3)")
    conn.execute("SELECT * FROM T")
    yield conn, server
    server.close()


class TestMetricsRoute:
    def test_exposition_parses_strictly(self, served):
        conn, server = served
        status, body, content_type = _get(server.url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        families = parse_exposition(body)
        samples = families["repro_statements_total"]["samples"]
        assert samples[0][2] >= 3

    def test_provider_info_series_is_present(self, served):
        _, server = served
        _, body, _ = _get(server.url + "/metrics")
        families = parse_exposition(body)
        name, labels, value = families["repro_provider_info"]["samples"][0]
        assert value == 1
        assert labels["durable"] == "no"
        assert labels["version"] == repro.__version__

    def test_scrapes_reflect_new_statements(self, served):
        conn, server = served
        def total():
            _, body, _ = _get(server.url + "/metrics")
            families = parse_exposition(body)
            return families["repro_statements_total"]["samples"][0][2]
        before = total()
        conn.execute("SELECT 1 AS v")
        assert total() == before + 1


class TestHealthRoute:
    def test_healthy_without_a_durable_store(self, served):
        _, server = served
        status, body, content_type = _get(server.url + "/healthz")
        assert status == 200
        assert content_type == "application/json"
        assert json.loads(body) == {"status": "ok"}

    def test_flips_to_503_when_store_goes_read_only(self, tmp_path):
        conn = repro.connect(durable_path=str(tmp_path / "store"))
        server = conn.provider.serve_metrics(port=0)
        try:
            status, _, _ = _get(server.url + "/healthz")
            assert status == 200
            conn.provider.store.broken = True
            status, body, _ = _get(server.url + "/healthz")
            assert status == 503
            payload = json.loads(body)
            assert payload["status"] == "read-only"
            assert "reason" in payload
        finally:
            server.close()
            conn.close()


class TestQueriesRoute:
    def test_recent_statements_as_json(self, served):
        _, server = served
        status, body, content_type = _get(server.url + "/queries")
        assert status == 200
        assert content_type == "application/json"
        records = json.loads(body)
        assert [r["kind"] for r in records] == \
            ["CREATE_TABLE", "INSERT", "SELECT"]
        assert all(r["status"] == "ok" for r in records)
        assert all(r["statement_id"] > 0 for r in records)
        assert all(r["thread"] for r in records)

    def test_limit_parameter(self, served):
        _, server = served
        records = json.loads(_get(server.url + "/queries?limit=1")[1])
        assert len(records) == 1
        assert records[0]["kind"] == "SELECT"

    def test_bad_limit_falls_back_to_default(self, served):
        _, server = served
        status, body, _ = _get(server.url + "/queries?limit=banana")
        assert status == 200
        assert len(json.loads(body)) == 3


class TestRoutingAndLifecycle:
    def test_unknown_route_is_404_json(self, served):
        _, server = served
        status, body, _ = _get(server.url + "/nope")
        assert status == 404
        assert "no route" in json.loads(body)["error"]

    def test_url_names_the_bound_ephemeral_port(self, served):
        _, server = served
        assert server.url == f"http://127.0.0.1:{server.port}"
        assert server.port != 0

    def test_provider_close_shuts_the_server_down(self, tmp_path):
        conn = repro.connect()
        server = conn.provider.serve_metrics(port=0)
        url = server.url
        conn.close()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url + "/healthz", timeout=1)

    def test_context_manager_closes(self, conn):
        with conn.provider.serve_metrics(port=0) as server:
            assert _get(server.url + "/healthz")[0] == 200
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(server.url + "/healthz", timeout=1)
