"""Live workload introspection: registry, resources, lock waits, exports.

Companion to ``tests/exec/test_cancellation.py`` (which drives the CANCEL
verb end to end).  Here the focus is the accounting itself: the registry
and token primitives, the ``$SYSTEM`` rowsets fed by them, per-statement
CPU/lock-wait reconciliation, the Chrome-trace exporter, the ``/active``
HTTP route, and the telemetry-server lifecycle.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro.errors import CancelledError, Error
from repro.obs import workload as obs_workload
from repro.obs.export import chrome_trace_events
from repro.obs.workload import ActiveStatement, CancelToken, WorkloadRegistry


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


# -- primitives ----------------------------------------------------------------

class TestCancelToken:
    def test_starts_clear_and_latches(self):
        token = CancelToken(7)
        assert not token.cancelled
        token.check()  # no-op while clear
        token.cancel("operator said so")
        assert token.cancelled
        assert token.reason == "operator said so"

    def test_check_raises_with_the_reason(self):
        token = CancelToken(7)
        token.cancel("test reason")
        with pytest.raises(CancelledError, match="test reason"):
            token.check()

    def test_module_helpers_are_noops_without_a_statement(self):
        # The instrumented layers call these unconditionally; with no
        # active statement they must cost nothing and raise nothing.
        assert obs_workload.current() is None
        obs_workload.check()
        obs_workload.checkpoint(rows=10)
        obs_workload.set_phase("train")
        obs_workload.note_cache(hit=True)
        obs_workload.set_partitions(4)
        obs_workload.partition_done()


class TestWorkloadRegistry:
    def test_register_finish_moves_to_the_ring(self):
        registry = WorkloadRegistry()
        statement = registry.register(1, "SELECT 1", kind="SELECT")
        assert [s.statement_id for s in registry.active()] == [1]
        registry.finish(statement, status="ok", duration_ms=5.0)
        assert registry.active() == []
        records = registry.resource_records()
        assert len(records) == 1
        assert records[0].status == "ok"
        assert records[0].duration_ms == 5.0
        assert records[0].finished

    def test_disabled_registry_registers_nothing(self):
        registry = WorkloadRegistry()
        registry.enabled = False
        assert registry.register(1, "SELECT 1") is None
        assert registry.active() == []

    def test_cancel_unknown_id_names_the_active_set(self):
        registry = WorkloadRegistry()
        registry.register(3, "SELECT 1")
        with pytest.raises(Error, match="no active statement with id 9"):
            registry.cancel(9)

    def test_cancel_latches_the_statements_token(self):
        registry = WorkloadRegistry()
        statement = registry.register(4, "SELECT 1")
        registry.cancel(4)
        assert statement.token.cancelled
        with pytest.raises(CancelledError):
            statement.token.check()

    def test_advance_tracks_rows_batches_and_peak(self):
        statement = ActiveStatement(1, "scan")
        statement.advance(10)
        statement.advance(30)
        statement.advance(20)
        assert statement.rows_processed == 60
        assert statement.batches == 3
        assert statement.peak_batch_rows == 30

    def test_advance_is_a_cancellation_checkpoint(self):
        statement = ActiveStatement(1, "scan")
        statement.token.cancel()
        with pytest.raises(CancelledError):
            statement.advance(10)


# -- the $SYSTEM rowsets -------------------------------------------------------

@pytest.fixture
def trained(conn):
    conn.execute("CREATE TABLE T (Id LONG, G TEXT, Buys TEXT)")
    conn.execute("INSERT INTO T VALUES " + ", ".join(
        f"({i}, '{'m' if i % 2 else 'f'}', '{'yes' if i % 3 else 'no'}')"
        for i in range(1, 201)))
    conn.execute("CREATE MINING MODEL NB (Id LONG KEY, G TEXT DISCRETE, "
                 "Buys TEXT DISCRETE PREDICT) USING Repro_Naive_Bayes")
    conn.execute("INSERT INTO NB (Id, G, Buys) SELECT Id, G, Buys FROM T")
    return conn


class TestStatementResourcesRowset:
    def test_train_reports_nonzero_cpu_and_rows(self, trained):
        rows = trained.execute(
            "SELECT STATUS, CPU_MS, ROWS_PROCESSED, BATCHES FROM "
            "$SYSTEM.DM_STATEMENT_RESOURCES WHERE KIND = 'TRAIN'").rows
        assert len(rows) == 1
        status, cpu_ms, rows_processed, batches = rows[0]
        assert status == "ok"
        assert cpu_ms > 0.0
        assert rows_processed >= 200
        assert batches >= 1

    def test_resources_reconcile_with_the_query_log(self, trained):
        # Read the log first: the resources view also lists the statement
        # executing it (live, duration still None), which the earlier log
        # snapshot by definition does not contain.
        log = trained.execute("SELECT STATEMENT_ID, DURATION_MS FROM "
                              "$SYSTEM.DM_QUERY_LOG").rows
        resources = {row[0]: row for row in trained.execute(
            "SELECT STATEMENT_ID, DURATION_MS, CPU_MS, LOCK_WAIT_MS FROM "
            "$SYSTEM.DM_STATEMENT_RESOURCES").rows}
        assert log and resources
        for statement_id, duration_ms in log:
            assert statement_id in resources
            _, res_duration, _cpu, lock_wait = resources[statement_id]
            # Same statement, same clock: the two views agree, and a
            # statement cannot wait on locks longer than it existed.
            assert res_duration == pytest.approx(duration_ms, abs=1.0)
            assert 0.0 <= lock_wait <= duration_ms + 1.0

    def test_cache_counters_surface(self, trained):
        # Retraining the same model from the same source hits the caseset
        # cache (the key spans model, source, and data version).
        trained.execute("INSERT INTO NB (Id, G, Buys) "
                        "SELECT Id, G, Buys FROM T")
        rows = trained.execute(
            "SELECT CACHE_HITS, CACHE_MISSES FROM "
            "$SYSTEM.DM_STATEMENT_RESOURCES WHERE KIND = 'TRAIN'").rows
        assert len(rows) == 2
        assert rows[0][1] >= 1  # first train misses
        assert rows[1][0] >= 1  # second train hits

    def test_sink_record_carries_the_same_resources(self, tmp_path):
        conn = repro.connect(telemetry_path=str(tmp_path / "slow.jsonl"),
                             slow_query_ms=0.0)
        try:
            conn.execute("CREATE TABLE T (Id LONG)")
            conn.execute("INSERT INTO T VALUES (1), (2), (3)")
            conn.execute("SELECT * FROM T")
            records = conn.provider.slow_sink.records()
            assert records
            select = [r for r in records if r["kind"] == "SELECT"][-1]
            assert "resources" in select
            rowset = {row[0]: row for row in conn.execute(
                "SELECT STATEMENT_ID, CPU_MS, ROWS_PROCESSED FROM "
                "$SYSTEM.DM_STATEMENT_RESOURCES").rows}
            pinned = rowset[select["statement_id"]]
            assert select["resources"]["cpu_ms"] == pinned[1]
            assert select["resources"]["rows_processed"] == pinned[2]
        finally:
            conn.close()


class TestLockWaits:
    def test_blocked_reader_is_profiled(self, trained):
        model = trained.model("NB")
        finished = threading.Event()

        def blocked_predict():
            trained.execute(
                "SELECT t.Id, NB.Buys FROM NB NATURAL PREDICTION JOIN "
                "(SELECT Id, G FROM T) AS t")
            finished.set()

        with model.lock.write():
            thread = threading.Thread(target=blocked_predict)
            thread.start()
            # Let the reader reach (and block on) the model read lock.
            time.sleep(0.08)
            assert not finished.is_set()
        thread.join(5.0)
        assert finished.is_set()

        waits = trained.execute(
            "SELECT LOCK, MODE, WAITS, TOTAL_WAIT_MS, MAX_WAIT_MS FROM "
            "$SYSTEM.DM_LOCK_WAITS").rows
        by_key = {(lock, mode): (count, total, peak)
                  for lock, mode, count, total, peak in waits}
        assert ("model:NB", "read") in by_key
        count, total, peak = by_key[("model:NB", "read")]
        assert count >= 1
        assert total >= 50.0  # we held the write lock ~80ms
        assert peak <= total + 1e-6

        resources = trained.execute(
            "SELECT LOCK_WAIT_MS, LOCK_WAITS FROM "
            "$SYSTEM.DM_STATEMENT_RESOURCES WHERE KIND = 'PREDICT'").rows
        assert resources[-1][0] >= 50.0
        assert resources[-1][1] >= 1

        metrics = {metric: value for metric, value in trained.execute(
            "SELECT METRIC, VALUE FROM $SYSTEM.DM_PROVIDER_METRICS "
            "WHERE METRIC LIKE 'lock.%'").rows}
        assert metrics["lock.waits"] >= 1
        assert metrics["lock.waits.read"] >= 1

    def test_uncontended_statements_report_no_waits(self, trained):
        assert trained.execute(
            "SELECT * FROM $SYSTEM.DM_LOCK_WAITS").rows == []


class TestActiveStatementsRowset:
    def test_idle_provider_shows_only_the_observer(self, trained):
        # The SELECT over DM_ACTIVE_STATEMENTS is itself a live statement,
        # so the rowset always reflects at least its own execution.
        rows = trained.execute(
            "SELECT KIND, PHASE, CANCEL_REQUESTED FROM "
            "$SYSTEM.DM_ACTIVE_STATEMENTS").rows
        assert len(rows) == 1
        kind, phase, cancel_requested = rows[0]
        assert kind == "SELECT"
        assert phase == "scan"
        assert cancel_requested is False


# -- exports -------------------------------------------------------------------

class TestChromeTraceExport:
    def test_export_writes_loadable_trace_json(self, trained, tmp_path):
        path = tmp_path / "trace.json"
        count = trained.provider.export_trace(str(path))
        assert count >= 4  # create table/insert/create model/train
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"X", "M"}
        roots = [event for event in events
                 if event["ph"] == "X" and "statement" in event["args"]]
        assert any(event["args"]["kind"] == "TRAIN" for event in roots)
        for event in roots:
            assert event["dur"] > 0
            assert event["args"]["resources"]["cpu_ms"] >= 0.0

    def test_span_offsets_stay_inside_the_statement(self, trained):
        events = chrome_trace_events(trained.provider)
        roots = {}
        for event in events:
            if event["ph"] == "X" and "statement" in event["args"]:
                roots[event["name"]] = event
        assert roots
        for event in events:
            if event["ph"] != "X" or "statement" in event["args"]:
                continue
            parents = [root for root in roots.values()
                       if root["ts"] - 1.0 <= event["ts"] and
                       event["ts"] + event["dur"] <=
                       root["ts"] + root["dur"] + 1000.0]
            assert parents, f"span event {event['name']} outside any root"


class TestActiveRoute:
    def test_active_route_serves_the_live_view(self, conn):
        server = conn.provider.serve_metrics(port=0)
        try:
            status, body = _get(server.url + "/active")
            assert status == 200
            assert json.loads(body) == []

            release = threading.Event()
            started = threading.Event()

            def hold():
                statement = conn.provider.workload.register(
                    12345, "SELECT sleep", kind="SELECT")
                statement.phase = "scan"
                started.set()
                release.wait(5.0)
                conn.provider.workload.finish(statement, status="ok",
                                              duration_ms=1.0)

            thread = threading.Thread(target=hold)
            thread.start()
            try:
                assert started.wait(5.0)
                payload = json.loads(_get(server.url + "/active")[1])
                assert [entry["statement_id"] for entry in payload] == \
                    [12345]
                assert payload[0]["phase"] == "scan"
                assert payload[0]["cancel_requested"] is False
            finally:
                release.set()
                thread.join(5.0)
            assert json.loads(_get(server.url + "/active")[1]) == []
        finally:
            server.close()


class TestTelemetryServerLifecycle:
    def test_repeated_cycles_leak_neither_threads_nor_ports(self, conn):
        baseline = threading.active_count()
        last_port = None
        for _ in range(3):
            server = conn.provider.serve_metrics(port=last_port or 0)
            assert _get(server.url + "/healthz")[0] == 200
            last_port = server.port
            server.close()
            assert server.closed
            server.close()  # idempotent
        # The port was released each cycle (rebound above) and no serving
        # threads are left behind.
        assert threading.active_count() <= baseline + 1
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{last_port}/healthz", timeout=1)

    def test_provider_close_closes_the_attached_server(self):
        conn = repro.connect()
        server = conn.provider.serve_metrics(port=0)
        conn.close()
        assert server.closed
