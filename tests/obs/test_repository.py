"""The workload repository: fingerprints, plan history, plan changes.

Covers the normalizer property suite (idempotence; literals collapse,
structure does not), the deterministic quantile sketch, q-error edge
cases, the plan-change end-to-end path (CREATE INDEX and UPDATE
STATISTICS each flip the active plan and append exactly one
``DM_PLAN_CHANGES`` row), persistence round-trips including corrupt-file
degradation, concurrent aggregation without double-counting, and the
Prometheus ``repro_statement_*`` exposition.
"""

import json
import os
import threading

import pytest

import repro
from repro.lang.normalizer import normalize_statement, statement_fingerprint
from repro.lang.parser import parse_statement
from repro.obs.export import render_statement_families
from repro.obs.repository import QuantileSketch, WorkloadRepository, q_error


# -- fingerprint normalization properties -------------------------------------

PROPERTY_STATEMENTS = [
    "SELECT * FROM Customers",
    "SELECT name, age FROM customers WHERE age > 40 ORDER BY age DESC",
    "SELECT c.name, o.qty FROM Customers AS c JOIN Orders AS o "
    "ON c.cid = o.cid WHERE o.price > 9.5",
    "SELECT city, COUNT(*) AS n FROM Customers GROUP BY city "
    "HAVING COUNT(*) > 10",
    "INSERT INTO T VALUES (1, 'a'), (2, 'b')",
    "DELETE FROM T WHERE id = 7",
    "CREATE TABLE T2 (id INT, name TEXT)",
    "CREATE INDEX idx ON T(id)",
    "UPDATE STATISTICS T",
    "SELECT TOP 5 name FROM Customers WHERE name LIKE 'c0%'",
    "EXPORT MINING MODEL M TO '/tmp/m.json'",
]


@pytest.mark.parametrize("text", PROPERTY_STATEMENTS)
def test_normalization_is_idempotent(text):
    """format -> parse -> normalize is a fixed point: the normalized text
    re-parses and re-normalizes to itself (and hence the same
    fingerprint)."""
    statement = parse_statement(text)
    normalized = normalize_statement(statement)
    again = normalize_statement(parse_statement(normalized))
    assert again == normalized
    assert statement_fingerprint(parse_statement(normalized)) == \
        statement_fingerprint(statement)


def _fingerprint(text):
    return statement_fingerprint(parse_statement(text))


LITERAL_VARIANTS = [
    ("SELECT * FROM T WHERE id = 5", "SELECT * FROM T WHERE id = 99"),
    ("SELECT * FROM T WHERE name = 'alice'",
     "SELECT * FROM T WHERE name = 'bob'"),
    ("SELECT TOP 5 * FROM T WHERE x > 1.5 AND y < 2",
     "SELECT TOP 5 * FROM T WHERE x > 0.25 AND y < 1000"),
    ("INSERT INTO T VALUES (1, 'a')", "INSERT INTO T VALUES (2, 'zz')"),
    ("select * from t where ID = 5", "SELECT * FROM T WHERE id = 7"),
    ("CANCEL 17", "CANCEL 99"),
    ("EXPORT MINING MODEL M TO '/a.json'",
     "EXPORT MINING MODEL M TO '/b.json'"),
]


@pytest.mark.parametrize("left, right", LITERAL_VARIANTS)
def test_literal_changes_collapse_to_one_fingerprint(left, right):
    assert _fingerprint(left) == _fingerprint(right)


STRUCTURAL_VARIANTS = [
    ("SELECT * FROM T WHERE id = 5", "SELECT * FROM T WHERE id > 5"),
    ("SELECT * FROM T WHERE id = 5", "SELECT * FROM T WHERE name = 5"),
    ("SELECT * FROM T", "SELECT * FROM U"),
    ("SELECT a FROM T", "SELECT a, b FROM T"),
    ("SELECT * FROM T WHERE a = 1 AND b = 2",
     "SELECT * FROM T WHERE a = 1 OR b = 2"),
    ("SELECT a FROM T ORDER BY a", "SELECT a FROM T ORDER BY a DESC"),
    ("SELECT city, COUNT(*) AS n FROM T GROUP BY city",
     "SELECT city, SUM(x) AS n FROM T GROUP BY city"),
]


@pytest.mark.parametrize("left, right", STRUCTURAL_VARIANTS)
def test_structural_changes_keep_distinct_fingerprints(left, right):
    assert _fingerprint(left) != _fingerprint(right)


def test_identifier_case_is_folded():
    assert _fingerprint("select name from customers") == \
        _fingerprint("SELECT NAME FROM CUSTOMERS")


# -- quantile sketch ----------------------------------------------------------

def test_sketch_is_exact_before_first_compaction():
    sketch = QuantileSketch(capacity=256)
    for value in range(1, 101):
        sketch.observe(float(value))
    assert sketch.count == 100
    assert sketch.quantile(0.50) == 50.0
    assert sketch.quantile(0.99) == 99.0
    assert sketch.quantile(1.0) == 100.0


def test_sketch_is_deterministic():
    left, right = QuantileSketch(capacity=32), QuantileSketch(capacity=32)
    values = [(i * 7919) % 1000 / 3.0 for i in range(5000)]
    for value in values:
        left.observe(value)
        right.observe(value)
    assert left.samples == right.samples
    assert left.stride == right.stride
    assert left.count == right.count == 5000


def test_sketch_error_stays_bounded_after_compaction():
    sketch = QuantileSketch(capacity=256)
    n = 10_000
    # Deterministic permutation of 0..n-1 (8009 is coprime to 10000).
    for i in range(n):
        sketch.observe(float((i * 8009) % n))
    assert len(sketch.samples) < sketch.capacity
    assert sketch.stride > 1
    for fraction in (0.5, 0.95, 0.99):
        estimate = sketch.quantile(fraction)
        # Rank error ~ stride/n per retained sample; allow a loose 5%.
        assert abs(estimate - fraction * n) <= 0.05 * n


def test_sketch_round_trips_through_dict():
    sketch = QuantileSketch(capacity=16)
    for value in range(100):
        sketch.observe(float(value))
    restored = QuantileSketch.from_dict(sketch.to_dict())
    assert restored.samples == sketch.samples
    assert restored.stride == sketch.stride
    assert restored.count == sketch.count
    assert restored.quantile(0.5) == sketch.quantile(0.5)


# -- q-error ------------------------------------------------------------------

@pytest.mark.parametrize("estimated, actual, expected", [
    (None, 10, None),
    (10, None, None),
    (None, None, None),
    (10.0, 10.0, 1.0),
    (0.0, 0.0, 1.0),     # correct estimate of an empty result
    (0.0, 10.0, None),   # unbounded ratio: undefined, not infinity
    (10.0, 0.0, None),
    (10.0, 5.0, 2.0),
    (5.0, 10.0, 2.0),    # symmetric
    (1.0, 1000.0, 1000.0),
])
def test_q_error_edges(estimated, actual, expected):
    assert q_error(estimated, actual) == expected


# -- end-to-end: aggregates, plan history, plan changes -----------------------

def _load_t(conn, rows=30):
    conn.execute("CREATE TABLE T (id INT, val TEXT)")
    values = ", ".join(f"({i}, 'v{i}')" for i in range(1, rows + 1))
    conn.execute(f"INSERT INTO T VALUES {values}")


QUERY = "SELECT * FROM T WHERE id > 0"


def _stats_row(conn, fingerprint):
    for row in conn.provider.repository.statement_stats():
        if row["fingerprint"] == fingerprint:
            return row
    return None


def test_statement_stats_aggregate_by_fingerprint():
    conn = repro.connect()
    try:
        _load_t(conn)
        for bound in (3, 7, 11, 3):  # literal varies; one shape
            conn.execute(f"SELECT * FROM T WHERE id > {bound}")
        fingerprint = _fingerprint("SELECT * FROM T WHERE id > 0")
        row = _stats_row(conn, fingerprint)
        assert row is not None
        assert row["kind"] == "SELECT"
        assert row["calls"] == 4
        assert row["errors"] == 0
        assert row["rows_returned"] == (30 - 3) + (30 - 7) + (30 - 11) + \
            (30 - 3)
        assert row["statement"] == "SELECT * FROM [T] WHERE ([ID] > '?')"
        assert row["mean_ms"] is not None and row["mean_ms"] >= 0
        assert row["p99_ms"] is not None
        assert row["plan_hash"] is not None
    finally:
        conn.close()


def test_errors_are_counted_per_fingerprint():
    conn = repro.connect()
    try:
        _load_t(conn)
        for _ in range(3):
            with pytest.raises(Exception):
                conn.execute("SELECT nope FROM T WHERE id = 1")
        row = _stats_row(conn, _fingerprint("SELECT nope FROM T WHERE id = 0"))
        assert row is not None
        assert row["calls"] == 3
        assert row["errors"] == 3
    finally:
        conn.close()


def test_plan_change_events_end_to_end():
    """CREATE INDEX then UPDATE STATISTICS each flip the active plan of the
    hot SELECT; each appends exactly one DM_PLAN_CHANGES row."""
    conn = repro.connect(statistics=False)
    try:
        _load_t(conn)
        for _ in range(3):
            conn.execute(QUERY)
        conn.execute("CREATE INDEX idx_id ON T(id)")
        for _ in range(3):
            conn.execute(QUERY)
        conn.execute("UPDATE STATISTICS T")
        for _ in range(3):
            conn.execute(QUERY)

        fingerprint = _fingerprint(QUERY)
        changes = [c for c in conn.provider.repository.plan_changes()
                   if c["fingerprint"] == fingerprint]
        assert len(changes) == 2
        first, second = changes
        assert "CREATE INDEX" in first["trigger"]
        assert second["trigger"] == "UPDATE STATISTICS T"
        for change in changes:
            assert change["old_plan_hash"] != change["new_plan_hash"]
            assert change["before_mean_ms"] is not None
            assert change["after_mean_ms"] is not None
        # The second change reverts to the first plan (stats made the seek
        # unattractive again), so the hashes swap.
        assert second["old_plan_hash"] == first["new_plan_hash"]
        assert second["new_plan_hash"] == first["old_plan_hash"]

        history = [h for h in conn.provider.repository.plan_history_rows()
                   if h["fingerprint"] == fingerprint]
        assert len(history) == 2
        assert sum(1 for h in history if h["active"]) == 1
        assert all(h["executions"] > 0 for h in history)
        assert all(h["skeleton"] for h in history)

        # The same events are visible through the SQL surface.
        rowset = conn.execute("SELECT * FROM $SYSTEM.DM_PLAN_CHANGES")
        names = [c.name for c in rowset.columns]
        visible = [row for row in rowset.rows
                   if row[names.index("FINGERPRINT")] == fingerprint]
        assert len(visible) == 2
    finally:
        conn.close()


def test_rowsets_are_queryable_and_joinable():
    conn = repro.connect()
    try:
        _load_t(conn)
        conn.execute(QUERY)
        stats = conn.execute("SELECT * FROM $SYSTEM.DM_STATEMENT_STATS")
        assert len(stats.rows) >= 1
        history = conn.execute("SELECT * FROM $SYSTEM.DM_PLAN_HISTORY")
        hist_names = [c.name for c in history.columns]
        assert "SKELETON" in hist_names
        # Every active plan hash in stats appears in the history rowset.
        stat_names = [c.name for c in stats.columns]
        hashes = {row[stat_names.index("PLAN_HASH")] for row in stats.rows}
        hashes.discard(None)
        assert hashes
        history_hashes = {row[hist_names.index("PLAN_HASH")]
                          for row in history.rows}
        assert hashes <= history_hashes
    finally:
        conn.close()


def test_repository_kwarg_disables_collection():
    conn = repro.connect(repository=False)
    try:
        _load_t(conn)
        conn.execute(QUERY)
        assert conn.provider.repository.statement_stats() == []
        rowset = conn.execute("SELECT * FROM $SYSTEM.DM_STATEMENT_STATS")
        assert rowset.rows == []
    finally:
        conn.close()


# -- persistence --------------------------------------------------------------

def test_repository_persists_across_restart(tmp_path):
    durable = str(tmp_path / "db")
    fingerprint = _fingerprint(QUERY)
    conn = repro.connect(durable_path=durable)
    try:
        _load_t(conn)
        for _ in range(4):
            conn.execute(QUERY)
    finally:
        conn.close()
    assert os.path.exists(os.path.join(durable, "workload_repository.json"))

    conn = repro.connect(durable_path=durable)
    try:
        row = _stats_row(conn, fingerprint)
        assert row is not None, "aggregates must survive restart"
        # Journal replay must not re-count the replayed statements.
        assert row["calls"] == 4
        conn.execute(QUERY)
        assert _stats_row(conn, fingerprint)["calls"] == 5
    finally:
        conn.close()


def test_corrupt_repository_file_degrades_to_empty(tmp_path):
    durable = str(tmp_path / "db")
    conn = repro.connect(durable_path=durable)
    try:
        _load_t(conn)
        conn.execute(QUERY)
    finally:
        conn.close()

    path = os.path.join(durable, "workload_repository.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{not json at all")
    conn = repro.connect(durable_path=durable)
    try:
        assert conn.provider.repository.statement_stats() == []
        assert conn.provider.metrics.counter(
            "repository.load_errors").value >= 1
        # Still collects fresh data after the failed load.
        conn.execute("SELECT * FROM T")
        assert len(conn.provider.repository.statement_stats()) >= 1
    finally:
        conn.close()


def test_alien_format_version_degrades_to_empty(tmp_path):
    path = str(tmp_path / "workload_repository.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"format": 999, "statements": [{"bogus": True}]}, handle)
    repository = WorkloadRepository(path=path)
    assert repository.statement_stats() == []
    assert len(repository) == 0


def test_save_is_noop_without_changes(tmp_path):
    path = str(tmp_path / "workload_repository.json")
    repository = WorkloadRepository(path=path)
    assert repository.statement_stats() == []
    assert repository.save() is False
    assert not os.path.exists(path)


# -- concurrency --------------------------------------------------------------

def test_concurrent_identical_statements_aggregate_once():
    """Byte-identical statements retiring from many threads fold into ONE
    fingerprint whose calls equal the total executions — no double counts,
    no split entries."""
    conn = repro.connect(max_workers=2, pool_mode="thread")
    try:
        _load_t(conn)
        threads, per_thread = 4, 25
        errors = []

        def hammer():
            try:
                for _ in range(per_thread):
                    conn.execute(QUERY)
            except Exception as exc:  # pragma: no cover - diagnostic only
                errors.append(exc)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert errors == []
        row = _stats_row(conn, _fingerprint(QUERY))
        assert row is not None
        assert row["calls"] == threads * per_thread
        assert row["rows_returned"] == threads * per_thread * 30
    finally:
        conn.close()


def test_two_wire_sessions_aggregate_into_one_fingerprint():
    """Two network sessions running the byte-identical statement
    concurrently: every retirement is counted exactly once (the registry
    keys by unique statement id, so neither session double-retires)."""
    from repro.client import connect as net_connect
    from repro.server import DmxServer

    conn = repro.connect()
    try:
        _load_t(conn)
        with DmxServer(conn.provider, port=0) as server:
            per_session = 20
            errors = []

            def session():
                try:
                    with net_connect("127.0.0.1", server.port) as client:
                        for _ in range(per_session):
                            client.execute(QUERY)
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            workers = [threading.Thread(target=session) for _ in range(2)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            assert errors == []
        assert server.thread_errors == []
        row = _stats_row(conn, _fingerprint(QUERY))
        assert row is not None
        assert row["calls"] == 2 * per_session
        assert row["errors"] == 0
    finally:
        conn.close()


def test_sink_records_carry_fingerprint_and_plan_hash():
    """Slow-sink / /queries records join back to DM_STATEMENT_STATS."""
    from repro.obs.sink import statement_record_dict

    conn = repro.connect()
    try:
        _load_t(conn)
        conn.execute(QUERY)
        record = conn.provider.tracer.last()
        out = statement_record_dict(record)
        assert out["fingerprint"] == _fingerprint(QUERY)
        assert out["plan_hash"] == \
            _stats_row(conn, out["fingerprint"])["plan_hash"]
    finally:
        conn.close()


# -- Prometheus exposition ----------------------------------------------------

def test_statement_families_expose_p99():
    conn = repro.connect()
    try:
        _load_t(conn)
        for _ in range(5):
            conn.execute(QUERY)
        fingerprint = _fingerprint(QUERY)
        row = _stats_row(conn, fingerprint)
        assert row["p99_ms"] is not None
        body = render_statement_families(conn.provider.repository)
        assert f'repro_statement_calls_total{{fingerprint="{fingerprint}"}}' \
            in body
        assert (f'repro_statement_latency_ms{{fingerprint="{fingerprint}",'
                f'quantile="0.99"}}') in body
        assert "repro_statement_plan_changes_total" in body
    finally:
        conn.close()


def test_statement_families_empty_when_disabled():
    conn = repro.connect(repository=False)
    try:
        _load_t(conn)
        conn.execute(QUERY)
        assert render_statement_families(conn.provider.repository) == ""
    finally:
        conn.close()
