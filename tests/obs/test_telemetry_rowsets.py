"""End-to-end observability: telemetry rowsets, the TRACE verb, the CLI."""

import os
import subprocess
import sys

import pytest

import repro
from repro.errors import BindError, CatalogError, ParseError

SETUP = [
    "CREATE TABLE People (id INT, age INT, risk TEXT)",
    "INSERT INTO People VALUES (1, 25, 'low'), (2, 62, 'high'), "
    "(3, 41, 'low'), (4, 70, 'high'), (5, 33, 'low')",
    "CREATE MINING MODEL Risk (id LONG KEY, age LONG CONTINUOUS, "
    "risk TEXT DISCRETE PREDICT) USING Microsoft_Decision_Trees",
    "INSERT INTO Risk (id, age, risk) SELECT id, age, risk FROM People",
]

PREDICT = ("SELECT t.id, Risk.risk FROM Risk NATURAL PREDICTION JOIN "
           "(SELECT id, age FROM People) AS t")


@pytest.fixture
def traced_conn(conn):
    conn.execute("TRACE ON")
    for statement in SETUP:
        conn.execute(statement)
    conn.execute(PREDICT)
    return conn


def _log_rows(conn):
    rowset = conn.execute("SELECT * FROM $SYSTEM.DM_QUERY_LOG")
    return [dict(zip((c.name for c in rowset.columns), row))
            for row in rowset.rows]


class TestQueryLog:
    def test_round_trip_populates_the_log(self, traced_conn):
        rows = _log_rows(traced_conn)
        kinds = [row["KIND"] for row in rows]
        assert kinds == ["CREATE_TABLE", "INSERT", "CREATE_MODEL",
                         "TRAIN", "PREDICT"]
        assert all(row["STATUS"] == "ok" for row in rows)
        assert all(row["DURATION_MS"] >= 0 for row in rows)

    def test_training_row_counts_rows_and_cases(self, traced_conn):
        train = [r for r in _log_rows(traced_conn)
                 if r["KIND"] == "TRAIN"][0]
        assert train["ROWS_SCANNED"] == 5
        assert train["CASES"] == 5
        assert train["SPAN_COUNT"] > 1

    def test_prediction_row_counts_cases(self, traced_conn):
        predict = [r for r in _log_rows(traced_conn)
                   if r["KIND"] == "PREDICT"][0]
        assert predict["CASES"] == 5
        # rows_out sums the predict span and its source scan.
        assert predict["ROWS_OUT"] >= 5

    def test_counters_populate_without_trace_on(self, conn):
        for statement in SETUP:
            conn.execute(statement)
        train = [r for r in _log_rows(conn) if r["KIND"] == "TRAIN"][0]
        # Span capture is off (SPAN_COUNT 1), totals still roll up.
        assert train["SPAN_COUNT"] == 1
        assert train["ROWS_SCANNED"] == 5
        assert train["CASES"] == 5

    def test_log_is_queryable_with_sql(self, traced_conn):
        rowset = traced_conn.execute(
            "SELECT KIND, COUNT(*) AS n FROM $SYSTEM.DM_QUERY_LOG "
            "WHERE STATUS = 'ok' GROUP BY KIND ORDER BY KIND")
        assert len(rowset) >= 5


class TestErrorRows:
    def test_bind_error_logged_with_statement_text(self, conn):
        bad = "SELECT nothing FROM nowhere"
        with pytest.raises(BindError) as excinfo:
            conn.execute(bad)
        assert bad in str(excinfo.value)
        # The in-flight log query is not in the ring yet.
        row = _log_rows(conn)[-1]
        assert row["STATUS"] == "error"
        assert "nowhere" in row["ERROR"]

    def test_parse_error_logged_as_unknown_kind(self, conn):
        with pytest.raises(ParseError) as excinfo:
            conn.execute("SELEC oops")
        assert "[in statement: SELEC oops]" in str(excinfo.value)
        row = _log_rows(conn)[-1]
        assert row["STATUS"] == "error"
        assert row["KIND"] == "UNKNOWN"

    def test_wrapping_preserves_error_attributes(self, conn):
        with pytest.raises(ParseError) as excinfo:
            conn.execute("SELEC oops")
        assert excinfo.value.line is not None

    def test_non_bind_errors_are_not_rewrapped(self, conn):
        with pytest.raises(CatalogError) as excinfo:
            conn.execute("DROP MINING MODEL nope")
        assert "[in statement:" not in str(excinfo.value)
        assert _log_rows(conn)[-1]["STATUS"] == "error"


class TestTraceEvents:
    def test_every_layer_reports_nonzero_counters(self, traced_conn):
        rowset = traced_conn.execute(
            "SELECT * FROM $SYSTEM.DM_TRACE_EVENTS")
        rows = [dict(zip((c.name for c in rowset.columns), row))
                for row in rowset.rows]
        by_span = {}
        for row in rows:
            by_span.setdefault(row["SPAN"], []).append(row["COUNTERS"])

        def counters_of(span):
            return " ".join(c for c in by_span.get(span, []) if c)

        assert "tokens=" in counters_of("parse")
        assert "rows_scanned=" in counters_of("engine.select")
        assert "cases_bound=" in counters_of("bind")
        assert "observations=" in counters_of("algorithm.train")
        assert "prediction_cases=" in counters_of("predict")

    def test_span_ids_encode_nesting(self, traced_conn):
        rowset = traced_conn.execute(
            "SELECT SPAN_ID, PARENT_SPAN_ID, DEPTH "
            "FROM $SYSTEM.DM_TRACE_EVENTS WHERE DEPTH > 0")
        for span_id, parent_id, depth in rowset.rows:
            assert span_id.startswith(parent_id + ".")
            assert span_id.count(".") == depth

    def test_no_child_spans_without_trace_on(self, conn):
        for statement in SETUP:
            conn.execute(statement)
        rowset = conn.execute(
            "SELECT * FROM $SYSTEM.DM_TRACE_EVENTS WHERE DEPTH > 0")
        assert len(rowset) == 0


class TestProviderMetrics:
    def test_statement_and_training_metrics(self, traced_conn):
        rowset = traced_conn.execute(
            "SELECT * FROM $SYSTEM.DM_PROVIDER_METRICS")
        rows = {row[0]: dict(zip((c.name for c in rowset.columns), row))
                for row in rowset.rows}
        assert rows["statements.total"]["VALUE"] >= 5
        assert rows["statements.train.count"]["VALUE"] == 1
        assert rows["training.cases_total"]["VALUE"] == 5
        assert rows["model.Risk.case_count"]["VALUE"] == 5
        assert rows["activity.rows_scanned"]["VALUE"] > 0

    def test_latency_histogram_has_percentiles(self, traced_conn):
        rowset = traced_conn.execute(
            "SELECT * FROM $SYSTEM.DM_PROVIDER_METRICS "
            "WHERE METRIC = 'statements.latency_ms'")
        row = dict(zip((c.name for c in rowset.columns), rowset.rows[0]))
        assert row["KIND"] == "histogram"
        assert row["COUNT"] >= 5
        assert row["P50"] is not None
        assert row["P50"] <= row["P95"] <= row["P99"]

    def test_errors_counter(self, conn):
        with pytest.raises(BindError):
            conn.execute("SELECT x FROM nowhere")
        assert conn.provider.metrics.counter("statements.errors").value == 1


class TestTraceVerb:
    def test_on_off_status(self, conn):
        assert "ON" in conn.execute("TRACE ON")
        assert conn.provider.tracer.enabled
        assert "OFF" in conn.execute("TRACE OFF")
        assert not conn.provider.tracer.enabled
        assert "tracing is OFF" in conn.execute("TRACE STATUS")
        assert "tracing is OFF" in conn.execute("TRACE")

    def test_trace_statements_stay_out_of_the_log(self, conn):
        conn.execute("TRACE ON")
        conn.execute("TRACE STATUS")
        assert len(conn.provider.tracer) == 0

    def test_last_renders_a_span_tree(self, traced_conn):
        report = traced_conn.execute("TRACE LAST")
        assert "PREDICT [ok]" in report
        assert "parse" in report
        assert "predict" in report
        assert "prediction_cases=5" in report

    def test_last_with_empty_ring(self, conn):
        assert "no traced statement in the ring" in \
            conn.execute("TRACE LAST")


class TestRingConfiguration:
    def test_query_log_respects_ring_size(self, conn):
        conn.provider.tracer.resize_ring(3)
        for index in range(6):
            conn.execute(f"SELECT {index} AS v")
        rows = _log_rows(conn)
        assert len(rows) == 3
        assert "SELECT 3" in rows[0]["STATEMENT"]
        assert "SELECT 5" in rows[-1]["STATEMENT"]


class TestUnknownRowsetHint:
    def test_available_rowsets_are_sorted(self, conn):
        with pytest.raises(BindError) as excinfo:
            conn.execute("SELECT * FROM $SYSTEM.BOGUS")
        message = str(excinfo.value)
        listing = message.split("available: ")[1].split(")")[0]
        names = [n.strip() for n in listing.split(",")]
        assert names == sorted(names)
        assert "DM_QUERY_LOG" in names

    def test_close_miss_gets_a_did_you_mean(self, conn):
        with pytest.raises(BindError) as excinfo:
            conn.execute("SELECT * FROM $SYSTEM.MINING_MODEL")
        assert "did you mean MINING_MODELS?" in str(excinfo.value)

    def test_far_miss_gets_no_hint(self, conn):
        with pytest.raises(BindError) as excinfo:
            conn.execute("SELECT * FROM $SYSTEM.ZZZZZZ")
        assert "did you mean" not in str(excinfo.value)


class TestCliTraceLast:
    """Both empty-ring paths print the actionable no-trace message."""

    def _run(self, connection, command):
        import io
        from repro.cli import run_command
        out = io.StringIO()
        run_command(connection, command, out=out)
        return out.getvalue()

    def test_fresh_session_prints_the_hint(self, conn):
        output = self._run(conn, "TRACE LAST")
        assert "no traced statement in the ring" in output
        assert "TRACE ON" in output

    def test_cleared_ring_prints_the_hint(self, conn):
        conn.execute("TRACE ON")
        conn.execute("SELECT 1 AS v")
        assert "no traced statement" not in self._run(conn, "TRACE LAST")
        conn.provider.tracer.clear()
        output = self._run(conn, "TRACE LAST")
        assert "no traced statement in the ring" in output


class TestCliPlanRendering:
    def test_explain_renders_as_a_tree_not_a_table(self, conn):
        import io
        from repro.cli import run_command
        conn.execute("CREATE TABLE T (x INT)")
        conn.execute("INSERT INTO T VALUES (1), (2)")
        out = io.StringIO()
        run_command(conn, "EXPLAIN SELECT * FROM T", out=out)
        output = out.getvalue()
        assert "select" in output
        assert "table scan [T]" in output
        assert "est=2" in output
        assert "OP_ID" not in output  # tree rendering, not the raw rowset
        out = io.StringIO()
        run_command(conn, "EXPLAIN ANALYZE SELECT * FROM T", out=out)
        assert "actual=2" in out.getvalue()


class TestCliTrace:
    def test_module_invocation_with_trace_flag(self, tmp_path):
        script = tmp_path / "smoke.dmx"
        script.write_text(
            "CREATE TABLE t (id INT, v TEXT);\n"
            "INSERT INTO t VALUES (1, 'a'), (2, 'b');\n"
            "SELECT * FROM t;\n"
            "TRACE STATUS;\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")]))
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--trace",
             "--script", str(script)],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__)))))
        assert result.returncode == 0, result.stderr
        assert "engine.select" in result.stdout
        assert "rows_scanned=2" in result.stdout
        assert "tracing is ON" in result.stdout
