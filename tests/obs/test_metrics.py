"""The metrics registry: counters, gauges, bounded histograms."""

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.counter("hits").value == 5

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3)
        registry.gauge("depth").set(7)
        assert registry.gauge("depth").value == 7

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="is a counter, not a gauge"):
            registry.gauge("x")

    def test_snapshot_is_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.gauge("alpha").set(1)
        registry.histogram("mid").observe(2)
        assert [row["name"] for row in registry.snapshot()] == \
            ["alpha", "mid", "zeta"]

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0
        assert "x" not in registry


class TestHistogram:
    def test_exact_aggregates(self):
        histogram = Histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        row = histogram.row()
        assert row["count"] == 4
        assert row["value"] == 10.0
        assert row["min"] == 1.0
        assert row["max"] == 4.0
        assert row["mean"] == 2.5

    def test_nearest_rank_percentiles(self):
        histogram = Histogram("latency")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(0.50) == 50.0
        assert histogram.percentile(0.95) == 95.0
        assert histogram.percentile(0.99) == 99.0

    def test_window_bounds_percentile_memory(self):
        histogram = Histogram("latency", window=10)
        for value in range(1000):
            histogram.observe(float(value))
        # Percentiles see only the last 10 observations...
        assert histogram.percentile(0.5) >= 990.0
        # ...but the exact aggregates cover everything.
        assert histogram.row()["count"] == 1000
        assert histogram.row()["min"] == 0.0
        # The monotonic sum survives eviction too: sum(0..999).
        assert histogram.row()["sum"] == 499500.0
        assert histogram.sum == 499500.0

    def test_empty_histogram_has_null_stats(self):
        histogram = Histogram("latency")
        row = histogram.row()
        assert row["count"] == 0
        assert row["p50"] is None
        assert row["mean"] is None
