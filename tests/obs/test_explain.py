"""EXPLAIN / EXPLAIN ANALYZE: plan shapes, purity, and reconciliation."""

import pytest

from repro.errors import Error, ParseError
from repro.lang.formatter import format_statement
from repro.lang.parser import parse_statement as parse
from repro.obs.explain import is_plan_rowset

SETUP = [
    "CREATE TABLE People (id INT, age INT, risk TEXT)",
    "INSERT INTO People VALUES (1, 25, 'low'), (2, 62, 'high'), "
    "(3, 41, 'low'), (4, 70, 'high'), (5, 33, 'low')",
    "CREATE MINING MODEL Risk (id LONG KEY, age LONG CONTINUOUS, "
    "risk TEXT DISCRETE PREDICT) USING Microsoft_Decision_Trees",
]

TRAIN = "INSERT INTO Risk (id, age, risk) SELECT id, age, risk FROM People"
PREDICT = ("SELECT t.id, Risk.risk FROM Risk NATURAL PREDICTION JOIN "
           "(SELECT id, age FROM People) AS t")


def _rows(conn, statement):
    rowset = conn.execute(statement)
    assert is_plan_rowset(rowset)
    names = [c.name for c in rowset.columns]
    return [dict(zip(names, row)) for row in rowset.rows]


@pytest.fixture
def loaded(conn):
    for statement in SETUP:
        conn.execute(statement)
    return conn


class TestPlanShapes:
    def test_streamed_select_over_table_scan(self, loaded):
        rows = _rows(loaded, "EXPLAIN SELECT * FROM People WHERE age > 30")
        root, scan = rows[0], rows[1]
        assert root["OPERATOR"] == "select"
        assert root["STRATEGY"].startswith("streamed")
        assert root["DETAIL"] == "filtered"
        assert scan["OPERATOR"] == "table scan"
        assert scan["TARGET"] == "People"
        assert scan["EST_ROWS"] == 5
        assert scan["PARENT_ID"] == root["OP_ID"]

    def test_group_by_is_materialized(self, loaded):
        rows = _rows(loaded,
                     "EXPLAIN SELECT risk, COUNT(*) FROM People GROUP BY "
                     "risk")
        assert rows[0]["STRATEGY"].startswith("materialized")

    def test_top_clamps_the_estimate(self, loaded):
        rows = _rows(loaded, "EXPLAIN SELECT TOP 2 * FROM People")
        assert rows[0]["EST_ROWS"] == 2

    def test_hash_join_vs_nested_loop(self, loaded):
        loaded.execute("CREATE TABLE Cities (id INT, city TEXT)")
        hashed = _rows(loaded,
                       "EXPLAIN SELECT * FROM People AS p JOIN Cities AS c "
                       "ON p.id = c.id")
        nested = _rows(loaded,
                       "EXPLAIN SELECT * FROM People AS p JOIN Cities AS c "
                       "ON p.id > c.id")
        join_of = lambda rows: [r for r in rows
                                if r["OPERATOR"] == "join"][0]
        assert "hash" in join_of(hashed)["STRATEGY"]
        assert "nested loop" in join_of(nested)["STRATEGY"]

    def test_train_plan_names_algorithm_and_cache(self, loaded):
        rows = _rows(loaded, f"EXPLAIN {TRAIN}")
        root = rows[0]
        assert root["OPERATOR"] == "train"
        assert root["TARGET"] == "Risk"
        assert root["CACHE"] in ("miss expected", "hit expected", "disabled")
        operators = [r["OPERATOR"] for r in rows]
        assert "fit" in operators or "partitioned refit" in operators
        assert "bind cases" in operators
        assert "table scan" in operators

    def test_prediction_plan_shows_flow_and_cache(self, loaded):
        loaded.execute(TRAIN)
        rows = _rows(loaded, f"EXPLAIN {PREDICT}")
        root = rows[0]
        assert root["OPERATOR"] == "prediction join"
        assert root["TARGET"] == "Risk"
        assert "streamed" in root["STRATEGY"] or \
            "materialized" in root["STRATEGY"]
        assert "expected" in root["CACHE"] or root["CACHE"] == "disabled"

    def test_ddl_plans_are_catalog_only(self, loaded):
        rows = _rows(loaded, "EXPLAIN CREATE TABLE Extra (x INT)")
        assert rows[0]["STRATEGY"] == "catalog only"
        rows = _rows(loaded, "EXPLAIN DROP MINING MODEL Risk")
        assert rows[0]["OPERATOR"] == "drop mining model"

    def test_unsupported_statement_is_an_error(self, loaded):
        with pytest.raises(ParseError):
            loaded.execute("EXPLAIN TRACE ON")


class TestPlainExplainPurity:
    """Plain EXPLAIN must execute no data-path work at all."""

    def test_explain_train_leaves_the_model_untrained(self, loaded):
        loaded.execute(f"EXPLAIN {TRAIN}")
        assert not loaded.provider.model("Risk").is_trained

    def test_explain_insert_leaves_the_table_unchanged(self, loaded):
        loaded.execute("EXPLAIN INSERT INTO People VALUES (9, 9, 'x')")
        assert len(loaded.database.tables["PEOPLE"]) == 5

    def test_explain_create_does_not_create(self, loaded):
        loaded.execute("EXPLAIN CREATE TABLE Ghost (x INT)")
        assert "GHOST" not in loaded.database.tables

    def test_explain_opens_no_engine_or_train_spans(self, loaded):
        loaded.execute("TRACE ON")
        loaded.execute(f"EXPLAIN {TRAIN}")
        record = loaded.provider.tracer.last()
        assert record.kind == "EXPLAIN"
        names = {span.name for span, _ in record.spans()}
        assert not names & {"engine.select", "engine.join", "shape",
                            "algorithm.train", "train.partitioned",
                            "predict", "bind"}

    def test_explain_delete_keeps_rows(self, loaded):
        loaded.execute("EXPLAIN DELETE FROM People")
        assert len(loaded.database.tables["PEOPLE"]) == 5


class TestExplainAnalyze:
    def test_actuals_match_execution(self, loaded):
        rows = _rows(loaded,
                     "EXPLAIN ANALYZE SELECT * FROM People WHERE age > 30")
        root = rows[0]
        assert root["ACTUAL_ROWS"] == 4
        scan = [r for r in rows if r["OPERATOR"] == "table scan"][0]
        assert scan["ACTUAL_ROWS"] == 5  # rows scanned, pre-filter
        assert root["WALL_MS"] is not None and root["WALL_MS"] >= 0

    def test_analyze_train_trains_and_reports_observations(self, loaded):
        rows = _rows(loaded, f"EXPLAIN ANALYZE {TRAIN}")
        assert loaded.provider.model("Risk").is_trained
        fit = [r for r in rows
               if r["OPERATOR"] in ("fit", "partitioned refit")][0]
        assert fit["ACTUAL_ROWS"] is not None and fit["ACTUAL_ROWS"] > 0
        bind = [r for r in rows if r["OPERATOR"] == "bind cases"][0]
        assert bind["ACTUAL_ROWS"] == 5

    def test_analyze_reports_cache_transition(self, loaded):
        loaded.execute(TRAIN)
        first = _rows(loaded, f"EXPLAIN ANALYZE {PREDICT}")[0]
        second = _rows(loaded, f"EXPLAIN ANALYZE {PREDICT}")[0]
        assert "actual miss" in first["CACHE"]
        assert "actual hit" in second["CACHE"]

    def test_analyze_reports_batches(self, loaded):
        rows = _rows(loaded, "EXPLAIN ANALYZE SELECT * FROM People")
        scan = [r for r in rows if r["OPERATOR"] == "table scan"][0]
        assert rows[0]["ACTUAL_BATCHES"] >= 1 or \
            scan["ACTUAL_BATCHES"] is None

    def test_plain_explain_carries_no_actuals(self, loaded):
        rows = _rows(loaded, "EXPLAIN SELECT * FROM People")
        assert all(r["ACTUAL_ROWS"] is None and r["WALL_MS"] is None
                   for r in rows)

    def test_analyze_restores_tracer_state(self, loaded):
        assert not loaded.provider.tracer.enabled
        loaded.execute("EXPLAIN ANALYZE SELECT * FROM People")
        assert not loaded.provider.tracer.enabled
        loaded.execute("TRACE ON")
        loaded.execute("EXPLAIN ANALYZE SELECT * FROM People")
        assert loaded.provider.tracer.enabled

    def test_analyze_kind_lands_in_the_query_log(self, loaded):
        loaded.execute("EXPLAIN ANALYZE SELECT * FROM People")
        kinds = [row[2] for row in loaded.execute(
            "SELECT * FROM $SYSTEM.DM_QUERY_LOG").rows]
        assert "EXPLAIN_ANALYZE" in kinds


class TestParserAndFormatter:
    def test_bare_explain_is_rejected(self):
        with pytest.raises(ParseError, match="expected a statement"):
            parse("EXPLAIN")

    def test_nested_explain_is_rejected(self):
        with pytest.raises(ParseError, match="cannot be nested"):
            parse("EXPLAIN EXPLAIN SELECT 1 AS x")

    def test_explain_trace_is_rejected(self):
        with pytest.raises(ParseError, match="cannot wrap the TRACE verb"):
            parse("EXPLAIN TRACE LAST")

    def test_formatter_round_trip(self):
        for text in ("EXPLAIN SELECT * FROM T",
                     "EXPLAIN ANALYZE SELECT * FROM T"):
            statement = parse(text)
            formatted = format_statement(statement)
            assert format_statement(parse(formatted)) == formatted
            assert formatted.upper().startswith("EXPLAIN")

    def test_kind_classification(self, conn):
        from repro.core.provider import _statement_kind
        assert _statement_kind(
            parse("EXPLAIN SELECT 1 AS x"), conn.provider) == "EXPLAIN"
        assert _statement_kind(
            parse("EXPLAIN ANALYZE SELECT 1 AS x"),
            conn.provider) == "EXPLAIN_ANALYZE"


class TestExplainErrors:
    def test_unknown_table_is_the_same_bind_error(self, conn):
        with pytest.raises(Error, match="nowhere"):
            conn.execute("EXPLAIN SELECT * FROM nowhere")

    def test_unknown_model_delete(self, conn):
        with pytest.raises(Error):
            conn.execute("EXPLAIN DELETE FROM MINING MODEL nope")
