"""EXPLAIN under cost-based planning: estimates, costs, and decisions.

The optimizer's contract with EXPLAIN: with statistics on (the default),
every scan/select/join node carries a non-null ``EST_ROWS`` *and* a
non-null ``COST``, and the decisions the cost model makes — hash-join
build side, index seek vs table scan — are legible in ``STRATEGY``.  The
grid sweep runs every statement shape under EXPLAIN ANALYZE so estimates
sit next to actuals.
"""

import pytest

import repro
from repro.obs.explain import is_plan_rowset

from tests.differential.test_stream_vs_materialize import (
    STATEMENTS,
    TINY_BATCH,
    _load,
)

# Operators the estimator must always cover when statistics are on.
ESTIMATED_OPERATORS = {"table scan", "index seek", "select", "join", "view"}


def _plan_rows(conn, statement):
    rowset = conn.execute(statement)
    assert is_plan_rowset(rowset)
    names = [c.name for c in rowset.columns]
    return [dict(zip(names, row)) for row in rowset.rows]


@pytest.fixture(scope="module")
def grid_conn():
    conn = repro.connect(batch_size=TINY_BATCH, caseset_cache_capacity=0)
    _load(conn)
    yield conn
    conn.close()


@pytest.fixture(scope="module")
def skewed_conn():
    """Tables with a 20:1 cardinality skew so build-side choice is forced."""
    conn = repro.connect()
    conn.execute("CREATE TABLE Big (k INT, payload TEXT)")
    conn.execute("CREATE TABLE Small (k INT, tag TEXT)")
    conn.execute("INSERT INTO Big VALUES " + ", ".join(
        f"({i % 10}, 'p{i:03d}')" for i in range(200)))
    conn.execute("INSERT INTO Small VALUES " + ", ".join(
        f"({i}, 't{i}')" for i in range(10)))
    yield conn
    conn.close()


@pytest.mark.parametrize("statement", STATEMENTS)
def test_every_plan_node_is_estimated_and_costed(grid_conn, statement):
    for row in _plan_rows(grid_conn, f"EXPLAIN ANALYZE {statement}"):
        if row["OPERATOR"] not in ESTIMATED_OPERATORS:
            continue
        label = f"{row['OPERATOR']} [{row.get('TARGET')}] in {statement!r}"
        assert row["EST_ROWS"] is not None, f"no estimate on {label}"
        assert row["EST_ROWS"] >= 0
        assert row["COST"] is not None, f"no cost on {label}"
        assert row["COST"] >= 0


@pytest.mark.parametrize("statement", STATEMENTS)
def test_root_estimates_are_sane_vs_actuals(grid_conn, statement):
    """Estimates are estimates — but the grid is built from uniform-ish
    synthetic data, so the root estimate must stay within a generous
    factor of the actual rows (guards against wildly broken selectivity
    math, not against honest misestimates)."""
    root = _plan_rows(grid_conn, f"EXPLAIN ANALYZE {statement}")[0]
    if root["EST_ROWS"] is None or root["ACTUAL_ROWS"] is None:
        return
    actual = root["ACTUAL_ROWS"]
    estimate = root["EST_ROWS"]
    assert estimate <= max(50 * actual, 200)
    if actual > 0:
        assert estimate >= actual / 50 or estimate >= 1


SKEWED_JOIN = ("EXPLAIN SELECT s.tag, b.payload FROM Small AS s "
               "JOIN Big AS b ON s.k = b.k")


def test_build_side_follows_estimated_cardinality(skewed_conn):
    """Small (10 rows) on the left of Big (200): statistics flip the
    hash build to the estimated-smaller left side."""
    rows = _plan_rows(skewed_conn, SKEWED_JOIN)
    join = next(r for r in rows if r["OPERATOR"] == "join")
    assert "left side build" in join["STRATEGY"]


def test_build_side_keeps_heuristic_without_stats():
    conn = repro.connect(statistics=False)
    conn.execute("CREATE TABLE Big (k INT, payload TEXT)")
    conn.execute("CREATE TABLE Small (k INT, tag TEXT)")
    conn.execute("INSERT INTO Big VALUES " + ", ".join(
        f"({i % 10}, 'p{i:03d}')" for i in range(200)))
    conn.execute("INSERT INTO Small VALUES " + ", ".join(
        f"({i}, 't{i}')" for i in range(10)))
    rows = _plan_rows(conn, SKEWED_JOIN)
    join = next(r for r in rows if r["OPERATOR"] == "join")
    assert "right side" in join["STRATEGY"]
    conn.close()


def test_seek_declines_when_scan_is_cheaper(grid_conn):
    grid_conn.execute("CREATE INDEX ix_opt_age ON Customers (age)")
    try:
        selective = _plan_rows(
            grid_conn, "EXPLAIN SELECT * FROM Customers WHERE age = 25")
        assert any(r["OPERATOR"] == "index seek" for r in selective)
        # age > 0 matches every row: seek cost equals the scan, so the
        # cost model declines the index.
        full = _plan_rows(
            grid_conn, "EXPLAIN SELECT * FROM Customers WHERE age > 0")
        assert all(r["OPERATOR"] != "index seek" for r in full)
        assert any(r["OPERATOR"] == "table scan" for r in full)
    finally:
        grid_conn.execute("DROP INDEX ix_opt_age ON Customers")


def test_prediction_plan_estimates_through_where(grid_conn):
    grid_conn.execute(
        "CREATE MINING MODEL OptSpend (cid LONG KEY, city TEXT DISCRETE, "
        "spend DOUBLE CONTINUOUS PREDICT) USING Repro_Linear_Regression")
    grid_conn.execute("INSERT INTO OptSpend (cid, city, spend) "
                      "SELECT cid, city, spend FROM Customers")
    rows = _plan_rows(
        grid_conn,
        "EXPLAIN SELECT t.cid FROM OptSpend NATURAL PREDICTION JOIN "
        "(SELECT cid, city, spend FROM Customers) AS t "
        "WHERE t.city = 'Austin'")
    root = rows[0]
    assert root["OPERATOR"] == "prediction join"
    assert root["EST_ROWS"] is not None
    # 12 of 60 customers are in Austin; the estimate must reflect the
    # WHERE, not the full source.
    assert root["EST_ROWS"] < 60


def test_update_statistics_plan_and_rowset(grid_conn):
    rows = _plan_rows(grid_conn, "EXPLAIN UPDATE STATISTICS Customers")
    assert rows[0]["OPERATOR"] == "update statistics"
    grid_conn.execute("UPDATE STATISTICS Customers")
    stats = grid_conn.execute(
        "SELECT COLUMN_NAME, ROW_COUNT, NDV FROM "
        "$SYSTEM.DM_COLUMN_STATISTICS WHERE TABLE_NAME = 'Customers'").rows
    assert len(stats) == 5
    assert all(row_count == 60 for _, row_count, _ in stats)
