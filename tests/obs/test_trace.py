"""The trace layer: spans, statement records, the ring, the no-op path."""

import threading

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import NULL_SPAN, Tracer


@pytest.fixture
def tracer():
    t = Tracer(enabled=True)
    previous = obs_trace.activate(t)
    yield t
    obs_trace.deactivate(previous)


class TestSpanNesting:
    def test_spans_nest_under_the_statement_root(self, tracer):
        with tracer.statement("SELECT 1") as record:
            with obs_trace.span("outer"):
                with obs_trace.span("inner"):
                    obs_trace.add("rows", 3)
        root = record.root
        assert [s.name for s in root.children] == ["outer"]
        assert [s.name for s in root.children[0].children] == ["inner"]
        assert root.children[0].children[0].counters["rows"] == 3

    def test_sibling_spans_stay_siblings(self, tracer):
        with tracer.statement("x") as record:
            with obs_trace.span("a"):
                pass
            with obs_trace.span("b"):
                pass
        assert [s.name for s in record.root.children] == ["a", "b"]

    def test_counters_roll_up_in_totals(self, tracer):
        with tracer.statement("x") as record:
            with obs_trace.span("a"):
                obs_trace.add("rows", 2)
                with obs_trace.span("b"):
                    obs_trace.add("rows", 5)
                    obs_trace.add("cases", 1)
        assert record.totals() == {"rows": 7, "cases": 1}

    def test_span_durations_are_measured(self, tracer):
        with tracer.statement("x") as record:
            with obs_trace.span("a"):
                pass
        assert record.duration_ms >= 0
        assert record.root.children[0].duration_ms >= 0

    def test_spans_walk_depth_first_with_depths(self, tracer):
        with tracer.statement("x") as record:
            with obs_trace.span("a"):
                with obs_trace.span("b"):
                    pass
            with obs_trace.span("c"):
                pass
        walked = [(span.name, depth) for span, depth in record.spans()]
        assert walked == [("statement", 0), ("a", 1), ("b", 2), ("c", 1)]

    def test_attributes_are_kept(self, tracer):
        with tracer.statement("x") as record:
            with obs_trace.span("bind", model="M1"):
                pass
        assert record.root.children[0].attributes == {"model": "M1"}


class TestStatementRecords:
    def test_error_statements_capture_type_and_message(self, tracer):
        with pytest.raises(ValueError):
            with tracer.statement("BROKEN"):
                raise ValueError("boom")
        record = tracer.last()
        assert record.status == "error"
        assert record.error == "ValueError: boom"

    def test_statement_ids_are_monotonic(self, tracer):
        for text in ("a", "b", "c"):
            with tracer.statement(text):
                pass
        ids = [r.statement_id for r in tracer.statements()]
        assert ids == sorted(ids)
        assert len(set(ids)) == 3

    def test_on_statement_callback_fires(self, tracer):
        seen = []
        tracer.on_statement = seen.append
        with tracer.statement("x"):
            pass
        assert len(seen) == 1
        assert seen[0].text == "x"


class TestRingBuffer:
    def test_ring_evicts_oldest_first(self):
        tracer = Tracer(ring_size=3)
        for index in range(5):
            with tracer.statement(f"stmt {index}"):
                pass
        texts = [r.text for r in tracer.statements()]
        assert texts == ["stmt 2", "stmt 3", "stmt 4"]
        assert len(tracer) == 3

    def test_resize_keeps_newest(self):
        tracer = Tracer(ring_size=10)
        for index in range(6):
            with tracer.statement(f"stmt {index}"):
                pass
        tracer.resize_ring(2)
        assert [r.text for r in tracer.statements()] == \
            ["stmt 4", "stmt 5"]
        assert tracer.ring_size == 2

    def test_clear_empties_the_ring(self):
        tracer = Tracer()
        with tracer.statement("x"):
            pass
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.last() is None


class TestDisabledPaths:
    def test_spans_are_noops_when_capture_disabled(self):
        tracer = Tracer(enabled=False)
        previous = obs_trace.activate(tracer)
        try:
            with tracer.statement("x") as record:
                with obs_trace.span("a") as span:
                    assert span is NULL_SPAN
                    obs_trace.add("rows", 4)
            # Counters still land on the statement root for the log.
            assert record.totals() == {"rows": 4}
            assert record.root.children == []
        finally:
            obs_trace.deactivate(previous)

    def test_recording_off_produces_null_records(self):
        tracer = Tracer()
        tracer.recording = False
        previous = obs_trace.activate(tracer)
        try:
            with tracer.statement("x") as record:
                record.kind = "SELECT"  # swallowed, not stored
                obs_trace.add("rows", 1)
            assert len(tracer) == 0
        finally:
            obs_trace.deactivate(previous)

    def test_module_helpers_are_noops_without_active_tracer(self):
        assert obs_trace.active_tracer() is None
        with obs_trace.span("orphan") as span:
            assert span is NULL_SPAN
        obs_trace.add("rows", 1)  # must not raise


class TestThreading:
    def test_each_thread_gets_its_own_span_stack(self):
        tracer = Tracer(enabled=True)
        errors = []

        def worker(name):
            previous = obs_trace.activate(tracer)
            try:
                for index in range(20):
                    with tracer.statement(f"{name} {index}") as record:
                        with obs_trace.span(name):
                            obs_trace.add("rows", 1)
                    if [s.name for s in record.root.children] != [name]:
                        errors.append(record)
            finally:
                obs_trace.deactivate(previous)

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(tracer) == 80
