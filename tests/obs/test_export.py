"""Telemetry export: Prometheus exposition format and the JSONL sink.

The exposition parser implemented here is deliberately strict — it
re-implements the text-format grammar (HELP/TYPE comment lines, sample
lines with optional labels, escape rules) rather than fuzzy-matching
substrings, so a malformed rendering fails loudly.
"""

import json
import re

import pytest

from repro.obs.export import (
    CONTENT_TYPE,
    escape_label_value,
    metric_name,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import SlowQuerySink, statement_record_dict
from repro.obs.trace import Tracer

# -- a strict text-format (0.0.4) parser --------------------------------------

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE = re.compile(
    rf"^(?P<name>{_NAME})"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>-?(?:\d+(?:\.\d+)?(?:e-?\d+)?|NaN|[+-]Inf))$")
_LABEL = re.compile(rf'({_NAME})="((?:[^"\\]|\\.)*)"(?:,|$)')


def parse_exposition(text):
    """Parse an exposition into {family: {"type", "help", "samples"}}.

    Raises AssertionError on any line that is not a well-formed comment
    or sample, on samples without a preceding TYPE, and on unescaped
    label values.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    families = {}
    current = None
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families[name] = {"help": help_text, "type": None, "samples": []}
            current = name
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert name in families, f"TYPE before HELP for {name}"
            assert kind in ("counter", "gauge", "summary", "histogram",
                            "untyped"), f"bad type {kind!r}"
            families[name]["type"] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _SAMPLE.match(line)
        assert match, f"malformed sample line: {line!r}"
        name = match.group("name")
        family = name
        for suffix in ("_count", "_sum"):
            if family not in families and family.endswith(suffix):
                family = family[:-len(suffix)]
        assert family in families, f"sample {name} has no HELP/TYPE family"
        assert families[family]["type"] is not None
        labels = {}
        raw = match.group("labels")
        if raw is not None:
            consumed = 0
            for pair in _LABEL.finditer(raw):
                labels[pair.group(1)] = pair.group(2)
                consumed = pair.end()
            assert consumed == len(raw), f"trailing label junk: {raw!r}"
        value = match.group("value")
        families[family]["samples"].append(
            (name, labels, float("nan") if value == "NaN" else float(value)))
    return families


def _sample(families, family, name=None, **labels):
    for sample_name, sample_labels, value in families[family]["samples"]:
        if sample_name == (name or family) and sample_labels == labels:
            return value
    raise KeyError(f"{name or family} {labels} not in {family}")


# -- exposition rendering ------------------------------------------------------

class TestRenderPrometheus:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("statements.total").inc(7)
        registry.gauge("pool.max_workers").set(4)
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.histogram("statements.latency_ms").observe(value)
        return registry

    def test_round_trips_through_the_strict_parser(self):
        families = parse_exposition(render_prometheus(self._registry()))
        assert families["repro_statements_total"]["type"] == "counter"
        assert _sample(families, "repro_statements_total") == 7
        assert families["repro_pool_max_workers"]["type"] == "gauge"
        assert _sample(families, "repro_pool_max_workers") == 4

    def test_histogram_renders_quantiles_count_and_sum(self):
        families = parse_exposition(render_prometheus(self._registry()))
        latency = "repro_statements_latency_ms"
        assert families[latency]["type"] == "summary"
        assert _sample(families, latency, quantile="0.5") == 2.0
        assert _sample(families, latency, name=latency + "_count") == 4
        assert _sample(families, latency, name=latency + "_sum") == 10.0

    def test_histogram_count_and_sum_survive_window_eviction(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", window=8)
        for value in range(1, 1001):
            histogram.observe(float(value))
        families = parse_exposition(render_prometheus(registry))
        # Quantiles see only the last 8 observations...
        assert _sample(families, "repro_h", quantile="0.5") >= 993.0
        # ...the monotonic accumulators never forget: sum(1..1000).
        assert _sample(families, "repro_h", name="repro_h_count") == 1000
        assert _sample(families, "repro_h", name="repro_h_sum") == 500500.0

    def test_info_gauge_with_escaped_labels(self):
        families = parse_exposition(render_prometheus(
            MetricsRegistry(),
            info={"version": "1.0", "note": 'quote " slash \\ nl \n end'}))
        name, labels, value = \
            families["repro_provider_info"]["samples"][0]
        assert value == 1
        assert labels["version"] == "1.0"
        assert labels["note"] == 'quote \\" slash \\\\ nl \\n end'

    def test_empty_histogram_skips_quantiles_keeps_count(self):
        registry = MetricsRegistry()
        registry.histogram("idle")
        families = parse_exposition(render_prometheus(registry))
        names = [s[0] for s in families["repro_idle"]["samples"]]
        assert "repro_idle_count" in names
        assert all("quantile" not in s[1] for s in
                   families["repro_idle"]["samples"])

    def test_golden_exposition_pin(self):
        """Byte-exact pin of a tiny exposition — scrape configs key on it."""
        registry = MetricsRegistry()
        registry.counter("ops").inc(3)
        registry.gauge("depth").set(1.5)
        expected = (
            "# HELP repro_depth gauge depth\n"
            "# TYPE repro_depth gauge\n"
            "repro_depth 1.5\n"
            "# HELP repro_ops counter ops\n"
            "# TYPE repro_ops counter\n"
            "repro_ops 3\n")
        assert render_prometheus(registry) == expected

    def test_name_sanitization(self):
        assert metric_name("statements.latency_ms") == \
            "repro_statements_latency_ms"
        assert metric_name("model.My Model!.cases") == \
            "repro_model_My_Model__cases"
        assert metric_name("9lives", namespace="") == "_9lives"

    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_content_type_is_the_exposition_version(self):
        assert "version=0.0.4" in CONTENT_TYPE

    def test_live_provider_exposition_parses(self, conn):
        conn.execute("CREATE TABLE T (x INT)")
        conn.execute("INSERT INTO T VALUES (1), (2)")
        conn.execute("SELECT * FROM T")
        families = parse_exposition(
            render_prometheus(conn.provider.metrics))
        assert _sample(families, "repro_statements_total") >= 3
        latency = "repro_statements_latency_ms"
        assert _sample(families, latency, name=latency + "_count") >= 3


# -- the JSONL slow-query sink -------------------------------------------------

def _record(tracer, text="SELECT 1", duration_ms=5.0):
    with tracer.statement(text, kind="SELECT") as record:
        pass
    record.duration_ms = duration_ms
    return record


class TestSlowQuerySink:
    def test_record_schema_is_pinned(self, tmp_path):
        """The JSONL record keys are a contract for log shippers."""
        tracer = Tracer()
        sink = SlowQuerySink(str(tmp_path / "slow.jsonl"))
        assert sink.maybe_write(_record(tracer))
        record = sink.records()[0]
        assert sorted(record) == [
            "counters", "duration_ms", "error", "kind", "span_count",
            "started_at", "statement", "statement_id", "status", "thread",
        ]
        assert record["kind"] == "SELECT"
        assert record["status"] == "ok"
        assert record["thread"]
        assert record["started_at"].endswith("+00:00")

    def test_span_tree_included_only_when_captured(self, tmp_path):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.statement("SELECT 2", kind="SELECT") as record:
            with tracer.start_span("engine.select") as span:
                span.add("rows_out", 2)
        record.duration_ms = 1.0
        sink = SlowQuerySink(str(tmp_path / "slow.jsonl"))
        sink.maybe_write(record)
        stored = sink.records()[0]
        assert stored["spans"][0]["name"] == "engine.select"
        assert stored["spans"][0]["counters"] == {"rows_out": 2}

    def test_threshold_filters_fast_statements(self, tmp_path):
        tracer = Tracer()
        sink = SlowQuerySink(str(tmp_path / "slow.jsonl"), threshold_ms=10.0)
        assert not sink.maybe_write(_record(tracer, duration_ms=5.0))
        assert sink.maybe_write(_record(tracer, duration_ms=15.0))
        assert len(sink.records()) == 1

    def test_rotation_shifts_backups(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        sink = SlowQuerySink(str(path), max_bytes=300, backups=2)
        tracer = Tracer()
        for index in range(40):
            sink.maybe_write(_record(tracer, text=f"SELECT {index} AS v"))
        assert path.exists()
        assert (tmp_path / "slow.jsonl.1").exists()
        # Every rotated file still holds valid JSONL.
        for rotated in tmp_path.glob("slow.jsonl*"):
            for line in rotated.read_text().splitlines():
                json.loads(line)

    def test_write_failure_disables_the_sink(self, tmp_path):
        sink = SlowQuerySink(str(tmp_path / "slow.jsonl"))
        sink.path = str(tmp_path)  # a directory: open(...) raises OSError
        assert not sink.maybe_write(_record(Tracer()))
        assert sink.broken
        assert not sink.maybe_write(_record(Tracer()))

    def test_provider_wiring_via_connect_kwargs(self, tmp_path):
        import repro
        path = tmp_path / "telemetry" / "slow.jsonl"
        conn = repro.connect(telemetry_path=str(path), slow_query_ms=0.0)
        try:
            conn.execute("CREATE TABLE T (x INT)")
            conn.execute("SELECT 1 AS v")
            records = conn.provider.slow_sink.records()
            assert [r["kind"] for r in records] == ["CREATE_TABLE", "SELECT"]
            assert all(r["statement_id"] > 0 for r in records)
        finally:
            conn.close()

    def test_threshold_keeps_fast_statements_out_of_the_file(self, tmp_path):
        import repro
        path = tmp_path / "slow.jsonl"
        conn = repro.connect(telemetry_path=str(path), slow_query_ms=10_000)
        try:
            conn.execute("SELECT 1 AS v")
            assert conn.provider.slow_sink.records() == []
        finally:
            conn.close()
