"""Concurrent statement execution vs the query-log ring.

The ring is a bounded deque shared by every executing thread; eviction
under pressure must never produce a snapshot with duplicated, reordered,
or torn records.  These tests hammer one provider from many threads while
a reader snapshots continuously.
"""

import threading

import pytest

THREADS = 6
STATEMENTS_PER_THREAD = 40


@pytest.fixture
def loaded(conn):
    conn.execute("CREATE TABLE T (x INT)")
    conn.execute("INSERT INTO T VALUES (1), (2), (3)")
    return conn


def _hammer(conn, errors):
    try:
        for _ in range(STATEMENTS_PER_THREAD):
            conn.execute("SELECT * FROM T")
    except Exception as exc:  # pragma: no cover - the assertion payload
        errors.append(exc)


class TestConcurrentRing:
    def test_snapshots_stay_consistent_under_eviction(self, loaded):
        loaded.provider.tracer.resize_ring(16)
        errors: list = []
        stop = threading.Event()
        snapshots: list = []

        def reader():
            while not stop.is_set():
                snapshots.append(loaded.provider.tracer.statements())

        workers = [threading.Thread(target=_hammer, args=(loaded, errors))
                   for _ in range(THREADS)]
        observer = threading.Thread(target=reader)
        observer.start()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop.set()
        observer.join()

        assert not errors
        assert snapshots
        for snapshot in snapshots:
            ids = [record.statement_id for record in snapshot]
            # No duplicates and never more than the ring holds.  The ring
            # is completion-ordered, so ids need not be sorted — a long
            # statement lands after later-started short ones — but no id
            # may appear twice and no snapshot may tear mid-eviction.
            assert len(ids) == len(set(ids))
            assert len(ids) <= 16
            assert all(record.status == "ok" for record in snapshot)

    def test_statement_ids_are_unique_across_threads(self, loaded):
        loaded.provider.tracer.resize_ring(
            THREADS * STATEMENTS_PER_THREAD + 10)
        errors: list = []
        workers = [threading.Thread(target=_hammer, args=(loaded, errors))
                   for _ in range(THREADS)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors
        records = [r for r in loaded.provider.tracer.statements()
                   if "FROM T" in r.text]
        assert len(records) == THREADS * STATEMENTS_PER_THREAD
        ids = [record.statement_id for record in records]
        assert len(set(ids)) == len(ids)

    def test_thread_names_are_recorded(self, loaded):
        loaded.provider.tracer.resize_ring(64)
        done = threading.Event()

        def run():
            loaded.execute("SELECT * FROM T")
            done.set()

        thread = threading.Thread(target=run, name="worker-obs-test")
        thread.start()
        thread.join()
        assert done.is_set()
        threads = {record.thread
                   for record in loaded.provider.tracer.statements()}
        assert "worker-obs-test" in threads
        rowset = loaded.execute(
            "SELECT THREAD FROM $SYSTEM.DM_QUERY_LOG "
            "WHERE THREAD = 'worker-obs-test'")
        assert len(rowset) == 1
