"""Model content rendering for every model family."""

import pytest

import repro
from repro.reporting import (
    render_clusters,
    render_model,
    render_regression,
    render_rules,
    render_sequences,
    render_tree,
)


@pytest.fixture
def data_conn(conn):
    conn.execute("CREATE TABLE T (Id LONG, G TEXT, V DOUBLE, L TEXT)")
    rows = ", ".join(
        f"({i}, '{'a' if i % 2 else 'b'}', {float(i % 10)}, "
        f"'{'x' if i % 2 else 'y'}')" for i in range(1, 61))
    conn.execute(f"INSERT INTO T VALUES {rows}")
    return conn


def train(conn, name, ddl_body, algorithm, insert=None):
    conn.execute(f"CREATE MINING MODEL [{name}] ({ddl_body}) "
                 f"USING {algorithm}")
    conn.execute(insert or f"INSERT INTO [{name}] SELECT Id, G, V, L FROM T")
    return conn.model(name)


class TestRenderTree:
    def test_indentation_reflects_depth(self, data_conn):
        model = train(data_conn, "Tree",
                      "Id LONG KEY, G TEXT DISCRETE, V DOUBLE CONTINUOUS, "
                      "L TEXT DISCRETE PREDICT",
                      "Repro_Decision_Trees(MINIMUM_SUPPORT = 2)")
        text = render_tree(model.content_root().children[0])
        lines = text.splitlines()
        assert lines[0].startswith("L [")
        assert any(line.startswith(("|- ", "`- ")) for line in lines[1:])
        # grandchildren, if any, are indented beyond their parents
        depths = [len(line) - len(line.lstrip("| `-")) for line in lines]
        assert max(depths) >= 0

    def test_render_model_dispatches_to_tree(self, data_conn):
        model = train(data_conn, "Tree2",
                      "Id LONG KEY, G TEXT DISCRETE, L TEXT DISCRETE "
                      "PREDICT",
                      "Repro_Decision_Trees(MINIMUM_SUPPORT = 2)",
                      insert="INSERT INTO [Tree2] SELECT Id, G, L FROM T")
        text = render_model(model)
        assert "Repro_Decision_Trees" in text
        assert "G = " in text  # the split captions


class TestRenderClusters:
    def test_cluster_cards(self, data_conn):
        model = train(data_conn, "Clu",
                      "Id LONG KEY, G TEXT DISCRETE, V DOUBLE CONTINUOUS",
                      "Repro_Clustering(CLUSTER_COUNT = 2)")
        text = render_model(model)
        assert "Cluster 1" in text and "Cluster 2" in text
        assert "% of population" in text

    def test_heaviest_cluster_first(self, data_conn):
        model = train(data_conn, "Clu2",
                      "Id LONG KEY, G TEXT DISCRETE, V DOUBLE CONTINUOUS",
                      "Repro_KMeans(CLUSTER_COUNT = 2)")
        text = render_clusters(model.content_root())
        first_support = float(text.splitlines()[0].split("(")[1]
                              .split(" ")[0])
        assert first_support >= 60 / 2  # the larger half


class TestRenderRules:
    def test_rules_listing(self, conn):
        conn.execute("CREATE TABLE B (Id LONG, P TEXT)")
        rows = []
        for i in range(40):
            rows.append(f"({i}, 'beer')")
            rows.append(f"({i}, 'chips')")
            if i % 2:
                rows.append(f"({i}, 'salsa')")
        conn.execute("INSERT INTO B VALUES " + ", ".join(rows))
        conn.execute("CREATE MINING MODEL [Bask] (Id LONG KEY, "
                     "N TABLE(P TEXT KEY) PREDICT) "
                     "USING Apriori(MINIMUM_SUPPORT = 0.2, "
                     "MINIMUM_PROBABILITY = 0.5)")
        conn.execute("INSERT INTO [Bask] (Id, N(P)) "
                     "SHAPE {SELECT DISTINCT Id FROM B ORDER BY Id} "
                     "APPEND ({SELECT Id AS BID, P FROM B} "
                     "RELATE Id TO BID) AS N")
        text = render_model(conn.model("Bask"))
        assert "rules" in text and "confidence" in text
        assert "beer" in text


class TestRenderRegression:
    def test_coefficients_table(self, data_conn):
        model = train(data_conn, "Reg",
                      "Id LONG KEY, G TEXT DISCRETE, "
                      "V DOUBLE CONTINUOUS PREDICT",
                      "Repro_Linear_Regression",
                      insert="INSERT INTO [Reg] SELECT Id, G, V FROM T")
        text = render_model(model)
        assert "(intercept)" in text
        assert "R^2" in text


class TestRenderSequences:
    def test_transition_summary(self, conn):
        conn.execute("CREATE TABLE E (Id LONG, S LONG, P TEXT)")
        rows = []
        for i in range(20):
            for step, page in enumerate(["A", "B", "C"]):
                rows.append(f"({i}, {step}, '{page}')")
        conn.execute("INSERT INTO E VALUES " + ", ".join(rows))
        conn.execute("CREATE MINING MODEL [Seq] (Id LONG KEY, "
                     "N TABLE(S LONG KEY SEQUENCE_TIME, P TEXT DISCRETE)) "
                     "USING Repro_Sequence_Clustering(CLUSTER_COUNT = 1)")
        conn.execute("INSERT INTO [Seq] (Id, N(S, P)) "
                     "SHAPE {SELECT DISTINCT Id FROM E ORDER BY Id} "
                     "APPEND ({SELECT Id AS EID, S, P FROM E "
                     "ORDER BY Id, S} RELATE Id TO EID) AS N")
        text = render_model(conn.model("Seq"))
        assert "Chain 1" in text
        assert "->" in text


class TestCliDescribe:
    def test_describe_meta_command(self, data_conn):
        import io
        from repro.cli import run_meta
        train(data_conn, "Desc",
              "Id LONG KEY, G TEXT DISCRETE, L TEXT DISCRETE PREDICT",
              "Repro_Naive_Bayes",
              insert="INSERT INTO [Desc] SELECT Id, G, L FROM T")
        out = io.StringIO()
        run_meta(data_conn, ".describe Desc", out=out)
        assert "Repro_Naive_Bayes" in out.getvalue()

    def test_describe_unknown_model(self, conn):
        import io
        from repro.cli import run_meta
        out = io.StringIO()
        run_meta(conn, ".describe Ghost", out=out)
        assert "error" in out.getvalue()

    def test_describe_without_name(self, conn):
        import io
        from repro.cli import run_meta
        out = io.StringIO()
        run_meta(conn, ".describe", out=out)
        assert "usage" in out.getvalue()
