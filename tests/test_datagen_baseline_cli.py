"""The synthetic warehouse, the external-pipeline baseline, and the shell."""

import io
import os

import pytest

import repro
from repro.baseline import run_external_pipeline, run_in_provider_pipeline
from repro.cli import main as cli_main, run_command, run_meta
from repro.core.provider import split_statements
from repro.datagen import (
    PAPER_CUSTOMER,
    WarehouseConfig,
    generate_warehouse,
    load_warehouse,
)


class TestWarehouseGenerator:
    def test_paper_customer_is_exact(self):
        data = generate_warehouse(WarehouseConfig(customers=1))
        assert data.customers[0] == (1, "Male", "Black", 35.0, 1.0)
        purchases = [(p, q, t) for c, p, q, t in data.sales if c == 1]
        assert purchases == PAPER_CUSTOMER["purchases"]
        cars = [(car, p) for c, car, p in data.cars if c == 1]
        assert cars == PAPER_CUSTOMER["cars"]

    def test_deterministic_given_seed(self):
        a = generate_warehouse(WarehouseConfig(customers=50, seed=3))
        b = generate_warehouse(WarehouseConfig(customers=50, seed=3))
        assert a.customers == b.customers
        assert a.sales == b.sales

    def test_different_seeds_differ(self):
        a = generate_warehouse(WarehouseConfig(customers=50, seed=3))
        b = generate_warehouse(WarehouseConfig(customers=50, seed=4))
        assert a.sales != b.sales

    def test_segments_drive_age(self):
        data = generate_warehouse(WarehouseConfig(customers=400))
        ages = {"student": [], "retired": []}
        for cid, gender, hair, age, _ in data.customers:
            segment = data.segments[cid]
            if segment in ages:
                ages[segment].append(age)
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(ages["student"]) < 30 < 55 < mean(ages["retired"])

    def test_load_creates_three_tables(self, conn):
        load_warehouse(conn.database, WarehouseConfig(customers=20))
        for table in ("Customers", "Sales", "Car Ownership"):
            assert conn.database.has_table(table)
        assert conn.execute(
            "SELECT COUNT(*) FROM Customers").single_value() == 20

    def test_uncertain_cars_have_probabilities(self):
        data = generate_warehouse(WarehouseConfig(customers=300,
                                                  uncertain_cars=True))
        probabilities = {p for _, _, p in data.cars}
        assert any(p < 1.0 for p in probabilities)

    def test_certain_cars_config(self):
        data = generate_warehouse(WarehouseConfig(
            customers=300, uncertain_cars=False,
            include_paper_customer=False))
        assert all(p == 1.0 for _, _, p in data.cars)


class TestExternalBaseline:
    def test_both_pipelines_produce_predictions(self, conn, tmp_path):
        load_warehouse(conn.database, WarehouseConfig(customers=120))
        in_db = run_in_provider_pipeline(conn.provider)
        external, stats = run_external_pipeline(conn.provider,
                                                str(tmp_path))
        assert len(in_db) == 120
        assert len(external) == 120

    def test_external_pipeline_leaves_file_droppings(self, conn, tmp_path):
        load_warehouse(conn.database, WarehouseConfig(customers=60))
        _, stats = run_external_pipeline(conn.provider, str(tmp_path))
        # export x2 + prepared + predictions = the paper's "trail of
        # droppings in the file system"
        assert len(stats.files_written) == 4
        assert stats.bytes_written > 0
        for path in stats.files_written:
            assert os.path.exists(path)

    def test_predictions_agree_between_pipelines(self, conn, tmp_path):
        load_warehouse(conn.database, WarehouseConfig(customers=120))
        in_db = run_in_provider_pipeline(conn.provider)
        external, _ = run_external_pipeline(conn.provider, str(tmp_path))
        in_db_map = dict(in_db.rows)
        external_map = dict(external.rows)
        agree = sum(1 for k in in_db_map
                    if str(in_db_map[k]) == str(external_map[k]))
        # identical algorithm + data => identical predictions
        assert agree == len(in_db_map)


class TestStatementSplitter:
    def test_splits_on_semicolons(self):
        parts = split_statements("SELECT 1; SELECT 2;")
        assert parts == ["SELECT 1", "SELECT 2"]

    def test_ignores_semicolons_in_strings_and_brackets(self):
        parts = split_statements(
            "SELECT 'a;b' FROM [weird;name]; SELECT 2")
        assert len(parts) == 2
        assert "[weird;name]" in parts[0]

    def test_ignores_semicolons_in_comments(self):
        parts = split_statements("SELECT 1 -- not; here\n; SELECT 2")
        assert len(parts) == 2

    def test_block_comments(self):
        parts = split_statements("SELECT 1 /* a;b */; SELECT 2")
        assert len(parts) == 2


class TestCli:
    def test_run_command_prints_rowsets(self, conn):
        out = io.StringIO()
        run_command(conn, "SELECT 1 AS one", out=out)
        text = out.getvalue()
        assert "one" in text and "(1 rows)" in text

    def test_run_command_prints_counts(self, conn):
        out = io.StringIO()
        conn.execute("CREATE TABLE T (a LONG)")
        run_command(conn, "INSERT INTO T VALUES (1), (2)", out=out)
        assert "OK (2 rows affected)" in out.getvalue()

    def test_meta_commands(self, conn):
        out = io.StringIO()
        assert run_meta(conn, ".help", out=out)
        assert "PREDICTION JOIN" in out.getvalue()
        assert run_meta(conn, ".models", out=out)
        assert run_meta(conn, ".tables", out=out)
        assert not run_meta(conn, ".quit", out=out)
        assert run_meta(conn, ".bogus", out=out)

    def test_script_mode(self, tmp_path, capsys):
        script = tmp_path / "script.dmx"
        script.write_text(
            "CREATE TABLE T (a LONG);\n"
            "INSERT INTO T VALUES (1), (2);\n"
            "SELECT COUNT(*) AS n FROM T;\n")
        exit_code = cli_main(["--script", str(script)])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "n" in captured.out

    def test_script_mode_error_exit_code(self, tmp_path, capsys):
        script = tmp_path / "bad.dmx"
        script.write_text("SELECT * FROM Missing;")
        assert cli_main(["--script", str(script)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_demo_flag(self, tmp_path, capsys):
        script = tmp_path / "demo.dmx"
        script.write_text("SELECT COUNT(*) AS n FROM Customers;")
        assert cli_main(["--demo", "25", "--script", str(script)]) == 0
        assert "25" in capsys.readouterr().out


class TestRepl:
    def test_repl_executes_and_quits(self, monkeypatch, capsys):
        import repro
        from repro.cli import repl
        lines = iter([
            "SELECT 1 AS one;",
            ".models",
            "SELECT * FROM",       # continuation buffering...
            "$SYSTEM.MINING_SERVICES;",
            "SELEKT nonsense;",    # parse error is reported, loop survives
            ".quit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt: next(lines))
        repl(repro.connect())
        output = capsys.readouterr().out
        assert "one" in output
        assert "Repro_Decision_Trees" in output
        assert "error:" in output

    def test_repl_exits_on_eof(self, monkeypatch, capsys):
        import repro
        from repro.cli import repl

        def raise_eof(prompt):
            raise EOFError

        monkeypatch.setattr("builtins.input", raise_eof)
        repl(repro.connect())  # must return, not raise
