"""Seeded-random round-trip property: parse(format(parse(s))) == parse(s).

A deterministic :class:`random.Random` drives a grammar walker that emits
statement *strings* across the whole SQL/DMX surface — SELECT with every
clause, joins, unions, DML, CREATE MINING MODEL, SHAPE training inserts,
PREDICTION JOIN.  For each generated string the parsed AST must survive a
format/re-parse cycle unchanged; AST nodes are dataclasses, so ``==`` is
deep structural equality.  No third-party dependency is involved (the
hypothesis-based suite in tests/property covers AST-first generation; this
one is string-first and reproducible from a single seed).
"""

import random

import pytest

from repro.lang.formatter import format_statement
from repro.lang.parser import parse_statement

IDENTS = ["Customers", "Orders", "Age", "Gender", "Product Name", "qty",
          "cid", "city", "spend", "T1", "nested_x", "Risk Model"]
STRINGS = ["low", "high", "TV", "It's fine", "a b c"]
FUNCS = ["COUNT", "SUM", "AVG", "MIN", "MAX", "UPPER", "LEN"]
ALGORITHMS = ["Microsoft_Decision_Trees", "Cluster_101"]
DATA_TYPES = ["LONG", "DOUBLE", "TEXT", "DATE"]
CONTENT_TYPES = ["DISCRETE", "CONTINUOUS", "KEY"]


class StatementGenerator:
    """Grammar walker over the provider's statement surface."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    def choice(self, items):
        return self.rng.choice(items)

    def ident(self) -> str:
        name = self.choice(IDENTS)
        return f"[{name}]" if (" " in name or self.rng.random() < 0.3) \
            else name

    def literal(self) -> str:
        kind = self.rng.randrange(5)
        if kind == 0:
            return str(self.rng.randrange(0, 1000))
        if kind == 1:
            return f"{self.rng.randrange(0, 100)}.{self.rng.randrange(1, 10)}"
        if kind == 2:
            return "'" + self.choice(STRINGS).replace("'", "''") + "'"
        if kind == 3:
            return "NULL"
        return self.choice(["TRUE", "FALSE"])

    def column(self) -> str:
        parts = [self.ident()]
        if self.rng.random() < 0.3:
            parts.append(self.ident())
        return ".".join(parts)

    def arith(self, depth: int = 0) -> str:
        """A value expression: no comparison/boolean operators at the top."""
        if depth >= 3 or self.rng.random() < 0.4:
            return self.column() if self.rng.random() < 0.6 \
                else self.literal()
        kind = self.rng.randrange(4)
        if kind == 0:
            op = self.choice(["+", "-", "*", "/"])
            return f"{self.arith(depth + 1)} {op} {self.arith(depth + 1)}"
        if kind == 1:
            name = self.choice(FUNCS)
            if name == "COUNT" and self.rng.random() < 0.5:
                return "COUNT(*)"
            return f"{name}({self.arith(depth + 1)})"
        if kind == 2:
            return f"({self.arith(depth + 1)})"
        whens = " ".join(
            f"WHEN {self.condition(depth + 1)} THEN {self.arith(depth + 1)}"
            for _ in range(self.rng.randrange(1, 3)))
        tail = f" ELSE {self.arith(depth + 1)}" \
            if self.rng.random() < 0.5 else ""
        return f"CASE {whens}{tail} END"

    def condition(self, depth: int = 0) -> str:
        """A boolean expression; comparisons never nest inside comparisons."""
        if depth < 2:
            roll = self.rng.random()
            if roll < 0.2:
                op = self.choice(["AND", "OR"])
                return (f"{self.condition(depth + 1)} {op} "
                        f"{self.condition(depth + 1)}")
            if roll < 0.3:
                return f"NOT ({self.condition(depth + 1)})"
        kind = self.rng.randrange(5)
        if kind == 0:
            suffix = self.choice(["IS NULL", "IS NOT NULL"])
            return f"{self.column()} {suffix}"
        if kind == 1:
            values = ", ".join(self.literal() for _ in range(
                self.rng.randrange(1, 4)))
            negated = "NOT IN" if self.rng.random() < 0.3 else "IN"
            return f"{self.column()} {negated} ({values})"
        if kind == 2:
            return (f"{self.column()} BETWEEN {self.arith(depth + 1)} "
                    f"AND {self.arith(depth + 1)}")
        if kind == 3:
            return f"{self.column()} LIKE '{self.choice(['a%', '%b', 'c_'])}'"
        op = self.choice(["=", "<>", "<", ">", "<=", ">="])
        return f"{self.arith(depth + 1)} {op} {self.arith(depth + 1)}"

    def expr(self, depth: int = 0) -> str:
        """A select-list item: a value expression or a single condition."""
        if self.rng.random() < 0.2:
            return self.condition(2)  # depth 2: one plain predicate
        return self.arith(depth)

    def simple_ref(self, depth: int = 0) -> str:
        if depth < 2 and self.rng.random() < 0.2:
            return f"({self.select(depth + 1)}) AS {self.ident()}"
        alias = f" AS {self.ident()}" if self.rng.random() < 0.4 else ""
        return self.ident() + alias

    def table_ref(self, depth: int = 0) -> str:
        roll = self.rng.random()
        if depth >= 2 or roll < 0.5:
            alias = f" AS {self.ident()}" if self.rng.random() < 0.4 else ""
            return self.ident() + alias
        if roll < 0.7:
            return f"({self.select(depth + 1)}) AS {self.ident()}"
        # Joins associate left; a join on the right-hand side with its own
        # deferred ON clause is unparseable, so right operands stay simple.
        kind = self.choice(["JOIN", "INNER JOIN", "LEFT JOIN"])
        left = self.table_ref(depth + 1)
        right = self.simple_ref(depth + 1)
        if self.rng.random() < 0.2:
            return f"{left} CROSS JOIN {right}"
        return f"{left} {kind} {right} ON {self.condition()}"

    def select(self, depth: int = 0) -> str:
        parts = ["SELECT"]
        if self.rng.random() < 0.15:
            parts.append(f"TOP {self.rng.randrange(1, 50)}")
        if self.rng.random() < 0.15:
            parts.append("DISTINCT")
        if self.rng.random() < 0.1:
            parts.append("*")
        else:
            items = []
            for _ in range(self.rng.randrange(1, 4)):
                item = self.expr()
                if self.rng.random() < 0.4:
                    item += f" AS {self.ident()}"
                items.append(item)
            parts.append(", ".join(items))
        parts.append(f"FROM {self.table_ref(depth)}")
        if self.rng.random() < 0.5:
            parts.append(f"WHERE {self.condition()}")
        if self.rng.random() < 0.3:
            group = ", ".join(self.column() for _ in range(
                self.rng.randrange(1, 3)))
            parts.append(f"GROUP BY {group}")
            if self.rng.random() < 0.5:
                parts.append(f"HAVING {self.condition()}")
        if self.rng.random() < 0.3:
            orders = []
            for _ in range(self.rng.randrange(1, 3)):
                order = self.expr()
                if self.rng.random() < 0.5:
                    order += " DESC"
                orders.append(order)
            parts.append("ORDER BY " + ", ".join(orders))
        return " ".join(parts)

    def union(self) -> str:
        branches = [self.select() for _ in range(self.rng.randrange(2, 4))]
        glue = [" UNION ALL " if self.rng.random() < 0.5 else " UNION "
                for _ in branches[1:]]
        out = branches[0]
        for sep, branch in zip(glue, branches[1:]):
            out += sep + branch
        return out

    def insert_values(self) -> str:
        columns = ", ".join(self.ident() for _ in range(3))
        rows = ", ".join(
            "(" + ", ".join(self.literal() for _ in range(3)) + ")"
            for _ in range(self.rng.randrange(1, 4)))
        return f"INSERT INTO {self.ident()} ({columns}) VALUES {rows}"

    def create_table(self) -> str:
        columns = ", ".join(
            f"{self.ident()} {self.choice(['INT', 'TEXT', 'DOUBLE'])}"
            for _ in range(self.rng.randrange(1, 5)))
        return f"CREATE TABLE {self.ident()} ({columns})"

    def delete(self) -> str:
        where = f" WHERE {self.condition()}" if self.rng.random() < 0.7 \
            else ""
        return f"DELETE FROM {self.ident()}{where}"

    def update(self) -> str:
        sets = ", ".join(f"{self.ident()} = {self.expr()}"
                         for _ in range(self.rng.randrange(1, 3)))
        where = f" WHERE {self.condition()}" if self.rng.random() < 0.7 \
            else ""
        return f"UPDATE {self.ident()} SET {sets}{where}"

    def create_model(self) -> str:
        columns = [f"{self.ident()} LONG KEY"]
        for _ in range(self.rng.randrange(1, 4)):
            column = (f"{self.ident()} {self.choice(DATA_TYPES)} "
                      f"{self.choice(CONTENT_TYPES[:2])}")
            if self.rng.random() < 0.4:
                column += " PREDICT"
            columns.append(column)
        if self.rng.random() < 0.3:
            columns.append(f"{self.ident()} TABLE({self.ident()} TEXT KEY, "
                           f"{self.ident()} DOUBLE CONTINUOUS)")
        return (f"CREATE MINING MODEL {self.ident()} "
                f"({', '.join(columns)}) USING "
                f"[{self.choice(ALGORITHMS)}]")

    def shape(self) -> str:
        arms = []
        for _ in range(self.rng.randrange(1, 3)):
            arms.append(
                f"({{{self.select()}}} RELATE {self.ident()} TO "
                f"{self.ident()}) AS {self.ident()}")
        return f"SHAPE {{{self.select()}}} APPEND {', '.join(arms)}"

    def insert_model(self) -> str:
        bindings = ", ".join(
            "SKIP" if self.rng.random() < 0.2 else self.ident()
            for _ in range(self.rng.randrange(2, 5)))
        source = self.shape() if self.rng.random() < 0.5 else self.select()
        return f"INSERT INTO {self.ident()} ({bindings}) {source}"

    def prediction_select(self) -> str:
        model = self.ident()
        source = f"({self.select()}) AS {self.ident()}"
        if self.rng.random() < 0.5:
            join = f"{model} NATURAL PREDICTION JOIN {source}"
        else:
            join = (f"{model} PREDICTION JOIN {source} ON "
                    f"{self.column()} = {self.column()}")
        flattened = "FLATTENED " if self.rng.random() < 0.3 else ""
        return (f"SELECT {flattened}{self.expr()}, {self.expr()} "
                f"FROM {join}")

    def statement(self) -> str:
        roll = self.rng.randrange(10)
        if roll <= 2:
            return self.select()
        return [self.union, self.insert_values, self.create_table,
                self.delete, self.update, self.create_model,
                self.insert_model, self.prediction_select][roll - 3]()


SEED = 20260806
CASES = 250


def _generate_all():
    rng = random.Random(SEED)
    generator = StatementGenerator(rng)
    return [generator.statement() for _ in range(CASES)]


@pytest.mark.parametrize("index,statement",
                         list(enumerate(_generate_all())),
                         ids=lambda v: v if isinstance(v, int) else None)
def test_parse_format_parse_is_identity(index, statement):
    first = parse_statement(statement)
    formatted = format_statement(first)
    second = parse_statement(formatted)
    assert first == second, (
        f"round-trip changed the AST for statement #{index}:\n"
        f"  original:  {statement}\n"
        f"  formatted: {formatted}")


def test_formatting_is_a_fixed_point():
    """format(parse(format(parse(s)))) == format(parse(s)) for all cases."""
    for statement in _generate_all():
        once = format_statement(parse_statement(statement))
        twice = format_statement(parse_statement(once))
        assert once == twice
