"""Tokenizer: identifiers, literals, comments, positions."""

import pytest

from repro.errors import ParseError
from repro.lang.lexer import Token, TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def values(text):
    return [t.value for t in tokenize(text)][:-1]


class TestIdentifiers:
    def test_bare_identifier(self):
        tokens = tokenize("Customers")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == "Customers"

    def test_bracketed_with_spaces(self):
        tokens = tokenize("[Age Prediction]")
        assert tokens[0].kind is TokenKind.BRACKET_IDENT
        assert tokens[0].value == "Age Prediction"

    def test_bracketed_escaped_close(self):
        tokens = tokenize("[weird]]name]")
        assert tokens[0].value == "weird]name"

    def test_unterminated_bracket(self):
        with pytest.raises(ParseError):
            tokenize("[oops")

    def test_empty_bracket(self):
        with pytest.raises(ParseError):
            tokenize("[ ]")

    def test_underscore_and_at(self):
        assert values("_x @param")[0] == "_x"
        assert values("_x @param")[1] == "@param"

    def test_keyword_check_is_case_insensitive(self):
        token = tokenize("select")[0]
        assert token.is_keyword("SELECT")
        assert not token.is_keyword("FROM")

    def test_bracketed_never_matches_keywords(self):
        token = tokenize("[SELECT]")[0]
        assert not token.is_keyword("SELECT")


class TestLiterals:
    def test_integer_vs_float(self):
        assert values("42 42.5 1e3 2.5E-1") == [42, 42.5, 1000.0, 0.25]
        assert isinstance(values("42")[0], int)

    def test_string_single_quotes(self):
        assert values("'hello world'") == ["hello world"]

    def test_string_doubled_quote_escape(self):
        assert values("'it''s'") == ["it's"]

    def test_string_double_quotes(self):
        assert values('"x"') == ["x"]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")


class TestSymbols:
    def test_maximal_munch(self):
        assert values("<= >= <> !=") == ["<=", ">=", "<>", "!="]

    def test_braces_for_shape(self):
        assert values("{ }") == ["{", "}"]

    def test_dollar_for_system(self):
        assert values("$SYSTEM") == ["$", "SYSTEM"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("?")


class TestComments:
    def test_percent_comment(self):
        # The paper's annotations use %.
        assert values("1 %Name of Model\n2") == [1, 2]

    def test_dash_dash_comment(self):
        assert values("1 -- ignore\n2") == [1, 2]

    def test_slash_slash_comment(self):
        assert values("1 // ignore\n2") == [1, 2]

    def test_block_comment(self):
        assert values("1 /* multi\nline */ 2") == [1, 2]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("1 /* oops")

    def test_comment_not_inside_string(self):
        assert values("'100% proof'") == ["100% proof"]


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        try:
            tokenize("abc\n  ?")
        except ParseError as exc:
            assert exc.line == 2
            assert exc.column == 3
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_eof_token_terminates(self):
        tokens = tokenize("x")
        assert tokens[-1].kind is TokenKind.EOF
