"""DMX statement parsing: CREATE MINING MODEL, model INSERT/DELETE/DROP."""

import pytest

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_statement


class TestCreateMiningModel:
    def test_paper_example_verbatim(self):
        statement = parse_statement("""
            CREATE MINING MODEL [Age Prediction] (
            %Name of Model
            [Customer ID] LONG KEY,
            [Gender] TEXT DISCRETE,
            [Age] DOUBLE DISCRETIZED PREDICT, %prediction column
            [Product Purchases] TABLE(
                [Product Name] TEXT KEY,
                [Quantity] DOUBLE NORMAL CONTINUOUS,
                [Product Type] TEXT DISCRETE RELATED TO [Product Name]
            )) USING [Decision_Trees_101]
            %Mining Algorithm used
        """)
        assert isinstance(statement, ast.CreateMiningModelStatement)
        assert statement.name == "Age Prediction"
        assert statement.algorithm == "Decision_Trees_101"
        names = [c.name for c in statement.columns]
        assert names == ["Customer ID", "Gender", "Age",
                         "Product Purchases"]
        age = statement.columns[2]
        assert age.content_type == "DISCRETIZED" and age.predict
        quantity = statement.columns[3].nested_columns[1]
        assert quantity.distribution == "NORMAL"
        assert quantity.content_type == "CONTINUOUS"
        product_type = statement.columns[3].nested_columns[2]
        assert product_type.related_to == "Product Name"

    def test_flag_order_is_free(self):
        a = parse_statement("CREATE MINING MODEL m (k LONG KEY, "
                            "x DOUBLE NORMAL CONTINUOUS PREDICT) USING z")
        b = parse_statement("CREATE MINING MODEL m (k LONG KEY, "
                            "x DOUBLE PREDICT CONTINUOUS NORMAL) USING z")
        xa, xb = a.columns[1], b.columns[1]
        assert (xa.content_type, xa.distribution, xa.predict) == \
               (xb.content_type, xb.distribution, xb.predict)

    def test_qualifier_of(self):
        statement = parse_statement(
            "CREATE MINING MODEL m (k LONG KEY, Age DOUBLE CONTINUOUS, "
            "[Age Prob] DOUBLE PROBABILITY OF Age) USING z")
        qualifier = statement.columns[2]
        assert qualifier.qualifier == "PROBABILITY"
        assert qualifier.qualifier_of == "Age"

    def test_all_qualifier_kinds_parse(self):
        for kind in ("PROBABILITY", "VARIANCE", "SUPPORT",
                     "PROBABILITY_VARIANCE", "STDEV", "ORDER"):
            statement = parse_statement(
                f"CREATE MINING MODEL m (k LONG KEY, Age DOUBLE "
                f"CONTINUOUS, q DOUBLE {kind} OF Age) USING z")
            assert statement.columns[2].qualifier == kind

    def test_discretized_with_method_and_buckets(self):
        statement = parse_statement(
            "CREATE MINING MODEL m (k LONG KEY, "
            "Age DOUBLE DISCRETIZED(EQUAL_COUNT, 7) PREDICT) USING z")
        age = statement.columns[1]
        assert age.discretization_method == "EQUAL_COUNT"
        assert age.discretization_buckets == 7

    def test_unknown_discretization_method(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE MINING MODEL m (k LONG KEY, "
                            "Age DOUBLE DISCRETIZED(WEIRD)) USING z")

    def test_predict_only(self):
        statement = parse_statement(
            "CREATE MINING MODEL m (k LONG KEY, x TEXT DISCRETE "
            "PREDICT_ONLY) USING z")
        assert statement.columns[1].predict_only
        assert statement.columns[1].predict

    def test_algorithm_parameters(self):
        statement = parse_statement(
            "CREATE MINING MODEL m (k LONG KEY, x TEXT DISCRETE PREDICT) "
            "USING Microsoft_Decision_Trees(MINIMUM_SUPPORT = 5, "
            "SCORE_METHOD = 'GINI', PRUNE = TRUE)")
        assert dict(statement.parameters) == {
            "MINIMUM_SUPPORT": 5, "SCORE_METHOD": "GINI", "PRUNE": True}

    def test_log_normal_two_words(self):
        statement = parse_statement(
            "CREATE MINING MODEL m (k LONG KEY, x DOUBLE LOG NORMAL "
            "CONTINUOUS) USING z")
        assert statement.columns[1].distribution == "LOG_NORMAL"

    def test_model_existence_only_and_not_null(self):
        statement = parse_statement(
            "CREATE MINING MODEL m (k LONG KEY, x DOUBLE CONTINUOUS "
            "MODEL_EXISTENCE_ONLY NOT NULL) USING z")
        column = statement.columns[1]
        assert column.model_existence_only
        assert column.not_null

    def test_unknown_data_type_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE MINING MODEL m (k BLOB KEY) USING z")


class TestInsertModel:
    def test_shape_source_with_nested_bindings(self):
        statement = parse_statement("""
            INSERT INTO [Age Prediction] ([Customer ID], [Gender], [Age],
                [Product Purchases]([Product Name], [Quantity]))
            SHAPE {SELECT [Customer ID], [Gender], [Age] FROM Customers}
            APPEND ({SELECT CustID, [Product Name], [Quantity] FROM Sales}
                    RELATE [Customer ID] TO CustID) AS [Product Purchases]
        """)
        assert isinstance(statement, ast.InsertModelStatement)
        assert statement.model == "Age Prediction"
        table_binding = statement.bindings[3]
        assert isinstance(table_binding, ast.BindingTable)
        assert [b.name for b in table_binding.children] == \
               ["Product Name", "Quantity"]

    def test_skip_binding(self):
        statement = parse_statement(
            "INSERT INTO m (a, SKIP, b) SHAPE {SELECT x, y, z FROM t}")
        assert isinstance(statement.bindings[1], ast.BindingSkip)

    def test_flat_select_source_stays_generic(self):
        statement = parse_statement(
            "INSERT INTO target (a, b) SELECT x, y FROM t")
        # Dispatcher decides table vs model at execution time.
        assert isinstance(statement, ast.InsertValuesStatement)

    def test_nested_bindings_force_model_insert(self):
        statement = parse_statement(
            "INSERT INTO m (a, nested(b)) SELECT x, y FROM t")
        assert isinstance(statement, ast.InsertModelStatement)

    def test_values_with_nested_binding_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("INSERT INTO m (a, nested(b)) VALUES (1, 2)")


class TestModelManagementStatements:
    def test_delete_from_mining_model(self):
        statement = parse_statement("DELETE FROM MINING MODEL m")
        assert isinstance(statement, ast.DeleteModelStatement)

    def test_plain_delete_stays_generic(self):
        statement = parse_statement("DELETE FROM m")
        assert isinstance(statement, ast.DeleteStatement)

    def test_drop_mining_model(self):
        statement = parse_statement("DROP MINING MODEL [Age Prediction]")
        assert isinstance(statement, ast.DropMiningModelStatement)
        assert statement.name == "Age Prediction"

    def test_drop_mining_model_if_exists(self):
        statement = parse_statement("DROP MINING MODEL IF EXISTS m")
        assert statement.if_exists

    def test_export(self):
        statement = parse_statement(
            "EXPORT MINING MODEL m TO '/tmp/m.xml'")
        assert isinstance(statement, ast.ExportModelStatement)
        assert statement.path == "/tmp/m.xml"

    def test_export_requires_string_path(self):
        with pytest.raises(ParseError):
            parse_statement("EXPORT MINING MODEL m TO path")

    def test_import_with_rename(self):
        statement = parse_statement(
            "IMPORT MINING MODEL FROM '/tmp/m.xml' AS m2")
        assert isinstance(statement, ast.ImportModelStatement)
        assert statement.rename_to == "m2"
