"""Parser fuzzing: mutated statements must parse or fail cleanly.

The contract under fuzz: for ANY input string, ``parse_statement`` either
returns a statement or raises the package's own :class:`repro.errors.Error`
— promptly.  No hangs, no ``RecursionError`` from adversarial nesting, no
raw ``IndexError``/``KeyError`` escaping the lexer or parser.

Seeds are the 41 statements from the streaming differential harness plus a
set of DMX statements (model DDL, SHAPE training, PREDICTION JOIN, WITH
MAXDOP), mutated with deterministic seeded edits: token deletion,
duplication, swaps, replacement with foreign tokens, truncation, and
bracket injection.  A token-soup generator and explicit deep-nesting
probes cover inputs no mutation of a valid statement would reach.
"""

import random
import re
import time

import pytest

from repro.errors import Error
from repro.lang.ast_nodes import Statement
from repro.lang.parser import parse_statement

from tests.differential.test_stream_vs_materialize import STATEMENTS

# Generous wall-clock bound per parse: catches quadratic blowups and hangs
# while staying robust to CI scheduler noise.
TIME_BOUND_SECONDS = 2.0

DMX_SEEDS = [
    "CREATE MINING MODEL M (Id LONG KEY, G TEXT DISCRETE, "
    "Age DOUBLE DISCRETIZED(EQUAL_COUNT, 3) PREDICT, "
    "B TABLE(P TEXT KEY)) USING Repro_Decision_Trees(MINIMUM_SUPPORT = 2)",
    "INSERT INTO M (Id, G, Age) SELECT Id, G, Age FROM C WITH MAXDOP 4",
    "INSERT INTO [M] SHAPE {SELECT Id, G, Age FROM C ORDER BY Id} "
    "APPEND ({SELECT Cid, P FROM S ORDER BY Cid} RELATE Id TO Cid) AS B",
    "SELECT t.Id, M.Buys, PredictProbability(Buys) FROM M PREDICTION JOIN "
    "(SELECT Id, G, H FROM C) AS t ON M.G = t.G AND M.Id = t.Id "
    "WITH MAXDOP 2",
    "SELECT FLATTENED [M].* FROM [M] NATURAL PREDICTION JOIN "
    "(SHAPE {SELECT Id FROM C ORDER BY Id} APPEND "
    "({SELECT Cid, P FROM S ORDER BY Cid} RELATE Id TO Cid) AS B) AS t",
    "SELECT * FROM $SYSTEM.DM_PROVIDER_METRICS WHERE METRIC LIKE 'pool.%'",
    "DELETE FROM MINING MODEL M",
    "DROP MINING MODEL M",
    "EXPORT MINING MODEL M TO '/tmp/m.xml'",
]

SEEDS = list(STATEMENTS) + DMX_SEEDS

FOREIGN_TOKENS = [
    "SELECT", "FROM", "WHERE", "PREDICTION", "JOIN", "SHAPE", "APPEND",
    "RELATE", "MAXDOP", "WITH", "(", ")", "{", "}", "[", "]", ",", ".",
    "'", "''", "*", "=", "<", ">=", "NULL", "NOT", "IN", "TOP", "0",
    "42", "1e309", "0x", "--", "/*", "*/", ";", "$SYSTEM", "@", "\\",
    "é", "\0",
]


def _tokens(text):
    return re.findall(r"\s+|\w+|'[^']*'|.", text)


def _mutate(text, rng):
    """One seeded mutation round: 1-3 random edits on the token list."""
    tokens = _tokens(text)
    for _ in range(rng.randint(1, 3)):
        if not tokens:
            break
        op = rng.randrange(6)
        position = rng.randrange(len(tokens))
        if op == 0:  # delete a token
            del tokens[position]
        elif op == 1:  # duplicate a token
            tokens.insert(position, tokens[position])
        elif op == 2:  # swap two tokens
            other = rng.randrange(len(tokens))
            tokens[position], tokens[other] = tokens[other], tokens[position]
        elif op == 3:  # replace with a foreign token
            tokens[position] = rng.choice(FOREIGN_TOKENS)
        elif op == 4:  # truncate
            tokens = tokens[:position]
        else:  # inject brackets/parens
            tokens.insert(position, rng.choice("(){}[]"))
    return "".join(tokens)


def _assert_parses_or_raises_cleanly(text):
    started = time.perf_counter()
    try:
        statement = parse_statement(text)
        assert isinstance(statement, Statement)
    except Error:
        pass  # the package's own error type: the accepted failure mode
    # Any other exception type (RecursionError, IndexError, ...) propagates
    # and fails the test.
    elapsed = time.perf_counter() - started
    assert elapsed < TIME_BOUND_SECONDS, (
        f"parser took {elapsed:.2f}s on {text[:120]!r}")


@pytest.mark.parametrize("index", range(len(SEEDS)),
                         ids=[f"seed{n:02d}" for n in range(len(SEEDS))])
def test_mutated_statements_parse_or_fail_cleanly(index):
    seed_text = SEEDS[index]
    # The unmutated seed must parse: guards against dead seeds that would
    # turn the whole fuzz case into noise.
    assert isinstance(parse_statement(seed_text), Statement)
    rng = random.Random(0xD1FF + index)
    for _ in range(40):
        _assert_parses_or_raises_cleanly(_mutate(seed_text, rng))


def test_token_soup():
    """Random token concatenations far from any valid statement."""
    rng = random.Random(0x50FA)
    for _ in range(300):
        soup = " ".join(rng.choice(FOREIGN_TOKENS)
                        for _ in range(rng.randint(1, 40)))
        _assert_parses_or_raises_cleanly(soup)


@pytest.mark.parametrize("text", [
    "SELECT " + "(" * 500 + "1" + ")" * 500 + " FROM T",
    "SELECT * FROM " + "(" * 500 + "SELECT 1" + ")" * 500,
    "SELECT " + "NOT " * 500 + "1 FROM T",
    "INSERT INTO M SHAPE " + "{SELECT " * 200 + "1" + "}" * 200,
    "(" * 2000,
    "SELECT 1 WHERE " + "1 AND " * 400 + "1",
], ids=["paren-expr", "paren-table", "not-chain", "shape-nest",
        "open-parens", "and-chain"])
def test_deep_nesting_is_bounded(text):
    """Adversarial nesting hits the depth guard, never RecursionError."""
    _assert_parses_or_raises_cleanly(text)


def test_empty_and_whitespace_inputs():
    for text in ("", "   ", "\n\t", ";", "\0", "'"):
        _assert_parses_or_raises_cleanly(text)
