"""SQL-core parsing: SELECT shapes, table refs, DML, errors."""

import pytest

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_expression, parse_statement


class TestSelect:
    def test_minimal(self):
        statement = parse_statement("SELECT 1")
        assert isinstance(statement, ast.SelectStatement)
        assert statement.from_clause is None

    def test_all_clauses(self):
        statement = parse_statement(
            "SELECT TOP 5 DISTINCT a, b AS bee FROM t WHERE a > 1 "
            "GROUP BY a, b HAVING COUNT(*) > 2 ORDER BY a DESC, b")
        assert statement.top == 5
        assert statement.distinct
        assert statement.select_list[1].alias == "bee"
        assert len(statement.group_by) == 2
        assert statement.having is not None
        assert statement.order_by[0].ascending is False
        assert statement.order_by[1].ascending is True

    def test_implicit_alias(self):
        statement = parse_statement("SELECT a x FROM t")
        assert statement.select_list[0].alias == "x"

    def test_star_and_qualified_star(self):
        statement = parse_statement("SELECT *, t.* FROM t")
        assert isinstance(statement.select_list[0].expr, ast.Star)
        assert statement.select_list[1].expr.qualifier == "t"

    def test_flattened_keyword(self):
        statement = parse_statement("SELECT FLATTENED a FROM t")
        assert statement.flattened

    def test_top_requires_integer(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT TOP 2.5 a FROM t")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 FROM t extra garbage here(")

    def test_semicolon_allowed(self):
        parse_statement("SELECT 1;")


class TestTableRefs:
    def test_alias_forms(self):
        statement = parse_statement("SELECT 1 FROM Customers AS c")
        assert statement.from_clause.alias == "c"
        statement = parse_statement("SELECT 1 FROM Customers c")
        assert statement.from_clause.alias == "c"

    def test_join_chain(self):
        statement = parse_statement(
            "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y")
        outer = statement.from_clause
        assert isinstance(outer, ast.Join)
        assert outer.kind == "LEFT"
        assert outer.left.kind == "INNER"

    def test_inner_keyword_optional(self):
        statement = parse_statement(
            "SELECT 1 FROM a INNER JOIN b ON a.x = b.x")
        assert statement.from_clause.kind == "INNER"

    def test_cross_join_has_no_on(self):
        statement = parse_statement("SELECT 1 FROM a CROSS JOIN b")
        assert statement.from_clause.kind == "CROSS"
        assert statement.from_clause.condition is None

    def test_subquery_source(self):
        statement = parse_statement(
            "SELECT 1 FROM (SELECT a FROM t) AS sub")
        assert isinstance(statement.from_clause, ast.SubquerySource)
        assert statement.from_clause.alias == "sub"

    def test_system_rowset(self):
        statement = parse_statement("SELECT * FROM $SYSTEM.MINING_MODELS")
        ref = statement.from_clause
        assert isinstance(ref, ast.SystemRowsetRef)
        assert ref.rowset == "MINING_MODELS"

    def test_model_content_ref(self):
        statement = parse_statement("SELECT * FROM [Age Prediction].CONTENT")
        ref = statement.from_clause
        assert isinstance(ref, ast.ModelContentRef)
        assert ref.model == "Age Prediction"
        assert ref.facet == "CONTENT"

    def test_model_pmml_ref(self):
        ref = parse_statement("SELECT * FROM m.PMML").from_clause
        assert ref.facet == "PMML"


class TestPredictionJoinParsing:
    def test_with_on(self):
        statement = parse_statement(
            "SELECT m.Age FROM m PREDICTION JOIN (SELECT g FROM t) AS s "
            "ON m.g = s.g")
        join = statement.from_clause
        assert isinstance(join, ast.PredictionJoin)
        assert join.model == "m"
        assert not join.natural
        assert join.condition is not None

    def test_natural(self):
        statement = parse_statement(
            "SELECT m.Age FROM m NATURAL PREDICTION JOIN "
            "(SELECT g FROM t) AS s")
        assert statement.from_clause.natural

    def test_on_required_without_natural(self):
        with pytest.raises(ParseError):
            parse_statement(
                "SELECT 1 FROM m PREDICTION JOIN (SELECT g FROM t) AS s")

    def test_shape_source(self):
        statement = parse_statement(
            "SELECT m.Age FROM m NATURAL PREDICTION JOIN "
            "(SHAPE {SELECT a FROM t} APPEND ({SELECT b, k FROM u} "
            "RELATE a TO k) AS nested) AS s")
        join = statement.from_clause
        assert isinstance(join.source, ast.ShapeSource)
        assert join.source.shape.appends[0].alias == "nested"


class TestShapeParsing:
    def test_multiple_appends(self):
        statement = parse_statement(
            "SHAPE {SELECT a FROM t} "
            "APPEND ({SELECT b, k FROM u} RELATE a TO k) AS one, "
            "({SELECT c, k2 FROM v} RELATE a TO k2) AS two")
        shape = statement.from_clause.shape
        assert [arm.alias for arm in shape.appends] == ["one", "two"]

    def test_nested_shape_in_append(self):
        statement = parse_statement(
            "SHAPE {SELECT a FROM t} "
            "APPEND ({SHAPE {SELECT b, k FROM u} APPEND "
            "({SELECT c, j FROM v} RELATE b TO j) AS inner} "
            "RELATE a TO k) AS outer")
        arm = statement.from_clause.shape.appends[0]
        assert isinstance(arm.child, ast.ShapeExpr)

    def test_relate_requires_to(self):
        with pytest.raises(ParseError):
            parse_statement(
                "SHAPE {SELECT a FROM t} APPEND ({SELECT b FROM u} "
                "RELATE a b) AS x")


class TestDml:
    def test_insert_values_multi_row(self):
        statement = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, ast.InsertValuesStatement)
        assert statement.columns == ["a", "b"]
        assert len(statement.rows) == 2

    def test_insert_select(self):
        statement = parse_statement("INSERT INTO t SELECT a FROM u")
        assert isinstance(statement, ast.InsertValuesStatement)
        assert statement.select is not None

    def test_update(self):
        statement = parse_statement(
            "UPDATE t SET a = 1, b = b + 1 WHERE c = 'x'")
        assert isinstance(statement, ast.UpdateStatement)
        assert len(statement.assignments) == 2

    def test_delete(self):
        statement = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(statement, ast.DeleteStatement)

    def test_create_table(self):
        statement = parse_statement(
            "CREATE TABLE t (id LONG PRIMARY KEY, name TEXT NOT NULL, "
            "age DOUBLE)")
        assert isinstance(statement, ast.CreateTableStatement)
        assert statement.columns[0].primary_key
        assert not statement.columns[1].nullable
        assert statement.columns[2].nullable

    def test_create_view(self):
        statement = parse_statement("CREATE VIEW v AS SELECT a FROM t")
        assert isinstance(statement, ast.CreateViewStatement)

    def test_drop_table_if_exists(self):
        statement = parse_statement("DROP TABLE IF EXISTS t")
        assert statement.if_exists


class TestExpressionsParsing:
    def test_precedence_tree(self):
        expr = parse_expression("a OR b AND c = 1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not_binds_tighter_than_and(self):
        expr = parse_expression("NOT a AND b")
        assert expr.op == "AND"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_dotted_column_paths(self):
        expr = parse_expression(
            "[Age Prediction].[Product Purchases].[Product Name]")
        assert expr.parts == ("Age Prediction", "Product Purchases",
                              "Product Name")

    def test_function_call_with_distinct(self):
        expr = parse_expression("COUNT(DISTINCT a)")
        assert expr.distinct

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr.args[0], ast.Star)

    def test_nested_function_calls(self):
        expr = parse_expression(
            "TopCount(PredictHistogram([Age]), [$PROBABILITY], 3)")
        assert expr.name == "TopCount"
        assert expr.args[0].name == "PredictHistogram"
        assert expr.args[1].parts == ("$PROBABILITY",)

    def test_scalar_subselect(self):
        expr = parse_expression("(SELECT MAX(a) FROM t)")
        assert isinstance(expr, ast.SubSelect)

    def test_case_expression(self):
        expr = parse_expression(
            "CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END")
        assert len(expr.whens) == 1
        assert expr.else_result is not None

    def test_empty_case_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("CASE END")
