"""Formatter: canonical text that re-parses to the same canonical text."""

import pytest

from repro.lang.formatter import (
    format_expression,
    format_statement,
    quote_ident,
    quote_string,
)
from repro.lang.parser import parse_expression, parse_statement

STATEMENTS = [
    "SELECT 1",
    "SELECT TOP 3 DISTINCT a, b AS bee FROM t WHERE a > 1 AND b IS NOT "
    "NULL GROUP BY a, b HAVING COUNT(*) > 2 ORDER BY a DESC",
    "SELECT c.*, s.Product FROM Customers c LEFT JOIN Sales s "
    "ON c.id = s.cid",
    "SELECT * FROM $SYSTEM.MINING_MODELS",
    "SELECT * FROM [Age Prediction].CONTENT",
    "SELECT FLATTENED a FROM (SELECT a FROM t) AS sub",
    "INSERT INTO t (a, b) VALUES (1, 'x''y'), (NULL, TRUE)",
    "UPDATE t SET a = a + 1 WHERE b LIKE 'x%'",
    "DELETE FROM t WHERE a BETWEEN 1 AND 2",
    "CREATE TABLE t (id LONG PRIMARY KEY, name TEXT NOT NULL)",
    "CREATE VIEW v AS SELECT a FROM t",
    "DROP TABLE IF EXISTS t",
    "CREATE MINING MODEL m (k LONG KEY, g TEXT DISCRETE, "
    "a DOUBLE DISCRETIZED(EQUAL_COUNT, 4) PREDICT, "
    "p DOUBLE PROBABILITY OF a, "
    "n TABLE(pk TEXT KEY, q DOUBLE NORMAL CONTINUOUS, "
    "pt TEXT DISCRETE RELATED TO pk)) "
    "USING Microsoft_Decision_Trees(MINIMUM_SUPPORT = 5)",
    "INSERT INTO m (a, SKIP, n(pk, q)) SHAPE {SELECT a, x, k FROM t} "
    "APPEND ({SELECT pk, q, fk FROM u} RELATE k TO fk) AS n",
    "SELECT t.id, m.Age, PredictProbability([Age]) AS p FROM m "
    "PREDICTION JOIN (SHAPE {SELECT id, g FROM c} APPEND "
    "({SELECT fk, pn FROM s} RELATE id TO fk) AS nested) AS t "
    "ON m.g = t.g",
    "SELECT m.Age FROM m NATURAL PREDICTION JOIN (SELECT g FROM c) AS t",
    "DELETE FROM MINING MODEL m",
    "DROP MINING MODEL IF EXISTS m",
    "EXPORT MINING MODEL m TO '/tmp/m.xml'",
    "IMPORT MINING MODEL FROM '/tmp/m.xml' AS m2",
]


@pytest.mark.parametrize("text", STATEMENTS)
def test_statement_round_trip_is_stable(text):
    once = format_statement(parse_statement(text))
    twice = format_statement(parse_statement(once))
    assert once == twice


EXPRESSIONS = [
    "1 + 2 * 3",
    "a AND NOT b OR c",
    "x BETWEEN 1 AND 2",
    "x NOT IN (1, 2, NULL)",
    "name LIKE 'A%'",
    "CASE WHEN a > 1 THEN 'x' ELSE 'y' END",
    "t.[Col With Space] = 'it''s'",
    "COUNT(DISTINCT x)",
    "TopCount(PredictHistogram([Age]), [$PROBABILITY], 3)",
    "-x + 4.5",
]


@pytest.mark.parametrize("text", EXPRESSIONS)
def test_expression_round_trip_is_stable(text):
    once = format_expression(parse_expression(text))
    twice = format_expression(parse_expression(once))
    assert once == twice


class TestQuoting:
    def test_quote_ident_escapes_close_bracket(self):
        assert quote_ident("a]b") == "[a]]b]"

    def test_quote_string_escapes_quote(self):
        assert quote_string("it's") == "'it''s'"

    def test_quoted_ident_reparses(self):
        from repro.lang.parser import Parser
        name = "we[ir]d name"
        parser = Parser(quote_ident(name))
        assert parser.expect_identifier() == name
