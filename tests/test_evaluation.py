"""Validation tooling: reports, lift charts, holdout splits, scoring."""

import pytest

import repro
from repro.errors import Error
from repro.evaluation import (
    classification_report,
    holdout_split,
    lift_chart,
    regression_report,
    score_classifier,
)


class TestHoldoutSplit:
    def test_deterministic_and_partitioning(self):
        keys = list(range(1000))
        train_a, test_a = holdout_split(keys, 0.3, seed=2)
        train_b, test_b = holdout_split(list(reversed(keys)), 0.3, seed=2)
        assert set(train_a) == set(train_b)
        assert set(train_a) | set(test_a) == set(keys)
        assert not set(train_a) & set(test_a)

    def test_fraction_respected_roughly(self):
        _, test = holdout_split(list(range(2000)), 0.25, seed=1)
        assert 0.20 < len(test) / 2000 < 0.30

    def test_different_seeds_differ(self):
        _, a = holdout_split(list(range(200)), 0.3, seed=1)
        _, b = holdout_split(list(range(200)), 0.3, seed=2)
        assert set(a) != set(b)

    def test_bad_fraction(self):
        with pytest.raises(Error):
            holdout_split([1, 2], 1.5)

    def test_degenerate_split(self):
        with pytest.raises(Error):
            holdout_split([1], 0.5)


class TestClassificationReport:
    PAIRS = [("x", "x"), ("x", "x"), ("x", "y"),
             ("y", "y"), ("y", "x"), ("y", "y"), ("y", "y")]

    def test_accuracy_and_confusion(self):
        report = classification_report(self.PAIRS)
        assert report.count == 7
        assert report.accuracy == pytest.approx(5 / 7)
        assert report.confusion[("x", "y")] == 1
        assert report.confusion[("y", "y")] == 3

    def test_precision_recall_f1(self):
        report = classification_report(self.PAIRS)
        assert report.precision("x") == pytest.approx(2 / 3)
        assert report.recall("x") == pytest.approx(2 / 3)
        assert report.recall("y") == pytest.approx(3 / 4)
        assert report.f1("y") == pytest.approx(
            2 * (3 / 4) * (3 / 4) / (3 / 4 + 3 / 4))

    def test_unseen_class_precision_is_none(self):
        report = classification_report([("x", "x"), ("y", "x")])
        assert report.precision("y") is None

    def test_majority_baseline(self):
        report = classification_report(self.PAIRS)
        assert report.majority_baseline() == pytest.approx(4 / 7)

    def test_pretty_contains_matrix(self):
        text = classification_report(self.PAIRS).pretty()
        assert "accuracy" in text and "precision" in text

    def test_empty_rejected(self):
        with pytest.raises(Error):
            classification_report([])


class TestRegressionReport:
    def test_exact_fit(self):
        report = regression_report([(1.0, 1.0), (2.0, 2.0)])
        assert report.mean_absolute_error == 0.0
        assert report.r_squared == pytest.approx(1.0)

    def test_known_errors(self):
        report = regression_report([(0.0, 1.0), (0.0, -1.0),
                                    (10.0, 10.0), (-10.0, -10.0)])
        assert report.mean_absolute_error == pytest.approx(0.5)
        assert report.root_mean_squared_error == \
            pytest.approx((2 / 4) ** 0.5)

    def test_none_pairs_skipped(self):
        report = regression_report([(1.0, 1.0), (None, 5.0), (2.0, None)])
        assert report.count == 1


class TestLiftChart:
    def test_perfect_model_captures_everything_early(self):
        scored = [(True, 0.9)] * 10 + [(False, 0.1)] * 90
        chart = lift_chart(scored, buckets=10)
        population, captured = chart.points[0]
        assert population == pytest.approx(0.1)
        assert captured == pytest.approx(1.0)
        assert chart.lift_at(0.1) == pytest.approx(10.0)

    def test_random_model_tracks_diagonal(self):
        scored = [((i % 10) == 0, ((i * 7919) % 100) / 100.0)
                  for i in range(1000)]
        chart = lift_chart(scored, buckets=10)
        assert abs(chart.area_over_random()) < 0.15

    def test_final_point_always_captures_all(self):
        scored = [(True, 0.2), (False, 0.8), (True, 0.5)]
        chart = lift_chart(scored, buckets=4)
        assert chart.points[-1] == (1.0, 1.0)

    def test_no_positives_rejected(self):
        with pytest.raises(Error):
            lift_chart([(False, 0.5)])

    def test_pretty(self):
        chart = lift_chart([(True, 0.9), (False, 0.1)], buckets=2)
        assert "lift" in chart.pretty()


class TestScoreClassifier:
    def test_end_to_end(self, conn):
        conn.execute("CREATE TABLE T (Id LONG, G TEXT, L TEXT)")
        rows = ", ".join(
            f"({i}, '{'a' if i % 2 else 'b'}', "
            f"'{'x' if i % 2 else 'y'}')" for i in range(1, 101))
        conn.execute(f"INSERT INTO T VALUES {rows}")
        conn.execute("CREATE MINING MODEL M (Id LONG KEY, G TEXT "
                     "DISCRETE, L TEXT DISCRETE PREDICT) "
                     "USING Repro_Naive_Bayes")
        conn.execute("INSERT INTO M SELECT Id, G, L FROM T")
        actuals = dict(conn.execute("SELECT Id, L FROM T").rows)
        report, chart = score_classifier(
            conn, "M", "L", "SELECT Id, G FROM T", "Id", actuals)
        assert report.accuracy == pytest.approx(1.0)
        assert chart is not None
        assert chart.lift_at(0.5) >= 1.0

    def test_missing_actual_raises(self, conn):
        conn.execute("CREATE TABLE T (Id LONG, G TEXT, L TEXT)")
        conn.execute("INSERT INTO T VALUES (1,'a','x'), (2,'b','y')")
        conn.execute("CREATE MINING MODEL M (Id LONG KEY, G TEXT "
                     "DISCRETE, L TEXT DISCRETE PREDICT) "
                     "USING Repro_Naive_Bayes")
        conn.execute("INSERT INTO M SELECT Id, G, L FROM T")
        with pytest.raises(Error, match="actual"):
            score_classifier(conn, "M", "L", "SELECT Id, G FROM T", "Id",
                             {1: "x"})


class TestCrossValidation:
    def test_folds_partition_the_keys(self):
        from repro.evaluation import cross_validation_folds
        keys = list(range(500))
        folds = cross_validation_folds(keys, folds=5, seed=3)
        assert len(folds) == 5
        all_test = [k for _, test in folds for k in test]
        assert sorted(all_test) == keys  # each key tested exactly once
        for train, test in folds:
            assert sorted(train + test) == keys
            assert not set(train) & set(test)

    def test_deterministic(self):
        from repro.evaluation import cross_validation_folds
        a = cross_validation_folds(list(range(100)), 4, seed=9)
        b = cross_validation_folds(list(range(100)), 4, seed=9)
        assert a == b

    def test_too_few_folds(self):
        from repro.evaluation import cross_validation_folds
        from repro.errors import Error
        import pytest
        with pytest.raises(Error):
            cross_validation_folds([1, 2, 3], folds=1)

    def test_degenerate_fold_detected(self):
        from repro.evaluation import cross_validation_folds
        from repro.errors import Error
        import pytest
        with pytest.raises(Error):
            cross_validation_folds([1, 2], folds=10)
