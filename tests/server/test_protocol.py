"""Unit coverage for the frame protocol and wire codecs.

The frame layer and the rowset/result/error codecs are pure functions over
sockets and JSON — everything here runs against ``socketpair`` ends or
plain values, no server involved.  Also pins the ephemeral-port contract:
every listener in the codebase (DMX server, telemetry endpoint) must
accept ``port=0`` and report the real bound port back.
"""

import datetime
import socket
import struct

import pytest

import repro
from repro.errors import (
    BindError,
    Error,
    ParseError,
    ProtocolError,
    ServerBusyError,
)
from repro.server import protocol
from repro.server.server import DmxServer
from repro.sqlstore.rowset import Rowset, RowsetColumn
from repro.sqlstore.types import DOUBLE, LONG, TEXT


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    yield left, right
    left.close()
    right.close()


# -- frames -------------------------------------------------------------------

def test_frame_roundtrip(pair):
    left, right = pair
    message = {"op": "execute", "statement": "SELECT 1", "n": 42,
               "nested": {"a": [1, 2, None]}}
    sent = protocol.send_frame(left, message)
    received, nbytes = protocol.recv_frame(right)
    assert received == message
    assert nbytes == sent


def test_clean_eof_returns_none(pair):
    left, right = pair
    left.close()
    assert protocol.recv_frame(right) == (None, 0)


def test_torn_header_raises(pair):
    left, right = pair
    left.sendall(b"\x00\x00")  # half a length prefix
    left.close()
    with pytest.raises(ProtocolError, match="torn frame"):
        protocol.recv_frame(right)


def test_torn_payload_raises(pair):
    left, right = pair
    left.sendall(struct.pack(">I", 100) + b"only a little")
    left.close()
    with pytest.raises(ProtocolError, match="torn frame"):
        protocol.recv_frame(right)


def test_oversize_length_prefix_raises(pair):
    left, right = pair
    left.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
    with pytest.raises(ProtocolError, match="oversize frame"):
        protocol.recv_frame(right)


def test_invalid_json_raises(pair):
    left, right = pair
    payload = b"this is not json {"
    left.sendall(struct.pack(">I", len(payload)) + payload)
    with pytest.raises(ProtocolError, match="undecodable"):
        protocol.recv_frame(right)


def test_non_object_json_raises(pair):
    left, right = pair
    payload = b"[1, 2, 3]"
    left.sendall(struct.pack(">I", len(payload)) + payload)
    with pytest.raises(ProtocolError, match="JSON object"):
        protocol.recv_frame(right)


def test_send_refuses_oversize_frame(pair):
    left, _ = pair
    monster = {"blob": "x" * (protocol.MAX_FRAME_BYTES + 1)}
    with pytest.raises(ProtocolError, match="exceeds"):
        protocol.send_frame(left, monster)


# -- rowset codec -------------------------------------------------------------

def _sample_rowset():
    nested = Rowset([RowsetColumn("k", LONG), RowsetColumn("v", TEXT)],
                    [(1, "a"), (2, None)])
    columns = [
        RowsetColumn("id", LONG),
        RowsetColumn("score", DOUBLE),
        RowsetColumn("label", TEXT),
        RowsetColumn("when", TEXT),
        RowsetColumn("detail", nested_columns=list(nested.columns)),
    ]
    rows = [
        (1, 0.5, "yes", datetime.datetime(2021, 3, 4, 5, 6, 7), nested),
        (2, None, None, datetime.date(2020, 1, 2), None),
    ]
    return Rowset(columns, rows)


def test_rowset_roundtrip_preserves_everything():
    original = _sample_rowset()
    decoded = protocol.rowset_from_wire(protocol.rowset_to_wire(original))
    assert [c.name for c in decoded.columns] == \
        [c.name for c in original.columns]
    assert [c.type.name for c in decoded.columns] == \
        [c.type.name for c in original.columns]
    assert decoded.rows[1][:4] == original.rows[1][:4]
    assert isinstance(decoded.rows[0][0], int)
    assert isinstance(decoded.rows[0][3], datetime.datetime)
    assert isinstance(decoded.rows[1][3], datetime.date)
    inner = decoded.rows[0][4]
    assert isinstance(inner, Rowset)
    assert inner.rows == [(1, "a"), (2, None)]


def test_rowset_dump_is_stable_under_roundtrip():
    original = _sample_rowset()
    decoded = protocol.rowset_from_wire(protocol.rowset_to_wire(original))
    assert protocol.rowset_dump(decoded) == protocol.rowset_dump(original)


def test_rowset_dump_distinguishes_types():
    left = Rowset([RowsetColumn("x", LONG)], [(1,)])
    right = Rowset([RowsetColumn("x", TEXT)], [("1",)])
    assert protocol.rowset_dump(left) != protocol.rowset_dump(right)


# -- result and error codecs --------------------------------------------------

@pytest.mark.parametrize("value", [0, 7, "tracing is ON", None])
def test_scalar_result_roundtrip(value):
    assert protocol.result_from_wire(protocol.result_to_wire(value)) == value


def test_rowset_result_roundtrip():
    wire = protocol.result_to_wire(_sample_rowset())
    assert wire["type"] == "rowset"
    decoded = protocol.result_from_wire(wire)
    assert protocol.rowset_dump(decoded) == \
        protocol.rowset_dump(_sample_rowset())


def test_unknown_result_type_raises():
    with pytest.raises(ProtocolError):
        protocol.result_from_wire({"type": "martian"})


@pytest.mark.parametrize("exc", [
    BindError("no table named 'x'"),
    Error("plain"),
    ServerBusyError("full up"),
])
def test_error_roundtrip_preserves_class_and_message(exc):
    rebuilt = protocol.error_from_wire(protocol.error_to_wire(exc))
    assert type(rebuilt) is type(exc)
    assert str(rebuilt) == str(exc)


def test_parse_error_roundtrip_keeps_position_once():
    original = ParseError("unexpected token", line=3, column=9)
    rebuilt = protocol.error_from_wire(protocol.error_to_wire(original))
    assert type(rebuilt) is ParseError
    assert (rebuilt.line, rebuilt.column) == (3, 9)
    assert str(rebuilt) == str(original)
    assert str(rebuilt).count("(line 3, column 9)") == 1


def test_unknown_error_type_degrades_to_base_error():
    rebuilt = protocol.error_from_wire({"type": "FancyNewError",
                                        "message": "hm"})
    assert type(rebuilt) is Error
    assert str(rebuilt) == "hm"


def test_malicious_error_type_cannot_escape_the_hierarchy():
    # A type name resolving to a non-Error attribute must not be raised.
    rebuilt = protocol.error_from_wire({"type": "__builtins__",
                                        "message": "nope"})
    assert type(rebuilt) is Error


# -- ephemeral ports ----------------------------------------------------------

def test_dmx_server_reports_bound_ephemeral_port():
    conn = repro.connect()
    server = DmxServer(conn.provider, port=0)
    try:
        assert server.port != 0
        probe = socket.create_connection(("127.0.0.1", server.port),
                                         timeout=5.0)
        probe.close()
    finally:
        server.close()
        conn.close()


def test_telemetry_server_reports_bound_ephemeral_port():
    conn = repro.connect()
    try:
        server = conn.provider.serve_metrics(port=0)
        assert server.port != 0
        assert str(server.port) in server.url
    finally:
        conn.close()


def test_two_ephemeral_servers_coexist():
    conn = repro.connect()
    first = DmxServer(conn.provider, port=0)
    other = repro.connect()
    second = DmxServer(other.provider, port=0)
    try:
        assert first.port != second.port
    finally:
        second.close()
        first.close()
        other.close()
        conn.close()
