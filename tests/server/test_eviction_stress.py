"""Concurrent eviction stress: wire readers vs a journaled writer on a
tiny buffer pool.

Several client sessions stream scans of a multi-page table while another
session appends rows through the journal, all against a pool of FOUR
frames — every scan crosses evictions, and reader pins constantly collide
with the writer's page loads.  The invariants:

* no reader ever observes a torn row (every row is self-consistent) and
  every scan sees exactly the ordered prefix ``0..seen-1`` — appends are
  ordered, so skips, duplicates, or rewinds all fail loudly;
* a reader that abandons its stream mid-scan and drops the connection
  (the wire cancel path) releases its pins — after the storm every
  resident page has zero pins and the pool is back within budget;
* the buffer accounting adds up and the forced evictions really happened.
"""

import threading
import time

import pytest

import repro
from repro.client import connect as net_connect
from repro.server import DmxServer

BUFFER_PAGES = 4
PAGE_BYTES = 256
BASE_ROWS = 120
READERS = 4
ROUNDS = 4
ABANDONS = 2
WRITE_BATCHES = 8
BATCH_ROWS = 10


def _value(i):
    return f"val-{i:05d}-xxxxxxxxxx"


@pytest.fixture
def served(tmp_path):
    conn = repro.connect(durable_path=str(tmp_path / "journal"),
                         storage_path=str(tmp_path / "spill"),
                         buffer_pages=BUFFER_PAGES,
                         storage_page_bytes=PAGE_BYTES,
                         pool_mode="thread", max_workers=2)
    conn.execute("CREATE TABLE Stream (id INT, val TEXT)")
    conn.execute("INSERT INTO Stream VALUES " + ", ".join(
        f"({i}, '{_value(i)}')" for i in range(BASE_ROWS)))
    server = DmxServer(conn.provider, port=0,
                       max_sessions=2 * READERS + 3)
    yield conn, server
    server.close()
    conn.close()
    assert server.thread_errors == []


def _verify_prefix_scan(client, stop_after=None):
    """Consume a streamed scan, checking row integrity and prefix order;
    returns the number of rows seen."""
    seen = 0
    for row_id, value in client.execute_stream(
            "SELECT id, val FROM Stream", batch_size=7):
        assert value == _value(row_id), f"torn row served: {row_id!r}"
        # Appends are ordered, so any scan must see exactly the prefix
        # 0..seen-1 — no skips, duplicates, or rewinds.
        assert row_id == seen, \
            f"scan out of order: id {row_id} at ordinal {seen}"
        seen += 1
        if stop_after is not None and seen >= stop_after:
            break
    return seen


def _reader_body(port, index, failures):
    try:
        with net_connect("127.0.0.1", port) as client:
            for _ in range(ROUNDS):
                seen = _verify_prefix_scan(client)
                assert seen >= BASE_ROWS, \
                    f"scan lost rows: {seen} < {BASE_ROWS}"
        for _ in range(ABANDONS):
            # Abandon a stream mid-scan and drop the connection: the wire
            # cancel path.  The server must unwind the scan and its pins.
            abandoned = net_connect("127.0.0.1", port)
            try:
                assert _verify_prefix_scan(abandoned, stop_after=20) == 20
            finally:
                abandoned.close()
    except BaseException as exc:  # noqa: BLE001 - collected for the assert
        failures.append((index, exc))


def _writer_body(port, failures):
    try:
        with net_connect("127.0.0.1", port) as client:
            for batch_no in range(WRITE_BATCHES):
                start = BASE_ROWS + batch_no * BATCH_ROWS
                client.execute("INSERT INTO Stream VALUES " + ", ".join(
                    f"({i}, '{_value(i)}')"
                    for i in range(start, start + BATCH_ROWS)))
    except BaseException as exc:  # noqa: BLE001
        failures.append(("writer", exc))


def _wait_for_unpinned(pool, timeout=10.0):
    """Server session threads unwind asynchronously after a client drop;
    give the pins a moment to drain before asserting on them."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(page.pins == 0 for _, page in pool.resident()):
            return
        time.sleep(0.02)


def test_readers_and_writer_storm_the_pool(served):
    conn, server = served
    failures = []
    threads = [threading.Thread(target=_reader_body,
                                args=(server.port, i, failures))
               for i in range(READERS)]
    threads.append(threading.Thread(target=_writer_body,
                                    args=(server.port, failures)))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert failures == []
    assert all(not thread.is_alive() for thread in threads)

    total = BASE_ROWS + WRITE_BATCHES * BATCH_ROWS
    rows = conn.execute("SELECT id, val FROM Stream").rows
    assert len(rows) == total
    assert all(value == _value(row_id) for row_id, value in rows)

    pool = conn.provider.storage.pool
    _wait_for_unpinned(pool)
    assert len(pool) <= BUFFER_PAGES, "pool did not return to budget"
    assert all(page.pins == 0 for _, page in pool.resident()), \
        "an abandoned or finished scan leaked a pin"
    assert pool.evictions > 0, "the storm never actually evicted"
    assert pool.misses > 0 and pool.hits > 0
    # Metrics mirror the pool's own counters exactly.
    metrics = conn.provider.metrics
    assert metrics.value("buffer.evictions") == pool.evictions
    assert metrics.value("buffer.misses") == pool.misses


def test_buffer_pool_rowset_is_live_during_storm(served):
    """$SYSTEM.DM_BUFFER_POOL reflects residency while a scan is
    mid-flight, and the abandoned scan's pins drain after the drop."""
    conn, server = served
    with net_connect("127.0.0.1", server.port) as client:
        stream = iter(client.execute_stream("SELECT id FROM Stream",
                                            batch_size=5))
        next(stream)
        rows = conn.execute(
            "SELECT TABLE_NAME, ROWS, PINS FROM $SYSTEM.DM_BUFFER_POOL"
        ).rows
        assert rows and len(rows) <= BUFFER_PAGES
        assert all(name == "Stream" and count > 0
                   for name, count, _ in rows)
    pool = conn.provider.storage.pool
    _wait_for_unpinned(pool)
    assert all(page.pins == 0 for _, page in pool.resident())
