"""Protocol robustness: a hostile or broken client never hurts the server.

Every scenario here abuses the wire — torn frames, lying length prefixes,
garbage JSON, vanishing mid-statement, reading slowly — and asserts the
same three invariants afterwards:

* the server thread handling the abuse ended with a typed error or a
  clean teardown (``server.thread_errors`` stays empty — no stray
  tracebacks),
* the server keeps serving: a fresh well-behaved client still works,
* nothing hangs (every socket op in this file carries a timeout).
"""

import socket
import struct
import threading
import time

import pytest

import repro
from repro.client import connect as net_connect
from repro.errors import Error, ProtocolError
from repro.server import DmxServer, protocol

HELLO = {"op": "hello", "protocol": protocol.PROTOCOL_VERSION,
         "batch_size": None, "max_dop": None}


@pytest.fixture
def served():
    conn = repro.connect()
    conn.execute("CREATE TABLE Fuzz (x INT)")
    conn.execute("INSERT INTO Fuzz VALUES " +
                 ", ".join(f"({i})" for i in range(200)))
    server = DmxServer(conn.provider, port=0)
    yield conn, server
    still_works(server)  # the server survives whatever the test did
    server.close()
    conn.close()
    assert server.thread_errors == []


def still_works(server):
    with net_connect("127.0.0.1", server.port, timeout=5.0) as probe:
        rowset = probe.execute("SELECT COUNT(*) AS n FROM Fuzz")
        assert rowset.rows[0][0] == 200


def raw_connect(server):
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=5.0)
    sock.settimeout(5.0)
    return sock


def handshake(sock):
    protocol.send_frame(sock, HELLO)
    welcome, _ = protocol.recv_frame(sock)
    assert welcome["ok"] is True
    return welcome


def assert_closed(sock):
    """The peer must close the stream — promptly, not after a hang."""
    deadline = time.monotonic() + 5
    while True:
        try:
            chunk = sock.recv(4096)
        except socket.timeout:
            pytest.fail("server neither answered nor closed the connection")
        if not chunk:
            return
        assert time.monotonic() < deadline


# -- handshake-time abuse -----------------------------------------------------

def test_connect_and_vanish(served):
    _, server = served
    for _ in range(5):
        raw_connect(server).close()


def test_torn_header_at_handshake(served):
    _, server = served
    sock = raw_connect(server)
    sock.sendall(b"\x00\x00\x01")  # 3 of 4 header bytes
    sock.close()


def test_oversize_prefix_at_handshake(served):
    _, server = served
    sock = raw_connect(server)
    sock.sendall(struct.pack(">I", 0xFFFFFFFF))
    assert_closed(sock)
    sock.close()


def test_garbage_json_at_handshake(served):
    _, server = served
    sock = raw_connect(server)
    payload = b"\xff\xfe not json at all"
    sock.sendall(struct.pack(">I", len(payload)) + payload)
    assert_closed(sock)
    sock.close()


def test_wrong_first_op_gets_typed_error(served):
    _, server = served
    sock = raw_connect(server)
    protocol.send_frame(sock, {"op": "execute", "statement": "SELECT 1"})
    frame, _ = protocol.recv_frame(sock)
    error = protocol.error_from_wire(frame["error"])
    assert isinstance(error, ProtocolError)
    assert "hello" in str(error)
    sock.close()


def test_protocol_version_mismatch_gets_typed_error(served):
    _, server = served
    sock = raw_connect(server)
    protocol.send_frame(sock, {"op": "hello", "protocol": 999})
    frame, _ = protocol.recv_frame(sock)
    error = protocol.error_from_wire(frame["error"])
    assert isinstance(error, ProtocolError)
    assert "version" in str(error)
    sock.close()


def test_handshake_timeout_reaps_silent_connections(served):
    """A connection that says nothing is reaped by the handshake timeout
    rather than pinned forever (we just verify it holds no session)."""
    conn, server = served
    sock = raw_connect(server)
    time.sleep(0.1)
    assert conn.provider.metrics.value("server.sessions_active") == 0
    sock.close()


# -- in-session abuse ---------------------------------------------------------

def test_torn_frame_mid_session(served):
    _, server = served
    sock = raw_connect(server)
    handshake(sock)
    sock.sendall(struct.pack(">I", 5000) + b"half a frame only")
    sock.close()  # tear it mid-payload


def test_oversize_prefix_mid_session_gets_typed_error(served):
    _, server = served
    sock = raw_connect(server)
    handshake(sock)
    sock.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
    frame, _ = protocol.recv_frame(sock)
    error = protocol.error_from_wire(frame["error"])
    assert isinstance(error, ProtocolError)
    assert "oversize" in str(error)
    assert_closed(sock)
    sock.close()


def test_invalid_json_mid_session_gets_typed_error(served):
    _, server = served
    sock = raw_connect(server)
    handshake(sock)
    payload = b"{truncated"
    sock.sendall(struct.pack(">I", len(payload)) + payload)
    frame, _ = protocol.recv_frame(sock)
    assert isinstance(protocol.error_from_wire(frame["error"]),
                      ProtocolError)
    sock.close()


def test_unknown_op_keeps_the_session_alive(served):
    _, server = served
    sock = raw_connect(server)
    handshake(sock)
    protocol.send_frame(sock, {"op": "frobnicate"})
    frame, _ = protocol.recv_frame(sock)
    assert isinstance(protocol.error_from_wire(frame["error"]),
                      ProtocolError)
    # Unknown ops are survivable (framing is intact): the session goes on.
    protocol.send_frame(sock, {"op": "ping"})
    frame, _ = protocol.recv_frame(sock)
    assert frame.get("pong") is True
    sock.close()


def test_statement_error_keeps_the_session_alive(served):
    _, server = served
    with net_connect("127.0.0.1", server.port, timeout=5.0) as client:
        with pytest.raises(Error):
            client.execute("SELECT * FROM nowhere")
        assert client.execute("SELECT COUNT(*) AS n FROM Fuzz") \
            .rows[0][0] == 200


def test_disconnect_mid_stream(served):
    """Vanishing while the server is streaming batches: the send fails,
    the session tears down, nothing leaks."""
    _, server = served
    sock = raw_connect(server)
    handshake(sock)
    protocol.send_frame(sock, {"op": "execute_stream",
                               "statement": "SELECT * FROM Fuzz",
                               "batch_size": 1})
    frame, _ = protocol.recv_frame(sock)  # the columns header
    assert "columns" in frame
    sock.close()  # walk away mid-stream
    deadline = time.monotonic() + 10
    while any(t.name == "dmx-conn" and t.is_alive()
              for t in threading.enumerate()):
        assert time.monotonic() < deadline, "session thread leaked"
        time.sleep(0.01)


def test_slow_reader_gets_every_row(served):
    """Backpressure is the transport's: a reader that dawdles between
    batches still receives the complete, correct stream."""
    _, server = served
    with net_connect("127.0.0.1", server.port, timeout=30.0) as client:
        stream = client.execute_stream("SELECT x FROM Fuzz", batch_size=20)
        seen = []
        for batch in stream.batches():
            seen.extend(value for value, in batch)
            time.sleep(0.02)  # dawdle; the server must simply wait
        assert seen == list(range(200))


def test_interleaved_abuse_and_real_work(served):
    """Garbage connections arriving while a legitimate session works must
    not corrupt that session's results."""
    _, server = served
    stop = threading.Event()

    def abuser():
        while not stop.is_set():
            try:
                sock = raw_connect(server)
                sock.sendall(struct.pack(">I", 123))  # lie, then leave
                sock.close()
            except OSError:
                pass

    thread = threading.Thread(target=abuser)
    thread.start()
    try:
        with net_connect("127.0.0.1", server.port, timeout=5.0) as client:
            for _ in range(20):
                assert client.execute(
                    "SELECT COUNT(*) AS n FROM Fuzz").rows[0][0] == 200
    finally:
        stop.set()
        thread.join(timeout=10)
