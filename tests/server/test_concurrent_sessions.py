"""Concurrent sessions: isolation, attribution, drain, and scoped CANCEL.

The acceptance contract of the server tentpole: N client threads running a
mixed TRAIN / SELECT / PREDICTION JOIN workload against one server must
all succeed, each session's work must be attributed to it (its own
``DM_SESSIONS`` row, its own SESSION values in ``DM_QUERY_LOG``), a
session must NOT be able to cancel another session's statement, and a
drain must leave zero live server threads and every session retired.
"""

import threading
import time

import pytest

import repro
from repro.algorithms.registry import register_algorithm, unregister_algorithm
from repro.client import connect as net_connect
from repro.errors import Error, ServerBusyError
from repro.server import DmxServer

from tests.exec.test_cancellation import SlowIterative

WORKERS = 6
STATEMENTS_PER_WORKER = 8


def _load_shared(conn):
    conn.execute("CREATE TABLE People (pid INT, sex TEXT, age INT, "
                 "buys TEXT)")
    conn.execute("INSERT INTO People VALUES " + ", ".join(
        f"({i}, '{'m' if i % 2 else 'f'}', {20 + i % 40}, "
        f"'{'yes' if i % 3 else 'no'}')" for i in range(1, 81)))


@pytest.fixture
def served():
    conn = repro.connect(max_workers=2, pool_mode="thread")
    _load_shared(conn)
    server = DmxServer(conn.provider, port=0, max_sessions=WORKERS + 2)
    yield conn, server
    server.close()
    conn.close()
    assert server.thread_errors == []


def _worker_body(port, index, failures):
    try:
        with net_connect("127.0.0.1", port) as client:
            model = f"M{index}"
            client.execute(
                f"CREATE MINING MODEL {model} (pid LONG KEY, "
                f"sex TEXT DISCRETE, buys TEXT DISCRETE PREDICT) "
                f"USING Repro_Naive_Bayes")
            for round_no in range(STATEMENTS_PER_WORKER):
                rowset = client.execute(
                    f"SELECT pid, age FROM People WHERE pid > {round_no}")
                assert len(rowset.rows) == 80 - round_no
                if round_no == 1:
                    client.execute(
                        f"INSERT INTO {model} (pid, sex, buys) "
                        f"SELECT pid, sex, buys FROM People")
                if round_no >= 2:
                    predicted = client.execute(
                        f"SELECT t.pid, {model}.buys FROM {model} "
                        f"NATURAL PREDICTION JOIN (SELECT pid, sex FROM "
                        f"People WHERE pid <= 10) AS t")
                    assert len(predicted.rows) == 10
                streamed = client.execute_stream(
                    "SELECT pid FROM People", batch_size=9)
                assert len(list(streamed)) == 80
    except BaseException as exc:  # noqa: BLE001 - collected for the assert
        failures.append((index, exc))


def test_mixed_workload_across_sessions(served):
    conn, server = served
    failures = []
    threads = [threading.Thread(target=_worker_body,
                                args=(server.port, i, failures))
               for i in range(WORKERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not failures, failures
    assert not any(t.is_alive() for t in threads)

    # The goodbye reply races the server-side retire by a few microseconds;
    # wait for the gauge to settle before asserting on the session ring.
    deadline = time.monotonic() + 10
    while conn.provider.metrics.value("server.sessions_active") > 0:
        assert time.monotonic() < deadline, "sessions never retired"
        time.sleep(0.01)

    # Every worker session is retired in the DM_SESSIONS ring with its
    # statement and byte accounting populated.
    sessions = conn.execute("SELECT * FROM $SYSTEM.DM_SESSIONS")
    closed = [row for row in sessions.rows
              if row[sessions.index_of("STATE")] == "closed"]
    assert len(closed) == WORKERS
    for row in closed:
        assert row[sessions.index_of("STATEMENTS")] >= STATEMENTS_PER_WORKER
        assert row[sessions.index_of("ROWS_SENT")] > 0
        assert row[sessions.index_of("BYTES_IN")] > 0
        assert row[sessions.index_of("BYTES_OUT")] > 0

    # DM_QUERY_LOG attributes wire statements to their session ids.
    log = conn.execute("SELECT SESSION, KIND FROM $SYSTEM.DM_QUERY_LOG")
    by_session = {}
    for session, kind in log.rows:
        if session is not None:
            by_session.setdefault(session, set()).add(kind)
    assert len(by_session) == WORKERS
    for kinds in by_session.values():
        assert {"SELECT", "TRAIN", "PREDICT"} <= kinds

    # Embedded statements carry no session id.
    assert any(session is None for session, _ in log.rows)

    # All six models trained on the one shared provider.
    assert len(conn.models()) == WORKERS

    # Metrics saw every session come and go.
    assert conn.provider.metrics.value("server.sessions_total") >= WORKERS
    assert conn.provider.metrics.value("server.sessions_active") == 0


def test_cancel_is_scoped_to_the_owning_session(served):
    conn, server = served
    register_algorithm(SlowIterative)
    try:
        with net_connect("127.0.0.1", server.port) as owner, \
                net_connect("127.0.0.1", server.port) as intruder:
            owner.execute("CREATE MINING MODEL Slow (pid LONG KEY, "
                          "sex TEXT DISCRETE) USING [Test_Slow_Iterative]")
            outcome = {}

            def train():
                try:
                    outcome["result"] = owner.execute(
                        "INSERT INTO Slow (pid, sex) "
                        "SELECT pid, sex FROM People")
                except Error as exc:
                    outcome["error"] = exc

            thread = threading.Thread(target=train)
            thread.start()
            assert SlowIterative.started.wait(timeout=10)

            actives = {}
            for _ in range(100):
                rowset = intruder.execute(
                    "SELECT STATEMENT_ID, SESSION FROM "
                    "$SYSTEM.DM_ACTIVE_STATEMENTS WHERE KIND = 'TRAIN'")
                actives = dict(rowset.rows)
                if actives:
                    break
                time.sleep(0.05)
            assert actives, "TRAIN never showed up in DM_ACTIVE_STATEMENTS"
            statement_id = next(iter(actives))
            assert actives[statement_id] == owner.session_id

            # Another session may not kill it...
            with pytest.raises(Error, match="owned by"):
                intruder.cancel(statement_id)
            assert "error" not in outcome

            # ...but the owner may, out of band, mid-statement.
            message = owner.cancel(statement_id)
            assert f"statement {statement_id}" in message
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert "cancelled" in str(outcome.get("error"))
    finally:
        unregister_algorithm(SlowIterative)


def test_admission_rejects_with_typed_error_when_full(served):
    conn, server = served
    small = DmxServer(conn.provider, port=0, max_sessions=1, queue_limit=0)
    try:
        with net_connect("127.0.0.1", small.port) as first:
            assert first.ping()
            with pytest.raises(ServerBusyError, match="capacity"):
                net_connect("127.0.0.1", small.port)
        assert conn.provider.metrics.value("server.rejections") >= 1
    finally:
        small.close()
        # The fixture's server keeps the provider attachment afterwards.
        conn.provider.dmx_server = server


def test_queued_session_admits_once_a_slot_frees(served):
    conn, server = served
    small = DmxServer(conn.provider, port=0, max_sessions=1, queue_limit=2)
    try:
        first = net_connect("127.0.0.1", small.port)
        admitted = {}

        def queued_connect():
            with net_connect("127.0.0.1", small.port) as second:
                admitted["session"] = second.session_id
                admitted["pong"] = second.ping()

        thread = threading.Thread(target=queued_connect)
        thread.start()
        deadline = time.monotonic() + 10
        while conn.provider.metrics.value("server.queue_depth") < 1:
            assert time.monotonic() < deadline, "hello never queued"
            time.sleep(0.01)
        assert "session" not in admitted  # still waiting for the slot
        first.close()
        thread.join(timeout=10)
        assert admitted.get("pong") is True
        assert conn.provider.metrics.value("server.queue_depth") == 0
    finally:
        small.close()
        conn.provider.dmx_server = server


def test_drain_leaves_no_server_threads():
    conn = repro.connect()
    _load_shared(conn)
    server = DmxServer(conn.provider, port=0)
    clients = [net_connect("127.0.0.1", server.port) for _ in range(3)]
    for index, client in enumerate(clients):
        client.execute(f"SELECT {index} AS n FROM People WHERE pid = 1")
    server.close()
    leftovers = [t.name for t in threading.enumerate()
                 if t.name.startswith("dmx-")]
    assert leftovers == []
    assert all(s.state == "closed" for s in server.sessions())
    for client in clients:
        client.close()
    # Double close is a no-op.
    server.close()
    assert server.thread_errors == []
    conn.close()


def test_checkpoint_quiesces_the_wire_first(tmp_path):
    """Provider.checkpoint drains in-flight wire statements before the
    snapshot: the journal is empty afterwards and the served state is
    recoverable."""
    conn = repro.connect(durable_path=str(tmp_path / "store"),
                         durable_checkpoint_interval=0)
    _load_shared(conn)
    server = DmxServer(conn.provider, port=0)
    try:
        with net_connect("127.0.0.1", server.port) as client:
            client.execute("CREATE TABLE WireT (x INT)")
            client.execute("INSERT INTO WireT VALUES (1), (2)")
            conn.provider.checkpoint()
            from repro.store.journal import read_journal
            records, _, _ = read_journal(conn.provider.store.journal_path)
            assert records == []
            client.execute("INSERT INTO WireT VALUES (3)")
    finally:
        server.close()
        conn.close()
    recovered = repro.connect(durable_path=str(tmp_path / "store"))
    try:
        assert len(recovered.execute("SELECT * FROM WireT").rows) == 3
    finally:
        recovered.close()
