"""EM and k-means clustering: recovery, posteriors, prediction."""

import numpy as np
import pytest

from repro.lang.parser import parse_statement
from repro.core.bindings import MappedCase
from repro.core.columns import compile_model_definition
from repro.algorithms.attributes import AttributeSpace
from repro.algorithms.clustering_em import EMClusteringAlgorithm
from repro.algorithms.clustering_kmeans import KMeansAlgorithm


def case(**scalars):
    mapped = MappedCase()
    mapped.scalars.update({k.upper(): v for k, v in scalars.items()})
    return mapped


DDL = """
CREATE MINING MODEL m (k LONG KEY, Color TEXT DISCRETE,
    X DOUBLE CONTINUOUS, Y DOUBLE CONTINUOUS PREDICT)
USING Repro_Clustering
"""


def two_blob_cases(n=120):
    rng = np.random.RandomState(0)
    cases = []
    for i in range(n):
        if i % 2:
            x = float(rng.normal(0.0, 0.5))
            color, y = "red", 10.0
        else:
            x = float(rng.normal(20.0, 0.5))
            color, y = "blue", 50.0
        cases.append(case(k=i, Color=color, X=x, Y=y))
    return cases


def build(algorithm_cls, params):
    definition = compile_model_definition(parse_statement(DDL))
    cases = two_blob_cases()
    space = AttributeSpace(definition)
    space.fit(cases)
    algorithm = algorithm_cls(params)
    algorithm.train(space, space.encode_many(cases))
    return space, algorithm, cases


@pytest.fixture(params=[EMClusteringAlgorithm, KMeansAlgorithm],
                ids=["em", "kmeans"])
def clustering(request):
    return build(request.param, {"CLUSTER_COUNT": 2, "CLUSTER_SEED": 5})


class TestRecovery:
    def test_two_blobs_separate(self, clustering):
        space, algorithm, cases = clustering
        assignments = {0: set(), 1: set()}
        for i, c in enumerate(cases):
            prediction = algorithm.predict(space.encode(c))
            assignments[i % 2].add(prediction.cluster_id)
        # Each parity class lands in exactly one cluster, and they differ.
        assert len(assignments[0]) == 1 and len(assignments[1]) == 1
        assert assignments[0] != assignments[1]

    def test_cluster_support_accounts_for_all_cases(self, clustering):
        space, algorithm, cases = clustering
        assert float(np.sum(algorithm.cluster_support)) == \
            pytest.approx(len(cases), rel=0.01)

    def test_posterior_is_distribution(self, clustering):
        space, algorithm, cases = clustering
        prediction = algorithm.predict(space.encode(cases[0]))
        assert sum(prediction.cluster_probabilities) == pytest.approx(1.0)
        assert prediction.cluster_id == \
            int(np.argmax(prediction.cluster_probabilities)) + 1

    def test_deterministic_given_seed(self):
        _, a, cases = build(EMClusteringAlgorithm,
                            {"CLUSTER_COUNT": 2, "CLUSTER_SEED": 5})
        _, b, _ = build(EMClusteringAlgorithm,
                        {"CLUSTER_COUNT": 2, "CLUSTER_SEED": 5})
        assert np.allclose(a.weights, b.weights)
        assert np.allclose(a.means, b.means)


class TestAttributePrediction:
    def test_predicts_y_from_cluster(self, clustering):
        space, algorithm, cases = clustering
        y = space.by_name("Y")
        near_zero = algorithm.predict(
            space.encode(case(Color="red", X=0.5))).get(y)
        near_twenty = algorithm.predict(
            space.encode(case(Color="blue", X=19.5))).get(y)
        assert near_zero.value == pytest.approx(10.0, abs=2.0)
        assert near_twenty.value == pytest.approx(50.0, abs=2.0)

    def test_missing_everything_gives_global_mixture(self, clustering):
        space, algorithm, cases = clustering
        y = space.by_name("Y")
        prediction = algorithm.predict(space.encode(case())).get(y)
        assert 10.0 <= prediction.value <= 50.0


class TestEmSpecifics:
    def test_likelihood_is_nondecreasing(self):
        _, algorithm, _ = build(EMClusteringAlgorithm,
                                {"CLUSTER_COUNT": 2, "CLUSTER_SEED": 5})
        trace = algorithm.log_likelihood_trace
        assert len(trace) >= 2
        for previous, current in zip(trace, trace[1:]):
            assert current >= previous - 1e-6

    def test_cluster_count_capped_by_cases(self):
        definition = compile_model_definition(parse_statement(DDL))
        cases = two_blob_cases(4)
        space = AttributeSpace(definition)
        space.fit(cases)
        algorithm = EMClusteringAlgorithm({"CLUSTER_COUNT": 50})
        algorithm.train(space, space.encode_many(cases))
        assert algorithm.cluster_count == 4


class TestKMeansSpecifics:
    def test_distances_reported(self):
        space, algorithm, cases = build(
            KMeansAlgorithm, {"CLUSTER_COUNT": 2, "CLUSTER_SEED": 5})
        prediction = algorithm.predict(space.encode(cases[0]))
        assert len(prediction.cluster_distances) == 2
        own = prediction.cluster_distances[prediction.cluster_id - 1]
        assert own == min(prediction.cluster_distances)


class TestContent:
    def test_cluster_nodes(self, clustering):
        space, algorithm, _ = clustering
        root = algorithm.content_nodes()
        clusters = [n for n in root.children]
        assert len(clusters) == 2
        assert all(n.node_type_name == "Cluster" for n in clusters)
        assert all(n.distribution for n in clusters)
        total_probability = sum(n.probability for n in clusters)
        assert total_probability == pytest.approx(1.0)
