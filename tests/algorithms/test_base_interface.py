"""The MiningAlgorithm base class and prediction result types."""

import pytest

from repro.errors import NotTrainedError, SchemaError
from repro.lang.parser import parse_statement
from repro.core.bindings import MappedCase
from repro.core.columns import compile_model_definition
from repro.algorithms.attributes import Attribute, AttributeSpace
from repro.algorithms.base import (
    AttributePrediction,
    CasePrediction,
    PredictionBucket,
)
from repro.algorithms.naive_bayes import NaiveBayesAlgorithm
from repro.algorithms.statistics import CategoricalDistribution, GaussianStats


def fitted_space():
    definition = compile_model_definition(parse_statement(
        "CREATE MINING MODEL m (k LONG KEY, a TEXT DISCRETE PREDICT, "
        "v DOUBLE CONTINUOUS) USING Repro_Naive_Bayes"))
    cases = []
    for i, (a, v) in enumerate([("x", 1.0), ("y", 3.0), ("x", 2.0)]):
        case = MappedCase()
        case.scalars.update({"K": i, "A": a, "V": v})
        cases.append(case)
    space = AttributeSpace(definition)
    space.fit(cases)
    return space, cases


class TestLifecycleGuards:
    def test_require_trained(self):
        algorithm = NaiveBayesAlgorithm()
        with pytest.raises(NotTrainedError):
            algorithm.require_trained()

    def test_reset_clears_trained(self):
        space, cases = fitted_space()
        algorithm = NaiveBayesAlgorithm()
        algorithm.train(space, space.encode_many(cases))
        assert algorithm.trained
        algorithm.reset()
        assert not algorithm.trained
        with pytest.raises(NotTrainedError):
            algorithm.predict(space.encode(cases[0]))

    def test_parameter_validation(self):
        with pytest.raises(SchemaError):
            NaiveBayesAlgorithm({"NOT_A_PARAM": 1})

    def test_describe_capabilities(self):
        description = NaiveBayesAlgorithm().describe()
        assert description["SERVICE_NAME"] == "Repro_Naive_Bayes"
        assert description["PREDICTS_CONTINUOUS"] is False
        assert description["SUPPORTS_INCREMENTAL"] is True


class TestMarginalPrediction:
    def test_categorical_marginal(self):
        space, cases = fitted_space()
        algorithm = NaiveBayesAlgorithm()
        algorithm.train(space, space.encode_many(cases))
        a = space.by_name("a")
        prediction = algorithm.marginal_prediction(a)
        assert prediction.value == "x"
        assert prediction.probability == pytest.approx(2 / 3)

    def test_continuous_marginal(self):
        space, cases = fitted_space()
        algorithm = NaiveBayesAlgorithm()
        algorithm.train(space, space.encode_many(cases))
        v = space.by_name("v")
        prediction = algorithm.marginal_prediction(v)
        assert prediction.value == pytest.approx(2.0)
        assert prediction.variance is not None


class TestResultTypes:
    def attribute(self):
        return Attribute(0, "a", "categorical", True, True,
                         categories=["x", "y"])

    def test_from_categorical_orders_histogram(self):
        distribution = CategoricalDistribution()
        distribution.add(0, 1.0)  # x
        distribution.add(1, 3.0)  # y
        prediction = AttributePrediction.from_categorical(
            self.attribute(), distribution)
        assert prediction.value == "y"
        assert [b.value for b in prediction.histogram] == ["y", "x"]
        assert prediction.support == 3.0

    def test_from_categorical_empty(self):
        prediction = AttributePrediction.from_categorical(
            self.attribute(), CategoricalDistribution())
        assert prediction.value is None
        assert prediction.histogram == []

    def test_from_gaussian(self):
        stats = GaussianStats()
        stats.add(2.0)
        stats.add(4.0)
        attribute = Attribute(0, "v", "continuous", True, True)
        prediction = AttributePrediction.from_gaussian(attribute, stats)
        assert prediction.value == 3.0
        assert prediction.variance == pytest.approx(1.0)
        assert len(prediction.histogram) == 1

    def test_case_prediction_get_set(self):
        attribute = self.attribute()
        case_prediction = CasePrediction()
        entry = AttributePrediction(attribute, "x", 1.0, 1.0, None,
                                    [PredictionBucket("x", 1.0, 1.0)])
        case_prediction.set(entry)
        assert case_prediction.get(attribute) is entry
        assert list(case_prediction) == [entry]
        other = Attribute(9, "z", "categorical", True, True)
        assert case_prediction.get(other) is None
