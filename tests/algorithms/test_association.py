"""Apriori association rules: itemsets, rules, recommendations."""

import pytest

from repro.errors import CapabilityError, TrainError
from repro.lang.parser import parse_statement
from repro.core.bindings import MappedCase
from repro.core.columns import compile_model_definition
from repro.algorithms.attributes import AttributeSpace
from repro.algorithms.association import AssociationRulesAlgorithm

DDL = """
CREATE MINING MODEL m (
    [Id] LONG KEY,
    [Basket] TABLE([Item] TEXT KEY) PREDICT
) USING Repro_Association_Rules
"""

# 10 baskets: {beer, chips} always together; diapers with beer 4/5 times.
BASKETS = [
    ["beer", "chips", "diapers"],
    ["beer", "chips", "diapers"],
    ["beer", "chips", "diapers"],
    ["beer", "chips", "diapers"],
    ["beer", "chips"],
    ["milk", "bread"],
    ["milk", "bread"],
    ["milk"],
    ["bread"],
    ["milk", "bread", "chips"],
]


def basket_case(identifier, items):
    case = MappedCase()
    case.scalars["ID"] = identifier
    case.tables["BASKET"] = [{"ITEM": item} for item in items]
    return case


def build(min_support=0.2, min_probability=0.5, baskets=None):
    definition = compile_model_definition(parse_statement(DDL))
    cases = [basket_case(i, items)
             for i, items in enumerate(baskets or BASKETS)]
    space = AttributeSpace(definition)
    space.fit(cases)
    algorithm = AssociationRulesAlgorithm({
        "MINIMUM_SUPPORT": min_support,
        "MINIMUM_PROBABILITY": min_probability})
    algorithm.train(space, space.encode_many(cases))
    return space, algorithm, cases


class TestItemsets:
    def test_singleton_supports_are_counts(self):
        _, algorithm, _ = build()
        itemsets = dict(algorithm.frequent_itemsets())
        assert itemsets[("beer",)] == 5.0
        assert itemsets[("milk",)] == 4.0

    def test_pair_supports(self):
        _, algorithm, _ = build()
        itemsets = dict(algorithm.frequent_itemsets())
        assert itemsets[("beer", "chips")] == 5.0
        assert itemsets[("beer", "diapers")] == 4.0

    def test_support_threshold_prunes(self):
        _, generous, _ = build(min_support=0.1)
        _, strict, _ = build(min_support=0.45)
        assert len(strict.itemsets) < len(generous.itemsets)
        for itemset, support in strict.itemsets.items():
            assert support >= 0.45 * strict.case_total

    def test_absolute_support_threshold(self):
        _, algorithm, _ = build(min_support=5.0)  # >1 means a count
        for support in algorithm.itemsets.values():
            assert support >= 5.0

    def test_subset_support_monotonicity(self):
        _, algorithm, _ = build(min_support=0.1)
        for itemset, support in algorithm.itemsets.items():
            for item in itemset:
                subset = itemset - {item}
                if subset:
                    assert algorithm.itemsets[subset] >= support

    def test_maximum_itemset_size(self):
        definition = compile_model_definition(parse_statement(DDL))
        cases = [basket_case(i, items) for i, items in enumerate(BASKETS)]
        space = AttributeSpace(definition)
        space.fit(cases)
        algorithm = AssociationRulesAlgorithm({
            "MINIMUM_SUPPORT": 0.1, "MAXIMUM_ITEMSET_SIZE": 2})
        algorithm.train(space, space.encode_many(cases))
        assert max(len(s) for s in algorithm.itemsets) <= 2


class TestRules:
    def test_confidence_values(self):
        _, algorithm, _ = build(min_probability=0.5)
        rules = {(left, right): confidence
                 for left, right, _, confidence in
                 algorithm.rules_as_tuples()}
        assert rules[(("beer",), "chips")] == pytest.approx(1.0)
        assert rules[(("beer",), "diapers")] == pytest.approx(0.8)

    def test_confidence_threshold(self):
        _, algorithm, _ = build(min_probability=0.9)
        for _, _, _, confidence in algorithm.rules_as_tuples():
            assert confidence >= 0.9

    def test_rules_sorted_by_confidence(self):
        _, algorithm, _ = build(min_probability=0.5)
        confidences = [r.confidence for r in algorithm.rules]
        assert confidences == sorted(confidences, reverse=True)


class TestRecommendations:
    def test_applicable_rule_drives_recommendation(self):
        space, algorithm, _ = build()
        observation = space.encode(basket_case(99, ["beer"]))
        prediction = algorithm.predict(observation)
        recommendations = prediction.recommendations["BASKET"]
        assert recommendations[0].value == "chips"
        assert recommendations[0].probability == pytest.approx(1.0)

    def test_owned_items_not_recommended(self):
        space, algorithm, _ = build()
        observation = space.encode(basket_case(99, ["beer", "chips"]))
        values = [b.value for b in
                  algorithm.predict(observation).recommendations["BASKET"]]
        assert "beer" not in values and "chips" not in values

    def test_empty_basket_gets_popularity_fallback(self):
        space, algorithm, _ = build()
        observation = space.encode(basket_case(99, []))
        recommendations = algorithm.predict(observation) \
            .recommendations["BASKET"]
        assert recommendations  # every frequent item is rankable


class TestCapabilities:
    def test_requires_nested_table(self):
        ddl = ("CREATE MINING MODEL m (k LONG KEY, a TEXT DISCRETE "
               "PREDICT) USING Repro_Association_Rules")
        definition = compile_model_definition(parse_statement(ddl))
        case = MappedCase()
        case.scalars["K"] = 1
        case.scalars["A"] = "x"
        space = AttributeSpace(definition)
        space.fit([case])
        algorithm = AssociationRulesAlgorithm()
        with pytest.raises(TrainError):
            algorithm.train(space, space.encode_many([case]))

    def test_refuses_continuous_targets(self):
        ddl = ("CREATE MINING MODEL m (k LONG KEY, y DOUBLE CONTINUOUS "
               "PREDICT, b TABLE(i TEXT KEY)) "
               "USING Repro_Association_Rules")
        definition = compile_model_definition(parse_statement(ddl))
        case = basket_case(1, ["x"])
        case.scalars["Y"] = 1.0
        space = AttributeSpace(definition)
        space.fit([case])
        algorithm = AssociationRulesAlgorithm()
        with pytest.raises(CapabilityError):
            algorithm.train(space, space.encode_many([case]))


class TestContent:
    def test_itemset_and_rule_nodes(self):
        _, algorithm, _ = build()
        root = algorithm.content_nodes()
        types = {n.node_type_name for n in root.walk()}
        assert "ItemSet" in types and "Rule" in types
        rules = [n for n in root.walk() if n.node_type_name == "Rule"]
        assert all("->" in n.caption for n in rules)
