"""Weighted distribution statistics."""

import math

import pytest

from repro.algorithms.statistics import (
    CategoricalDistribution,
    GaussianStats,
    entropy,
    log_sum_exp,
)


class TestCategoricalDistribution:
    def test_probability_and_mode(self):
        distribution = CategoricalDistribution()
        for value, weight in (("a", 3.0), ("b", 1.0)):
            distribution.add(value, weight)
        assert distribution.probability("a") == 0.75
        assert distribution.most_likely() == ("a", 0.75)
        assert distribution.support("b") == 1.0

    def test_zero_and_negative_weights_ignored(self):
        distribution = CategoricalDistribution()
        distribution.add("a", 0.0)
        distribution.add("a", -1.0)
        assert distribution.total == 0.0
        assert distribution.most_likely() == (None, 0.0)

    def test_laplace_smoothing(self):
        distribution = CategoricalDistribution()
        distribution.add("a", 4.0)
        assert distribution.probability("b", smoothing=1.0,
                                        cardinality=2) == \
            pytest.approx(1.0 / 6.0)

    def test_entropy_bounds(self):
        distribution = CategoricalDistribution()
        distribution.add("a", 1.0)
        assert distribution.entropy() == 0.0
        distribution.add("b", 1.0)
        assert distribution.entropy() == pytest.approx(1.0)

    def test_gini(self):
        distribution = CategoricalDistribution()
        distribution.add("a", 1.0)
        distribution.add("b", 1.0)
        assert distribution.gini() == pytest.approx(0.5)

    def test_sorted_items_deterministic_ties(self):
        distribution = CategoricalDistribution()
        distribution.add("b", 1.0)
        distribution.add("a", 1.0)
        assert [v for v, _ in distribution.sorted_items()] == ["a", "b"]

    def test_merge_and_copy(self):
        a = CategoricalDistribution()
        a.add("x", 2.0)
        b = CategoricalDistribution()
        b.add("x", 1.0)
        b.add("y", 1.0)
        clone = a.copy()
        a.merge(b)
        assert a.support("x") == 3.0 and a.total == 4.0
        assert clone.support("x") == 2.0  # unaffected


class TestGaussianStats:
    def test_mean_and_variance(self):
        stats = GaussianStats()
        for value in (2.0, 4.0, 6.0):
            stats.add(value)
        assert stats.mean == pytest.approx(4.0)
        assert stats.variance == pytest.approx(8.0 / 3.0)
        assert stats.minimum == 2.0 and stats.maximum == 6.0

    def test_weighted_equals_replicated(self):
        weighted = GaussianStats()
        weighted.add(1.0, 3.0)
        weighted.add(5.0, 1.0)
        replicated = GaussianStats()
        for value in (1.0, 1.0, 1.0, 5.0):
            replicated.add(value)
        assert weighted.mean == pytest.approx(replicated.mean)
        assert weighted.variance == pytest.approx(replicated.variance)

    def test_pdf_peaks_at_mean(self):
        stats = GaussianStats()
        for value in (0.0, 2.0, 4.0):
            stats.add(value)
        assert stats.pdf(2.0) > stats.pdf(5.0)

    def test_pdf_with_degenerate_variance(self):
        stats = GaussianStats()
        stats.add(1.0)
        stats.add(1.0)
        assert math.isfinite(stats.pdf(1.0))

    def test_empty_variance_is_zero(self):
        assert GaussianStats().variance == 0.0


class TestHelpers:
    def test_entropy_ignores_zero(self):
        assert entropy([0.5, 0.5, 0.0]) == pytest.approx(1.0)

    def test_log_sum_exp_stability(self):
        assert log_sum_exp([-1000.0, -1000.0]) == \
            pytest.approx(-1000.0 + math.log(2))
        assert log_sum_exp([]) == float("-inf")
