"""Logistic regression: calibration, separation, capability limits."""

import numpy as np
import pytest

from repro.errors import CapabilityError
from repro.lang.parser import parse_statement
from repro.core.bindings import MappedCase
from repro.core.columns import compile_model_definition
from repro.algorithms.attributes import AttributeSpace
from repro.algorithms.logistic_regression import LogisticRegressionAlgorithm

DDL = """
CREATE MINING MODEL m (k LONG KEY, G TEXT DISCRETE,
    X DOUBLE CONTINUOUS, L TEXT DISCRETE PREDICT)
USING Repro_Logistic_Regression
"""


def case(**scalars):
    mapped = MappedCase()
    mapped.scalars.update({k.upper(): v for k, v in scalars.items()})
    return mapped


def separable_cases(n=200, seed=3):
    rng = np.random.RandomState(seed)
    cases = []
    for i in range(n):
        x = float(rng.normal(2.0 if i % 2 else -2.0, 0.8))
        label = "pos" if x > 0 else "neg"
        cases.append(case(k=i, G="a" if i % 3 else "b", X=x, L=label))
    return cases


def build(cases, params=None):
    definition = compile_model_definition(parse_statement(DDL))
    space = AttributeSpace(definition)
    space.fit(cases)
    algorithm = LogisticRegressionAlgorithm(params)
    algorithm.train(space, space.encode_many(cases))
    return space, algorithm


class TestSeparation:
    def test_learns_a_separable_boundary(self):
        space, algorithm = build(separable_cases())
        label = space.by_name("L")
        high = algorithm.predict(space.encode(case(X=3.0))).get(label)
        low = algorithm.predict(space.encode(case(X=-3.0))).get(label)
        assert high.value == "pos" and low.value == "neg"
        assert high.probability > 0.9 and low.probability > 0.9

    def test_probabilities_are_calibrated_near_boundary(self):
        space, algorithm = build(separable_cases())
        label = space.by_name("L")
        boundary = algorithm.predict(space.encode(case(X=0.0))).get(label)
        assert 0.2 < boundary.probability < 0.8

    def test_histogram_is_a_distribution(self):
        space, algorithm = build(separable_cases())
        label = space.by_name("L")
        prediction = algorithm.predict(space.encode(case(X=1.0))).get(label)
        assert sum(b.probability for b in prediction.histogram) == \
            pytest.approx(1.0)

    def test_missing_features_fall_back_to_means(self):
        space, algorithm = build(separable_cases())
        label = space.by_name("L")
        prediction = algorithm.predict(space.encode(case())).get(label)
        assert prediction.value in ("pos", "neg")

    def test_multiclass(self):
        cases = []
        for i in range(300):
            x = float(i % 3) * 10.0 + (i % 7) * 0.1
            cases.append(case(k=i, G="a", X=x, L=f"c{i % 3}"))
        space, algorithm = build(cases)
        label = space.by_name("L")
        for target_class, x in (("c0", 0.2), ("c1", 10.2), ("c2", 20.2)):
            prediction = algorithm.predict(
                space.encode(case(X=x))).get(label)
            assert prediction.value == target_class


class TestWeighting:
    def test_support_weights_shift_the_boundary(self):
        cases = [case(k=1, G="a", X=1.0, L="pos"),
                 case(k=2, G="a", X=1.0, L="neg")]
        cases[1].qualifiers["L"] = {"SUPPORT": 9.0}
        definition = compile_model_definition(parse_statement(DDL))
        space = AttributeSpace(definition)
        space.fit(cases)
        algorithm = LogisticRegressionAlgorithm()
        algorithm.train(space, space.encode_many(cases))
        label = space.by_name("L")
        prediction = algorithm.predict(
            space.encode(case(G="a", X=1.0))).get(label)
        assert prediction.value == "neg"


class TestCapabilities:
    def test_refuses_continuous_targets(self):
        ddl = ("CREATE MINING MODEL m (k LONG KEY, G TEXT DISCRETE, "
               "Y DOUBLE CONTINUOUS PREDICT) "
               "USING Repro_Logistic_Regression")
        definition = compile_model_definition(parse_statement(ddl))
        cases = [case(k=1, G="a", Y=1.0), case(k=2, G="b", Y=2.0)]
        space = AttributeSpace(definition)
        space.fit(cases)
        with pytest.raises(CapabilityError):
            LogisticRegressionAlgorithm().train(
                space, space.encode_many(cases))

    def test_capability_flags(self):
        assert LogisticRegressionAlgorithm.PREDICTS_DISCRETE
        assert not LogisticRegressionAlgorithm.PREDICTS_CONTINUOUS


class TestContentAndPersistence:
    def test_content_lists_per_class_coefficients(self):
        space, algorithm = build(separable_cases())
        root = algorithm.content_nodes()
        rows = root.children[0].distribution
        labels = [row.attribute for row in rows]
        assert any("(intercept)" in label for label in labels)
        assert any("| X" in label for label in labels)

    def test_pmml_round_trip_preserves_predictions(self, conn):
        conn.execute("CREATE TABLE T (k LONG, G TEXT, X DOUBLE, L TEXT)")
        rows = ", ".join(
            f"({i}, 'a', {2.0 if i % 2 else -2.0}, "
            f"'{'pos' if i % 2 else 'neg'}')" for i in range(60))
        conn.execute(f"INSERT INTO T VALUES {rows}")
        conn.execute(DDL.replace("m (", "[LR] ("))
        conn.execute("INSERT INTO [LR] SELECT k, G, X, L FROM T")
        query = ("SELECT [LR].[L], PredictProbability([L]) FROM [LR] "
                 "NATURAL PREDICTION JOIN (SELECT 1.5 AS X) AS t")
        before = conn.execute(query).rows
        from repro.pmml import read_pmml, to_pmml
        restored = read_pmml(to_pmml(conn.model("LR")))
        conn.provider.models["LR"] = restored
        after = conn.execute(query).rows
        assert before[0][0] == after[0][0]
        assert before[0][1] == pytest.approx(after[0][1])
