"""Discretization strategies for DISCRETIZED attributes."""

import pytest

from repro.errors import TrainError
from repro.algorithms.discretization import fit_discretizer


class TestEqualRange:
    def test_even_spans(self):
        discretizer = fit_discretizer(range(0, 101), "EQUAL_RANGE", 4)
        assert discretizer.edges == [25.0, 50.0, 75.0]
        assert discretizer.bucket_of(10) == 0
        assert discretizer.bucket_of(25) == 0   # right-closed edges
        assert discretizer.bucket_of(26) == 1
        assert discretizer.bucket_of(100) == 3

    def test_clamps_out_of_range(self):
        discretizer = fit_discretizer([0.0, 100.0], "EQUAL_RANGE", 4)
        assert discretizer.bucket_of(-50) == 0
        assert discretizer.bucket_of(500) == discretizer.bucket_count - 1


class TestEqualCount:
    def test_balanced_buckets(self):
        values = list(range(100))
        discretizer = fit_discretizer(values, "EQUAL_COUNT", 4)
        counts = [0] * discretizer.bucket_count
        for value in values:
            counts[discretizer.bucket_of(value)] += 1
        assert max(counts) - min(counts) <= 2

    def test_skewed_data_still_balanced(self):
        values = [1.0] * 50 + list(range(100, 150))
        discretizer = fit_discretizer(values, "EQUAL_COUNT", 2)
        low = sum(1 for v in values if discretizer.bucket_of(v) == 0)
        assert low == 50

    def test_heavy_ties_collapse_edges(self):
        values = [5.0] * 99 + [6.0]
        discretizer = fit_discretizer(values, "EQUAL_COUNT", 4)
        assert discretizer.bucket_count <= 2


class TestClusters:
    def test_separates_clear_clusters(self):
        values = [1.0, 1.1, 0.9] * 10 + [100.0, 100.1, 99.9] * 10
        discretizer = fit_discretizer(values, "CLUSTERS", 2)
        assert discretizer.bucket_of(1.0) != discretizer.bucket_of(100.0)

    def test_deterministic(self):
        values = [float(i % 17) for i in range(200)]
        a = fit_discretizer(values, "CLUSTERS", 4)
        b = fit_discretizer(values, "CLUSTERS", 4)
        assert a.edges == b.edges


class TestGeneralBehaviour:
    def test_automatic_defaults_to_quantiles(self):
        values = list(range(100))
        auto = fit_discretizer(values, None, 4)
        explicit = fit_discretizer(values, "EQUAL_COUNT", 4)
        assert auto.edges == explicit.edges

    def test_constant_column_single_bucket(self):
        discretizer = fit_discretizer([7.0] * 10, "EQUAL_RANGE", 5)
        assert discretizer.bucket_count == 1
        assert discretizer.bucket_of(7.0) == 0

    def test_none_values_ignored(self):
        discretizer = fit_discretizer([None, 1.0, None, 2.0], "EQUAL_RANGE",
                                      2)
        assert discretizer.minimum == 1.0

    def test_all_none_raises(self):
        with pytest.raises(TrainError):
            fit_discretizer([None, None], "EQUAL_RANGE", 2)

    def test_bad_bucket_count(self):
        with pytest.raises(TrainError):
            fit_discretizer([1.0, 2.0], "EQUAL_RANGE", 0)

    def test_unknown_method(self):
        with pytest.raises(TrainError):
            fit_discretizer([1.0, 2.0], "MAGIC", 2)

    def test_ranges_tile_the_domain(self):
        discretizer = fit_discretizer(list(range(50)), "EQUAL_COUNT", 5)
        previous_high = None
        for bucket in range(discretizer.bucket_count):
            low, high = discretizer.range_of(bucket)
            assert low <= high
            if previous_high is not None:
                assert low == previous_high
            previous_high = high

    def test_label_and_midpoint(self):
        discretizer = fit_discretizer([0.0, 10.0], "EQUAL_RANGE", 2)
        assert discretizer.label(0) == "[0 - 5]"
        assert discretizer.midpoint_of(0) == 2.5

    def test_bucket_of_matches_linear_scan(self):
        discretizer = fit_discretizer(list(range(1000)), "EQUAL_COUNT", 7)
        for value in (0, 3.3, 142.5, 999, 500):
            linear = 0
            for edge in discretizer.edges:
                if value > edge:
                    linear += 1
            assert discretizer.bucket_of(value) == linear
