"""The mining-service registry and the plug-in API."""

import pytest

from repro.errors import BindError, SchemaError
from repro.algorithms.base import CasePrediction, MiningAlgorithm
from repro.algorithms.registry import (
    algorithm_services,
    create_algorithm,
    register_algorithm,
    resolve_algorithm,
    unregister_algorithm,
)
from repro.core.content import NODE_MODEL, ContentNode


class TestResolution:
    def test_canonical_names(self):
        assert resolve_algorithm("Repro_Decision_Trees").SERVICE_NAME == \
            "Repro_Decision_Trees"

    def test_aliases_resolve(self):
        for alias in ("Microsoft_Decision_Trees", "Decision_Trees_101",
                      "decision_trees"):
            assert resolve_algorithm(alias).SERVICE_NAME == \
                "Repro_Decision_Trees"

    def test_unknown_name_lists_services(self):
        with pytest.raises(BindError, match="Repro_Decision_Trees"):
            resolve_algorithm("Quantum_Mining_3000")

    def test_create_with_parameters(self):
        algorithm = create_algorithm("Repro_Decision_Trees",
                                     {"MINIMUM_SUPPORT": 3})
        assert algorithm.param("MINIMUM_SUPPORT") == 3
        # unspecified parameters keep defaults
        assert algorithm.param("MAXIMUM_DEPTH") == 16

    def test_unknown_parameter_rejected(self):
        with pytest.raises(SchemaError, match="BOGUS"):
            create_algorithm("Repro_Decision_Trees", {"BOGUS": 1})

    def test_shared_parameters_accepted_everywhere(self):
        algorithm = create_algorithm("Repro_Naive_Bayes",
                                     {"MAXIMUM_STATES": 10})
        assert algorithm is not None

    def test_eight_services_registered(self):
        assert len(algorithm_services()) == 8


class FakeAlgorithm(MiningAlgorithm):
    """A minimal third-party service for the plug-in test."""

    SERVICE_NAME = "Vendor_Constant_Predictor"
    ALIASES = ("Constant",)
    SUPPORTED_PARAMETERS = {"VALUE": "always"}

    def _train(self, space, observations):
        pass

    def predict(self, observation):
        return CasePrediction()

    def content_nodes(self):
        return ContentNode("0", NODE_MODEL, "constant")


class TestPluginApi:
    def test_register_and_use_via_dmx(self, conn):
        register_algorithm(FakeAlgorithm)
        try:
            conn.execute("CREATE TABLE T (Id LONG, A TEXT)")
            conn.execute("INSERT INTO T VALUES (1, 'x')")
            conn.execute("CREATE MINING MODEL M (Id LONG KEY, A TEXT "
                         "DISCRETE) USING Constant(VALUE = 'forty-two')")
            conn.execute("INSERT INTO M SELECT Id, A FROM T")
            assert conn.model("M").is_trained
            services = conn.execute(
                "SELECT SERVICE_NAME FROM $SYSTEM.MINING_SERVICES")
            assert "Vendor_Constant_Predictor" in \
                services.column_values("SERVICE_NAME")
        finally:
            unregister_algorithm(FakeAlgorithm)

    def test_name_collisions_rejected(self):
        class Colliding(MiningAlgorithm):
            SERVICE_NAME = "Repro_Decision_Trees"

            def _train(self, space, observations):
                pass

            def predict(self, observation):
                return CasePrediction()

            def content_nodes(self):
                return ContentNode("0", NODE_MODEL, "x")

        with pytest.raises(SchemaError):
            register_algorithm(Colliding)

    def test_service_name_required(self):
        class Nameless(FakeAlgorithm):
            SERVICE_NAME = ""

        with pytest.raises(SchemaError):
            register_algorithm(Nameless)

    def test_unregister_is_clean(self):
        register_algorithm(FakeAlgorithm)
        unregister_algorithm(FakeAlgorithm)
        with pytest.raises(BindError):
            resolve_algorithm("Constant")
