"""The attribute space: compilation, fitting, encoding."""

import pytest

from repro.errors import TrainError
from repro.lang.parser import parse_statement
from repro.core.bindings import MappedCase
from repro.core.columns import compile_model_definition
from repro.algorithms.attributes import AttributeSpace


def definition(ddl):
    return compile_model_definition(parse_statement(ddl))


def make_case(scalars=None, tables=None, qualifiers=None):
    case = MappedCase()
    case.scalars.update({k.upper(): v for k, v in (scalars or {}).items()})
    for name, rows in (tables or {}).items():
        case.tables[name.upper()] = [
            {k.upper(): v for k, v in row.items()} for row in rows]
    for attr, kinds in (qualifiers or {}).items():
        case.qualifiers[attr.upper()] = kinds
    return case


BASKET_DDL = """
CREATE MINING MODEL m (
    [Id] LONG KEY,
    [Gender] TEXT DISCRETE,
    [Age] DOUBLE CONTINUOUS PREDICT,
    [Purchases] TABLE([Product] TEXT KEY,
                      [Quantity] DOUBLE CONTINUOUS,
                      [Type] TEXT DISCRETE RELATED TO [Product])
) USING Repro_Decision_Trees
"""


@pytest.fixture
def basket_space():
    space = AttributeSpace(definition(BASKET_DDL))
    cases = [
        make_case({"Id": 1, "Gender": "Male", "Age": 30.0},
                  {"Purchases": [{"Product": "TV", "Quantity": 1.0,
                                  "Type": "Electronic"},
                                 {"Product": "Beer", "Quantity": 6.0,
                                  "Type": "Beverage"}]}),
        make_case({"Id": 2, "Gender": "Female", "Age": 50.0},
                  {"Purchases": [{"Product": "TV", "Quantity": 2.0,
                                  "Type": "Electronic"}]}),
        make_case({"Id": 3, "Gender": "Male", "Age": None},
                  {"Purchases": []}),
    ]
    space.fit(cases)
    return space, cases


class TestFitting:
    def test_attribute_inventory(self, basket_space):
        space, _ = basket_space
        names = [a.name for a in space.attributes]
        assert "Gender" in names
        assert "Age" in names
        assert "Purchases(TV)" in names
        assert "Purchases(TV).Quantity" in names
        assert "Purchases(Beer)" in names
        # KEY columns never become attributes
        assert "Id" not in names

    def test_flags(self, basket_space):
        space, _ = basket_space
        age = space.by_name("Age")
        assert age.is_output and age.is_input
        tv = space.by_name("Purchases(TV)")
        assert tv.is_existence and tv.is_input and not tv.is_output

    def test_categories_ordered_by_frequency(self, basket_space):
        space, _ = basket_space
        gender = space.by_name("Gender")
        assert gender.categories == ["Male", "Female"]

    def test_relation_map_collected(self, basket_space):
        space, _ = basket_space
        mapping = space.relations[("PURCHASES", "TYPE")]
        assert mapping[("TV").upper()] == "Electronic"

    def test_marginals(self, basket_space):
        space, _ = basket_space
        age_marginal = space.marginals[space.by_name("Age").index]
        assert age_marginal.sum_weight == 2.0
        assert age_marginal.mean == pytest.approx(40.0)

    def test_empty_caseset_raises(self):
        with pytest.raises(TrainError):
            AttributeSpace(definition(BASKET_DDL)).fit([])

    def test_case_count_and_weight(self, basket_space):
        space, _ = basket_space
        assert space.case_count == 3
        assert space.total_weight == 3.0


class TestEncoding:
    def test_scalar_encoding(self, basket_space):
        space, cases = basket_space
        observation = space.encode(cases[0])
        gender = space.by_name("Gender")
        assert observation.values[gender.index] == 0  # "Male" is category 0
        assert gender.decode(0) == "Male"
        age = space.by_name("Age")
        assert observation.values[age.index] == 30.0

    def test_missing_encodes_to_none(self, basket_space):
        space, cases = basket_space
        observation = space.encode(cases[2])
        assert observation.values[space.by_name("Age").index] is None

    def test_existence_encoding(self, basket_space):
        space, cases = basket_space
        observation = space.encode(cases[1])
        assert observation.values[space.by_name("Purchases(TV)").index] \
            == 1.0
        assert observation.values[space.by_name("Purchases(Beer)").index] \
            == 0.0

    def test_per_item_value_attribute(self, basket_space):
        space, cases = basket_space
        observation = space.encode(cases[0])
        quantity = space.by_name("Purchases(Beer).Quantity")
        assert observation.values[quantity.index] == 6.0
        observation2 = space.encode(cases[1])
        assert observation2.values[quantity.index] is None  # item absent

    def test_case_key_captured(self, basket_space):
        space, cases = basket_space
        assert space.encode(cases[0]).case_key == 1

    def test_unseen_category_is_missing(self, basket_space):
        space, _ = basket_space
        case = make_case({"Gender": "Other"})
        observation = space.encode(case)
        assert observation.values[space.by_name("Gender").index] is None

    def test_category_matching_case_insensitive(self, basket_space):
        space, _ = basket_space
        case = make_case({"Gender": "MALE"})
        observation = space.encode(case)
        assert observation.values[space.by_name("Gender").index] == 0


class TestQualifiers:
    def test_probability_becomes_confidence(self):
        ddl = ("CREATE MINING MODEL m (k LONG KEY, a TEXT DISCRETE, "
               "p DOUBLE PROBABILITY OF a) USING Repro_Decision_Trees")
        space = AttributeSpace(definition(ddl))
        cases = [make_case({"a": "x"}, qualifiers={"a": {"PROBABILITY": 0.5}}),
                 make_case({"a": "y"})]
        space.fit(cases)
        observation = space.encode(cases[0])
        a = space.by_name("a")
        assert observation.confidence(a.index) == 0.5
        assert observation.effective_weight(a.index) == 0.5
        # marginals use the dampened weight
        assert space.marginals[a.index].support(a.encode("x")) == 0.5

    def test_support_scales_case_weight(self):
        ddl = ("CREATE MINING MODEL m (k LONG KEY, a TEXT DISCRETE, "
               "w DOUBLE SUPPORT OF a) USING Repro_Decision_Trees")
        space = AttributeSpace(definition(ddl))
        cases = [make_case({"a": "x"}, qualifiers={"a": {"SUPPORT": 4.0}}),
                 make_case({"a": "y"})]
        space.fit(cases)
        assert space.total_weight == 5.0

    def test_nested_probability_confidence(self):
        space = AttributeSpace(definition(BASKET_DDL))
        row = {"PRODUCT": "Van", "QUANTITY": 1.0,
               "__QUALIFIERS__": {"PRODUCT": {"PROBABILITY": 0.5}}}
        case = make_case({"Id": 1, "Gender": "Male", "Age": 30.0})
        case.tables["PURCHASES"] = [row]
        space.fit([case])
        observation = space.encode(case)
        van = space.by_name("Purchases(Van)")
        assert observation.values[van.index] == 1.0
        assert observation.confidence(van.index) == 0.5


class TestMaximumStates:
    def test_caps_categorical_states(self):
        ddl = ("CREATE MINING MODEL m (k LONG KEY, a TEXT DISCRETE) "
               "USING Repro_Decision_Trees(MAXIMUM_STATES = 3)")
        space = AttributeSpace(definition(ddl))
        cases = [make_case({"a": f"v{i % 10}"}) for i in range(100)]
        space.fit(cases)
        assert space.by_name("a").cardinality == 3

    def test_model_existence_only(self):
        ddl = ("CREATE MINING MODEL m (k LONG KEY, "
               "a DOUBLE CONTINUOUS MODEL_EXISTENCE_ONLY) "
               "USING Repro_Decision_Trees")
        space = AttributeSpace(definition(ddl))
        cases = [make_case({"a": 1.0}), make_case({"a": None})]
        space.fit(cases)
        a = space.by_name("a")
        assert a.is_categorical
        assert space.encode(cases[0]).values[a.index] == \
            a.encode(True)
        assert space.encode(cases[1]).values[a.index] == \
            a.encode(False)
