"""Linear regression and Markov sequence clustering."""

import numpy as np
import pytest

from repro.errors import CapabilityError, TrainError
from repro.lang.parser import parse_statement
from repro.core.bindings import MappedCase
from repro.core.columns import compile_model_definition
from repro.algorithms.attributes import AttributeSpace
from repro.algorithms.linear_regression import LinearRegressionAlgorithm
from repro.algorithms.sequence import SequenceClusteringAlgorithm


def case(**scalars):
    mapped = MappedCase()
    mapped.scalars.update({k.upper(): v for k, v in scalars.items()})
    return mapped


REGRESSION_DDL = """
CREATE MINING MODEL m (k LONG KEY, Group_ TEXT DISCRETE,
    X DOUBLE CONTINUOUS, Y DOUBLE CONTINUOUS PREDICT)
USING Repro_Linear_Regression
"""


def linear_cases(n=100):
    rng = np.random.RandomState(1)
    cases = []
    for i in range(n):
        x = float(rng.uniform(0, 10))
        group = "a" if i % 2 else "b"
        bump = 5.0 if group == "a" else 0.0
        y = 3.0 * x + 7.0 + bump + float(rng.normal(0, 0.01))
        cases.append(case(k=i, Group_=group, X=x, Y=y))
    return cases


def build_regression(cases):
    definition = compile_model_definition(parse_statement(REGRESSION_DDL))
    space = AttributeSpace(definition)
    space.fit(cases)
    algorithm = LinearRegressionAlgorithm()
    algorithm.train(space, space.encode_many(cases))
    return space, algorithm


class TestLinearRegression:
    def test_recovers_coefficients(self):
        space, algorithm = build_regression(linear_cases())
        y = space.by_name("Y")
        at_zero_b = algorithm.predict(
            space.encode(case(Group_="b", X=0.0))).get(y)
        at_ten_a = algorithm.predict(
            space.encode(case(Group_="a", X=10.0))).get(y)
        assert at_zero_b.value == pytest.approx(7.0, abs=0.1)
        assert at_ten_a.value == pytest.approx(42.0, abs=0.1)

    def test_r_squared_near_one_on_linear_data(self):
        space, algorithm = build_regression(linear_cases())
        model = algorithm.models[space.by_name("Y").index]
        assert model.r_squared > 0.999

    def test_missing_feature_imputed_with_mean(self):
        space, algorithm = build_regression(linear_cases())
        y = space.by_name("Y")
        prediction = algorithm.predict(space.encode(case())).get(y)
        mean_y = space.marginals[y.index].mean
        assert prediction.value == pytest.approx(mean_y, abs=0.5)

    def test_refuses_discrete_targets(self):
        ddl = ("CREATE MINING MODEL m (k LONG KEY, a TEXT DISCRETE "
               "PREDICT, x DOUBLE CONTINUOUS) "
               "USING Repro_Linear_Regression")
        definition = compile_model_definition(parse_statement(ddl))
        cases = [case(k=1, a="p", x=1.0), case(k=2, a="q", x=2.0)]
        space = AttributeSpace(definition)
        space.fit(cases)
        with pytest.raises(CapabilityError):
            LinearRegressionAlgorithm().train(space,
                                              space.encode_many(cases))

    def test_content_lists_coefficients(self):
        space, algorithm = build_regression(linear_cases())
        root = algorithm.content_nodes()
        rows = root.children[0].distribution
        labels = [row.attribute for row in rows]
        assert "(intercept)" in labels
        assert "X" in labels


SEQUENCE_DDL = """
CREATE MINING MODEL m (
    [Id] LONG KEY,
    [Clicks] TABLE([Step] LONG KEY SEQUENCE_TIME,
                   [Page] TEXT DISCRETE)
) USING Repro_Sequence_Clustering(CLUSTER_COUNT = 2)
"""


def sequence_case(identifier, pages):
    mapped = MappedCase()
    mapped.scalars["ID"] = identifier
    mapped.tables["CLICKS"] = [
        {"STEP": step, "PAGE": page} for step, page in enumerate(pages)]
    return mapped


def sequence_cases():
    # Two behavioural groups: A->B->C loops vs X->Y->X loops.
    cases = []
    for i in range(30):
        cases.append(sequence_case(i, ["A", "B", "C", "A", "B", "C"]))
    for i in range(30, 60):
        cases.append(sequence_case(i, ["X", "Y", "X", "Y", "X"]))
    return cases


def build_sequence(cases):
    definition = compile_model_definition(parse_statement(SEQUENCE_DDL))
    space = AttributeSpace(definition)
    space.fit(cases)
    algorithm = SequenceClusteringAlgorithm({"CLUSTER_COUNT": 2})
    algorithm.train(space, space.encode_many(cases))
    return space, algorithm


class TestSequenceClustering:
    def test_sequence_extraction_ordered_by_time(self):
        definition = compile_model_definition(
            parse_statement(SEQUENCE_DDL))
        space = AttributeSpace(definition)
        mapped = sequence_case(1, ["A", "B", "C"])
        # shuffle row order; SEQUENCE_TIME must restore it
        mapped.tables["CLICKS"] = list(reversed(mapped.tables["CLICKS"]))
        space.fit([mapped])
        observation = space.encode(mapped)
        assert observation.sequences["CLICKS"] == ["A", "B", "C"]

    def test_groups_separate(self):
        space, algorithm = build_sequence(sequence_cases())
        abc = algorithm.predict(
            space.encode(sequence_case(99, ["A", "B", "C"])))
        xyx = algorithm.predict(
            space.encode(sequence_case(98, ["X", "Y", "X"])))
        assert abc.cluster_id != xyx.cluster_id

    def test_next_state_prediction(self):
        space, algorithm = build_sequence(sequence_cases())
        prediction = algorithm.predict(
            space.encode(sequence_case(99, ["A", "B"])))
        recommendations = prediction.recommendations["CLICKS"]
        assert recommendations[0].value == "C"
        assert recommendations[0].probability > 0.8

    def test_empty_sequence_uses_initial_distribution(self):
        space, algorithm = build_sequence(sequence_cases())
        prediction = algorithm.predict(space.encode(sequence_case(99, [])))
        values = [b.value for b in prediction.recommendations["CLICKS"]]
        assert set(values) == {"A", "B", "C", "X", "Y"}

    def test_transition_rows_are_distributions(self):
        _, algorithm = build_sequence(sequence_cases())
        sums = algorithm.transition.sum(axis=2)
        assert np.allclose(sums, 1.0)
        assert np.allclose(algorithm.initial.sum(axis=1), 1.0)

    def test_requires_sequence_time_table(self):
        ddl = ("CREATE MINING MODEL m (k LONG KEY, a TEXT DISCRETE) "
               "USING Repro_Sequence_Clustering")
        definition = compile_model_definition(parse_statement(ddl))
        cases = [case(k=1, a="x")]
        space = AttributeSpace(definition)
        space.fit(cases)
        with pytest.raises(TrainError):
            SequenceClusteringAlgorithm().train(
                space, space.encode_many(cases))

    def test_content_has_chains(self):
        _, algorithm = build_sequence(sequence_cases())
        root = algorithm.content_nodes()
        chains = root.children
        assert len(chains) == 2
        assert all(chain.children for chain in chains)  # per-state nodes
