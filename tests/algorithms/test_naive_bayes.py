"""Naive Bayes: posteriors, smoothing, capability limits."""

import pytest

from repro.errors import CapabilityError
from repro.lang.parser import parse_statement
from repro.core.bindings import MappedCase
from repro.core.columns import compile_model_definition
from repro.algorithms.attributes import AttributeSpace
from repro.algorithms.naive_bayes import NaiveBayesAlgorithm


def case(**scalars):
    mapped = MappedCase()
    mapped.scalars.update({k.upper(): v for k, v in scalars.items()})
    return mapped


DDL = """
CREATE MINING MODEL m (k LONG KEY, Weather TEXT DISCRETE,
    Temp DOUBLE CONTINUOUS, Play TEXT DISCRETE PREDICT)
USING Repro_Naive_Bayes
"""


def build(cases, params=None):
    definition = compile_model_definition(parse_statement(DDL))
    space = AttributeSpace(definition)
    space.fit(cases)
    algorithm = NaiveBayesAlgorithm(params)
    algorithm.train(space, space.encode_many(cases))
    return space, algorithm


def weather_cases():
    rows = [
        ("sunny", 30.0, "yes"), ("sunny", 31.0, "yes"),
        ("sunny", 29.0, "yes"), ("sunny", 32.0, "yes"),
        ("rainy", 15.0, "no"), ("rainy", 14.0, "no"),
        ("rainy", 16.0, "no"), ("rainy", 13.0, "no"),
        ("sunny", 16.0, "no"), ("rainy", 30.0, "yes"),
    ]
    return [case(k=i, Weather=w, Temp=t, Play=p)
            for i, (w, t, p) in enumerate(rows)]


class TestPosterior:
    def test_strong_evidence(self):
        space, algorithm = build(weather_cases())
        play = space.by_name("Play")
        prediction = algorithm.predict(
            space.encode(case(Weather="sunny", Temp=30.0))).get(play)
        assert prediction.value == "yes"
        assert prediction.probability > 0.8

    def test_opposite_evidence(self):
        space, algorithm = build(weather_cases())
        play = space.by_name("Play")
        prediction = algorithm.predict(
            space.encode(case(Weather="rainy", Temp=14.0))).get(play)
        assert prediction.value == "no"

    def test_no_evidence_returns_prior(self):
        space, algorithm = build(weather_cases())
        play = space.by_name("Play")
        prediction = algorithm.predict(space.encode(case())).get(play)
        # priors are 50/50 in the training data
        assert prediction.probability == pytest.approx(0.5, abs=0.01)

    def test_posterior_sums_to_one(self):
        space, algorithm = build(weather_cases())
        play = space.by_name("Play")
        prediction = algorithm.predict(
            space.encode(case(Weather="sunny"))).get(play)
        assert sum(b.probability for b in prediction.histogram) == \
            pytest.approx(1.0)

    def test_smoothing_avoids_zero_probability(self):
        space, algorithm = build(weather_cases(), {"SMOOTHING": 1.0})
        play = space.by_name("Play")
        # 'sunny'+'no' occurs once; even for contradictory combos no state
        # gets probability exactly 0.
        prediction = algorithm.predict(
            space.encode(case(Weather="sunny", Temp=14.0))).get(play)
        for bucket in prediction.histogram:
            assert bucket.probability > 0.0

    def test_continuous_input_uses_gaussian(self):
        space, algorithm = build(weather_cases())
        play = space.by_name("Play")
        hot = algorithm.predict(space.encode(case(Temp=31.0))).get(play)
        cold = algorithm.predict(space.encode(case(Temp=13.0))).get(play)
        assert hot.value == "yes" and cold.value == "no"


class TestCapability:
    def test_refuses_continuous_targets(self):
        ddl = ("CREATE MINING MODEL m (k LONG KEY, a TEXT DISCRETE, "
               "y DOUBLE CONTINUOUS PREDICT) USING Repro_Naive_Bayes")
        definition = compile_model_definition(parse_statement(ddl))
        space = AttributeSpace(definition)
        cases = [case(k=1, a="x", y=1.0), case(k=2, a="z", y=2.0)]
        space.fit(cases)
        algorithm = NaiveBayesAlgorithm()
        with pytest.raises(CapabilityError):
            algorithm.train(space, space.encode_many(cases))

    def test_capability_flags(self):
        assert NaiveBayesAlgorithm.PREDICTS_DISCRETE
        assert not NaiveBayesAlgorithm.PREDICTS_CONTINUOUS


class TestContent:
    def test_priors_and_conditionals_in_graph(self):
        space, algorithm = build(weather_cases())
        root = algorithm.content_nodes()
        target_node = root.children[0]
        assert target_node.caption == "Play"
        assert len(target_node.children) == 2  # yes / no
        assert target_node.distribution  # priors
        assert all(n.distribution for n in target_node.children)
