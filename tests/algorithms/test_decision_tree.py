"""Decision trees: splits, regression, missing values, content."""

import pytest

from repro.lang.parser import parse_statement
from repro.core.bindings import MappedCase
from repro.core.columns import compile_model_definition
from repro.core.content import NODE_MODEL, NODE_TREE
from repro.algorithms.attributes import AttributeSpace
from repro.algorithms.decision_tree import DecisionTreeAlgorithm


def build(ddl, cases, params=None):
    definition = compile_model_definition(parse_statement(ddl))
    space = AttributeSpace(definition)
    space.fit(cases)
    algorithm = DecisionTreeAlgorithm(params or {"MINIMUM_SUPPORT": 2.0})
    algorithm.train(space, space.encode_many(cases))
    return space, algorithm


def case(**scalars):
    mapped = MappedCase()
    mapped.scalars.update({k.upper(): v for k, v in scalars.items()})
    return mapped


CLASS_DDL = """
CREATE MINING MODEL m (k LONG KEY, Color TEXT DISCRETE,
    Size DOUBLE CONTINUOUS, Label TEXT DISCRETE PREDICT)
USING Repro_Decision_Trees
"""


def classification_cases(n=60):
    cases = []
    for i in range(n):
        color = "red" if i % 2 else "blue"
        size = float(i % 10)
        label = "hot" if color == "red" else "cold"
        cases.append(case(k=i, Color=color, Size=size, Label=label))
    return cases


class TestClassification:
    def test_perfect_split_found(self):
        space, algorithm = build(CLASS_DDL, classification_cases())
        tree = algorithm.tree_for("Label")
        assert tree.split_attribute.name == "Color"
        for child in tree.children:
            value, probability = child.distribution.most_likely()
            assert probability == 1.0

    def test_prediction_follows_evidence(self):
        space, algorithm = build(CLASS_DDL, classification_cases())
        label = space.by_name("Label")
        red = space.encode(case(Color="red", Size=3.0))
        prediction = algorithm.predict(red).get(label)
        assert prediction.value == "hot"
        assert prediction.probability == pytest.approx(1.0)

    def test_missing_split_value_mixes_children(self):
        space, algorithm = build(CLASS_DDL, classification_cases())
        label = space.by_name("Label")
        unknown = space.encode(case(Size=3.0))  # no Color
        prediction = algorithm.predict(unknown).get(label)
        # Balanced classes: the mixture should be ~50/50.
        assert prediction.probability == pytest.approx(0.5, abs=0.05)

    def test_histogram_sums_to_one(self):
        space, algorithm = build(CLASS_DDL, classification_cases())
        label = space.by_name("Label")
        prediction = algorithm.predict(
            space.encode(case(Color="red"))).get(label)
        assert sum(b.probability for b in prediction.histogram) == \
            pytest.approx(1.0)

    def test_minimum_support_blocks_tiny_splits(self):
        space, algorithm = build(CLASS_DDL, classification_cases(8),
                                 params={"MINIMUM_SUPPORT": 100.0})
        assert algorithm.tree_for("Label").is_leaf

    def test_maximum_depth(self):
        space, algorithm = build(
            CLASS_DDL, classification_cases(),
            params={"MINIMUM_SUPPORT": 1.0, "MAXIMUM_DEPTH": 0})
        assert algorithm.tree_for("Label").is_leaf

    def test_gini_also_splits(self):
        space, algorithm = build(
            CLASS_DDL, classification_cases(),
            params={"MINIMUM_SUPPORT": 2.0, "SCORE_METHOD": "GINI"})
        assert algorithm.tree_for("Label").split_attribute.name == "Color"

    def test_unseen_category_falls_back_to_node_distribution(self):
        space, algorithm = build(CLASS_DDL, classification_cases())
        label = space.by_name("Label")
        color = space.by_name("Color")
        observation = space.encode(case(Color="red"))
        observation.values[color.index] = 99.0  # impossible code
        prediction = algorithm.predict(observation).get(label)
        assert prediction.value in ("hot", "cold")


REGRESSION_DDL = """
CREATE MINING MODEL m (k LONG KEY, Group_ TEXT DISCRETE,
    X DOUBLE CONTINUOUS, Y DOUBLE CONTINUOUS PREDICT)
USING Repro_Decision_Trees
"""


class TestRegression:
    def make_cases(self):
        cases = []
        for i in range(80):
            x = float(i)
            y = 10.0 if x < 40 else 50.0
            cases.append(case(k=i, Group_="g", X=x, Y=y))
        return cases

    def test_threshold_split_on_continuous(self):
        space, algorithm = build(REGRESSION_DDL, self.make_cases())
        tree = algorithm.tree_for("Y")
        assert tree.split_attribute.name == "X"
        assert 30.0 <= tree.threshold <= 45.0

    def test_leaf_means(self):
        space, algorithm = build(REGRESSION_DDL, self.make_cases())
        y = space.by_name("Y")
        low = algorithm.predict(space.encode(case(X=5.0))).get(y)
        high = algorithm.predict(space.encode(case(X=70.0))).get(y)
        assert low.value == pytest.approx(10.0, abs=1.0)
        assert high.value == pytest.approx(50.0, abs=1.0)
        assert low.variance == pytest.approx(0.0, abs=1e-6)

    def test_missing_input_gives_weighted_mean(self):
        space, algorithm = build(REGRESSION_DDL, self.make_cases())
        y = space.by_name("Y")
        prediction = algorithm.predict(space.encode(case())).get(y)
        assert prediction.value == pytest.approx(30.0, abs=2.0)
        assert prediction.variance > 100.0  # mixture variance is wide


class TestWeights:
    def test_support_weight_shifts_majority(self):
        cases = [case(k=1, Color="red", Size=1.0, Label="hot"),
                 case(k=2, Color="red", Size=1.0, Label="cold")]
        cases[1].qualifiers["LABEL"] = {"SUPPORT": 9.0}
        definition = compile_model_definition(parse_statement(CLASS_DDL))
        space = AttributeSpace(definition)
        space.fit(cases)
        algorithm = DecisionTreeAlgorithm({"MINIMUM_SUPPORT": 100.0})
        algorithm.train(space, space.encode_many(cases))
        label = space.by_name("Label")
        prediction = algorithm.predict(
            space.encode(case(Color="red"))).get(label)
        assert prediction.value == "cold"
        assert prediction.probability == pytest.approx(0.9)


class TestContent:
    def test_graph_shape(self):
        space, algorithm = build(CLASS_DDL, classification_cases())
        root = algorithm.content_nodes()
        assert root.node_type == NODE_MODEL
        assert root.children[0].node_type == NODE_TREE
        captions = [n.caption for n in root.walk()]
        assert any("Color" in c for c in captions)

    def test_distribution_rows_on_leaves(self):
        space, algorithm = build(CLASS_DDL, classification_cases())
        leaves = [n for n in algorithm.content_nodes().walk()
                  if not n.children]
        assert all(n.distribution for n in leaves)

    def test_node_ids_unique(self):
        space, algorithm = build(CLASS_DDL, classification_cases())
        ids = [n.node_id for n in algorithm.content_nodes().walk()]
        assert len(ids) == len(set(ids))
