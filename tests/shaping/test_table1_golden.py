"""Golden-file pin of the Table 1 reproduction.

EXPERIMENTS.md section T1 establishes the repo's headline finding: the
paper's worked example (Customer ID 1) shapes into exactly **one** nested
case carrying 4 purchase rows and 2 car rows, while the natural 3-way join
flattens it to **8** rows (the paper says 12 — an arithmetic slip).  This
test pins the complete byte-level content of both representations against
``golden/table1_caseset.json`` so any change to the shaping or join layers
that perturbs the reproduction is caught immediately — and verifies the
pinned content is identical when produced through the streaming pipeline
at a pathological batch size of 1.
"""

import json
from pathlib import Path

import pytest

import repro
from repro.datagen import WarehouseConfig, load_warehouse
from repro.sqlstore.rowset import Rowset

GOLDEN_PATH = Path(__file__).parent / "golden" / "table1_caseset.json"

NESTED_SHAPE = """
    SHAPE {SELECT [Customer ID], Gender, [Hair Color], Age, [Age Prob]
           FROM Customers WHERE [Customer ID] = 1}
    APPEND ({SELECT CustID, [Product Name], Quantity, [Product Type]
             FROM Sales} RELATE [Customer ID] TO CustID)
           AS [Product Purchases],
           ({SELECT CustID, Car, [Car Prob] FROM [Car Ownership]}
            RELATE [Customer ID] TO CustID) AS [Car Ownership]
"""

FLATTEN_JOIN = """
    SELECT c.[Customer ID], c.Gender, c.[Hair Color], c.Age, c.[Age Prob],
           s.[Product Name], s.Quantity, s.[Product Type],
           o.Car, o.[Car Prob]
    FROM Customers c
    JOIN Sales s ON c.[Customer ID] = s.CustID
    JOIN [Car Ownership] o ON c.[Customer ID] = o.CustID
    WHERE c.[Customer ID] = 1
"""


def _serialize(rowset):
    return {
        "columns": [[c.name, c.type.name if c.type is not None else None]
                    for c in rowset.columns],
        "rows": [[_serialize(v) if isinstance(v, Rowset) else v
                  for v in row]
                 for row in rowset.rows],
    }


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module", params=[1, None],
                ids=["batch_size=1", "default_batches"])
def paper_connection(request):
    kwargs = {} if request.param is None else {"batch_size": request.param}
    connection = repro.connect(**kwargs)
    load_warehouse(connection.database, WarehouseConfig(customers=1))
    yield connection
    connection.close()


def test_nested_caseset_matches_golden(paper_connection, golden):
    actual = _serialize(paper_connection.execute(NESTED_SHAPE))
    assert actual == golden["nested_caseset"]


def test_flattened_join_matches_golden(paper_connection, golden):
    actual = _serialize(paper_connection.execute(FLATTEN_JOIN))
    assert actual == golden["flattened_join"]


def test_golden_file_pins_the_headline_numbers(golden):
    """The golden file itself encodes 1 case / 4 purchases / 2 cars / 8 rows."""
    nested = golden["nested_caseset"]
    assert len(nested["rows"]) == 1
    case = nested["rows"][0]
    purchases = case[nested["columns"].index(["Product Purchases", "TABLE"])]
    cars = case[nested["columns"].index(["Car Ownership", "TABLE"])]
    assert [row[1] for row in purchases["rows"]] == \
        ["TV", "VCR", "Ham", "Beer"]
    assert [(row[1], row[2]) for row in cars["rows"]] == \
        [("Truck", 1.0), ("Van", 0.5)]
    flattened = golden["flattened_join"]
    assert len(flattened["rows"]) == 8
    gender = flattened["columns"].index(["Gender", "TEXT"])
    assert [row[gender] for row in flattened["rows"]] == ["Male"] * 8
