"""The Data Shaping Service: SHAPE execution, casesets, flattening."""

import pytest

from repro.errors import BindError
from repro.lang.parser import Parser
from repro.shaping import Caseset, execute_shape, flatten_rowset
from repro.sqlstore import Database
from repro.sqlstore.rowset import Rowset


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE Customers (id LONG PRIMARY KEY, "
                     "Gender TEXT)")
    database.execute("INSERT INTO Customers VALUES (1, 'Male'), "
                     "(2, 'Female'), (3, 'Male')")
    database.execute("CREATE TABLE Sales (cid LONG, Product TEXT, "
                     "Quantity DOUBLE)")
    database.execute("INSERT INTO Sales VALUES (1, 'TV', 1.0), "
                     "(1, 'Beer', 6.0), (2, 'Ham', 2.0)")
    database.execute("CREATE TABLE Cars (cid LONG, Car TEXT)")
    database.execute("INSERT INTO Cars VALUES (1, 'Truck'), (1, 'Van')")
    return database


def shape_of(text):
    return Parser(text).parse_shape()


class TestShapeExecution:
    def test_one_append(self, db):
        rowset = execute_shape(shape_of(
            "SHAPE {SELECT id, Gender FROM Customers ORDER BY id} "
            "APPEND ({SELECT cid, Product, Quantity FROM Sales} "
            "RELATE id TO cid) AS Purchases"), db)
        assert rowset.column_names() == ["id", "Gender", "Purchases"]
        assert len(rowset) == 3
        purchases = rowset.rows[0][2]
        assert isinstance(purchases, Rowset)
        assert len(purchases) == 2

    def test_childless_case_gets_empty_nested_rowset(self, db):
        rowset = execute_shape(shape_of(
            "SHAPE {SELECT id FROM Customers ORDER BY id} "
            "APPEND ({SELECT cid, Product FROM Sales} RELATE id TO cid) "
            "AS P"), db)
        assert len(rowset.rows[2][1]) == 0  # customer 3 bought nothing

    def test_two_appends(self, db):
        rowset = execute_shape(shape_of(
            "SHAPE {SELECT id FROM Customers ORDER BY id} "
            "APPEND ({SELECT cid, Product FROM Sales} RELATE id TO cid) "
            "AS P, ({SELECT cid, Car FROM Cars} RELATE id TO cid) AS C"),
            db)
        assert rowset.column_names() == ["id", "P", "C"]
        assert len(rowset.rows[0][2]) == 2  # two cars for customer 1

    def test_nested_shape(self, db):
        db.execute("CREATE TABLE Details (Product TEXT, Fact TEXT)")
        db.execute("INSERT INTO Details VALUES ('TV', 'big'), "
                   "('Beer', 'cold')")
        rowset = execute_shape(shape_of(
            "SHAPE {SELECT id FROM Customers ORDER BY id} "
            "APPEND ({SHAPE {SELECT cid, Product FROM Sales} "
            "APPEND ({SELECT Product AS p2, Fact FROM Details} "
            "RELATE Product TO p2) AS D} RELATE id TO cid) AS P"), db)
        purchases = rowset.rows[0][1]
        assert purchases.column_names() == ["cid", "Product", "D"]
        details = purchases.rows[0][2]
        assert details.rows[0][1] == "big"

    def test_unknown_relate_column(self, db):
        with pytest.raises(BindError):
            execute_shape(shape_of(
                "SHAPE {SELECT id FROM Customers} "
                "APPEND ({SELECT cid FROM Sales} RELATE nope TO cid) "
                "AS P"), db)

    def test_unknown_child_relate_column(self, db):
        with pytest.raises(BindError):
            execute_shape(shape_of(
                "SHAPE {SELECT id FROM Customers} "
                "APPEND ({SELECT cid FROM Sales} RELATE id TO nope) "
                "AS P"), db)

    def test_shape_via_database_select(self, db):
        # a SHAPE can be a FROM source of a plain SELECT
        from repro.core.provider import Provider
        provider = Provider()
        provider.database.tables = db.tables
        rowset = provider.execute(
            "SELECT id, Gender FROM (SHAPE {SELECT id, Gender FROM "
            "Customers ORDER BY id} APPEND ({SELECT cid, Product FROM "
            "Sales} RELATE id TO cid) AS P) AS x WHERE id < 3")
        assert len(rowset) == 2


class TestFlatten:
    def test_flatten_cross_products_nested_tables(self, db):
        rowset = execute_shape(shape_of(
            "SHAPE {SELECT id FROM Customers ORDER BY id} "
            "APPEND ({SELECT cid, Product FROM Sales} RELATE id TO cid) "
            "AS P, ({SELECT cid, Car FROM Cars} RELATE id TO cid) AS C"),
            db)
        flat = flatten_rowset(rowset)
        # customer 1: 2 products x 2 cars = 4; customer 2: 1x1(empty car ->1);
        # customer 3: empty x empty -> 1
        assert len(flat) == 4 + 1 + 1
        assert "P.Product" in flat.column_names()
        assert "C.Car" in flat.column_names()

    def test_flatten_keeps_empty_cases_with_nulls(self, db):
        rowset = execute_shape(shape_of(
            "SHAPE {SELECT id FROM Customers ORDER BY id} "
            "APPEND ({SELECT cid, Product FROM Sales} RELATE id TO cid) "
            "AS P"), db)
        flat = flatten_rowset(rowset)
        last = flat.rows[-1]
        assert last[0] == 3 and last[1] is None and last[2] is None

    def test_flatten_without_nested_is_identity(self, db):
        rowset = db.execute("SELECT id FROM Customers")
        flat = flatten_rowset(rowset)
        assert flat.rows == rowset.rows


class TestCaseset:
    def test_iterates_cases(self, db):
        rowset = execute_shape(shape_of(
            "SHAPE {SELECT id, Gender FROM Customers ORDER BY id} "
            "APPEND ({SELECT cid, Product, Quantity FROM Sales} "
            "RELATE id TO cid) AS Purchases"), db)
        cases = list(Caseset(rowset))
        assert len(cases) == 3
        first = cases[0]
        assert first.get("Gender") == "Male"
        assert first["id"] == 1
        assert [r["Product"] for r in first.nested("Purchases")] == \
            ["TV", "Beer"]
        assert first.nested("Missing Table") == []

    def test_case_lookup_is_case_insensitive(self, db):
        rowset = db.execute("SELECT id, Gender FROM Customers")
        case = next(iter(Caseset(rowset)))
        assert case.get("GENDER") == case.get("gender")

    def test_missing_scalar_raises_on_getitem(self, db):
        rowset = db.execute("SELECT id FROM Customers")
        case = next(iter(Caseset(rowset)))
        with pytest.raises(BindError):
            case["nope"]

    def test_column_lists(self, db):
        rowset = execute_shape(shape_of(
            "SHAPE {SELECT id FROM Customers} APPEND ({SELECT cid FROM "
            "Sales} RELATE id TO cid) AS P"), db)
        caseset = Caseset(rowset)
        assert caseset.scalar_columns() == ["id"]
        assert caseset.table_columns() == ["P"]
        assert caseset.column_for_table("p").name == "P"
