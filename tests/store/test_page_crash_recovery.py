"""Crash the paged store at every page/catalog write offset; never serve
a torn page.

Shadow-paging property: page files are immutable and the catalog swap is
atomic, so for ANY crash point during ANY page or catalog write the
reopened provider must present exactly some statement-boundary prefix of
the workload (the last committed one, or — for a crash between the catalog
replace and the acknowledgement — the one in flight), and resuming the
remaining statements must land byte-for-byte on the never-crashed
reference state.  A torn page file can exist on disk (as an abandoned temp
file) but is swept at reopen and never served.
"""

import glob
import json
import os
from collections import Counter

import pytest

import repro
from repro.core.persistence import dump_provider
from repro.errors import Error
from repro.store.faults import FaultInjector, InjectedCrash

GEOMETRY = {"buffer_pages": 2, "storage_page_bytes": 256}

WORKLOAD = [
    "CREATE TABLE T (id INT, name TEXT)",
    "INSERT INTO T VALUES " + ", ".join(
        f"({i}, 'name-{i:03d}-xxxxxxxxxx')" for i in range(18)),
    "CREATE INDEX IX_NAME ON T (name)",
    "UPDATE T SET name = 'renamed' WHERE id < 4",
    "DELETE FROM T WHERE id >= 15",
    "CREATE TABLE U (k INT)",
    "INSERT INTO U VALUES (1), (2), (3)",
    "DROP TABLE U",
]

PAGE_POINTS = ["page.before_write", "page.torn_write",
               "page.before_fsync", "page.before_replace"]
CATALOG_POINTS = ["catalog.before_write", "catalog.before_replace",
                  "catalog.after_replace"]


def _state(provider):
    """Logical provider state; data_version excluded (restore DDL replays
    a different bump sequence — the floor only guarantees monotonicity)."""
    document = json.loads(dump_provider(provider))
    document.pop("data_version", None)
    return json.dumps(document, sort_keys=True)


@pytest.fixture(scope="module")
def prefix_states():
    """Reference state after 0..N statements, from a never-crashed run."""
    conn = repro.connect()
    states = [_state(conn.provider)]
    for statement in WORKLOAD:
        conn.execute(statement)
        states.append(_state(conn.provider))
    conn.close()
    return states


class CountingFaults(FaultInjector):
    """Passive pass: counts how often every station is hit."""

    def __init__(self):
        super().__init__()
        self.seen = Counter()

    def hit(self, point):
        self.seen[point] += 1
        super().hit(point)


@pytest.fixture(scope="module")
def station_hits(tmp_path_factory):
    """Total hits per crash point across workload + close (the grid's
    offset space)."""
    faults = CountingFaults()
    conn = repro.connect(storage_path=str(tmp_path_factory.mktemp("count")),
                         storage_faults=faults, **GEOMETRY)
    for statement in WORKLOAD:
        conn.execute(statement)
    conn.close()
    return dict(faults.seen)


def _run_until_crash(path, faults):
    conn = repro.connect(storage_path=path, storage_faults=faults,
                         **GEOMETRY)
    acked = 0
    try:
        for statement in WORKLOAD:
            conn.execute(statement)
            acked += 1
        conn.close()
    except InjectedCrash:
        # Simulated process death: abandon the provider unflushed; only
        # the worker pool is shut down so no OS threads leak.
        conn.provider.pool.shutdown()
        return acked, True
    return acked, False


def _recover_and_check(path, acked, prefix_states):
    recovered = repro.connect(storage_path=path, **GEOMETRY)
    try:
        state = _state(recovered.provider)
        # The reopened state is a statement boundary: the last acked one,
        # or acked+1 when the crash hit between catalog swap and ack.
        candidates = sorted({min(acked, len(WORKLOAD)),
                             min(acked + 1, len(WORKLOAD))})
        matches = [n for n in candidates if prefix_states[n] == state]
        assert matches, (
            f"recovered state is not the state after {candidates} "
            f"statements — a torn or stale page was served")
        for statement in WORKLOAD[matches[0]:]:
            recovered.execute(statement)
        assert _state(recovered.provider) == prefix_states[len(WORKLOAD)]
        # Reopen swept every abandoned temp (torn) file.
        assert glob.glob(os.path.join(path, "pages", "*", "*.tmp")) == []
    finally:
        recovered.close()


def _offsets(station_hits, point):
    total = station_hits.get(point, 0)
    assert total > 0, f"workload never hits {point}"
    # Cap the per-station sweep: early offsets catch the first table's
    # pages, late offsets the close-time flush; the interior repeats.
    step = max(1, total // 12)
    return sorted(set(range(1, total + 1, step)) | {total})


@pytest.mark.parametrize("point", PAGE_POINTS + CATALOG_POINTS)
def test_kill_at_every_write_offset(tmp_path, prefix_states, station_hits,
                                    point):
    for offset in _offsets(station_hits, point):
        faults = FaultInjector()
        faults.arm(point, after=offset - 1)
        path = str(tmp_path / f"store-{point}-{offset}")
        acked, crashed = _run_until_crash(path, faults)
        assert crashed, f"{point} offset {offset} never fired"
        _recover_and_check(path, acked, prefix_states)


def test_corrupted_page_file_is_never_served(tmp_path):
    """Bit-rot control: truncate a committed page file in place — the read
    must fail loudly (CRC/torn detection), never return partial rows."""
    path = str(tmp_path / "store")
    conn = repro.connect(storage_path=path, **GEOMETRY)
    for statement in WORKLOAD[:2]:
        conn.execute(statement)
    conn.close()

    victims = glob.glob(os.path.join(path, "pages", "*", "*.pg"))
    assert victims
    with open(victims[0], "rb") as handle:
        data = handle.read()
    with open(victims[0], "wb") as handle:
        handle.write(data[:len(data) // 2])

    reopened = repro.connect(storage_path=path, **GEOMETRY)
    try:
        with pytest.raises(Error, match="torn|CRC|truncated"):
            reopened.execute("SELECT * FROM T")
    finally:
        reopened.provider.pool.shutdown()


def test_ephemeral_spill_crash_recovers_from_journal(tmp_path):
    """storage+durable mode: the journal is the authority — a crash during
    a spill write loses nothing that was acked."""
    durable = str(tmp_path / "journal")
    spill = str(tmp_path / "spill")
    faults = FaultInjector()
    faults.arm("page.torn_write", after=3)
    conn = repro.connect(durable_path=durable, storage_path=spill,
                         storage_faults=faults, **GEOMETRY)
    acked = 0
    crashed = False
    try:
        for statement in WORKLOAD:
            conn.execute(statement)
            acked += 1
    except InjectedCrash:
        crashed = True
    finally:
        conn.provider.pool.shutdown()
    assert crashed

    recovered = repro.connect(durable_path=durable, storage_path=spill,
                              **GEOMETRY)
    try:
        durable_seq = recovered.provider.store.last_seq
        assert durable_seq >= acked
        reference = repro.connect()
        for statement in WORKLOAD[:durable_seq]:
            reference.execute(statement)
        assert _state(recovered.provider) == _state(reference.provider)
        reference.close()
    finally:
        recovered.close()
