"""Atomic write helper: all-or-nothing replacement under injected crashes."""

import os

import pytest

from repro.store.atomic import atomic_write_text
from repro.store.faults import FaultInjector, InjectedCrash


def test_creates_new_file(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(str(path), "hello")
    assert path.read_text() == "hello"


def test_replaces_existing_file(tmp_path):
    path = tmp_path / "out.txt"
    path.write_text("old")
    atomic_write_text(str(path), "new")
    assert path.read_text() == "new"


def test_no_temp_file_left_behind(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(str(path), "content")
    assert os.listdir(tmp_path) == ["out.txt"]


@pytest.mark.parametrize("point", ["atomic.before_write",
                                   "atomic.before_replace"])
def test_crash_before_replace_keeps_old_content(tmp_path, point):
    path = tmp_path / "out.txt"
    path.write_text("the last good copy")
    faults = FaultInjector()
    faults.arm(point)
    with pytest.raises(InjectedCrash):
        atomic_write_text(str(path), "half-written replacement",
                          faults=faults)
    assert path.read_text() == "the last good copy"
    # No stray temp file survives the crash either.
    assert os.listdir(tmp_path) == ["out.txt"]


def test_crash_after_replace_has_new_content(tmp_path):
    path = tmp_path / "out.txt"
    path.write_text("old")
    faults = FaultInjector()
    faults.arm("atomic.after_replace")
    with pytest.raises(InjectedCrash):
        atomic_write_text(str(path), "new", faults=faults)
    assert path.read_text() == "new"


def test_injected_io_error_propagates_and_keeps_old(tmp_path):
    path = tmp_path / "out.txt"
    path.write_text("old")
    faults = FaultInjector()
    faults.arm("atomic.before_replace", exc=OSError("disk full"))
    with pytest.raises(OSError, match="disk full"):
        atomic_write_text(str(path), "new", faults=faults)
    assert path.read_text() == "old"
