"""Golden pins of the snapshot + journal on-disk format.

These literals ARE the compatibility contract: if one of these tests fails,
the change broke the ability of a new build to recover state written by an
old one.  Evolve the format only by bumping the journal magic
(``DMJ1`` → ``DMJ2``) or the snapshot ``format`` number and keeping a read
path for the old one — then re-pin.
"""

import json

import repro
from repro.core.persistence import FORMAT_VERSION, dump_provider
from repro.store.durable import JOURNAL_FILE, SNAPSHOT_FILE
from repro.store.journal import encode_record

GOLDEN_STATEMENTS = [
    "CREATE TABLE G1 (Id LONG)",
    "INSERT INTO G1 VALUES (1),(2)",
]

# The exact bytes a durable provider writes for GOLDEN_STATEMENTS.
GOLDEN_JOURNAL = (
    b'DMJ1 4352810f {"kind":"CREATE_TABLE","seq":1,'
    b'"stmt":"CREATE TABLE G1 (Id LONG)"}\n'
    b'DMJ1 555794cf {"kind":"INSERT","seq":2,'
    b'"stmt":"INSERT INTO G1 VALUES (1),(2)"}\n'
)

# The exact snapshot document for the same provider at last_seq=2.
GOLDEN_SNAPSHOT = (
    '{"format": 3, "kind": "repro-provider-snapshot", "last_seq": 2, '
    '"data_version": 3, "tables": [{"name": "G1", "columns": '
    '[{"name": "Id", "type": "LONG", "nullable": true, '
    '"primary_key": false}], "rows": [[1], [2]], "statistics": true}], '
    '"views": {}, "models": []}'
)


def _populate(tmp_path, **kwargs):
    conn = repro.connect(durable_path=str(tmp_path / "store"), **kwargs)
    for statement in GOLDEN_STATEMENTS:
        conn.execute(statement)
    return conn


def test_journal_bytes_pinned(tmp_path):
    conn = _populate(tmp_path)
    data = (tmp_path / "store" / JOURNAL_FILE).read_bytes()
    conn.close()
    assert data == GOLDEN_JOURNAL


def test_snapshot_document_pinned(tmp_path):
    conn = _populate(tmp_path)
    assert dump_provider(conn.provider, last_seq=2) == GOLDEN_SNAPSHOT
    conn.close()


def test_checkpoint_writes_pinned_snapshot(tmp_path):
    conn = _populate(tmp_path)
    conn.provider.checkpoint()
    text = (tmp_path / "store" / SNAPSHOT_FILE).read_text()
    conn.close()
    assert text == GOLDEN_SNAPSHOT


def test_record_encoding_is_stable():
    line = encode_record({"seq": 1, "kind": "CREATE_TABLE",
                          "stmt": "CREATE TABLE G1 (Id LONG)"})
    assert line == GOLDEN_JOURNAL.splitlines(keepends=True)[0]


def test_old_build_can_be_simulated_reading_golden(tmp_path):
    """A fresh provider recovers the pinned bytes exactly (forward compat
    for files written by this build)."""
    store = tmp_path / "store"
    store.mkdir()
    (store / SNAPSHOT_FILE).write_text(GOLDEN_SNAPSHOT)
    conn = repro.connect(durable_path=str(store))
    assert conn.execute("SELECT COUNT(*) FROM G1").single_value() == 2
    assert conn.provider.store.last_seq == 2
    conn.close()


def test_format_2_snapshot_still_loads():
    """Backward compatibility: pre-statistics (format 2) snapshots load;
    the absent "statistics" key means the flag was off."""
    from repro.core.persistence import load_provider
    snapshot = (
        '{"format": 2, "kind": "repro-provider-snapshot", "last_seq": 2, '
        '"data_version": 3, "tables": [{"name": "G1", "columns": '
        '[{"name": "Id", "type": "LONG", "nullable": true, '
        '"primary_key": false}], "rows": [[1], [2]]}], "views": {}, '
        '"models": []}'
    )
    provider = load_provider(snapshot)
    assert provider.database.table("G1").rows == [(1,), (2,)]


def test_format_1_snapshot_still_loads():
    """Backward compatibility: pre-durability (format 1) snapshots load."""
    from repro.core.persistence import load_provider
    snapshot = {
        "format": 1, "kind": "repro-provider-snapshot",
        "tables": [{"name": "Old", "columns": [
            {"name": "Id", "type": "LONG", "nullable": True,
             "primary_key": False}], "rows": [[7]]}],
        "views": {}, "models": [],
    }
    provider = load_provider(json.dumps(snapshot))
    assert provider.database.table("Old").rows == [(7,)]


def test_format_version_is_three():
    assert FORMAT_VERSION == 3
