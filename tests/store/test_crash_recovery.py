"""Crash-recovery property suite: kill the provider at every journal offset.

The property: for any workload of mutating statements and any crash point,
(1) no acknowledged statement is ever lost, (2) replay is exactly-once, and
(3) recovering and resuming the workload from the durable high-water mark
yields a provider whose full snapshot dump is **byte-identical** to a
reference provider that ran the workload without ever crashing.

The grid kills the provider during every journal append (journal offsets
1..N) at four sub-points — before the write, mid-write (torn record),
after the write but before fsync, and after fsync but before the ack —
plus the checkpoint crash points, across thread- and process-pool
providers.
"""

import pytest

import repro
from repro.core.persistence import dump_provider
from repro.store.faults import FaultInjector, InjectedCrash

# Every statement here is mutating and journaled, so journal seq == 1-based
# workload index: after recovery, ``store.last_seq`` says exactly where to
# resume.
WORKLOAD = [
    "CREATE TABLE T (Id LONG PRIMARY KEY, G TEXT, Age DOUBLE, D DATETIME)",
    "INSERT INTO T VALUES (1,'m',30.0,'2001-01-01'),(2,'f',40.0,"
    "'2001-02-01'),(3,'m',50.0,'2001-03-01'),(4,'f',20.0,'2001-04-01')",
    "CREATE VIEW Men AS SELECT * FROM T WHERE G = 'm'",
    "CREATE MINING MODEL M (Id LONG KEY, G TEXT DISCRETE, "
    "Age DOUBLE DISCRETIZED(EQUAL_COUNT, 2) PREDICT) "
    "USING Repro_Naive_Bayes",
    "INSERT INTO M SELECT Id, G, Age FROM T",
    "INSERT INTO T VALUES (5,'m',25.0,'2001-05-01'),(6,'f',45.0,"
    "'2001-06-01')",
    "INSERT INTO M SELECT Id, G, Age FROM T WHERE Id > 4",
    "UPDATE T SET Age = 35.0 WHERE Id = 1",
    "CREATE TABLE U (Id LONG, N TEXT)",
    "INSERT INTO U VALUES (1,'a'),(2,'b'),(3,'c')",
    "DELETE FROM U WHERE Id = 2",
    "DROP TABLE U",
]

CRASH_POINTS = ["journal.before_write", "journal.torn_write",
                "journal.before_fsync", "journal.after_fsync"]


@pytest.fixture(scope="module")
def reference_dump():
    """The never-crashed run the recovered providers must match, byte for
    byte."""
    conn = repro.connect()
    for statement in WORKLOAD:
        conn.execute(statement)
    dump = dump_provider(conn.provider)
    conn.close()
    return dump


def run_until_crash(path, faults, **kwargs):
    """Execute the workload until the injected crash; return acked count."""
    conn = repro.connect(durable_path=path, durable_faults=faults, **kwargs)
    acked = 0
    crashed = False
    try:
        for statement in WORKLOAD:
            conn.execute(statement)
            acked += 1
    except InjectedCrash:
        crashed = True
    finally:
        # Simulated process death: abandon the provider without closing the
        # store (a real crash would not flush anything either); only the
        # worker pool is shut down so no OS processes leak from the test.
        conn.provider.pool.shutdown()
    return acked, crashed


def recover_resume_and_check(path, acked, reference_dump,
                             expect_torn=False):
    recovered = repro.connect(durable_path=path)
    info = recovered.provider.recovery_info
    durable = recovered.provider.store.last_seq
    # (1) zero acknowledged-statement loss.
    assert durable >= acked, (
        f"acked {acked} statements but only {durable} are durable")
    # A crash between fsync and ack may leave at most one extra statement.
    assert durable <= acked + 1
    if expect_torn:
        assert info["torn_records"] == 1
        assert recovered.provider.metrics.value(
            "store.torn_records_skipped") == 1
    # (2)+(3) resume from the durable high-water mark: exactly-once replay,
    # final state byte-identical to the never-crashed reference.
    for statement in WORKLOAD[durable:]:
        recovered.execute(statement)
    assert dump_provider(recovered.provider) == reference_dump
    recovered.close()


@pytest.mark.parametrize("offset", range(1, len(WORKLOAD) + 1))
@pytest.mark.parametrize("point", CRASH_POINTS)
def test_kill_at_every_journal_offset(tmp_path, reference_dump, offset,
                                      point):
    faults = FaultInjector()
    faults.arm(point, after=offset - 1)
    path = str(tmp_path / "store")
    acked, crashed = run_until_crash(path, faults)
    assert crashed, f"{point} at offset {offset} never fired"
    assert acked == offset - 1  # the in-flight statement was never acked
    recover_resume_and_check(path, acked, reference_dump,
                             expect_torn=(point == "journal.torn_write"))


@pytest.mark.parametrize("point", ["snapshot.before_write",
                                   "snapshot.before_replace",
                                   "snapshot.after_replace",
                                   "checkpoint.after_truncate"])
def test_kill_inside_checkpoint(tmp_path, reference_dump, point):
    """Crash at every stage of an (auto) checkpoint; recovery skips journal
    records the new snapshot already covers, so replay stays exactly-once."""
    faults = FaultInjector()
    faults.arm(point)
    path = str(tmp_path / "store")
    acked, crashed = run_until_crash(path, faults,
                                     durable_checkpoint_interval=4)
    assert crashed
    recover_resume_and_check(path, acked, reference_dump)


@pytest.mark.parametrize("pool_mode", ["thread", "process"])
@pytest.mark.parametrize("offset", [5, 7])  # the two TRAIN statements
def test_kill_during_parallel_training_modes(tmp_path, reference_dump,
                                             pool_mode, offset):
    """The {thread, process} pool-mode cells of the recovery matrix: crash
    around a TRAIN statement while a multi-worker pool is attached."""
    faults = FaultInjector()
    faults.arm("journal.torn_write", after=offset - 1)
    path = str(tmp_path / "store")
    acked, crashed = run_until_crash(path, faults, max_workers=2,
                                     pool_mode=pool_mode)
    assert crashed
    assert acked == offset - 1
    recover_resume_and_check(path, acked, reference_dump, expect_torn=True)


def test_double_crash_then_recover(tmp_path, reference_dump):
    """Crash, recover, crash again later, recover again — still identical."""
    path = str(tmp_path / "store")
    first = FaultInjector()
    first.arm("journal.torn_write", after=3)
    acked, crashed = run_until_crash(path, first)
    assert crashed and acked == 3

    second = FaultInjector()
    second.arm("journal.before_fsync", after=4)  # 4 appends post-recovery
    middle = repro.connect(durable_path=path, durable_faults=second)
    durable = middle.provider.store.last_seq
    resumed = 0
    try:
        for statement in WORKLOAD[durable:]:
            middle.execute(statement)
            resumed += 1
    except InjectedCrash:
        pass
    finally:
        middle.provider.pool.shutdown()

    recover_resume_and_check(path, durable + resumed, reference_dump)
