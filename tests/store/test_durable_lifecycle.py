"""Durable provider lifecycle: restart, checkpoint, failure modes, metrics."""

import os

import pytest

import repro
from repro.core.persistence import dump_provider
from repro.errors import Error
from repro.store.durable import JOURNAL_FILE, SNAPSHOT_FILE
from repro.store.faults import FaultInjector

SETUP = [
    "CREATE TABLE T (Id LONG PRIMARY KEY, G TEXT, Age DOUBLE)",
    "INSERT INTO T VALUES (1,'m',30.0),(2,'f',40.0),(3,'m',50.0),"
    "(4,'f',20.0),(5,'m',25.0),(6,'f',45.0)",
    "CREATE VIEW Men AS SELECT * FROM T WHERE G = 'm'",
    "CREATE MINING MODEL M (Id LONG KEY, G TEXT DISCRETE, "
    "Age DOUBLE DISCRETIZED(EQUAL_COUNT, 2) PREDICT) "
    "USING Repro_Naive_Bayes",
    "INSERT INTO M SELECT Id, G, Age FROM T",
]


def open_store(tmp_path, **kwargs):
    return repro.connect(durable_path=str(tmp_path / "store"), **kwargs)


def populate(conn):
    for statement in SETUP:
        conn.execute(statement)
    return conn


class TestRestart:
    def test_restart_restores_everything(self, tmp_path):
        first = populate(open_store(tmp_path))
        reference = dump_provider(first.provider)
        first.close()

        second = open_store(tmp_path)
        assert dump_provider(second.provider) == reference
        assert second.execute("SELECT COUNT(*) FROM Men") \
            .single_value() == 3
        model = second.model("M")
        assert model.is_trained and model.insert_count == 1
        assert model.case_count == 6
        second.close()

    def test_abandoned_process_recovers(self, tmp_path):
        """No clean close() — the journal alone carries the state."""
        conn = populate(open_store(tmp_path))
        reference = dump_provider(conn.provider)
        # Simulated kill -9: drop the object without closing anything.
        del conn

        recovered = open_store(tmp_path)
        assert recovered.provider.recovery_info["replayed"] == len(SETUP)
        assert dump_provider(recovered.provider) == reference
        recovered.close()

    def test_refresh_after_restore_covers_full_history(self, tmp_path):
        """A post-recovery INSERT INTO retrains over the accumulated cases."""
        conn = populate(open_store(tmp_path))
        conn.provider.checkpoint()  # force the snapshot restore path
        conn.close()

        recovered = open_store(tmp_path)
        recovered.execute("INSERT INTO T VALUES (7,'f',60.0)")
        recovered.execute("INSERT INTO M SELECT Id, G, Age FROM T "
                          "WHERE Id = 7")
        model = recovered.model("M")
        assert model.insert_count == 2
        assert model.case_count == 7  # 6 restored + 1 new, not just 1
        recovered.close()

    def test_prediction_identical_after_recovery(self, tmp_path):
        query = ("SELECT [M].[Age] FROM M NATURAL PREDICTION JOIN "
                 "(SELECT G FROM T) AS t")
        conn = populate(open_store(tmp_path))
        before = conn.execute(query).rows
        conn.close()
        recovered = open_store(tmp_path)
        assert recovered.execute(query).rows == before
        recovered.close()


class TestCheckpoint:
    def test_explicit_checkpoint_truncates_journal(self, tmp_path):
        conn = populate(open_store(tmp_path))
        journal = tmp_path / "store" / JOURNAL_FILE
        assert journal.stat().st_size > 0
        conn.provider.checkpoint()
        assert journal.stat().st_size == 0
        assert (tmp_path / "store" / SNAPSHOT_FILE).exists()
        assert conn.provider.metrics.value("store.checkpoints") == 1
        conn.close()

    def test_auto_checkpoint_by_interval(self, tmp_path):
        conn = populate(open_store(tmp_path,
                                   durable_checkpoint_interval=3))
        # 5 statements with interval 3: one auto checkpoint fired.
        assert conn.provider.metrics.value("store.checkpoints") == 1
        conn.close()
        recovered = open_store(tmp_path)
        assert recovered.provider.recovery_info["snapshot_seq"] == 3
        assert recovered.provider.recovery_info["replayed"] == 2
        assert recovered.execute("SELECT COUNT(*) FROM T") \
            .single_value() == 6
        recovered.close()

    def test_checkpoint_without_store_raises(self):
        conn = repro.connect()
        with pytest.raises(Error, match="no durable store"):
            conn.provider.checkpoint()
        conn.close()

    def test_seq_continues_across_checkpoint_and_restart(self, tmp_path):
        conn = populate(open_store(tmp_path))
        conn.provider.checkpoint()
        conn.execute("INSERT INTO T VALUES (7,'m',33.0)")
        assert conn.provider.store.last_seq == len(SETUP) + 1
        conn.close()
        recovered = open_store(tmp_path)
        assert recovered.provider.store.last_seq == len(SETUP) + 1
        recovered.close()


class TestDataVersionContinuity:
    def test_data_version_monotonic_across_restore(self, tmp_path):
        conn = populate(open_store(tmp_path))
        conn.provider.checkpoint()
        before = conn.provider.database.data_version
        conn.close()
        recovered = open_store(tmp_path)
        assert recovered.provider.database.data_version >= before
        recovered.close()


class TestFailureModes:
    def test_journal_io_error_marks_store_broken(self, tmp_path):
        faults = FaultInjector()
        conn = open_store(tmp_path, durable_faults=faults)
        conn.execute(SETUP[0])
        conn.execute(SETUP[1])
        faults.arm("journal.before_write", exc=OSError("disk full"))
        with pytest.raises(Error, match="NOT durable"):
            conn.execute("INSERT INTO T VALUES (9,'m',99.0)")
        # Reads still work; further mutations are refused.
        assert conn.execute("SELECT COUNT(*) FROM T").single_value() == 7
        with pytest.raises(Error, match="read-only"):
            conn.execute("INSERT INTO T VALUES (10,'f',10.0)")
        conn.close()
        # On disk only the acknowledged statements exist.
        recovered = open_store(tmp_path)
        assert recovered.execute("SELECT COUNT(*) FROM T") \
            .single_value() == 6
        recovered.close()

    def test_unacknowledged_statement_not_replayed(self, tmp_path):
        faults = FaultInjector()
        conn = open_store(tmp_path, durable_faults=faults)
        conn.execute(SETUP[0])
        faults.arm("journal.before_write")
        from repro.store.faults import InjectedCrash
        with pytest.raises(InjectedCrash):
            conn.execute(SETUP[1])
        recovered = open_store(tmp_path)
        assert recovered.execute("SELECT COUNT(*) FROM T") \
            .single_value() == 0
        recovered.close()


class TestImportReplay:
    def test_import_survives_source_file_deletion(self, tmp_path):
        exporter = populate(open_store(tmp_path))
        pmml_path = tmp_path / "m.pmml"
        exporter.execute(f"EXPORT MINING MODEL M TO '{pmml_path}'")
        exporter.execute(
            f"IMPORT MINING MODEL FROM '{pmml_path}' AS M2")
        exporter.close()
        os.unlink(pmml_path)  # the journal embedded the document

        recovered = open_store(tmp_path)
        assert recovered.model("M2").is_trained
        recovered.close()


class TestMetricsSurface:
    def test_store_counters_via_system_rowset(self, tmp_path):
        conn = populate(open_store(tmp_path))
        conn.provider.checkpoint()
        rows = conn.execute(
            "SELECT METRIC, VALUE FROM $SYSTEM.DM_PROVIDER_METRICS "
            "WHERE METRIC = 'store.journal_appends'").rows
        assert rows and rows[0][1] == len(SETUP)
        conn.close()

    def test_recovery_counters(self, tmp_path):
        populate(open_store(tmp_path)).close()
        recovered = open_store(tmp_path)
        metrics = recovered.provider.metrics
        assert metrics.value("store.recovered_statements") == len(SETUP)
        assert metrics.value("store.torn_records_skipped") == 0
        recovered.close()


class TestCliDurable:
    def test_dmxsh_durable_script_and_reopen(self, tmp_path, capsys):
        from repro.cli import main
        store = str(tmp_path / "store")
        script = tmp_path / "setup.dmx"
        script.write_text(";\n".join(SETUP) + ";\n")
        assert main(["--durable", store, "--script", str(script)]) == 0
        query = tmp_path / "query.dmx"
        query.write_text("SELECT COUNT(*) FROM Men;\n")
        assert main(["--durable", store, "--script", str(query)]) == 0
        out = capsys.readouterr().out
        assert "replayed 5 journaled statement(s)" in out
