"""Journal record format, torn-tail handling, and corruption detection."""

import pytest

from repro.store.faults import FaultInjector, InjectedCrash
from repro.store.journal import (
    JournalCorruptError,
    JournalWriter,
    decode_record,
    encode_record,
    read_journal,
)


def _records(n):
    return [{"seq": i + 1, "kind": "INSERT", "stmt": f"INSERT {i}"}
            for i in range(n)]


class TestRecordCodec:
    def test_round_trip(self):
        record = {"seq": 7, "kind": "TRAIN", "stmt": "INSERT INTO M ..."}
        assert decode_record(encode_record(record).rstrip(b"\n")) == record

    def test_bad_checksum_rejected(self):
        line = encode_record({"seq": 1, "stmt": "x"}).rstrip(b"\n")
        flipped = line[:-1] + (b"!" if line[-1:] != b"!" else b"?")
        assert decode_record(flipped) is None

    def test_bad_magic_rejected(self):
        assert decode_record(b"XXX1 00000000 {}") is None

    def test_unicode_statement_survives(self):
        record = {"seq": 1, "kind": "INSERT",
                  "stmt": "INSERT INTO T VALUES ('café ☃')"}
        assert decode_record(encode_record(record).rstrip(b"\n")) == record


class TestReadJournal:
    def test_missing_file_is_empty(self, tmp_path):
        records, torn, end = read_journal(str(tmp_path / "none.dmj"))
        assert (records, torn, end) == ([], 0, 0)

    def test_append_then_read(self, tmp_path):
        path = str(tmp_path / "j.dmj")
        writer = JournalWriter(path)
        for record in _records(3):
            writer.append(record)
        writer.close()
        records, torn, end = read_journal(path)
        assert records == _records(3)
        assert torn == 0
        assert end == (tmp_path / "j.dmj").stat().st_size

    def test_partial_trailing_record_is_torn(self, tmp_path):
        path = tmp_path / "j.dmj"
        good = b"".join(encode_record(r) for r in _records(2))
        partial = encode_record({"seq": 3, "stmt": "x"})[:-7]  # no newline
        path.write_bytes(good + partial)
        records, torn, end = read_journal(str(path))
        assert records == _records(2)
        assert torn == 1
        assert end == len(good)

    def test_damaged_final_line_is_torn(self, tmp_path):
        path = tmp_path / "j.dmj"
        good = b"".join(encode_record(r) for r in _records(2))
        path.write_bytes(good + b"DMJ1 00000000 {garbage\n")
        records, torn, end = read_journal(str(path))
        assert records == _records(2)
        assert torn == 1
        assert end == len(good)

    def test_interior_damage_raises(self, tmp_path):
        path = tmp_path / "j.dmj"
        lines = [encode_record(r) for r in _records(3)]
        lines[1] = b"DMJ1 deadbeef {broken}\n"
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorruptError, match="corrupt"):
            read_journal(str(path))

    def test_writer_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "j.dmj"
        good = b"".join(encode_record(r) for r in _records(2))
        path.write_bytes(good + b"DMJ1 torn")
        records, torn, end = read_journal(str(path))
        writer = JournalWriter(str(path), truncate_at=end)
        writer.append({"seq": 3, "kind": "INSERT", "stmt": "INSERT 2"})
        writer.close()
        # The torn bytes are gone; the journal is clean end to end.
        records, torn, end = read_journal(str(path))
        assert [r["seq"] for r in records] == [1, 2, 3]
        assert torn == 0


class TestFaultedAppend:
    def test_torn_write_persists_partial_record(self, tmp_path):
        path = str(tmp_path / "j.dmj")
        faults = FaultInjector()
        writer = JournalWriter(path, faults=faults)
        writer.append({"seq": 1, "kind": "INSERT", "stmt": "INSERT 0"})
        faults.arm("journal.torn_write")
        with pytest.raises(InjectedCrash):
            writer.append({"seq": 2, "kind": "INSERT", "stmt": "INSERT 1"})
        writer.close()
        records, torn, _ = read_journal(path)
        assert [r["seq"] for r in records] == [1]
        assert torn == 1

    def test_io_error_surfaces(self, tmp_path):
        path = str(tmp_path / "j.dmj")
        faults = FaultInjector()
        writer = JournalWriter(path, faults=faults)
        faults.arm("journal.before_write", exc=OSError("no space"))
        with pytest.raises(OSError, match="no space"):
            writer.append({"seq": 1, "stmt": "x"})
        writer.close()

    def test_reset_empties_file(self, tmp_path):
        path = str(tmp_path / "j.dmj")
        writer = JournalWriter(path)
        for record in _records(5):
            writer.append(record)
        writer.reset()
        writer.append({"seq": 6, "kind": "INSERT", "stmt": "INSERT 5"})
        writer.close()
        records, torn, _ = read_journal(path)
        assert [r["seq"] for r in records] == [6]
