"""Differential harness: streaming execution vs effectively-materialized.

Every statement shape below runs twice against providers holding identical
data — once with a tiny batch size (7 rows, so every operator crosses many
batch boundaries) and once with a batch size far larger than any table
(one batch: the old materialize-everything behaviour).  Results must match
exactly: same column names and types, same rows, same order.

This pins the tentpole invariant of the streaming refactor: batching is an
execution detail, never an observable one.
"""

import pytest

import repro
from repro.sqlstore.rowset import Rowset

TINY_BATCH = 7
HUGE_BATCH = 10 ** 9

SETUP = [
    "CREATE TABLE Customers (cid INT, name TEXT, age INT, city TEXT, "
    "spend DOUBLE)",
    "CREATE TABLE Orders (oid INT, cid INT, product TEXT, qty INT, "
    "price DOUBLE)",
    "CREATE TABLE Stores (city TEXT, region TEXT)",
    "INSERT INTO Stores VALUES ('Seattle', 'West'), ('Austin', 'South'), "
    "('Boston', 'East'), ('Omaha', NULL)",
    "CREATE VIEW BigSpenders AS SELECT cid, name, spend FROM Customers "
    "WHERE spend > 120",
]

CITIES = ["Seattle", "Austin", "Boston", "Omaha", None]
PRODUCTS = ["TV", "VCR", "Ham", "Beer", "Milk", "Pepsi"]


def _load(conn):
    for statement in SETUP:
        conn.execute(statement)
    customers = []
    for cid in range(1, 61):
        name = f"'c{cid:03d}'"
        age = 18 + (cid * 7) % 60
        city = CITIES[cid % len(CITIES)]
        city_sql = "NULL" if city is None else f"'{city}'"
        spend = round((cid * 37) % 250 + cid / 8, 2)
        customers.append(f"({cid}, {name}, {age}, {city_sql}, {spend})")
    conn.execute("INSERT INTO Customers VALUES " + ", ".join(customers))
    orders = []
    for oid in range(1, 181):
        cid = (oid * 13) % 75 + 1  # some cids have no customer row
        product = PRODUCTS[oid % len(PRODUCTS)]
        qty = "NULL" if oid % 17 == 0 else str(oid % 9 + 1)
        price = round((oid * 3.5) % 80 + 0.99, 2)
        orders.append(f"({oid}, {cid}, '{product}', {qty}, {price})")
    conn.execute("INSERT INTO Orders VALUES " + ", ".join(orders))


def _make(batch_size):
    conn = repro.connect(batch_size=batch_size, caseset_cache_capacity=0)
    _load(conn)
    return conn


@pytest.fixture(scope="module")
def streaming():
    conn = _make(TINY_BATCH)
    yield conn
    conn.close()


@pytest.fixture(scope="module")
def materialized():
    conn = _make(HUGE_BATCH)
    yield conn
    conn.close()


STATEMENTS = [
    # -- scans, projection, WHERE -----------------------------------------
    "SELECT * FROM Customers",
    "SELECT name, age FROM Customers WHERE age > 40",
    "SELECT cid, spend * 2 AS doubled FROM Customers WHERE spend >= 100",
    "SELECT * FROM Customers WHERE city IS NULL",
    "SELECT * FROM Customers WHERE city = 'Austin' AND age < 50",
    "SELECT name FROM Customers WHERE name LIKE 'c05%'",
    "SELECT cid, CASE WHEN age < 30 THEN 'young' WHEN age < 55 THEN 'mid' "
    "ELSE 'senior' END AS bracket FROM Customers",
    # -- TOP (early stop) and DISTINCT ------------------------------------
    "SELECT TOP 5 * FROM Customers",
    "SELECT TOP 13 cid, name FROM Customers WHERE age > 25",
    "SELECT TOP 200 * FROM Orders",
    "SELECT DISTINCT city FROM Customers",
    "SELECT DISTINCT product, qty FROM Orders",
    "SELECT DISTINCT TOP 3 product FROM Orders",
    # -- equi joins (hash path) -------------------------------------------
    "SELECT c.name, o.product, o.qty FROM Customers AS c "
    "JOIN Orders AS o ON c.cid = o.cid",
    "SELECT c.name, o.product FROM Customers AS c "
    "LEFT JOIN Orders AS o ON c.cid = o.cid",
    "SELECT c.name, o.product, s.region FROM Customers AS c "
    "JOIN Orders AS o ON c.cid = o.cid "
    "JOIN Stores AS s ON c.city = s.city",
    "SELECT c.name, s.region FROM Customers AS c "
    "LEFT JOIN Stores AS s ON c.city = s.city WHERE c.age > 35",
    # -- residual / non-equi joins (nested-loop path) ---------------------
    "SELECT c.name, o.oid FROM Customers AS c "
    "JOIN Orders AS o ON c.cid = o.cid AND o.price > c.spend",
    "SELECT c.cid, o.oid FROM Customers AS c "
    "JOIN Orders AS o ON c.age < o.price",
    "SELECT TOP 40 c.name, s.region FROM Customers AS c CROSS JOIN Stores "
    "AS s",
    "SELECT c.name, s.city FROM Customers AS c, Stores AS s "
    "WHERE c.city = s.city AND s.region = 'West'",
    # -- GROUP BY / HAVING / aggregates -----------------------------------
    "SELECT city, COUNT(*) AS n FROM Customers GROUP BY city",
    "SELECT product, SUM(qty) AS total, AVG(price) AS avg_price "
    "FROM Orders GROUP BY product",
    "SELECT city, COUNT(*) AS n, MAX(spend) AS top_spend FROM Customers "
    "GROUP BY city HAVING COUNT(*) > 10",
    "SELECT product, COUNT(*) AS n FROM Orders WHERE qty IS NOT NULL "
    "GROUP BY product HAVING SUM(price) > 100 ORDER BY product",
    "SELECT COUNT(*) AS all_rows, MIN(age) AS youngest FROM Customers",
    # -- ORDER BY, including NULL and mixed-direction keys ----------------
    "SELECT name, age FROM Customers ORDER BY age DESC, name",
    "SELECT cid, city FROM Customers ORDER BY city, cid DESC",
    "SELECT product, qty FROM Orders ORDER BY qty, product, oid",
    "SELECT TOP 9 name, spend FROM Customers ORDER BY spend DESC",
    "SELECT name, CASE WHEN city IS NULL THEN age ELSE city END AS k "
    "FROM Customers ORDER BY k, cid",
    # -- UNION / UNION ALL -------------------------------------------------
    "SELECT name FROM Customers WHERE age < 25 UNION ALL "
    "SELECT name FROM Customers WHERE age > 70",
    "SELECT city FROM Customers UNION SELECT city FROM Stores",
    "SELECT cid FROM Customers WHERE spend > 200 UNION ALL "
    "SELECT cid FROM Orders WHERE price > 70 UNION ALL "
    "SELECT cid FROM Customers WHERE age = 30",
    # -- subqueries and views ----------------------------------------------
    "SELECT t.name FROM (SELECT name, age FROM Customers "
    "WHERE spend > 50) AS t WHERE t.age < 60",
    "SELECT x.product, x.n FROM (SELECT product, COUNT(*) AS n FROM Orders "
    "GROUP BY product) AS x WHERE x.n > 25",
    "SELECT u.name FROM (SELECT t.name, t.age FROM (SELECT * FROM "
    "Customers WHERE city = 'Boston') AS t WHERE t.age > 20) AS u",
    "SELECT * FROM BigSpenders WHERE spend < 200",
    "SELECT b.name, o.product FROM BigSpenders AS b "
    "JOIN Orders AS o ON b.cid = o.cid",
    "SELECT name FROM Customers WHERE cid IN "
    "(SELECT cid FROM Orders WHERE product = 'Beer')",
]

assert len(STATEMENTS) >= 30


def _canonical(rowset):
    columns = [(c.name, c.type.name if c.type is not None else None)
               for c in rowset.columns]
    rows = [tuple(_canonical(v) if isinstance(v, Rowset) else v
                  for v in row)
            for row in rowset.rows]
    return columns, rows


@pytest.mark.parametrize("statement", STATEMENTS)
def test_streaming_matches_materialized(streaming, materialized, statement):
    left = _canonical(streaming.execute(statement))
    right = _canonical(materialized.execute(statement))
    assert left == right


@pytest.mark.parametrize("statement", STATEMENTS)
def test_stream_api_matches_execute(streaming, statement):
    """conn.execute_stream drained batch-wise equals conn.execute."""
    expected = streaming.execute(statement)
    stream = streaming.execute_stream(statement)
    rows = [row for batch in stream.batches() for row in batch]
    assert [c.name for c in stream.columns] == \
        [c.name for c in expected.columns]
    assert rows == list(expected.rows)


def test_prediction_join_streaming_matches(streaming, materialized):
    """PREDICTION JOIN over both providers produces identical rows."""
    ddl = ("CREATE MINING MODEL SpendRisk (cid LONG KEY, "
           "age LONG CONTINUOUS, city TEXT DISCRETE PREDICT) "
           "USING Microsoft_Decision_Trees")
    train = "INSERT INTO SpendRisk (cid, age, city) " \
            "SELECT cid, age, city FROM Customers WHERE city IS NOT NULL"
    query = ("SELECT t.cid, SpendRisk.city FROM SpendRisk "
             "NATURAL PREDICTION JOIN "
             "(SELECT cid, age FROM Customers) AS t")
    for conn in (streaming, materialized):
        if not conn.provider.has_model("SpendRisk"):
            conn.execute(ddl)
            conn.execute(train)
    left = _canonical(streaming.execute(query))
    right = _canonical(materialized.execute(query))
    assert left == right
