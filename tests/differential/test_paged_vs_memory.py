"""Differential harness: paged storage under forced spill vs in-memory.

Two providers hold identical data.  One keeps rows in plain lists (the
behavioural reference); the other runs the paged row store with a buffer
pool of TWO frames and 512-byte pages, so every table spans multiple pages
and almost every scan crosses an eviction — rows are continuously spilled
to disk and reloaded.  For every statement shape in the 40-shape grid the
canonical :func:`~repro.server.protocol.rowset_dump` must be
*byte-identical*: paging, eviction, and reload are execution details,
never observable ones.

The sweep also covers plain EXPLAIN (byte-identical — plan text carries no
storage detail unless an index exists), EXPLAIN ANALYZE (actuals equal,
wall-clock masked), the wire transport over a paged provider, and an
indexed run where both sides carry the same CREATE INDEX set so seeks and
index-built joins are in play on both.
"""

import pytest

import repro
from repro.server.protocol import rowset_dump

from tests.differential.test_stream_vs_materialize import (
    STATEMENTS,
    TINY_BATCH,
    _load,
)

FORCED_BUFFER_PAGES = 2
TINY_PAGE_BYTES = 512

# Indexes on the grid's hot WHERE/JOIN columns: point + range seeks on
# Customers, join build sides on Orders.cid and Stores.city.
INDEX_DDL = [
    "CREATE INDEX ix_cust_city ON Customers (city)",
    "CREATE INDEX ix_cust_age ON Customers (age)",
    "CREATE INDEX ix_orders_cid ON Orders (cid)",
    "CREATE INDEX ix_stores_city ON Stores (city)",
]


def _memory_conn(**kwargs):
    conn = repro.connect(batch_size=TINY_BATCH, caseset_cache_capacity=0,
                         **kwargs)
    _load(conn)
    return conn


def _paged_conn(tmp_path_factory, name, **kwargs):
    root = tmp_path_factory.mktemp(name)
    conn = repro.connect(batch_size=TINY_BATCH, caseset_cache_capacity=0,
                         storage_path=str(root),
                         buffer_pages=FORCED_BUFFER_PAGES,
                         storage_page_bytes=TINY_PAGE_BYTES,
                         **kwargs)
    _load(conn)
    return conn


@pytest.fixture(scope="module")
def memory():
    conn = _memory_conn()
    yield conn
    conn.close()


@pytest.fixture(scope="module")
def paged(tmp_path_factory):
    conn = _paged_conn(tmp_path_factory, "paged-grid")
    yield conn
    conn.close()


@pytest.fixture(scope="module")
def indexed_pair(tmp_path_factory):
    """A separate memory/paged pair carrying the same user indexes (kept
    apart from the plain fixtures so index-seek plan text never leaks into
    the EXPLAIN byte-identity sweep).  Statistics are off: the cost-based
    planner weighs *physical* page costs, so with tiny forced-spill pages
    it may legitimately prefer a scan where the in-memory store seeks.
    ``statistics=False`` pins both sides to the heuristic planner, which
    chooses access paths from the query alone — the invariant this pair
    asserts.  Stats-on planning is covered by the stats-on/off
    differential suite."""
    left = _memory_conn(statistics=False)
    right = _paged_conn(tmp_path_factory, "paged-grid-indexed",
                        statistics=False)
    for conn in (left, right):
        for ddl in INDEX_DDL:
            conn.execute(ddl)
    yield left, right
    left.close()
    right.close()


# -- the spill is real ---------------------------------------------------------

def test_forced_spill_really_spills(paged):
    """The pool holds at most 2 frames while the tables span many pages —
    the grid genuinely runs larger-than-memory."""
    storage = paged.provider.storage
    assert len(storage.pool) <= FORCED_BUFFER_PAGES
    total_pages = sum(len(table.store.handles)
                      for table in paged.database.tables.values())
    assert total_pages > 3 * FORCED_BUFFER_PAGES
    assert storage.pool.evictions > 0


# -- the 40-shape grid, byte for byte ------------------------------------------

@pytest.mark.parametrize("statement", STATEMENTS)
def test_paged_dump_matches_memory(memory, paged, statement):
    assert rowset_dump(paged.execute(statement)) == \
        rowset_dump(memory.execute(statement))


@pytest.mark.parametrize("statement", STATEMENTS)
def test_paged_explain_matches_memory(memory, paged, statement):
    """Plain EXPLAIN is storage-blind without indexes — identical except the
    COST column, which is *deliberately* storage-aware (page counts and
    buffer residency feed the cost model) and therefore masked."""
    command = f"EXPLAIN {statement}"
    left_names, left_rows = _masked_plan(paged.execute(command))
    right_names, right_rows = _masked_plan(memory.execute(command))
    assert left_names == right_names
    assert left_rows == right_rows


def _masked_plan(rowset):
    names = [c.name for c in rowset.columns]
    masked = {names.index("WALL_MS"), names.index("COST")}
    return names, [tuple(None if i in masked else v
                         for i, v in enumerate(row)) for row in rowset.rows]


@pytest.mark.parametrize("statement", STATEMENTS[::4])
def test_paged_explain_analyze_matches_memory(memory, paged, statement):
    """ANALYZE executes for real on both stores; every actual except
    wall-clock must agree (rows scanned, batches, join rows...)."""
    command = f"EXPLAIN ANALYZE {statement}"
    left_names, left_rows = _masked_plan(paged.execute(command))
    right_names, right_rows = _masked_plan(memory.execute(command))
    assert left_names == right_names
    assert left_rows == right_rows


# -- indexed run: seeks and index-built joins on both sides --------------------

@pytest.mark.parametrize("statement", STATEMENTS)
def test_indexed_paged_dump_matches_indexed_memory(indexed_pair, statement):
    left, right = indexed_pair
    assert rowset_dump(right.execute(statement)) == \
        rowset_dump(left.execute(statement))


def test_indexed_run_actually_used_indexes(indexed_pair):
    """Guard against the sweep silently degrading to sequential scans."""
    for conn in indexed_pair:
        rows = conn.execute(
            "SELECT SEEKS, RANGE_SEEKS, JOIN_PROBES "
            "FROM $SYSTEM.DM_INDEXES").rows
        assert sum(seeks + ranges + probes
                   for seeks, ranges, probes in rows) > 0


def test_indexed_dm_indexes_counters_match(indexed_pair):
    """Same statements, same index decisions: the usage counters of both
    providers must agree exactly (storage never changes index choice)."""
    left, right = indexed_pair
    query = ("SELECT TABLE_NAME, INDEX_NAME, COLUMN_NAME, KIND, KEYS, "
             "ENTRIES, SEEKS, RANGE_SEEKS, JOIN_PROBES "
             "FROM $SYSTEM.DM_INDEXES")
    assert rowset_dump(left.execute(query)) == \
        rowset_dump(right.execute(query))


# -- wire transport over a paged provider --------------------------------------

@pytest.fixture(scope="module")
def paged_wire(paged):
    from repro.client import connect as net_connect
    from repro.server import DmxServer
    with DmxServer(paged.provider, port=0) as server:
        with net_connect("127.0.0.1", server.port) as conn:
            yield conn
    assert server.thread_errors == []


@pytest.mark.parametrize("statement", STATEMENTS[::3])
def test_wire_over_paged_matches_embedded(memory, paged_wire, statement):
    """The full stack — wire protocol over paged storage under forced
    spill — still reproduces the in-memory reference byte for byte."""
    assert rowset_dump(paged_wire.execute(statement)) == \
        rowset_dump(memory.execute(statement))


def test_wire_stream_over_paged_matches(memory, paged_wire):
    statement = ("SELECT c.name, o.product, o.qty FROM Customers AS c "
                 "JOIN Orders AS o ON c.cid = o.cid")
    streamed = paged_wire.execute_stream(statement,
                                         batch_size=5).materialize()
    assert rowset_dump(streamed) == rowset_dump(memory.execute(statement))
