"""Differential harness: EXPLAIN ANALYZE actuals vs direct execution.

For every statement shape in the stream-vs-materialize grid, running the
statement under ``EXPLAIN ANALYZE`` must report a root-operator actual row
count identical to what direct execution returns — the plan's actuals are
reconciled from real spans, so any drift means the profiler is lying.

A second sweep pins plain ``EXPLAIN`` to the planner path: with span
capture on, explaining every grid statement must open no data-path spans
at all (no scan, join, shape, bind, train, or predict work).
"""

import pytest

from repro.obs.explain import is_plan_rowset

from tests.differential.test_stream_vs_materialize import (
    STATEMENTS,
    TINY_BATCH,
    _load,
    _make,
)

DATA_PATH_SPANS = {"engine.select", "engine.join", "shape", "bind",
                   "algorithm.train", "train.partitioned", "predict",
                   "predict.parallel"}


@pytest.fixture(scope="module")
def grid_conn():
    conn = _make(TINY_BATCH)
    yield conn
    conn.close()


def _plan_rows(conn, statement):
    rowset = conn.execute(statement)
    assert is_plan_rowset(rowset)
    names = [c.name for c in rowset.columns]
    return [dict(zip(names, row)) for row in rowset.rows]


@pytest.mark.parametrize("statement", STATEMENTS)
def test_analyze_root_actuals_match_direct_execution(grid_conn, statement):
    expected = len(grid_conn.execute(statement).rows)
    root = _plan_rows(grid_conn, f"EXPLAIN ANALYZE {statement}")[0]
    assert root["ACTUAL_ROWS"] == expected
    assert root["WALL_MS"] is not None


@pytest.mark.parametrize("statement", STATEMENTS)
def test_plain_explain_opens_no_data_path_spans(grid_conn, statement):
    grid_conn.execute("TRACE ON")
    try:
        rows = _plan_rows(grid_conn, f"EXPLAIN {statement}")
        record = grid_conn.provider.tracer.last()
        assert record.kind == "EXPLAIN"
        names = {span.name for span, _ in record.spans()}
        assert not names & DATA_PATH_SPANS, (
            f"plain EXPLAIN touched the data path: {names & DATA_PATH_SPANS}")
        # And it still produced a plan with no actuals.
        assert all(r["ACTUAL_ROWS"] is None for r in rows)
    finally:
        grid_conn.execute("TRACE OFF")


def test_analyze_prediction_join_actuals_match(grid_conn):
    ddl = ("CREATE MINING MODEL GridRisk (cid LONG KEY, "
           "age LONG CONTINUOUS, city TEXT DISCRETE PREDICT) "
           "USING Microsoft_Decision_Trees")
    train = ("INSERT INTO GridRisk (cid, age, city) "
             "SELECT cid, age, city FROM Customers WHERE city IS NOT NULL")
    query = ("SELECT t.cid, GridRisk.city FROM GridRisk "
             "NATURAL PREDICTION JOIN "
             "(SELECT cid, age FROM Customers) AS t")
    grid_conn.execute(ddl)

    # Plain EXPLAIN of the training statement must leave it untrained.
    grid_conn.execute(f"EXPLAIN {train}")
    assert not grid_conn.provider.model("GridRisk").is_trained

    # ANALYZE trains for real and reports the bound caseset size.
    rows = _plan_rows(grid_conn, f"EXPLAIN ANALYZE {train}")
    assert grid_conn.provider.model("GridRisk").is_trained
    assert rows[0]["ACTUAL_ROWS"] is not None

    expected = len(grid_conn.execute(query).rows)
    root = _plan_rows(grid_conn, f"EXPLAIN ANALYZE {query}")[0]
    assert root["OPERATOR"] == "prediction join"
    assert root["ACTUAL_ROWS"] == expected
