"""Differential harness: parallel execution vs serial, per algorithm.

Every registered mining service trains and predicts end-to-end across the
full grid of worker counts {1, 2, 7} x batch sizes {7, 10**9} and must
produce results identical to the serial baseline: same model content rowset
(rows, order, types), same PREDICTION JOIN rows in the same order.

This pins the tentpole invariant of the parallel execution subsystem:
``WITH MAXDOP`` is an execution detail, never an observable one.  A service
that cannot merge partitions (everything except naive Bayes) must fall back
to serial training and say so through ``pool.serial_fallbacks`` — silently
degraded parallelism would hide real regressions, so the fallback metrics
are asserted too.
"""

import multiprocessing

import pytest

import repro
from repro.algorithms.registry import algorithm_services
from repro.sqlstore.rowset import Rowset

TINY_BATCH = 7
HUGE_BATCH = 10 ** 9
WORKER_GRID = (1, 2, 7)
BATCH_GRID = (TINY_BATCH, HUGE_BATCH)

SETUP = [
    "CREATE TABLE C (Id LONG, G TEXT, H TEXT, Age DOUBLE, Spend DOUBLE, "
    "Buys TEXT)",
    "CREATE TABLE S (Cid LONG, P TEXT)",
    "CREATE TABLE E (Id LONG, Step LONG, Page TEXT)",
]


def _load(conn):
    for statement in SETUP:
        conn.execute(statement)
    rows = []
    for i in range(1, 61):
        g = "'m'" if i % 2 else "'f'"
        h = ("'hi'", "'mid'", "'lo'")[i % 3]
        age = 20.0 + (i % 5) * 8
        spend = round(3.0 * age + (7.0 if i % 2 else 0.0) + (i % 7) * 0.25, 2)
        buys = "'yes'" if (i % 5 + i % 3) % 2 == 0 else "'no'"
        rows.append(f"({i}, {g}, {h}, {age}, {spend}, {buys})")
    conn.execute("INSERT INTO C VALUES " + ", ".join(rows))
    baskets = []
    for i in range(1, 61):
        items = (("tv", "beer") if i % 2
                 else ("wine", "beer") if i % 3 else ("wine",))
        baskets.extend(f"({i}, '{p}')" for p in items)
    conn.execute("INSERT INTO S VALUES " + ", ".join(baskets))
    clicks = []
    for i in range(1, 31):
        pages = ["A", "B", "C"] if i % 2 else ["X", "Y", "X"]
        clicks.extend(f"({i}, {step}, '{page}')"
                      for step, page in enumerate(pages))
    conn.execute("INSERT INTO E VALUES " + ", ".join(clicks))


# One end-to-end scenario per registered service: DDL, training statement,
# and a PREDICTION JOIN with no blocking clause (so prediction is eligible
# for parallel execution in every scenario).
SCENARIOS = {
    "Repro_Naive_Bayes": dict(
        parallel_training=True,
        ddl="CREATE MINING MODEL M (Id LONG KEY, G TEXT DISCRETE, "
            "H TEXT DISCRETE, Buys TEXT DISCRETE PREDICT) "
            "USING Repro_Naive_Bayes",
        train="INSERT INTO M (Id, G, H, Buys) SELECT Id, G, H, Buys FROM C",
        predict="SELECT t.Id, M.Buys, PredictProbability(Buys) FROM M "
                "PREDICTION JOIN (SELECT Id, G, H FROM C) AS t "
                "ON M.G = t.G AND M.H = t.H AND M.Id = t.Id"),
    "Repro_Decision_Trees": dict(
        parallel_training=False,
        ddl="CREATE MINING MODEL M (Id LONG KEY, G TEXT DISCRETE, "
            "H TEXT DISCRETE, Buys TEXT DISCRETE PREDICT) "
            "USING Repro_Decision_Trees(MINIMUM_SUPPORT = 2)",
        train="INSERT INTO M (Id, G, H, Buys) SELECT Id, G, H, Buys FROM C",
        predict="SELECT t.Id, Predict(Buys), PredictProbability(Buys) "
                "FROM M NATURAL PREDICTION JOIN "
                "(SELECT Id, G, H FROM C) AS t"),
    "Repro_Clustering": dict(
        parallel_training=False,
        ddl="CREATE MINING MODEL M (Id LONG KEY, G TEXT DISCRETE, "
            "Age DOUBLE CONTINUOUS PREDICT) "
            "USING Repro_Clustering(CLUSTER_COUNT = 2)",
        train="INSERT INTO M (Id, G, Age) SELECT Id, G, Age FROM C",
        predict="SELECT t.Id, Cluster() FROM M NATURAL PREDICTION JOIN "
                "(SELECT Id, G, Age FROM C) AS t"),
    "Repro_KMeans": dict(
        parallel_training=False,
        ddl="CREATE MINING MODEL M (Id LONG KEY, G TEXT DISCRETE, "
            "Age DOUBLE CONTINUOUS PREDICT) "
            "USING Repro_KMeans(CLUSTER_COUNT = 2)",
        train="INSERT INTO M (Id, G, Age) SELECT Id, G, Age FROM C",
        predict="SELECT t.Id, Cluster() FROM M NATURAL PREDICTION JOIN "
                "(SELECT Id, G, Age FROM C) AS t"),
    "Repro_Linear_Regression": dict(
        parallel_training=False,
        ddl="CREATE MINING MODEL M (Id LONG KEY, G TEXT DISCRETE, "
            "Age DOUBLE CONTINUOUS, Spend DOUBLE CONTINUOUS PREDICT) "
            "USING Repro_Linear_Regression",
        train="INSERT INTO M (Id, G, Age, Spend) "
              "SELECT Id, G, Age, Spend FROM C",
        predict="SELECT t.Id, Predict(Spend) FROM M "
                "NATURAL PREDICTION JOIN (SELECT Id, G, Age FROM C) AS t"),
    "Repro_Logistic_Regression": dict(
        parallel_training=False,
        ddl="CREATE MINING MODEL M (Id LONG KEY, G TEXT DISCRETE, "
            "Age DOUBLE CONTINUOUS, Buys TEXT DISCRETE PREDICT) "
            "USING Repro_Logistic_Regression",
        train="INSERT INTO M (Id, G, Age, Buys) "
              "SELECT Id, G, Age, Buys FROM C",
        predict="SELECT t.Id, Predict(Buys), PredictProbability(Buys) "
                "FROM M NATURAL PREDICTION JOIN "
                "(SELECT Id, G, Age FROM C) AS t"),
    "Repro_Association_Rules": dict(
        parallel_training=False,
        ddl="CREATE MINING MODEL M (Id LONG KEY, B TABLE(P TEXT KEY) "
            "PREDICT) USING Repro_Association_Rules(MINIMUM_SUPPORT = 0.1, "
            "MINIMUM_PROBABILITY = 0.2)",
        train="INSERT INTO M (Id, B(P)) "
              "SHAPE {SELECT DISTINCT Cid FROM S ORDER BY Cid} "
              "APPEND ({SELECT Cid AS SC, P FROM S ORDER BY Cid} "
              "RELATE Cid TO SC) AS B",
        predict="SELECT t.Id, M.B FROM M NATURAL PREDICTION JOIN "
                "(SHAPE {SELECT Id FROM C ORDER BY Id} "
                "APPEND ({SELECT Cid AS SC, P FROM S ORDER BY Cid} "
                "RELATE Id TO SC) AS B) AS t"),
    "Repro_Sequence_Clustering": dict(
        parallel_training=False,
        ddl="CREATE MINING MODEL M (Id LONG KEY, "
            "Clicks TABLE(Step LONG KEY SEQUENCE_TIME, Page TEXT DISCRETE)) "
            "USING Repro_Sequence_Clustering(CLUSTER_COUNT = 2)",
        train="INSERT INTO M (Id, Clicks(Step, Page)) "
              "SHAPE {SELECT DISTINCT Id FROM E ORDER BY Id} "
              "APPEND ({SELECT Id AS EID, Step, Page FROM E ORDER BY Id} "
              "RELATE Id TO EID) AS Clicks",
        predict="SELECT t.Id, Cluster() FROM M NATURAL PREDICTION JOIN "
                "(SHAPE {SELECT DISTINCT Id FROM E ORDER BY Id} "
                "APPEND ({SELECT Id AS EID, Step, Page FROM E ORDER BY Id} "
                "RELATE Id TO EID) AS Clicks) AS t"),
}


def test_every_registered_service_has_a_scenario():
    registered = {cls.SERVICE_NAME for cls in algorithm_services()}
    assert registered == set(SCENARIOS), (
        "a mining service was registered without a differential scenario; "
        "add it to SCENARIOS so parallel equivalence stays pinned")


def _canonical(rowset):
    columns = [(c.name, c.type.name if c.type is not None else None)
               for c in rowset.columns]
    rows = [tuple(_canonical(v) if isinstance(v, Rowset) else v
                  for v in row)
            for row in rowset.rows]
    return columns, rows


def _metrics(conn):
    rows = conn.execute(
        "SELECT METRIC, VALUE FROM $SYSTEM.DM_PROVIDER_METRICS").rows
    return dict(rows)


def _run(service, workers, batch, pool_mode="thread"):
    """Train + content + predict under one pool configuration."""
    scenario = SCENARIOS[service]
    conn = repro.connect(max_workers=workers, pool_mode=pool_mode,
                         batch_size=batch, caseset_cache_capacity=0)
    try:
        _load(conn)
        conn.execute(scenario["ddl"])
        conn.execute(scenario["train"] + f" WITH MAXDOP {workers}")
        content = _canonical(conn.execute("SELECT * FROM M.CONTENT"))
        predictions = _canonical(conn.execute(scenario["predict"]))
        metrics = _metrics(conn)
    finally:
        conn.close()
    return content, predictions, metrics


_BASELINES = {}


def _baseline(service):
    """Serial reference: one worker, one giant batch."""
    if service not in _BASELINES:
        content, predictions, _ = _run(service, workers=1, batch=HUGE_BATCH)
        _BASELINES[service] = (content, predictions)
    return _BASELINES[service]


GRID = [(service, workers, batch)
        for service in sorted(SCENARIOS)
        for workers in WORKER_GRID
        for batch in BATCH_GRID]


@pytest.mark.parametrize(
    "service, workers, batch", GRID,
    ids=[f"{s}-w{w}-b{b}" for s, w, b in GRID])
def test_parallel_matches_serial(service, workers, batch):
    base_content, base_predictions = _baseline(service)
    content, predictions, metrics = _run(service, workers, batch)

    assert content == base_content, (
        f"{service}: model content diverged at workers={workers} "
        f"batch={batch}")
    assert predictions == base_predictions, (
        f"{service}: PREDICTION JOIN rows or order diverged at "
        f"workers={workers} batch={batch}")

    if workers == 1:
        # A one-worker pool never parallelizes and never needs to fall back.
        assert metrics.get("pool.parallel_statements", 0.0) == 0.0
        assert metrics.get("pool.serial_fallbacks", 0.0) == 0.0
    elif SCENARIOS[service]["parallel_training"]:
        assert metrics.get("pool.parallel_statements.train") == 1.0
        assert metrics.get("pool.serial_fallbacks", 0.0) == 0.0
    else:
        # Non-mergeable service: training must fall back (and be honest
        # about it), while prediction still parallelizes.
        assert metrics.get("pool.serial_fallbacks.algorithm") == 1.0
        assert metrics.get("pool.parallel_statements.train", 0.0) == 0.0
        assert metrics.get("pool.parallel_statements.predict") == 1.0


def test_non_categorical_space_falls_back_with_space_reason():
    """Naive Bayes is mergeable, but only over all-categorical spaces."""
    conn = repro.connect(max_workers=4, pool_mode="thread",
                         caseset_cache_capacity=0)
    try:
        _load(conn)
        conn.execute("CREATE MINING MODEL M (Id LONG KEY, G TEXT DISCRETE, "
                     "Age DOUBLE CONTINUOUS, Buys TEXT DISCRETE PREDICT) "
                     "USING Repro_Naive_Bayes")
        conn.execute("INSERT INTO M (Id, G, Age, Buys) "
                     "SELECT Id, G, Age, Buys FROM C")
        metrics = _metrics(conn)
        assert metrics.get("pool.serial_fallbacks.space") == 1.0
        assert metrics.get("pool.parallel_statements.train", 0.0) == 0.0
    finally:
        conn.close()


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process pools require the fork start method")
def test_process_pool_matches_serial():
    """One process-mode cell: models and plans must survive pickling."""
    service = "Repro_Naive_Bayes"
    base_content, base_predictions = _baseline(service)
    content, predictions, metrics = _run(service, workers=2,
                                         batch=TINY_BATCH,
                                         pool_mode="process")
    assert content == base_content
    assert predictions == base_predictions
    assert metrics.get("pool.parallel_statements.train") == 1.0
    assert metrics.get("pool.serial_fallbacks", 0.0) == 0.0
