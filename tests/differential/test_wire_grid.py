"""Differential harness: the wire transport vs the embedded API.

Both transports talk to ONE provider holding one copy of the grid data —
an embedded :class:`repro.core.provider.Connection` directly, and a
:class:`repro.client.Connection` through a live :class:`DmxServer` — so
any divergence is the wire's fault, not the data's.  For every statement
shape in the stream-vs-materialize grid, the canonical
:func:`~repro.server.protocol.rowset_dump` of the wire result must be
*byte-identical* to the embedded one: same column names, same type names,
same nesting, same rows in the same order.

The sweep also covers the streaming API (batch boundaries included), the
EXPLAIN grid (plain EXPLAIN byte-identical; ANALYZE with the volatile
WALL_MS column masked), and error parity — the wire must raise the same
:mod:`repro.errors` class with the same message as embedded.
"""

import pytest

import repro
from repro.client import connect as net_connect
from repro.errors import (
    BindError,
    CatalogError,
    Error,
    ParseError,
    PredictionError,
)
from repro.server import DmxServer
from repro.server.protocol import rowset_dump
from repro.sqlstore.rowset import Rowset

from tests.differential.test_stream_vs_materialize import (
    STATEMENTS,
    TINY_BATCH,
    _load,
)

TRANSPORTS = ("embedded", "wire")

PREDICTION_DDL = ("CREATE MINING MODEL WireRisk (cid LONG KEY, "
                  "age LONG CONTINUOUS, city TEXT DISCRETE PREDICT) "
                  "USING Microsoft_Decision_Trees")
PREDICTION_TRAIN = ("INSERT INTO WireRisk (cid, age, city) "
                    "SELECT cid, age, city FROM Customers "
                    "WHERE city IS NOT NULL")
PREDICTION_QUERY = ("SELECT t.cid, WireRisk.city, "
                    "PredictProbability(WireRisk.city) AS p FROM WireRisk "
                    "NATURAL PREDICTION JOIN "
                    "(SELECT cid, age FROM Customers) AS t")


@pytest.fixture(scope="module")
def embedded():
    conn = repro.connect(batch_size=TINY_BATCH, caseset_cache_capacity=0)
    _load(conn)
    conn.execute(PREDICTION_DDL)
    conn.execute(PREDICTION_TRAIN)
    yield conn
    conn.close()


@pytest.fixture(scope="module")
def server(embedded):
    with DmxServer(embedded.provider, port=0) as srv:
        yield srv
    assert srv.thread_errors == []


@pytest.fixture(scope="module")
def wire(server):
    with net_connect("127.0.0.1", server.port) as conn:
        yield conn


@pytest.fixture(params=TRANSPORTS)
def transport(request, embedded, wire):
    return embedded if request.param == "embedded" else wire


# -- the 40-shape grid, byte for byte -----------------------------------------

@pytest.mark.parametrize("statement", STATEMENTS)
def test_wire_dump_matches_embedded(embedded, wire, statement):
    assert rowset_dump(wire.execute(statement)) == \
        rowset_dump(embedded.execute(statement))


@pytest.mark.parametrize("statement", STATEMENTS)
def test_wire_stream_matches_embedded_execute(embedded, wire, statement):
    """Streamed over the wire, drained, and dumped: still byte-identical."""
    streamed = wire.execute_stream(statement, batch_size=5).materialize()
    assert rowset_dump(streamed) == rowset_dump(embedded.execute(statement))


def test_prediction_join_matches_over_wire(embedded, wire):
    assert rowset_dump(wire.execute(PREDICTION_QUERY)) == \
        rowset_dump(embedded.execute(PREDICTION_QUERY))


def test_nested_rowset_content_matches_over_wire(embedded, wire):
    """Model CONTENT carries TABLE-typed cells; nesting must survive."""
    statement = "SELECT * FROM WireRisk.CONTENT"
    left = wire.execute(statement)
    assert any(isinstance(value, Rowset)
               for row in left.rows for value in row), \
        "expected nested rowsets in model content"
    assert rowset_dump(left) == rowset_dump(embedded.execute(statement))


# -- transport-fixture sweep: both transports satisfy the same contract -------

def test_transport_fixture_results_are_rowsets(transport):
    rowset = transport.execute("SELECT TOP 3 cid, name FROM Customers")
    assert isinstance(rowset, Rowset)
    assert [c.name for c in rowset.columns] == ["cid", "name"]
    assert len(rowset.rows) == 3


def test_transport_fixture_rowcounts_match(transport):
    assert transport.execute(
        "INSERT INTO Stores VALUES ('Fresno', 'West')") == 1
    assert transport.execute(
        "DELETE FROM Stores WHERE city = 'Fresno'") == 1


# -- EXPLAIN grid over the wire -----------------------------------------------

@pytest.mark.parametrize("statement", STATEMENTS)
def test_wire_explain_matches_embedded(embedded, wire, statement):
    """Plain EXPLAIN is pure and deterministic: byte-identical too."""
    command = f"EXPLAIN {statement}"
    assert rowset_dump(wire.execute(command)) == \
        rowset_dump(embedded.execute(command))


def _masked_plan(rowset):
    names = [c.name for c in rowset.columns]
    wall = names.index("WALL_MS")
    return names, [tuple(None if i == wall else v
                         for i, v in enumerate(row)) for row in rowset.rows]


@pytest.mark.parametrize("statement", STATEMENTS[::4])
def test_wire_explain_analyze_matches_embedded(embedded, wire, statement):
    """ANALYZE runs for real on both sides; actuals must agree with only
    the wall-clock column allowed to differ."""
    command = f"EXPLAIN ANALYZE {statement}"
    left_names, left_rows = _masked_plan(wire.execute(command))
    right_names, right_rows = _masked_plan(embedded.execute(command))
    assert left_names == right_names
    assert left_rows == right_rows


# -- error parity -------------------------------------------------------------

ERROR_CASES = [
    ("SELECT * FROM no_such_table", BindError),
    ("SELECT nope FROM Customers", BindError),
    ("SELEC * FROM Customers", ParseError),
    ("DROP MINING MODEL NoSuchModel", CatalogError),
    ("SELECT t.cid, WireRisk.spend FROM WireRisk NATURAL PREDICTION JOIN "
     "(SELECT cid, age FROM Customers) AS t", (BindError, PredictionError)),
]


@pytest.mark.parametrize("statement, exc_type", ERROR_CASES)
def test_wire_errors_match_embedded(embedded, wire, statement, exc_type):
    with pytest.raises(exc_type) as embedded_exc:
        embedded.execute(statement)
    with pytest.raises(exc_type) as wire_exc:
        wire.execute(statement)
    assert type(wire_exc.value) is type(embedded_exc.value)
    assert str(wire_exc.value) == str(embedded_exc.value)


def test_wire_parse_error_carries_position(wire):
    with pytest.raises(ParseError) as excinfo:
        wire.execute("SELEC 1")
    assert excinfo.value.line == 1
    assert excinfo.value.column == 1
    # The position suffix appears exactly once (not re-appended on decode).
    assert str(excinfo.value).count("(line 1, column 1)") == 1


def test_wire_stream_error_raises_at_consumption(embedded, wire):
    """A statement error surfaces from execute_stream the same way on
    both transports: eagerly at call time (parse/bind run up front)."""
    with pytest.raises(BindError) as embedded_exc:
        embedded.execute_stream("SELECT * FROM no_such_table")
    with pytest.raises(BindError) as wire_exc:
        wire.execute_stream("SELECT * FROM no_such_table")
    assert str(wire_exc.value) == str(embedded_exc.value)


def test_wire_and_embedded_share_one_catalog(embedded, wire):
    """Sanity: the differential setup really is one provider, two doors."""
    wire.execute("CREATE TABLE WireOnly (x INT)")
    try:
        assert embedded.execute("SELECT * FROM WireOnly").rows == []
    finally:
        embedded.execute("DROP TABLE WireOnly")
