"""Differential harness: cost-based planning vs the heuristic baseline.

Statistics feed the planner real decisions — hash-join build side, index
seek vs table scan, parallel-vs-serial gating, prediction source-predicate
pushdown — and every one of them must be *invisible* in results.  Two
providers hold identical data; one runs with table statistics (the
default), the other with ``statistics=False``, which pins the planner to
the pre-statistics heuristics.  For every statement shape in the grid the
canonical :func:`~repro.server.protocol.rowset_dump` must be
byte-identical: a cost-based plan that changes output is a planner bug,
full stop.

The sweep covers the plain grid, an indexed pair (seek gating and
index-built joins in play), a forced-spill paged pair (page-cost-aware
decisions in play), the wire transport, and PREDICTION JOIN with a
pushable source predicate (the pushdown path).
"""

import pytest

import repro
from repro.server.protocol import rowset_dump

from tests.differential.test_stream_vs_materialize import (
    STATEMENTS,
    TINY_BATCH,
    _load,
)

FORCED_BUFFER_PAGES = 2
TINY_PAGE_BYTES = 512

INDEX_DDL = [
    "CREATE INDEX ix_cust_city ON Customers (city)",
    "CREATE INDEX ix_cust_age ON Customers (age)",
    "CREATE INDEX ix_orders_cid ON Orders (cid)",
]

MODEL_DDL = [
    "CREATE MINING MODEL SpendModel (cid LONG KEY, city TEXT DISCRETE, "
    "spend DOUBLE CONTINUOUS PREDICT) USING Repro_Linear_Regression",
    "INSERT INTO SpendModel (cid, city, spend) "
    "SELECT cid, city, spend FROM Customers",
]

PREDICTION_STATEMENTS = [
    # Alias-qualified source conjunct: eligible for pushdown below binding.
    "SELECT t.cid, SpendModel.spend FROM SpendModel NATURAL PREDICTION "
    "JOIN (SELECT cid, city, spend FROM Customers) AS t "
    "WHERE t.city = 'Austin'",
    # Mixed WHERE: one pushable conjunct, one over the prediction output.
    "SELECT t.cid FROM SpendModel NATURAL PREDICTION JOIN "
    "(SELECT cid, city, spend FROM Customers) AS t "
    "WHERE t.cid > 10 AND PredictProbability(SpendModel.spend) >= 0",
    # Nothing pushable (unqualified model column in every conjunct).
    "SELECT TOP 7 t.cid, SpendModel.spend FROM SpendModel NATURAL "
    "PREDICTION JOIN (SELECT cid, city, spend FROM Customers) AS t",
]


def _pair(maker):
    on = maker(statistics=True)
    off = maker(statistics=False)
    return on, off


def _memory(**kwargs):
    conn = repro.connect(batch_size=TINY_BATCH, caseset_cache_capacity=0,
                         **kwargs)
    _load(conn)
    return conn


@pytest.fixture(scope="module")
def plain_pair():
    on, off = _pair(_memory)
    yield on, off
    on.close()
    off.close()


@pytest.fixture(scope="module")
def indexed_pair():
    on, off = _pair(_memory)
    for conn in (on, off):
        for ddl in INDEX_DDL:
            conn.execute(ddl)
    yield on, off
    on.close()
    off.close()


@pytest.fixture(scope="module")
def paged_pair(tmp_path_factory):
    def make(statistics):
        root = tmp_path_factory.mktemp(
            "stats-on" if statistics else "stats-off")
        conn = repro.connect(batch_size=TINY_BATCH,
                             caseset_cache_capacity=0,
                             storage_path=str(root),
                             buffer_pages=FORCED_BUFFER_PAGES,
                             storage_page_bytes=TINY_PAGE_BYTES,
                             statistics=statistics)
        _load(conn)
        for ddl in INDEX_DDL:
            conn.execute(ddl)
        return conn
    on, off = _pair(lambda statistics: make(statistics))
    yield on, off
    on.close()
    off.close()


@pytest.fixture(scope="module")
def prediction_pair():
    def make(statistics):
        conn = _memory(statistics=statistics)
        for ddl in MODEL_DDL:
            conn.execute(ddl)
        return conn
    on, off = _pair(lambda statistics: make(statistics))
    yield on, off
    on.close()
    off.close()


# -- the grid, byte for byte ---------------------------------------------------

@pytest.mark.parametrize("statement", STATEMENTS)
def test_stats_on_matches_stats_off(plain_pair, statement):
    on, off = plain_pair
    assert rowset_dump(on.execute(statement)) == \
        rowset_dump(off.execute(statement))


@pytest.mark.parametrize("statement", STATEMENTS)
def test_indexed_stats_on_matches_stats_off(indexed_pair, statement):
    """Cost-based seek gating and build-side choice may pick different
    access paths than the heuristics — never different rows."""
    on, off = indexed_pair
    assert rowset_dump(on.execute(statement)) == \
        rowset_dump(off.execute(statement))


@pytest.mark.parametrize("statement", STATEMENTS)
def test_paged_stats_on_matches_stats_off(paged_pair, statement):
    """Page-cost-aware planning under forced spill: a plan that weighs
    buffer residency must still reproduce the heuristic output exactly."""
    on, off = paged_pair
    assert rowset_dump(on.execute(statement)) == \
        rowset_dump(off.execute(statement))


def test_cost_based_planner_really_diverges(paged_pair):
    """Guard against the sweep silently testing nothing: under forced
    spill with statistics on, at least one access-path decision must
    differ from the heuristic baseline (the decisions differ; the rows
    above never do)."""
    on, off = paged_pair
    query = ("SELECT TABLE_NAME, INDEX_NAME, SEEKS, RANGE_SEEKS "
             "FROM $SYSTEM.DM_INDEXES")
    assert rowset_dump(on.execute(query)) != rowset_dump(off.execute(query))


# -- wire transport ------------------------------------------------------------

@pytest.fixture(scope="module")
def stats_wire(plain_pair):
    from repro.client import connect as net_connect
    from repro.server import DmxServer
    on, _ = plain_pair
    with DmxServer(on.provider, port=0) as server:
        with net_connect("127.0.0.1", server.port) as conn:
            yield conn
    assert server.thread_errors == []


@pytest.mark.parametrize("statement", STATEMENTS[::3])
def test_wire_over_stats_matches_stats_off(plain_pair, stats_wire,
                                           statement):
    _, off = plain_pair
    assert rowset_dump(stats_wire.execute(statement)) == \
        rowset_dump(off.execute(statement))


# -- PREDICTION JOIN pushdown --------------------------------------------------

@pytest.mark.parametrize("statement", PREDICTION_STATEMENTS)
def test_prediction_pushdown_matches_unpushed(prediction_pair, statement):
    """Source-predicate pushdown below the binding stage must be
    row-for-row invisible: the full WHERE still applies downstream."""
    on, off = prediction_pair
    assert rowset_dump(on.execute(statement)) == \
        rowset_dump(off.execute(statement))
