"""Differential harness: workload repository on vs off.

The repository is observation-only — it fingerprints, captures plans, and
aggregates, but must never influence planning or execution.  Two providers
hold identical data, one with the repository enabled and one with
``repository=False``; for every statement shape in the grid the canonical
:func:`~repro.server.protocol.rowset_dump` must be byte-identical, both
through the embedded API and over the wire.
"""

import pytest

import repro
from repro.client import connect as net_connect
from repro.server import DmxServer
from repro.server.protocol import rowset_dump

from tests.differential.test_stream_vs_materialize import STATEMENTS, _load


def _make(repository):
    conn = repro.connect(repository=repository, caseset_cache_capacity=0)
    _load(conn)
    return conn


@pytest.fixture(scope="module")
def observed():
    conn = _make(True)
    yield conn
    conn.close()


@pytest.fixture(scope="module")
def unobserved():
    conn = _make(False)
    yield conn
    conn.close()


@pytest.mark.parametrize("statement", STATEMENTS)
def test_repository_is_observation_only_embedded(observed, unobserved,
                                                 statement):
    assert rowset_dump(observed.execute(statement)) == \
        rowset_dump(unobserved.execute(statement))


@pytest.mark.parametrize("statement", STATEMENTS)
def test_repository_is_observation_only_explain(observed, unobserved,
                                                statement):
    """Plan capture must not perturb the planner: EXPLAIN output is
    byte-identical with the repository on and off."""
    command = f"EXPLAIN {statement}"
    assert rowset_dump(observed.execute(command)) == \
        rowset_dump(unobserved.execute(command))


@pytest.fixture(scope="module")
def observed_wire(observed):
    with DmxServer(observed.provider, port=0) as srv:
        with net_connect("127.0.0.1", srv.port) as conn:
            yield conn
    assert srv.thread_errors == []


@pytest.mark.parametrize("statement", STATEMENTS[::3])
def test_repository_is_observation_only_over_wire(observed_wire, unobserved,
                                                  statement):
    """Wire sessions annotate/observe on their own threads; results still
    match a repository-free provider byte for byte."""
    assert rowset_dump(observed_wire.execute(statement)) == \
        rowset_dump(unobserved.execute(statement))


def test_observed_provider_actually_observed(observed):
    """Sanity for the whole module: the observed side really collected —
    otherwise the equalities above prove nothing."""
    stats = observed.provider.repository.statement_stats()
    assert len(stats) >= 10
    assert sum(row["calls"] for row in stats) >= len(STATEMENTS)
