"""RWLock unit tests: shared reads, exclusive writes, writer priority."""

import threading
import time

import pytest

from repro.exec.locks import RWLock

WAIT = 5.0


def _spawn(target):
    thread = threading.Thread(target=target)
    thread.start()
    return thread


def test_readers_share():
    lock = RWLock()
    inside = threading.Barrier(3)

    def reader():
        with lock.read():
            inside.wait(timeout=WAIT)  # all three hold the lock at once

    threads = [_spawn(reader) for _ in range(3)]
    for thread in threads:
        thread.join(timeout=WAIT)
    assert not any(thread.is_alive() for thread in threads)


def test_writer_excludes_readers_and_writers():
    lock = RWLock()
    journal = []

    with lock.write():
        reader_started = threading.Event()

        def reader():
            reader_started.set()
            with lock.read():
                journal.append("read")

        thread = _spawn(reader)
        reader_started.wait(timeout=WAIT)
        time.sleep(0.05)
        assert journal == []  # reader blocked while the writer holds
        journal.append("write-done")
    thread.join(timeout=WAIT)
    assert journal == ["write-done", "read"]


def test_waiting_writer_blocks_new_readers():
    """Writer priority: sustained read traffic cannot starve a writer."""
    lock = RWLock()
    journal = []
    first_reader_in = threading.Event()
    release_first_reader = threading.Event()

    def long_reader():
        with lock.read():
            first_reader_in.set()
            release_first_reader.wait(timeout=WAIT)
        journal.append("reader1-out")

    def writer():
        with lock.write():
            journal.append("writer")

    def late_reader():
        with lock.read():
            journal.append("reader2")

    reader1 = _spawn(long_reader)
    first_reader_in.wait(timeout=WAIT)
    writer_thread = _spawn(writer)
    time.sleep(0.05)  # let the writer reach its wait loop
    reader2 = _spawn(late_reader)
    time.sleep(0.05)
    # The late reader must queue BEHIND the waiting writer even though the
    # lock is currently only read-held.
    assert "reader2" not in journal
    release_first_reader.set()
    for thread in (reader1, writer_thread, reader2):
        thread.join(timeout=WAIT)
    assert journal.index("writer") < journal.index("reader2")


class TestUnpairedRelease:
    """Regression: unpaired releases used to underflow silently, leaving
    ``_readers`` negative so waiting writers deadlocked forever."""

    def test_release_read_without_acquire_raises(self):
        with pytest.raises(RuntimeError, match="release_read"):
            RWLock().release_read()

    def test_double_release_read_raises(self):
        lock = RWLock()
        lock.acquire_read()
        lock.release_read()
        with pytest.raises(RuntimeError, match="release_read"):
            lock.release_read()

    def test_release_write_without_acquire_raises(self):
        with pytest.raises(RuntimeError, match="release_write"):
            RWLock().release_write()

    def test_double_release_write_raises(self):
        lock = RWLock()
        lock.acquire_write()
        lock.release_write()
        with pytest.raises(RuntimeError, match="release_write"):
            lock.release_write()

    def test_lock_still_usable_after_rejected_release(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        # A writer can still acquire immediately: no underflow happened.
        acquired = threading.Event()

        def writer():
            with lock.write():
                acquired.set()

        thread = _spawn(writer)
        thread.join(timeout=WAIT)
        assert acquired.is_set()


def test_reentrant_sequence_of_acquisitions():
    lock = RWLock()
    for _ in range(3):
        with lock.write():
            pass
        with lock.read():
            pass
    # Counters are back to rest: an immediate writer acquisition succeeds.
    acquired = threading.Event()

    def writer():
        with lock.write():
            acquired.set()

    thread = _spawn(writer)
    thread.join(timeout=WAIT)
    assert acquired.is_set()
