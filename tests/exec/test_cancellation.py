"""Cooperative cancellation: CANCEL lands at checkpoints, state stays clean.

The contract under test (ISSUE 6 acceptance): a long-running TRAIN is
visible in ``DM_ACTIVE_STATEMENTS`` with advancing progress, ``CANCEL <id>``
stops it within one batch/partition/iteration boundary, and afterwards the
provider is consistent — the model is untrained (or unchanged), nothing was
journaled for the cancelled mutation, and every lock is released.
"""

import threading
import time

import pytest

import repro
from repro.errors import CancelledError, Error
from repro.algorithms.base import CasePrediction, MiningAlgorithm
from repro.algorithms.registry import register_algorithm, unregister_algorithm
from repro.core.content import NODE_MODEL, ContentNode
from repro.store.journal import read_journal


class SlowIterative(MiningAlgorithm):
    """Iterative service: note_pass per iteration, so CANCEL lands between
    training passes.  ``started`` lets tests wait deterministically until
    training is underway before cancelling."""

    SERVICE_NAME = "Test_Slow_Iterative"
    started = threading.Event()
    passes = 400
    nap = 0.005

    def _train(self, space, observations):
        type(self).started.set()
        for _ in range(self.passes):
            self.note_pass()
            time.sleep(self.nap)

    def predict(self, observation):
        return CasePrediction()

    def content_nodes(self):
        return ContentNode("0", NODE_MODEL, "slow")


class SlowParallel(MiningAlgorithm):
    """Parallelizable slow service: partition workers sleep, so CANCEL lands
    between partition collections on the statement thread (and, if the pool
    falls back to serial, between note_pass iterations)."""

    SERVICE_NAME = "Test_Slow_Parallel"
    PARALLELIZABLE = True

    def _train(self, space, observations):
        for _ in range(30):
            self.note_pass()
            time.sleep(0.01)

    def merge(self, others):
        pass

    def predict(self, observation):
        return CasePrediction()

    def content_nodes(self):
        return ContentNode("0", NODE_MODEL, "slow")


@pytest.fixture
def slow_service():
    SlowIterative.started = threading.Event()
    register_algorithm(SlowIterative)
    yield SlowIterative
    unregister_algorithm(SlowIterative)


@pytest.fixture
def parallel_service():
    register_algorithm(SlowParallel)
    yield SlowParallel
    unregister_algorithm(SlowParallel)


def _seed(conn, service, rows=40):
    conn.execute("CREATE TABLE T (Id LONG, G TEXT)")
    conn.execute("INSERT INTO T VALUES " + ", ".join(
        f"({i}, '{'m' if i % 2 else 'f'}')" for i in range(1, rows + 1)))
    conn.execute(f"CREATE MINING MODEL M (Id LONG KEY, G TEXT DISCRETE) "
                 f"USING [{service.SERVICE_NAME}]")


def _train_in_background(conn):
    """Run the TRAIN statement on a worker thread, capturing its outcome."""
    outcome = {}

    def run():
        try:
            outcome["result"] = conn.execute(
                "INSERT INTO M (Id, G) SELECT Id, G FROM T")
        except BaseException as exc:
            outcome["error"] = exc

    thread = threading.Thread(target=run, name="trainer")
    thread.start()
    return thread, outcome


def _wait_for_train(provider, timeout=5.0, predicate=None):
    """Poll the workload registry until the TRAIN statement shows up."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for statement in provider.workload.active():
            if statement.kind == "TRAIN" and \
                    (predicate is None or predicate(statement)):
                return statement
        time.sleep(0.002)
    raise AssertionError("TRAIN statement never became visible")


def _assert_write_lock_free(model):
    acquired = threading.Event()

    def probe():
        with model.lock.write():
            acquired.set()

    thread = threading.Thread(target=probe)
    thread.start()
    thread.join(2.0)
    assert acquired.is_set(), "model write lock was not released"


class TestCancelMidTraining:
    def test_visible_with_advancing_progress_then_cancelled(self,
                                                            slow_service):
        conn = repro.connect()
        _seed(conn, slow_service)
        thread, outcome = _train_in_background(conn)
        try:
            assert slow_service.started.wait(5.0)
            # The statement is live in DM_ACTIVE_STATEMENTS, in the train
            # phase, and its progress counters advance between looks.
            rowset = conn.execute(
                "SELECT STATEMENT_ID, KIND, PHASE, BATCHES FROM "
                "$SYSTEM.DM_ACTIVE_STATEMENTS WHERE KIND = 'TRAIN'")
            assert len(rowset.rows) == 1
            statement_id, kind, phase, batches = rowset.rows[0]
            assert kind == "TRAIN"
            assert phase == "train"
            active = _wait_for_train(conn.provider,
                                     predicate=lambda s: s.batches > batches)
            assert active.statement_id == statement_id

            message = conn.execute(f"CANCEL {statement_id}")
            assert "cancel requested" in message
            thread.join(5.0)
            assert not thread.is_alive()
            assert isinstance(outcome.get("error"), CancelledError)
            # Stopped at an iteration boundary, not after all passes.
            assert active.batches < slow_service.passes
        finally:
            thread.join(5.0)
            conn.close()

    def test_model_unchanged_and_locks_released(self, slow_service):
        conn = repro.connect()
        _seed(conn, slow_service)
        thread, outcome = _train_in_background(conn)
        try:
            active = _wait_for_train(conn.provider,
                                     predicate=lambda s: s.phase == "train")
            conn.cancel(active.statement_id)
            thread.join(5.0)
            assert isinstance(outcome.get("error"), CancelledError)
            model = conn.model("M")
            assert not model.is_trained
            assert model.case_count == 0
            assert model.insert_count == 0
            _assert_write_lock_free(model)
            # The provider still executes statements normally afterwards.
            assert len(conn.execute("SELECT * FROM T").rows) == 40
        finally:
            thread.join(5.0)
            conn.close()

    def test_query_log_and_resources_record_cancelled_status(self,
                                                             slow_service):
        conn = repro.connect()
        _seed(conn, slow_service)
        thread, _ = _train_in_background(conn)
        try:
            active = _wait_for_train(conn.provider,
                                     predicate=lambda s: s.phase == "train")
            conn.cancel(active.statement_id)
            thread.join(5.0)
            log = conn.execute(
                f"SELECT STATUS, ERROR FROM $SYSTEM.DM_QUERY_LOG "
                f"WHERE STATEMENT_ID = {active.statement_id}")
            assert log.rows[0][0] == "cancelled"
            assert "CancelledError" in log.rows[0][1]
            resources = conn.execute(
                f"SELECT STATUS, CPU_MS FROM $SYSTEM.DM_STATEMENT_RESOURCES "
                f"WHERE STATEMENT_ID = {active.statement_id}")
            assert resources.rows[0][0] == "cancelled"
            assert resources.rows[0][1] >= 0.0
            cancelled = conn.execute(
                "SELECT VALUE FROM $SYSTEM.DM_PROVIDER_METRICS "
                "WHERE METRIC = 'statements.cancelled'")
            assert cancelled.rows[0][0] == 1.0
        finally:
            thread.join(5.0)
            conn.close()

    def test_cancelled_mutation_is_never_journaled(self, slow_service,
                                                   tmp_path):
        conn = repro.connect(durable_path=str(tmp_path / "store"))
        _seed(conn, slow_service)
        store = conn.provider.store
        seq_before = store.last_seq
        thread, outcome = _train_in_background(conn)
        try:
            active = _wait_for_train(conn.provider,
                                     predicate=lambda s: s.phase == "train")
            conn.cancel(active.statement_id)
            thread.join(5.0)
            assert isinstance(outcome.get("error"), CancelledError)
            assert store.last_seq == seq_before
            records, torn, _ = read_journal(store.journal_path)
            kinds = [record["kind"] for record in records]
            assert "TRAIN" not in kinds
            assert torn == 0
        finally:
            thread.join(5.0)
            conn.close()
        # Recovery of the same path replays cleanly: table + model exist,
        # model untrained — exactly the acknowledged history.
        reopened = repro.connect(durable_path=str(tmp_path / "store"))
        try:
            assert not reopened.model("M").is_trained
            assert len(reopened.execute("SELECT * FROM T").rows) == 40
        finally:
            reopened.close()


class TestCancelPartitionedTraining:
    @pytest.mark.parametrize("pool_mode", ["thread", "process"])
    def test_cancel_between_partitions(self, parallel_service, pool_mode):
        conn = repro.connect(max_workers=2, pool_mode=pool_mode)
        _seed(conn, parallel_service, rows=60)
        thread, outcome = _train_in_background(conn)
        try:
            active = _wait_for_train(conn.provider,
                                     predicate=lambda s: s.phase == "train")
            conn.cancel(active.statement_id)
            thread.join(10.0)
            assert not thread.is_alive()
            assert isinstance(outcome.get("error"), CancelledError)
            model = conn.model("M")
            assert not model.is_trained
            assert model.case_count == 0
            assert model.insert_count == 0
            _assert_write_lock_free(model)
            # Pool accounting survived the unwind: submitted tasks are all
            # accounted as completed, cancelled, or abandoned.
            values = {metric: value for metric, value in conn.execute(
                "SELECT METRIC, VALUE FROM $SYSTEM.DM_PROVIDER_METRICS "
                "WHERE METRIC LIKE 'pool.tasks%'").rows}
            submitted = values.get("pool.tasks_submitted", 0.0)
            accounted = (values.get("pool.tasks_completed", 0.0) +
                         values.get("pool.tasks_cancelled", 0.0) +
                         values.get("pool.tasks_abandoned", 0.0))
            assert submitted == accounted
        finally:
            thread.join(10.0)
            conn.close()


class TestCancelSurface:
    def test_cancel_unknown_id_lists_active_statements(self):
        conn = repro.connect()
        try:
            with pytest.raises(Error, match="no active statement"):
                conn.execute("CANCEL 12345")
            with pytest.raises(Error, match="DM_ACTIVE_STATEMENTS"):
                conn.cancel(54321)
        finally:
            conn.close()

    def test_cancel_requires_positive_integer(self):
        conn = repro.connect()
        try:
            with pytest.raises(Error, match="positive statement id"):
                conn.execute("CANCEL 0")
            with pytest.raises(Error, match="positive statement id"):
                conn.execute("CANCEL abc")
        finally:
            conn.close()

    def test_explain_cannot_wrap_cancel(self):
        conn = repro.connect()
        try:
            with pytest.raises(Error, match="cannot wrap the CANCEL"):
                conn.execute("EXPLAIN CANCEL 1")
        finally:
            conn.close()

    def test_cancel_round_trips_through_the_formatter(self):
        from repro.lang.formatter import format_statement
        from repro.lang.parser import parse_statement
        statement = parse_statement("cancel 42")
        assert statement.statement_id == 42
        assert format_statement(statement) == "CANCEL 42"
        assert parse_statement(
            format_statement(statement)).statement_id == 42

    def test_cancel_statement_is_logged(self):
        conn = repro.connect()
        try:
            with pytest.raises(Error):
                conn.execute("CANCEL 999")
            log = conn.execute(
                "SELECT KIND, STATUS FROM $SYSTEM.DM_QUERY_LOG")
            assert ("CANCEL", "error") in [tuple(row) for row in log.rows]
        finally:
            conn.close()


class TestEngineCheckpoint:
    def test_scan_loop_honors_a_pre_set_token(self):
        """A cancelled token stops the very next scan batch."""
        from repro.lang.parser import parse_statement
        from repro.obs import workload as obs_workload

        conn = repro.connect(batch_size=8)
        try:
            conn.execute("CREATE TABLE Big (Id LONG)")
            conn.execute("INSERT INTO Big VALUES " +
                         ", ".join(f"({i})" for i in range(64)))
            statement = obs_workload.ActiveStatement(999, "manual scan",
                                                     kind="SELECT")
            statement.token.cancel("test")
            previous = obs_workload.activate(statement)
            try:
                with pytest.raises(CancelledError):
                    conn.provider.database.execute_select(
                        parse_statement("SELECT * FROM Big"))
            finally:
                obs_workload.deactivate(previous)
            # At most one batch was admitted before the check fired.
            assert statement.rows_processed <= 8
        finally:
            conn.close()
