"""WITH MAXDOP: parse, format round-trip, and error surface."""

import pytest

from repro.errors import ParseError
from repro.lang.formatter import format_statement
from repro.lang.parser import parse_statement


class TestParse:
    def test_select_with_maxdop(self):
        statement = parse_statement("SELECT a FROM T WITH MAXDOP 4")
        assert statement.maxdop == 4

    def test_select_without_maxdop_defaults_none(self):
        assert parse_statement("SELECT a FROM T").maxdop is None

    def test_prediction_join_with_maxdop(self):
        statement = parse_statement(
            "SELECT t.Id, M.G FROM M NATURAL PREDICTION JOIN "
            "(SELECT Id FROM C) AS t WITH MAXDOP 2")
        assert statement.maxdop == 2

    def test_training_insert_with_maxdop(self):
        # A flat binding list parses as a table insert and is re-dispatched
        # by the provider when the target is a model; MAXDOP rides on the
        # SELECT source.
        statement = parse_statement(
            "INSERT INTO M (Id, G) SELECT Id, G FROM C WITH MAXDOP 8")
        assert statement.select.maxdop == 8

    def test_shape_training_insert_with_maxdop(self):
        statement = parse_statement(
            "INSERT INTO M (Id, B(P)) "
            "SHAPE {SELECT Id FROM C ORDER BY Id} "
            "APPEND ({SELECT Cid, P FROM S ORDER BY Cid} "
            "RELATE Id TO Cid) AS B WITH MAXDOP 3")
        assert statement.maxdop == 3

    def test_maxdop_zero_means_provider_default(self):
        assert parse_statement("SELECT a FROM T WITH MAXDOP 0").maxdop == 0


class TestErrors:
    @pytest.mark.parametrize("suffix", [
        "WITH MAXDOP",          # missing the degree
        "WITH MAXDOP -1",       # negative
        "WITH MAXDOP two",      # not an integer
        "WITH MAXDOP 2.5",      # not an integer
        "WITH PARALLELISM 2",   # unknown option
    ])
    def test_malformed_option_raises_parse_error(self, suffix):
        with pytest.raises(ParseError):
            parse_statement(f"SELECT a FROM T {suffix}")


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        "SELECT a FROM T WITH MAXDOP 4",
        "SELECT t.Id, M.G FROM M NATURAL PREDICTION JOIN "
        "(SELECT Id FROM C) AS t WITH MAXDOP 2",
        "INSERT INTO M (Id, G) SELECT Id, G FROM C WITH MAXDOP 8",
    ])
    def test_format_then_reparse_preserves_maxdop(self, text):
        statement = parse_statement(text)
        formatted = format_statement(statement)
        assert "MAXDOP" in formatted
        reparsed = parse_statement(formatted)

        def dop(node):
            for candidate in (node, getattr(node, "source", None),
                              getattr(node, "select", None)):
                value = getattr(candidate, "maxdop", None)
                if value is not None:
                    return value
            return None

        assert dop(reparsed) == dop(statement)

    def test_format_omits_maxdop_when_unset(self):
        statement = parse_statement("SELECT a FROM T")
        assert "MAXDOP" not in format_statement(statement)
