"""Partition-merge building blocks: chunks, statistics merges, protocol."""

import random

import pytest

from repro.errors import CapabilityError, SchemaError
from repro.algorithms.base import MiningAlgorithm
from repro.algorithms.naive_bayes import NaiveBayesAlgorithm
from repro.algorithms.registry import (
    algorithm_services,
    register_algorithm,
    unregister_algorithm,
)
from repro.algorithms.statistics import CategoricalDistribution, GaussianStats
from repro.exec.partition import contiguous_chunks


class TestContiguousChunks:
    def test_concatenation_reproduces_the_original(self):
        items = list(range(23))
        for parts in (1, 2, 3, 7, 23, 50):
            chunks = contiguous_chunks(items, parts)
            assert [x for chunk in chunks for x in chunk] == items
            assert len(chunks) <= parts

    def test_chunk_sizes_are_ceiling_division(self):
        chunks = contiguous_chunks(list(range(10)), 3)
        assert [len(chunk) for chunk in chunks] == [4, 4, 2]

    def test_fewer_items_than_parts(self):
        chunks = contiguous_chunks([1, 2], 7)
        assert chunks == [[1], [2]]

    def test_single_part(self):
        assert contiguous_chunks([1, 2, 3], 1) == [[1, 2, 3]]


class TestCategoricalMerge:
    def test_merge_equals_serial_replay_exactly(self):
        rng = random.Random(11)
        values = [rng.choice("abcd") for _ in range(200)]
        serial = CategoricalDistribution()
        for value in values:
            serial.add(value)
        left, right = CategoricalDistribution(), CategoricalDistribution()
        for value in values[:77]:
            left.add(value)
        for value in values[77:]:
            right.add(value)
        left.merge(right)
        # Unit weights are exact float sums: equality, not approx.
        assert left.counts == serial.counts
        assert left.total == serial.total

    def test_merge_preserves_first_encounter_order(self):
        """Dict order drives content-rowset order, so merge must keep it."""
        left, right = CategoricalDistribution(), CategoricalDistribution()
        for value in ("b", "a"):
            left.add(value)
        for value in ("c", "a", "d"):
            right.add(value)
        left.merge(right)
        assert list(left.counts) == ["b", "a", "c", "d"]


class TestGaussianMerge:
    def test_merge_matches_serial_replay(self):
        rng = random.Random(5)
        values = [rng.gauss(10.0, 3.0) for _ in range(500)]
        serial = GaussianStats()
        for value in values:
            serial.add(value)
        left, right = GaussianStats(), GaussianStats()
        for value in values[:200]:
            left.add(value)
        for value in values[200:]:
            right.add(value)
        left.merge(right)
        assert left.sum_weight == serial.sum_weight
        assert left.mean == pytest.approx(serial.mean, rel=1e-12)
        assert left.variance == pytest.approx(serial.variance, rel=1e-9)
        assert left.minimum == serial.minimum
        assert left.maximum == serial.maximum

    def test_merge_into_empty_copies(self):
        source = GaussianStats()
        for value in (1.0, 2.0, 3.0):
            source.add(value)
        target = GaussianStats()
        target.merge(source)
        assert target.mean == source.mean
        assert target.variance == source.variance
        assert (target.minimum, target.maximum) == (1.0, 3.0)

    def test_merge_of_empty_is_a_no_op(self):
        target = GaussianStats()
        target.add(4.0)
        before = (target.sum_weight, target.mean, target.variance)
        target.merge(GaussianStats())
        assert (target.sum_weight, target.mean, target.variance) == before


class TestMergeProtocol:
    def test_only_naive_bayes_declares_parallelizable(self):
        flags = {cls.SERVICE_NAME: cls.PARALLELIZABLE
                 for cls in algorithm_services()}
        assert flags.pop("Repro_Naive_Bayes") is True
        assert not any(flags.values()), (
            f"a service became parallelizable: cover it in the parallel "
            f"differential grid ({flags})")

    def test_base_merge_refuses(self):
        class Opaque(MiningAlgorithm):
            SERVICE_NAME = "Opaque_Test_Service"

            def _train(self, space, observations):
                pass

            def predict(self, observation):
                pass

            def content_nodes(self):
                pass

        with pytest.raises(CapabilityError):
            Opaque({}).merge([])

    def test_registry_rejects_parallelizable_without_merge(self):
        class Liar(MiningAlgorithm):
            SERVICE_NAME = "Liar_Test_Service"
            PARALLELIZABLE = True

        with pytest.raises(SchemaError):
            register_algorithm(Liar)

    def test_registry_accepts_parallelizable_with_merge(self):
        class Honest(MiningAlgorithm):
            SERVICE_NAME = "Honest_Test_Service"
            PARALLELIZABLE = True

            def merge(self, others):
                pass

        register_algorithm(Honest)
        try:
            assert any(cls.SERVICE_NAME == "Honest_Test_Service"
                       for cls in algorithm_services())
        finally:
            unregister_algorithm(Honest)

    def test_naive_bayes_gate_rejects_continuous_spaces(self):
        """can_parallelize is the exactness gate, probed end to end in the
        differential suite; here just pin the flag wiring."""
        assert NaiveBayesAlgorithm.PARALLELIZABLE is True
        assert "SUPPORTS_PARALLEL_TRAINING" in \
            NaiveBayesAlgorithm({}).describe()
