"""WorkerPool unit tests: ordering, accounting, life cycle, MAXDOP."""

import multiprocessing
import threading
import time

import pytest

from repro.errors import Error
from repro.exec.pool import WorkerPool, resolve_mode
from repro.obs.metrics import MetricsRegistry

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _square(x):
    return x * x


def _jittered_square(x):
    # Later payloads finish first: ordering must come from the pool, not
    # from completion time.
    time.sleep(0.03 if x < 4 else 0.001)
    return x * x


def _boom(x):
    if x == 5:
        raise ValueError("payload five")
    return x


class TestModeResolution:
    def test_serial_thread_process_pass_through(self):
        assert resolve_mode("serial") == "serial"
        assert resolve_mode("thread") == "thread"
        assert resolve_mode("THREAD") == "thread"

    def test_auto_resolves_to_a_concrete_transport(self):
        assert resolve_mode("auto") in ("process", "thread")
        assert resolve_mode(None) in ("process", "thread")

    def test_unknown_mode_is_the_packages_own_error(self):
        with pytest.raises(Error):
            resolve_mode("fibers")


class TestEffectiveDop:
    def test_none_and_zero_mean_the_configured_maximum(self):
        pool = WorkerPool(max_workers=6, mode="thread")
        assert pool.effective_dop(None) == 6
        assert pool.effective_dop(0) == 6

    def test_maxdop_can_only_lower_the_ceiling(self):
        pool = WorkerPool(max_workers=4, mode="thread")
        assert pool.effective_dop(2) == 2
        assert pool.effective_dop(99) == 4
        assert pool.effective_dop(1) == 1

    def test_serial_mode_always_answers_one(self):
        pool = WorkerPool(max_workers=8, mode="serial")
        assert pool.effective_dop(None) == 1
        assert pool.effective_dop(5) == 1


class TestMapOrdered:
    def test_results_arrive_in_submission_order(self):
        pool = WorkerPool(max_workers=4, mode="thread")
        try:
            results = pool.run_all(_jittered_square, list(range(8)), dop=4)
            assert results == [x * x for x in range(8)]
        finally:
            pool.shutdown()

    def test_dop_one_runs_inline_without_an_executor(self):
        pool = WorkerPool(max_workers=4, mode="thread")
        assert pool.run_all(_square, [1, 2, 3], dop=1) == [1, 4, 9]
        assert pool._executor is None

    def test_task_ledger_balances_after_a_full_run(self):
        metrics = MetricsRegistry()
        pool = WorkerPool(max_workers=3, mode="thread", metrics=metrics)
        try:
            pool.run_all(_square, list(range(10)), dop=3)
        finally:
            pool.shutdown()
        assert metrics.value("pool.tasks_submitted") == 10
        assert metrics.value("pool.tasks_completed") == 10
        assert metrics.value("pool.tasks_cancelled") == 0
        assert metrics.value("pool.tasks_abandoned") == 0

    def test_abandoned_generator_accounts_for_every_task(self):
        metrics = MetricsRegistry()
        pool = WorkerPool(max_workers=2, mode="thread", metrics=metrics)
        try:
            iterator = pool.map_ordered(_jittered_square, list(range(20)),
                                        dop=2)
            assert next(iterator) == 0
            iterator.close()  # early exit: TOP or a consumer error
        finally:
            pool.shutdown()
        submitted = metrics.value("pool.tasks_submitted")
        accounted = (metrics.value("pool.tasks_completed")
                     + metrics.value("pool.tasks_cancelled")
                     + metrics.value("pool.tasks_abandoned"))
        assert submitted == accounted
        assert submitted < 20  # the window bounded what was in flight

    def test_exceptions_reraise_in_submission_order(self):
        pool = WorkerPool(max_workers=4, mode="thread")
        try:
            collected = []
            with pytest.raises(ValueError, match="payload five"):
                for value in pool.map_ordered(_boom, list(range(10)), dop=4):
                    collected.append(value)
            # Everything before the failing payload was yielded, exactly as
            # the serial loop would have.
            assert collected == [0, 1, 2, 3, 4]
        finally:
            pool.shutdown()

    def test_lazy_consumption_keeps_a_bounded_window(self):
        pool = WorkerPool(max_workers=2, mode="thread")
        try:
            started = []
            lock = threading.Lock()

            def tracked(x):
                with lock:
                    started.append(x)
                return x

            iterator = pool.map_ordered(tracked, list(range(50)), dop=2)
            next(iterator)
            time.sleep(0.05)
            # window = dop * window_factor = 4 (+1 already collected).
            assert len(started) <= 6
            iterator.close()
        finally:
            pool.shutdown()


class TestLifeCycle:
    def test_shutdown_is_idempotent_and_pool_revives(self):
        metrics = MetricsRegistry()
        pool = WorkerPool(max_workers=2, mode="thread", metrics=metrics)
        assert pool.run_all(_square, [2, 3], dop=2) == [4, 9]
        assert metrics.value("pool.workers_live") == 2
        pool.shutdown()
        pool.shutdown()
        assert metrics.value("pool.workers_live") == 0
        # A closed pool lazily builds a fresh executor on the next use.
        assert pool.run_all(_square, [4], dop=2) == [16]
        assert metrics.value("pool.workers_live") == 2
        pool.shutdown()

    def test_gauges_published_at_construction(self):
        metrics = MetricsRegistry()
        WorkerPool(max_workers=5, mode="thread", metrics=metrics)
        assert metrics.value("pool.max_workers") == 5
        assert metrics.value("pool.workers_live") == 0

    def test_serial_fallback_notes_reason(self):
        metrics = MetricsRegistry()
        pool = WorkerPool(max_workers=4, mode="thread", metrics=metrics)
        pool.note_serial_fallback("algorithm")
        pool.note_serial_fallback("algorithm")
        pool.note_serial_fallback("pickle")
        assert metrics.value("pool.serial_fallbacks") == 3
        assert metrics.value("pool.serial_fallbacks.algorithm") == 2
        assert metrics.value("pool.serial_fallbacks.pickle") == 1


@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
class TestProcessMode:
    def test_process_pool_preserves_order_and_ledger(self):
        metrics = MetricsRegistry()
        pool = WorkerPool(max_workers=2, mode="process", metrics=metrics)
        try:
            assert pool.run_all(_square, list(range(6)), dop=2) == \
                [x * x for x in range(6)]
        finally:
            pool.shutdown()
        assert metrics.value("pool.tasks_submitted") == 6
        assert metrics.value("pool.tasks_completed") == 6
