"""Aggregate accumulators, directly (COUNT/SUM/AVG/MIN/MAX/STDEV/VAR)."""

import math

import pytest

from repro.errors import BindError
from repro.sqlstore.functions import (
    AvgAgg,
    CountAgg,
    MaxAgg,
    MinAgg,
    SumAgg,
    VarAgg,
    make_aggregate,
)


class TestCount:
    def test_count_values_skips_nulls(self):
        agg = CountAgg()
        for value in (1, None, 2, None):
            agg.add(value)
        assert agg.result() == 2

    def test_count_star_counts_everything(self):
        agg = CountAgg(count_rows=True)
        for value in (1, None, 2):
            agg.add(value)
        assert agg.result() == 3

    def test_count_distinct(self):
        agg = CountAgg(distinct=True)
        for value in ("a", "b", "a", None, "b"):
            agg.add(value)
        assert agg.result() == 2


class TestNumericAggregates:
    def test_sum_empty_is_null(self):
        assert SumAgg().result() is None

    def test_sum_all_nulls_is_null(self):
        agg = SumAgg()
        agg.add(None)
        assert agg.result() is None

    def test_avg(self):
        agg = AvgAgg()
        for value in (1.0, None, 3.0):
            agg.add(value)
        assert agg.result() == 2.0

    def test_avg_empty_is_null(self):
        assert AvgAgg().result() is None

    def test_min_max(self):
        low, high = MinAgg(), MaxAgg()
        for value in (3, None, 1, 2):
            low.add(value)
            high.add(value)
        assert low.result() == 1
        assert high.result() == 3

    def test_min_max_on_strings(self):
        low = MinAgg()
        for value in ("pear", "apple", "mango"):
            low.add(value)
        assert low.result() == "apple"

    def test_var_matches_sample_formula(self):
        agg = VarAgg()
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for value in values:
            agg.add(value)
        mean = sum(values) / len(values)
        expected = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert agg.result() == pytest.approx(expected)

    def test_stdev_is_sqrt_of_var(self):
        var, stdev = VarAgg(), VarAgg(stdev=True)
        for value in (1.0, 5.0, 9.0):
            var.add(value)
            stdev.add(value)
        assert stdev.result() == pytest.approx(math.sqrt(var.result()))

    def test_var_needs_two_values(self):
        agg = VarAgg()
        agg.add(1.0)
        assert agg.result() is None


class TestFactory:
    def test_factory_names(self):
        for name in ("COUNT", "SUM", "AVG", "MIN", "MAX", "STDEV", "VAR"):
            assert make_aggregate(name) is not None

    def test_factory_case_insensitive(self):
        assert isinstance(make_aggregate("avg"), AvgAgg)

    def test_unknown_aggregate(self):
        with pytest.raises(BindError):
            make_aggregate("MEDIAN")
