"""The relational engine: SELECT, joins, grouping, DML, views."""

import pytest

from repro.errors import BindError, CatalogError, Error, SchemaError
from repro.sqlstore import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE Customers ([Customer ID] LONG PRIMARY "
                     "KEY, Gender TEXT, Age DOUBLE)")
    database.execute("INSERT INTO Customers VALUES "
                     "(1, 'Male', 35.0), (2, 'Female', 28.0), "
                     "(3, 'Male', NULL), (4, 'Female', 52.0)")
    database.execute("CREATE TABLE Sales (CustID LONG, Product TEXT, "
                     "Quantity DOUBLE)")
    database.execute("INSERT INTO Sales VALUES "
                     "(1, 'TV', 1.0), (1, 'Beer', 6.0), (2, 'Ham', 2.0), "
                     "(4, 'Wine', 3.0), (4, 'TV', 1.0)")
    return database


class TestSelectBasics:
    def test_select_star(self, db):
        rowset = db.execute("SELECT * FROM Customers")
        assert len(rowset) == 4
        assert rowset.column_names() == ["Customer ID", "Gender", "Age"]

    def test_projection_and_alias(self, db):
        rowset = db.execute(
            "SELECT [Customer ID] AS id, Age * 2 AS doubled FROM Customers "
            "WHERE [Customer ID] = 1")
        assert rowset.column_names() == ["id", "doubled"]
        assert rowset.rows == [(1, 70.0)]

    def test_where_null_never_matches(self, db):
        rowset = db.execute("SELECT * FROM Customers WHERE Age > 0")
        assert len(rowset) == 3  # customer 3 (NULL age) excluded

    def test_where_is_null(self, db):
        rowset = db.execute(
            "SELECT [Customer ID] FROM Customers WHERE Age IS NULL")
        assert rowset.rows == [(3,)]

    def test_order_by_nulls_first_asc(self, db):
        rowset = db.execute("SELECT Age FROM Customers ORDER BY Age")
        assert rowset.column_values("Age") == [None, 28.0, 35.0, 52.0]

    def test_order_by_desc(self, db):
        rowset = db.execute(
            "SELECT [Customer ID] FROM Customers ORDER BY Age DESC")
        assert rowset.column_values("Customer ID") == [4, 1, 2, 3]

    def test_multi_key_order(self, db):
        rowset = db.execute("SELECT Gender, [Customer ID] FROM Customers "
                            "ORDER BY Gender, [Customer ID] DESC")
        assert rowset.rows == [("Female", 4), ("Female", 2),
                               ("Male", 3), ("Male", 1)]

    def test_order_by_expression(self, db):
        rowset = db.execute("SELECT [Customer ID] FROM Customers "
                            "WHERE Age IS NOT NULL ORDER BY Age * -1")
        assert rowset.column_values("Customer ID") == [4, 1, 2]

    def test_top(self, db):
        rowset = db.execute("SELECT TOP 2 [Customer ID] FROM Customers "
                            "ORDER BY [Customer ID]")
        assert rowset.rows == [(1,), (2,)]

    def test_distinct(self, db):
        rowset = db.execute("SELECT DISTINCT Gender FROM Customers")
        assert sorted(rowset.column_values("Gender")) == ["Female", "Male"]

    def test_select_without_from(self, db):
        rowset = db.execute("SELECT 1 + 1 AS two, 'x' AS s")
        assert rowset.rows == [(2, "x")]

    def test_qualified_star(self, db):
        rowset = db.execute(
            "SELECT c.* FROM Customers c JOIN Sales s "
            "ON c.[Customer ID] = s.CustID WHERE s.Product = 'TV'")
        assert rowset.column_names() == ["Customer ID", "Gender", "Age"]
        assert len(rowset) == 2


class TestJoins:
    def test_inner_join(self, db):
        rowset = db.execute(
            "SELECT c.[Customer ID], s.Product FROM Customers c "
            "JOIN Sales s ON c.[Customer ID] = s.CustID "
            "ORDER BY c.[Customer ID], s.Product")
        assert rowset.rows == [(1, "Beer"), (1, "TV"), (2, "Ham"),
                               (4, "TV"), (4, "Wine")]

    def test_left_join_pads_nulls(self, db):
        rowset = db.execute(
            "SELECT c.[Customer ID], s.Product FROM Customers c "
            "LEFT JOIN Sales s ON c.[Customer ID] = s.CustID "
            "WHERE c.[Customer ID] = 3")
        assert rowset.rows == [(3, None)]

    def test_left_join_with_residual_predicate(self, db):
        rowset = db.execute(
            "SELECT c.[Customer ID], s.Product FROM Customers c "
            "LEFT JOIN Sales s ON c.[Customer ID] = s.CustID "
            "AND s.Quantity > 2 ORDER BY c.[Customer ID]")
        assert rowset.rows == [(1, "Beer"), (2, None), (3, None),
                               (4, "Wine")]

    def test_cross_join(self, db):
        rowset = db.execute(
            "SELECT COUNT(*) FROM Customers CROSS JOIN Sales")
        assert rowset.single_value() == 20

    def test_implicit_cross_join_comma(self, db):
        rowset = db.execute(
            "SELECT COUNT(*) FROM Customers, Sales")
        assert rowset.single_value() == 20

    def test_non_equi_join_falls_back_to_nested_loop(self, db):
        rowset = db.execute(
            "SELECT COUNT(*) FROM Customers c JOIN Sales s "
            "ON c.[Customer ID] < s.CustID")
        # pairs: (1, s2) (1, s4x2) (2, s4x2) (3, s4x2) = 1+2+2+2 = 7... compute
        assert rowset.single_value() == 7

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE Regions (CustID LONG, Region TEXT)")
        db.execute("INSERT INTO Regions VALUES (1, 'West'), (2, 'East')")
        rowset = db.execute(
            "SELECT c.[Customer ID], s.Product, r.Region FROM Customers c "
            "JOIN Sales s ON c.[Customer ID] = s.CustID "
            "JOIN Regions r ON c.[Customer ID] = r.CustID "
            "ORDER BY c.[Customer ID], s.Product")
        assert rowset.rows == [(1, "Beer", "West"), (1, "TV", "West"),
                               (2, "Ham", "East")]

    def test_subquery_source(self, db):
        rowset = db.execute(
            "SELECT t.Product FROM (SELECT Product, Quantity FROM Sales "
            "WHERE Quantity > 2) AS t ORDER BY t.Product")
        assert rowset.column_values("Product") == ["Beer", "Wine"]


class TestGrouping:
    def test_group_by_with_aggregates(self, db):
        rowset = db.execute(
            "SELECT Gender, COUNT(*) AS n, AVG(Age) AS avg_age "
            "FROM Customers GROUP BY Gender ORDER BY Gender")
        assert rowset.rows == [("Female", 2, 40.0), ("Male", 2, 35.0)]

    def test_count_ignores_nulls_but_star_does_not(self, db):
        rowset = db.execute(
            "SELECT COUNT(*) AS rows, COUNT(Age) AS ages FROM Customers")
        assert rowset.rows == [(4, 3)]

    def test_count_distinct(self, db):
        rowset = db.execute(
            "SELECT COUNT(DISTINCT Product) FROM Sales")
        assert rowset.single_value() == 4

    def test_sum_min_max(self, db):
        rowset = db.execute(
            "SELECT SUM(Quantity), MIN(Quantity), MAX(Quantity) FROM Sales")
        assert rowset.rows == [(13.0, 1.0, 6.0)]

    def test_stdev_var(self, db):
        rowset = db.execute("SELECT VAR(Quantity) FROM Sales")
        assert rowset.single_value() == pytest.approx(4.3, abs=0.01)

    def test_having(self, db):
        rowset = db.execute(
            "SELECT CustID, COUNT(*) AS n FROM Sales GROUP BY CustID "
            "HAVING COUNT(*) > 1 ORDER BY CustID")
        assert rowset.rows == [(1, 2), (4, 2)]

    def test_aggregate_without_group_by_on_empty_input(self, db):
        rowset = db.execute(
            "SELECT COUNT(*), SUM(Quantity) FROM Sales WHERE CustID = 99")
        assert rowset.rows == [(0, None)]

    def test_group_order_by_aggregate(self, db):
        rowset = db.execute(
            "SELECT CustID, SUM(Quantity) AS total FROM Sales "
            "GROUP BY CustID ORDER BY SUM(Quantity) DESC")
        assert rowset.column_values("CustID") == [1, 4, 2]

    def test_aggregate_expression(self, db):
        rowset = db.execute(
            "SELECT SUM(Quantity) / COUNT(*) AS mean FROM Sales")
        assert rowset.single_value() == pytest.approx(13.0 / 5)


class TestDml:
    def test_update(self, db):
        count = db.execute("UPDATE Customers SET Age = 30.0 "
                           "WHERE Gender = 'Male'")
        assert count == 2
        rowset = db.execute("SELECT Age FROM Customers WHERE Gender = "
                            "'Male'")
        assert rowset.column_values("Age") == [30.0, 30.0]

    def test_delete_where(self, db):
        count = db.execute("DELETE FROM Sales WHERE Quantity >= 3")
        assert count == 2
        assert db.execute("SELECT COUNT(*) FROM Sales").single_value() == 3

    def test_delete_all(self, db):
        count = db.execute("DELETE FROM Sales")
        assert count == 5

    def test_insert_select(self, db):
        db.execute("CREATE TABLE Archive (CustID LONG, Product TEXT, "
                   "Quantity DOUBLE)")
        count = db.execute("INSERT INTO Archive SELECT * FROM Sales")
        assert count == 5

    def test_insert_partial_columns(self, db):
        db.execute("INSERT INTO Sales (CustID, Product) VALUES (9, 'Gum')")
        rowset = db.execute("SELECT Quantity FROM Sales WHERE CustID = 9")
        assert rowset.single_value() is None

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(SchemaError):
            db.execute("INSERT INTO Sales (CustID) VALUES (9, 'Gum')")


class TestCatalog:
    def test_duplicate_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE Customers (x LONG)")

    def test_drop_table(self, db):
        db.execute("DROP TABLE Sales")
        with pytest.raises(BindError):
            db.execute("SELECT * FROM Sales")

    def test_drop_missing_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE Nope")
        db.execute("DROP TABLE IF EXISTS Nope")  # no raise

    def test_views_expand_at_query_time(self, db):
        db.execute("CREATE VIEW Men AS SELECT * FROM Customers "
                   "WHERE Gender = 'Male'")
        assert db.execute("SELECT COUNT(*) FROM Men").single_value() == 2
        db.execute("INSERT INTO Customers VALUES (5, 'Male', 61.0)")
        assert db.execute("SELECT COUNT(*) FROM Men").single_value() == 3

    def test_view_name_conflicts(self, db):
        db.execute("CREATE VIEW V AS SELECT * FROM Sales")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE V (x LONG)")

    def test_unknown_table(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT * FROM Missing")

    def test_dmx_statement_without_provider(self, db):
        with pytest.raises(Error):
            db.execute("DROP MINING MODEL m")


class TestDistinctOrderInteraction:
    def test_distinct_then_order_by_source_expression(self, db):
        db.execute("CREATE TABLE Words (g TEXT)")
        db.execute("INSERT INTO Words VALUES ('bbb'), ('a'), ('bbb'), "
                   "('cc'), ('a')")
        rowset = db.execute(
            "SELECT DISTINCT g FROM Words ORDER BY LENGTH(g)")
        assert rowset.rows == [("a",), ("cc",), ("bbb",)]

    def test_distinct_order_by_output_column(self, db):
        rowset = db.execute(
            "SELECT DISTINCT Gender FROM Customers ORDER BY Gender DESC")
        assert rowset.column_values("Gender") == ["Male", "Female"]

    def test_distinct_with_top(self, db):
        rowset = db.execute(
            "SELECT DISTINCT TOP 1 Gender FROM Customers ORDER BY Gender")
        assert rowset.rows == [("Female",)]


class TestViewRecursion:
    def test_self_referencing_view_fails_cleanly(self, db):
        # The name is not yet defined at CREATE VIEW time, so creation
        # succeeds; querying must fail with a provider error, not a
        # RecursionError.
        db.execute("CREATE VIEW Loop AS SELECT * FROM Loop")
        with pytest.raises(Error, match="recursive"):
            db.execute("SELECT * FROM Loop")

    def test_mutually_recursive_views_fail_cleanly(self, db):
        db.execute("CREATE VIEW A2 AS SELECT * FROM B2")
        db.execute("CREATE VIEW B2 AS SELECT * FROM A2")
        with pytest.raises(Error, match="recursive"):
            db.execute("SELECT * FROM A2")

    def test_deep_but_finite_view_chain_works(self, db):
        db.execute("CREATE VIEW V0 AS SELECT Gender FROM Customers")
        for i in range(1, 10):
            db.execute(f"CREATE VIEW V{i} AS SELECT * FROM V{i - 1}")
        assert len(db.execute("SELECT * FROM V9")) == 4


class TestUnion:
    def test_union_dedups(self, db):
        rowset = db.execute(
            "SELECT Gender FROM Customers UNION SELECT Gender FROM "
            "Customers")
        assert sorted(rowset.column_values("Gender")) == ["Female", "Male"]

    def test_union_all_keeps_duplicates(self, db):
        rowset = db.execute(
            "SELECT Gender FROM Customers UNION ALL SELECT Gender FROM "
            "Customers")
        assert len(rowset) == 8

    def test_left_associative_mixed_semantics(self, db):
        db.execute("CREATE TABLE U1 (x LONG)")
        db.execute("INSERT INTO U1 VALUES (1), (1)")
        db.execute("CREATE TABLE U2 (x LONG)")
        db.execute("INSERT INTO U2 VALUES (1), (1)")
        # (U1 UNION U1) dedups to {1}; then UNION ALL U2 appends both 1s.
        rowset = db.execute("SELECT x FROM U1 UNION SELECT x FROM U1 "
                            "UNION ALL SELECT x FROM U2")
        assert len(rowset) == 3

    def test_width_mismatch_rejected(self, db):
        with pytest.raises(SchemaError):
            db.execute("SELECT Gender FROM Customers UNION "
                       "SELECT Gender, Age FROM Customers")

    def test_first_branch_names_columns(self, db):
        rowset = db.execute(
            "SELECT Gender AS g FROM Customers UNION "
            "SELECT Product FROM Sales")
        assert rowset.column_names() == ["g"]

    def test_union_of_literals(self, db):
        rowset = db.execute("SELECT 1 AS n UNION SELECT 2 UNION SELECT 1")
        assert sorted(rowset.column_values("n")) == [1, 2]

    def test_union_through_provider_with_model_content(self):
        import repro
        conn = repro.connect()
        conn.execute("CREATE TABLE T (Id LONG, G TEXT, L TEXT)")
        conn.execute("INSERT INTO T VALUES (1,'a','x'), (2,'b','y')")
        conn.execute("CREATE MINING MODEL M (Id LONG KEY, G TEXT "
                     "DISCRETE, L TEXT DISCRETE PREDICT) "
                     "USING Repro_Naive_Bayes")
        conn.execute("INSERT INTO M SELECT Id, G, L FROM T")
        rowset = conn.execute(
            "SELECT NODE_CAPTION FROM M.CONTENT "
            "WHERE NODE_UNIQUE_NAME = '0' "
            "UNION SELECT G FROM T")
        assert len(rowset) == 3
