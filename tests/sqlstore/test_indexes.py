"""Secondary indexes: sargability rules, seek correctness, EXPLAIN flip."""

import math

import pytest

import repro
from repro.errors import Error
from repro.lang.parser import parse_statement
from repro.obs.explain import is_plan_rowset
from repro.sqlstore.indexes import choose_index
from repro.sqlstore.schema import ColumnSchema, TableSchema
from repro.sqlstore.table import Table
from repro.sqlstore.types import BOOLEAN, DATE, DOUBLE, LONG, TEXT


def _table(rows, extra=()):
    schema = TableSchema("T", [ColumnSchema("id", LONG),
                               ColumnSchema("name", TEXT),
                               ColumnSchema("score", DOUBLE),
                               ColumnSchema("flag", BOOLEAN),
                               ColumnSchema("seen", DATE)] + list(extra))
    table = Table(schema)
    for row in rows:
        table.insert(list(row))
    return table


ROWS = [
    (3, "carol", 9.5, True, None),
    (1, "alice", 2.0, False, None),
    (2, "bob", 9.5, None, None),
    (1, "alice", 7.0, True, None),
    (None, None, None, None, None),
]


def _where(condition):
    return parse_statement(f"SELECT * FROM T WHERE {condition}").where


def _choice(table, condition):
    return choose_index(_where(condition), table, "T")


@pytest.fixture
def indexed():
    table = _table(ROWS)
    for name, column in [("IX_ID", "id"), ("IX_NAME", "name"),
                         ("IX_SCORE", "score"), ("IX_FLAG", "flag"),
                         ("IX_SEEN", "seen")]:
        table.create_index(name, column)
    return table


# -- structure -----------------------------------------------------------------

def test_index_kinds_by_type(indexed):
    kinds = {name: index.kind for name, index in indexed.indexes.items()}
    assert kinds["IX_ID"] == "hash+sorted"
    assert kinds["IX_NAME"] == "hash+sorted"
    assert kinds["IX_SCORE"] == "hash+sorted"
    assert kinds["IX_FLAG"] == "hash"       # BOOLEAN: no total order
    assert kinds["IX_SEEN"] == "hash"       # DATE: never range-seeks


def test_entries_and_keys_count_rows_and_distinct_values(indexed):
    index = indexed.indexes["IX_NAME"]
    assert index.entries == 5               # every row, NULLs included
    assert index.keys == 4                  # carol/alice/bob/NULL


# -- seek positions are always ascending ---------------------------------------

def test_point_positions_ascending(indexed):
    assert indexed.indexes["IX_ID"].positions_equal(1) == [1, 3]


def test_in_positions_dedup_and_sort(indexed):
    index = indexed.indexes["IX_ID"]
    assert index.positions_in([3, 1, 3, 2]) == [0, 1, 2, 3]


def test_range_positions_inclusive_and_ascending(indexed):
    index = indexed.indexes["IX_SCORE"]
    assert index.positions_range(7.0, 9.5) == [0, 2, 3]
    assert index.positions_range(None, 2.0) == [1]
    assert index.positions_range(9.5, None) == [0, 2]
    # NULL cells never enter the ordered run.
    assert index.positions_range(None, None) == [0, 1, 2, 3]


# -- sargability: what refuses to seek -----------------------------------------

@pytest.mark.parametrize("condition", [
    "id = 'five'",          # str literal on LONG: string-compare semantics
    "id = TRUE",            # bool literal on LONG: group_key splits them
    "name = 5",             # number literal on TEXT
    "id = NULL",            # NULL never matches by index
    "name > 'a' OR id = 1", # OR is not a conjunct
    "id = name",            # no literal side
    "id NOT IN (1, 2)",     # negated IN
    "id NOT BETWEEN 1 AND 2",
    "flag > TRUE",          # BOOLEAN is equality-only
    "flag BETWEEN FALSE AND TRUE",
    "seen = '2020-01-01'",  # DATE columns never seek from literals
    "id + 1 = 2",           # computed left side
    "id IN (1, name)",      # non-literal member poisons the whole IN
])
def test_unsargable_conditions_fall_back_to_scan(indexed, condition):
    assert _choice(indexed, condition) is None


def test_point_in_and_range_are_sargable(indexed):
    assert _choice(indexed, "id = 1").access == "point"
    assert _choice(indexed, "id IN (1, 3)").access == "in"
    assert _choice(indexed, "id > 1").access == "range"
    assert _choice(indexed, "id BETWEEN 1 AND 2").access == "range"
    assert _choice(indexed, "flag = TRUE").access == "point"


def test_literal_on_left_mirrors_the_operator(indexed):
    choice = _choice(indexed, "2 >= id")    # means id <= 2
    assert choice.access == "range"
    assert set(choice.positions) >= {1, 2, 3}
    assert 0 not in choice.positions        # id=3 is out of range


def test_leftmost_sargable_conjunct_wins(indexed):
    choice = _choice(indexed, "score > 100.0 AND id = 1")
    assert choice.index.name == "IX_SCORE"
    choice = _choice(indexed, "seen = 'x' AND id = 1")
    assert choice.index.name == "IX_ID"     # first conjunct unsargable


def test_range_positions_are_a_superset_of_strict_matches(indexed):
    """Inclusive bounds over-include the boundary; the WHERE re-filter
    removes it.  Never may a true match be missing."""
    choice = _choice(indexed, "score > 7.0")
    true_matches = [i for i, row in enumerate(ROWS)
                    if row[2] is not None and row[2] > 7.0]
    assert set(true_matches) <= set(choice.positions)


def test_nan_disables_range_but_not_point():
    table = _table([(1, "a", float("nan"), None, None),
                    (2, "b", 5.0, None, None)])
    table.create_index("IX_SCORE", "score")
    assert _choice(table, "score > 1.0") is None
    choice = _choice(table, "score = 5.0")
    assert choice is not None and choice.positions == [1]
    assert math.isnan(table.rows[0][2])


def test_no_indexes_means_no_choice():
    assert _choice(_table(ROWS), "id = 1") is None


# -- engine integration: DDL, maintenance, EXPLAIN flip ------------------------

DDL = [
    "CREATE TABLE People (id INT, age INT, city TEXT)",
    "INSERT INTO People VALUES (1, 25, 'Oslo'), (2, 62, 'Rome'), "
    "(3, 41, 'Oslo'), (4, 70, 'Pisa'), (5, 33, 'Rome')",
    "CREATE INDEX IX_AGE ON People (age)",
    "CREATE INDEX IX_CITY ON People (city)",
]


@pytest.fixture
def conn():
    connection = repro.connect()
    for statement in DDL:
        connection.execute(statement)
    yield connection
    connection.close()


def _plan(conn, statement):
    rowset = conn.execute(f"EXPLAIN {statement}")
    assert is_plan_rowset(rowset)
    names = [c.name for c in rowset.columns]
    return [dict(zip(names, row)) for row in rowset.rows]


def test_seek_results_match_predicate(conn):
    assert conn.execute(
        "SELECT id FROM People WHERE age = 41").rows == [(3,)]
    assert conn.execute(
        "SELECT id FROM People WHERE age > 40 ORDER BY id").rows == \
        [(2,), (3,), (4,)]
    assert conn.execute(
        "SELECT id FROM People WHERE city IN ('Oslo', 'Pisa') "
        "ORDER BY id").rows == [(1,), (3,), (4,)]


def test_explain_shows_index_seek_until_drop(conn):
    """Acceptance criterion: the plan shows an index seek, and DROP INDEX
    turns the very same statement back into a table scan."""
    statement = "SELECT * FROM People WHERE age = 41"
    seek = _plan(conn, statement)[-1]
    assert seek["OPERATOR"] == "index seek"
    assert "IX_AGE" in seek["STRATEGY"] and "(point)" in seek["STRATEGY"]
    assert "point lookup on age" in seek["DETAIL"]

    conn.execute("DROP INDEX IX_AGE ON People")
    scan = _plan(conn, statement)[-1]
    assert scan["OPERATOR"] == "table scan"


def test_explain_range_seek_estimates_candidates(conn):
    node = _plan(conn, "SELECT * FROM People WHERE age >= 41")[-1]
    assert node["OPERATOR"] == "index seek"
    assert "(range)" in node["STRATEGY"]
    assert node["EST_ROWS"] == 3


def test_insert_maintains_index(conn):
    conn.execute("INSERT INTO People VALUES (6, 41, 'Kiev')")
    assert conn.execute(
        "SELECT id FROM People WHERE age = 41 ORDER BY id").rows == \
        [(3,), (6,)]
    entries = {row[0]: row[1] for row in conn.execute(
        "SELECT INDEX_NAME, ENTRIES FROM $SYSTEM.DM_INDEXES").rows}
    assert entries["IX_AGE"] == 6


def test_update_and_delete_rebuild_index(conn):
    conn.execute("UPDATE People SET age = 99 WHERE id = 3")
    assert conn.execute(
        "SELECT id FROM People WHERE age = 41").rows == []
    assert conn.execute(
        "SELECT id FROM People WHERE age = 99").rows == [(3,)]
    conn.execute("DELETE FROM People WHERE age = 99")
    assert conn.execute(
        "SELECT id FROM People WHERE age = 99").rows == []


def test_dm_indexes_counts_seeks(conn):
    conn.execute("SELECT * FROM People WHERE age = 41")
    conn.execute("SELECT * FROM People WHERE age > 40")
    rows = {row[0]: (row[1], row[2]) for row in conn.execute(
        "SELECT INDEX_NAME, SEEKS, RANGE_SEEKS "
        "FROM $SYSTEM.DM_INDEXES").rows}
    seeks, range_seeks = rows["IX_AGE"]
    assert seeks >= 1 and range_seeks >= 1


def test_join_build_side_uses_index(conn):
    conn.execute("CREATE TABLE Orders (cid INT, total INT)")
    conn.execute("INSERT INTO Orders VALUES (1, 10), (3, 20), (3, 30)")
    conn.execute("CREATE INDEX IX_OCID ON Orders (cid)")
    rows = conn.execute(
        "SELECT p.id, o.total FROM People AS p JOIN Orders AS o "
        "ON p.id = o.cid ORDER BY p.id, o.total").rows
    assert rows == [(1, 10), (3, 20), (3, 30)]
    probes = {row[0]: row[1] for row in conn.execute(
        "SELECT INDEX_NAME, JOIN_PROBES FROM $SYSTEM.DM_INDEXES").rows}
    assert probes["IX_OCID"] >= 1


def test_duplicate_index_name_rejected(conn):
    with pytest.raises(Error):
        conn.execute("CREATE INDEX IX_AGE ON People (age)")


def test_drop_missing_index(conn):
    with pytest.raises(Error):
        conn.execute("DROP INDEX IX_NOPE ON People")
    conn.execute("DROP INDEX IF EXISTS IX_NOPE ON People")  # no error


def test_index_on_missing_column_rejected(conn):
    with pytest.raises(Error):
        conn.execute("CREATE INDEX IX_BAD ON People (ghost)")


def test_indexes_survive_provider_snapshot(conn):
    from repro.core.persistence import dump_provider, load_provider
    restored = load_provider(dump_provider(conn.provider))
    table = restored.database.table("People")
    assert set(table.indexes) == {"IX_AGE", "IX_CITY"}
    assert table.indexes["IX_AGE"].entries == 5
