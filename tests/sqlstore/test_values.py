"""SQL value semantics: three-valued logic, comparison, sort/group keys."""

import datetime

from repro.sqlstore.values import (
    group_key,
    is_null,
    sort_key,
    sql_compare,
    sql_equal,
    truth_and,
    truth_not,
    truth_or,
)


class TestEquality:
    def test_equal_numbers_across_types(self):
        assert sql_equal(1, 1.0) is True

    def test_unequal(self):
        assert sql_equal("a", "b") is False

    def test_null_propagates(self):
        assert sql_equal(None, 1) is None
        assert sql_equal(1, None) is None
        assert sql_equal(None, None) is None

    def test_strings_case_sensitive(self):
        assert sql_equal("Male", "male") is False


class TestComparison:
    def test_orderings(self):
        assert sql_compare(1, 2) == -1
        assert sql_compare(2, 1) == 1
        assert sql_compare(2, 2) == 0

    def test_null(self):
        assert sql_compare(None, 1) is None

    def test_mixed_numeric(self):
        assert sql_compare(1, 1.5) == -1

    def test_dates(self):
        assert sql_compare(datetime.date(2001, 1, 1),
                           datetime.date(2001, 6, 1)) == -1

    def test_mixed_types_compare_as_strings(self):
        assert sql_compare("10", 9) in (-1, 1)  # deterministic, not a crash


class TestTruthTables:
    def test_and(self):
        assert truth_and(True, True) is True
        assert truth_and(True, False) is False
        assert truth_and(False, None) is False
        assert truth_and(True, None) is None
        assert truth_and(None, None) is None

    def test_or(self):
        assert truth_or(False, False) is False
        assert truth_or(False, True) is True
        assert truth_or(True, None) is True
        assert truth_or(False, None) is None

    def test_not(self):
        assert truth_not(True) is False
        assert truth_not(False) is True
        assert truth_not(None) is None


class TestKeys:
    def test_nulls_sort_first(self):
        values = [3, None, 1]
        assert sorted(values, key=sort_key) == [None, 1, 3]

    def test_heterogeneous_sort_is_total(self):
        values = ["b", 2, None, "a", 1]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] is None
        assert ordered[1:3] == [1, 2]

    def test_group_key_merges_int_float(self):
        assert group_key(1) == group_key(1.0)

    def test_group_key_separates_bool_from_int(self):
        assert group_key(True) != group_key(1)

    def test_group_key_null(self):
        assert group_key(None) == group_key(None)

    def test_is_null(self):
        assert is_null(None)
        assert not is_null(0)
