"""Page format: deterministic codec, admission math, torn-page detection."""

import datetime
import json

import pytest

from repro.sqlstore.pages import (
    DEFAULT_PAGE_BYTES,
    HEADER,
    PAGE_MAGIC,
    Page,
    PageFormatError,
    decode_page,
    decode_row,
    decode_scalar,
    encode_page,
    encode_row,
    encode_scalar,
)
from repro.sqlstore.rowset import Rowset, RowsetColumn
from repro.sqlstore.types import LONG, TEXT


# -- scalar codec --------------------------------------------------------------

def test_scalar_tags_round_trip():
    stamp = datetime.datetime(2001, 8, 26, 14, 30, 15, 123456)
    day = datetime.date(1999, 12, 31)
    assert decode_scalar(encode_scalar(stamp)) == stamp
    assert decode_scalar(encode_scalar(day)) == day
    # datetime subclasses date: must keep its time part.
    assert isinstance(decode_scalar(encode_scalar(stamp)),
                      datetime.datetime)
    for plain in (None, True, 0, -7, 3.25, "text", float("inf")):
        assert decode_scalar(encode_scalar(plain)) == plain


def test_row_codec_round_trips_everything():
    row = (1, "naïve — ünïcode", None, True, 2.5,
           datetime.date(2000, 1, 1),
           datetime.datetime(2000, 1, 1, 2, 3, 4))
    assert decode_row(encode_row(row)) == row


def test_row_codec_nests_rowsets():
    nested = Rowset([RowsetColumn("k", LONG), RowsetColumn("v", TEXT)],
                    [(1, "a"), (2, None)])
    decoded = decode_row(encode_row((7, nested)))
    assert decoded[0] == 7
    inner = decoded[1]
    assert isinstance(inner, Rowset)
    assert [c.name for c in inner.columns] == ["k", "v"]
    assert inner.rows == [(1, "a"), (2, None)]


def test_row_encoding_is_deterministic_bytes():
    row = (3, "x", 1.5)
    assert encode_row(row) == encode_row(tuple(row))
    assert encode_row(row) == b'[3,"x",1.5]'


def test_nan_and_infinity_round_trip():
    # json.dumps emits NaN/Infinity tokens (allow_nan default); the store
    # must bring them back as the same floats.
    decoded = decode_row(encode_row((float("nan"), float("-inf"))))
    assert decoded[0] != decoded[0]
    assert decoded[1] == float("-inf")


# -- Page admission math -------------------------------------------------------

def test_page_payload_size_tracks_encoding_exactly():
    rows = [(1, "aa"), (2, "bbbb"), (3, None)]
    page = Page(0)
    for row in rows:
        page.append(row, len(encode_row(row)))
    payload = b"[" + b",".join(encode_row(r) for r in rows) + b"]"
    assert page.payload_size == len(payload)
    assert Page(0, list(rows)).payload_size == len(payload)


def test_has_room_respects_budget():
    page = Page(0)
    row = (1, "x" * 40)
    size = len(encode_row(row))
    page.append(row, size)
    budget = page.payload_size + size  # one byte short of a second row
    assert not page.has_room(size, budget)
    assert page.has_room(size, budget + 1)


def test_oversized_row_gets_its_own_page():
    page = Page(0)
    assert page.has_room(10 * DEFAULT_PAGE_BYTES, DEFAULT_PAGE_BYTES), \
        "an empty page must accept any row, however wide"


def test_append_marks_dirty():
    page = Page(0)
    assert not page.dirty
    page.append((1,), len(encode_row((1,))))
    assert page.dirty


# -- full page encode/decode ---------------------------------------------------

def test_page_round_trip():
    rows = [(i, f"row-{i}", i * 0.5, None if i % 3 else True)
            for i in range(20)]
    page = decode_page(encode_page(5, rows), expect_page_id=5)
    assert page.page_id == 5
    assert page.rows == rows
    assert not page.dirty and page.pins == 0


def test_page_bytes_are_deterministic():
    rows = [(1, "a"), (2, "b")]
    assert encode_page(9, rows) == encode_page(9, [(1, "a"), (2, "b")])


@pytest.mark.parametrize("mutilate, message", [
    (lambda d: d[:HEADER.size - 1], "truncated"),
    (lambda d: b"XXXX" + d[4:], "magic"),
    (lambda d: d[:-3], "torn"),
    (lambda d: d[:HEADER.size] + b"x" + d[HEADER.size + 1:], "CRC"),
])
def test_damaged_pages_are_rejected(mutilate, message):
    data = encode_page(3, [(1, "abc"), (2, "def")])
    with pytest.raises(PageFormatError) as excinfo:
        decode_page(mutilate(data))
    assert message.lower() in str(excinfo.value).lower()


def test_page_id_mismatch_is_rejected():
    data = encode_page(3, [(1,)])
    with pytest.raises(PageFormatError):
        decode_page(data, expect_page_id=4)


def test_row_count_mismatch_is_rejected():
    rows = [(1,), (2,)]
    payload = b"[" + b",".join(encode_row(r) for r in rows) + b"]"
    header = HEADER.pack(PAGE_MAGIC, 0, 3, len(payload),
                         __import__("zlib").crc32(payload) & 0xFFFFFFFF)
    with pytest.raises(PageFormatError):
        decode_page(header + payload)


def test_payload_is_valid_json_array():
    data = encode_page(0, [(1, "a")])
    assert json.loads(data[HEADER.size:].decode("utf-8")) == [[1, "a"]]
