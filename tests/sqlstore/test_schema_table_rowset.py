"""Schemas, table storage, indexes, and rowset access."""

import pytest

from repro.errors import BindError, SchemaError, TypeError_
from repro.sqlstore.rowset import Rowset, RowsetColumn
from repro.sqlstore.schema import ColumnSchema, TableSchema
from repro.sqlstore.table import Table
from repro.sqlstore.types import DOUBLE, LONG, TEXT


def customer_schema():
    return TableSchema("Customers", [
        ColumnSchema("Customer ID", LONG, primary_key=True),
        ColumnSchema("Gender", TEXT),
        ColumnSchema("Age", DOUBLE),
    ])


class TestSchema:
    def test_case_insensitive_lookup(self):
        schema = customer_schema()
        assert schema.index_of("customer id") == 0
        assert schema.column("GENDER").name == "Gender"

    def test_unknown_column(self):
        with pytest.raises(BindError):
            customer_schema().index_of("Salary")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [ColumnSchema("a", LONG),
                              ColumnSchema("A", TEXT)])

    def test_primary_key_index(self):
        assert customer_schema().primary_key_index() == 0

    def test_spaced_names_preserved(self):
        assert customer_schema().column_names()[0] == "Customer ID"


class TestTable:
    def test_insert_coerces(self):
        table = Table(customer_schema())
        table.insert(("1", "Male", 35))
        assert table.rows[0] == (1, "Male", 35.0)

    def test_wrong_arity(self):
        table = Table(customer_schema())
        with pytest.raises(SchemaError):
            table.insert((1, "Male"))

    def test_primary_key_uniqueness(self):
        table = Table(customer_schema())
        table.insert((1, "Male", 35.0))
        with pytest.raises(SchemaError):
            table.insert((1, "Female", 28.0))

    def test_pk_not_nullable(self):
        table = Table(customer_schema())
        with pytest.raises(TypeError_):
            table.insert((None, "Male", 35.0))

    def test_lookup_pk(self):
        table = Table(customer_schema())
        table.insert((7, "Female", 40.0))
        assert table.lookup_pk(7) == (7, "Female", 40.0)
        assert table.lookup_pk(8) is None

    def test_delete_where_rebuilds_pk(self):
        table = Table(customer_schema())
        table.insert_many([(1, "Male", 35.0), (2, "Female", 28.0)])
        removed = table.delete_where(lambda row: row[0] == 1)
        assert removed == 1
        table.insert((1, "Male", 35.0))  # pk slot freed
        assert len(table) == 2

    def test_secondary_index_tracks_inserts(self):
        table = Table(customer_schema())
        table.insert((1, "Male", 35.0))
        index = table.ensure_index("Gender")
        table.insert((2, "Male", 40.0))
        from repro.sqlstore.values import group_key
        assert len(index[group_key("Male")]) == 2

    def test_update_where(self):
        table = Table(customer_schema())
        table.insert_many([(1, "Male", 35.0), (2, "Female", 28.0)])
        changed = table.update_where(
            lambda row: row[1] == "Male",
            lambda row: (row[0], row[1], 99.0))
        assert changed == 1
        assert table.lookup_pk(1)[2] == 99.0

    def test_truncate(self):
        table = Table(customer_schema())
        table.insert((1, "Male", 35.0))
        table.truncate()
        assert len(table) == 0

    def test_to_rowset(self):
        table = Table(customer_schema())
        table.insert((1, "Male", 35.0))
        rowset = table.to_rowset()
        assert rowset.column_names() == ["Customer ID", "Gender", "Age"]
        assert rowset.rows == [(1, "Male", 35.0)]


class TestRowset:
    def test_column_access(self):
        rowset = Rowset([RowsetColumn("a", LONG), RowsetColumn("b", TEXT)],
                        [(1, "x"), (2, "y")])
        assert rowset.column_values("B") == ["x", "y"]
        assert rowset.index_of("a") == 0
        assert len(rowset) == 2

    def test_unknown_column(self):
        rowset = Rowset([RowsetColumn("a", LONG)], [])
        with pytest.raises(BindError):
            rowset.index_of("z")

    def test_duplicate_names_first_wins(self):
        rowset = Rowset([RowsetColumn("a", LONG), RowsetColumn("a", TEXT)],
                        [(1, "x")])
        assert rowset.index_of("a") == 0

    def test_single_value(self):
        rowset = Rowset([RowsetColumn("n", LONG)], [(5,)])
        assert rowset.single_value() == 5

    def test_single_value_requires_1x1(self):
        rowset = Rowset([RowsetColumn("n", LONG)], [(5,), (6,)])
        with pytest.raises(BindError):
            rowset.single_value()

    def test_nested_rowsets_in_to_dicts(self):
        inner = Rowset([RowsetColumn("p", TEXT)], [("TV",)])
        outer = Rowset(
            [RowsetColumn("id", LONG),
             RowsetColumn("items", nested_columns=list(inner.columns))],
            [(1, inner)])
        dicts = outer.to_dicts()
        assert dicts == [{"id": 1, "items": [{"p": "TV"}]}]

    def test_from_dicts_infers_columns(self):
        rowset = Rowset.from_dicts([{"a": 1, "b": "x"}, {"a": 2}])
        assert rowset.column_names() == ["a", "b"]
        assert rowset.rows[1] == (2, None)

    def test_pretty_renders_nested(self):
        inner = Rowset([RowsetColumn("p", TEXT)], [("TV",)])
        outer = Rowset(
            [RowsetColumn("id", LONG),
             RowsetColumn("items", nested_columns=list(inner.columns))],
            [(1, inner)])
        text = outer.pretty()
        assert "<TABLE 1 rows>" in text
        assert "TV" in text

    def test_pretty_truncates(self):
        rowset = Rowset([RowsetColumn("n", LONG)],
                        [(i,) for i in range(100)])
        assert "more rows" in rowset.pretty(max_rows=10)
