"""Expression evaluation: operators, three-valued logic, functions."""

import pytest

from repro.errors import BindError, Error
from repro.lang.parser import parse_expression
from repro.sqlstore.expressions import (
    EvalContext,
    contains_aggregate,
    evaluate,
    like_match,
)


def eval_expr(text, names=None, row=()):
    context = EvalContext.from_names(names or [])
    return evaluate(parse_expression(text), context.with_row(tuple(row)))


class TestArithmetic:
    def test_precedence(self):
        assert eval_expr("1 + 2 * 3") == 7
        assert eval_expr("(1 + 2) * 3") == 9

    def test_unary_minus(self):
        assert eval_expr("-5 + 2") == -3
        assert eval_expr("-(-5)") == 5

    def test_double_dash_is_a_comment_not_double_negation(self):
        # '--' starts a line comment (SQL convention), so '--5' is empty.
        from repro.errors import ParseError
        with pytest.raises(ParseError):
            parse_expression("--5")

    def test_division_by_zero_is_null(self):
        assert eval_expr("1 / 0") is None

    def test_null_propagates_through_arithmetic(self):
        assert eval_expr("1 + NULL") is None

    def test_concat(self):
        assert eval_expr("'a' || 'b'") == "ab"


class TestComparisons:
    def test_basic(self):
        assert eval_expr("2 > 1") is True
        assert eval_expr("2 <= 1") is False
        assert eval_expr("2 <> 3") is True
        assert eval_expr("2 != 3") is True

    def test_null_comparison_unknown(self):
        assert eval_expr("NULL = 1") is None
        assert eval_expr("NULL <> 1") is None

    def test_is_null(self):
        assert eval_expr("NULL IS NULL") is True
        assert eval_expr("1 IS NOT NULL") is True

    def test_between(self):
        assert eval_expr("5 BETWEEN 1 AND 10") is True
        assert eval_expr("5 NOT BETWEEN 1 AND 10") is False
        assert eval_expr("NULL BETWEEN 1 AND 10") is None

    def test_in_list(self):
        assert eval_expr("2 IN (1, 2, 3)") is True
        assert eval_expr("9 IN (1, 2, 3)") is False
        assert eval_expr("9 NOT IN (1, 2, 3)") is True

    def test_in_list_with_null_is_unknown_when_absent(self):
        assert eval_expr("9 IN (1, NULL)") is None
        assert eval_expr("1 IN (1, NULL)") is True


class TestBooleans:
    def test_short_circuit_and(self):
        assert eval_expr("FALSE AND (1/0 = 1)") is False

    def test_three_valued(self):
        assert eval_expr("TRUE AND NULL") is None
        assert eval_expr("TRUE OR NULL") is True
        assert eval_expr("NOT NULL") is None


class TestCase:
    def test_searched_case(self):
        assert eval_expr(
            "CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END") \
            == "b"

    def test_case_without_else_is_null(self):
        assert eval_expr("CASE WHEN FALSE THEN 1 END") is None


class TestLike:
    def test_percent(self):
        assert eval_expr("'Hamburger' LIKE 'Ham%'") is True
        assert eval_expr("'Ham' LIKE '%urger'") is False

    def test_underscore(self):
        assert eval_expr("'cat' LIKE 'c_t'") is True

    def test_case_insensitive(self):
        assert eval_expr("'HAM' LIKE 'ham'") is True

    def test_like_match_escapes_regex_chars(self):
        assert like_match("a.b", "a.b")
        assert not like_match("axb", "a.b")


class TestColumns:
    def test_qualified_and_bare(self):
        context = EvalContext.from_names(["Age", "Gender"], qualifier="c")
        row_context = context.with_row((35.0, "Male"))
        assert evaluate(parse_expression("Age"), row_context) == 35.0
        assert evaluate(parse_expression("c.Age"), row_context) == 35.0
        assert evaluate(parse_expression("[c].[Gender]"), row_context) == \
            "Male"

    def test_unknown_column(self):
        context = EvalContext.from_names(["Age"]).with_row((1.0,))
        with pytest.raises(BindError):
            evaluate(parse_expression("Salary"), context)

    def test_wrong_qualifier_falls_back_to_bare(self):
        context = EvalContext.from_names(["Age"], qualifier="c")
        assert evaluate(parse_expression("x.Age"),
                        context.with_row((35.0,))) == 35.0


class TestScalarFunctions:
    def test_string_functions(self):
        assert eval_expr("UPPER('ham')") == "HAM"
        assert eval_expr("LOWER('HAM')") == "ham"
        assert eval_expr("LENGTH('abc')") == 3
        assert eval_expr("SUBSTRING('abcdef', 2, 3)") == "bcd"
        assert eval_expr("TRIM('  x ')") == "x"
        assert eval_expr("REPLACE('aXa', 'X', 'b')") == "aba"

    def test_math_functions(self):
        assert eval_expr("ABS(-3)") == 3
        assert eval_expr("ROUND(2.567, 1)") == 2.6
        assert eval_expr("FLOOR(2.9)") == 2
        assert eval_expr("CEILING(2.1)") == 3
        assert eval_expr("SQRT(16)") == 4.0
        assert eval_expr("POWER(2, 10)") == 1024.0
        assert eval_expr("MOD(7, 3)") == 1
        assert eval_expr("SIGN(-9)") == -1

    def test_null_handling_functions(self):
        assert eval_expr("COALESCE(NULL, NULL, 3)") == 3
        assert eval_expr("NULLIF(2, 2)") is None
        assert eval_expr("NULLIF(2, 3)") == 2
        assert eval_expr("IIF(TRUE, 'yes', 'no')") == "yes"

    def test_null_propagation_in_scalars(self):
        assert eval_expr("UPPER(NULL)") is None

    def test_unknown_function(self):
        with pytest.raises(BindError):
            eval_expr("FROBNICATE(1)")


class TestAggregateDetection:
    def test_detects_aggregates(self):
        assert contains_aggregate(parse_expression("COUNT(*)"))
        assert contains_aggregate(parse_expression("1 + SUM(x)"))
        assert contains_aggregate(
            parse_expression("CASE WHEN MAX(x) > 1 THEN 1 END"))

    def test_plain_expressions(self):
        assert not contains_aggregate(parse_expression("UPPER(x) || 'a'"))
