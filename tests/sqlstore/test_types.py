"""Type system: coercion, aliases, inference."""

import datetime

import pytest

from repro.errors import TypeError_
from repro.sqlstore.types import (
    BOOLEAN,
    DATE,
    DOUBLE,
    LONG,
    TABLE,
    TEXT,
    infer_type,
    type_from_name,
)


class TestCoercion:
    def test_long_from_int(self):
        assert LONG.coerce(42) == 42

    def test_long_from_integral_float(self):
        assert LONG.coerce(2.0) == 2
        assert isinstance(LONG.coerce(2.0), int)

    def test_long_rejects_fractional_float(self):
        with pytest.raises(TypeError_):
            LONG.coerce(2.5)

    def test_long_from_numeric_string(self):
        assert LONG.coerce("17") == 17

    def test_long_rejects_garbage_string(self):
        with pytest.raises(TypeError_):
            LONG.coerce("seventeen")

    def test_long_from_bool(self):
        assert LONG.coerce(True) == 1

    def test_double_widens_int(self):
        value = DOUBLE.coerce(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_double_from_string(self):
        assert DOUBLE.coerce("3.5") == 3.5

    def test_text_stringifies_scalars(self):
        assert TEXT.coerce(12) == "12"
        assert TEXT.coerce(True) == "True"

    def test_boolean_from_text(self):
        assert BOOLEAN.coerce("TRUE") is True
        assert BOOLEAN.coerce("false") is False

    def test_boolean_from_01(self):
        assert BOOLEAN.coerce(0) is False
        assert BOOLEAN.coerce(1) is True

    def test_boolean_rejects_other_ints(self):
        with pytest.raises(TypeError_):
            BOOLEAN.coerce(2)

    def test_date_from_iso_string(self):
        assert DATE.coerce("2001-04-02") == datetime.date(2001, 4, 2)

    def test_date_rejects_bad_string(self):
        with pytest.raises(TypeError_):
            DATE.coerce("April 2nd")

    def test_null_passes_every_type(self):
        for type_ in (LONG, DOUBLE, TEXT, BOOLEAN, DATE, TABLE):
            assert type_.coerce(None) is None

    def test_accepts(self):
        assert LONG.accepts(5)
        assert not LONG.accepts("x")


class TestNames:
    def test_canonical_names(self):
        assert type_from_name("LONG") is LONG
        assert type_from_name("double") is DOUBLE

    def test_aliases(self):
        assert type_from_name("INT") is LONG
        assert type_from_name("VARCHAR") is TEXT
        assert type_from_name("FLOAT") is DOUBLE
        assert type_from_name("BIT") is BOOLEAN

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError_):
            type_from_name("BLOB")


class TestInference:
    def test_infer(self):
        assert infer_type(True) is BOOLEAN
        assert infer_type(1) is LONG
        assert infer_type(1.5) is DOUBLE
        assert infer_type("x") is TEXT
        assert infer_type(datetime.date(2001, 1, 1)) is DATE

    def test_infer_none_defaults_to_text(self):
        assert infer_type(None) is TEXT
