"""Scalar subqueries and IN (SELECT ...) membership."""

import pytest

from repro.errors import Error
from repro.sqlstore import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE Orders (Id LONG, CustID LONG, "
                     "Amount DOUBLE)")
    database.execute("INSERT INTO Orders VALUES (1,1,10.0), (2,1,30.0), "
                     "(3,2,20.0), (4,3,50.0)")
    database.execute("CREATE TABLE Vips (CustID LONG)")
    database.execute("INSERT INTO Vips VALUES (1), (3)")
    return database


class TestScalarSubquery:
    def test_in_where(self, db):
        rowset = db.execute(
            "SELECT Id FROM Orders WHERE Amount > "
            "(SELECT AVG(Amount) FROM Orders) ORDER BY Id")
        assert rowset.column_values("Id") == [2, 4]

    def test_in_select_list(self, db):
        rowset = db.execute(
            "SELECT Id, Amount - (SELECT AVG(Amount) FROM Orders) AS d "
            "FROM Orders WHERE Id = 1")
        assert rowset.rows[0][1] == pytest.approx(10.0 - 27.5)

    def test_empty_scalar_subquery_is_null(self, db):
        rowset = db.execute(
            "SELECT (SELECT Amount FROM Orders WHERE Id = 99) AS v")
        assert rowset.single_value() is None

    def test_multi_row_scalar_subquery_errors(self, db):
        with pytest.raises(Error, match="rows"):
            db.execute("SELECT Id FROM Orders WHERE Amount = "
                       "(SELECT Amount FROM Orders)")

    def test_multi_column_scalar_subquery_errors(self, db):
        with pytest.raises(Error, match="column"):
            db.execute("SELECT (SELECT Id, Amount FROM Orders "
                       "WHERE Id = 1) AS v")


class TestInSelect:
    def test_membership(self, db):
        rowset = db.execute(
            "SELECT Id FROM Orders WHERE CustID IN "
            "(SELECT CustID FROM Vips) ORDER BY Id")
        assert rowset.column_values("Id") == [1, 2, 4]

    def test_not_in(self, db):
        rowset = db.execute(
            "SELECT Id FROM Orders WHERE CustID NOT IN "
            "(SELECT CustID FROM Vips)")
        assert rowset.column_values("Id") == [3]

    def test_not_in_with_null_in_subquery_matches_nothing(self, db):
        db.execute("INSERT INTO Vips VALUES (NULL)")
        rowset = db.execute(
            "SELECT Id FROM Orders WHERE CustID NOT IN "
            "(SELECT CustID FROM Vips)")
        assert rowset.rows == []  # SQL three-valued logic

    def test_in_select_in_delete(self, db):
        count = db.execute("DELETE FROM Orders WHERE CustID IN "
                           "(SELECT CustID FROM Vips)")
        assert count == 3

    def test_formatter_round_trip(self):
        from repro.lang.parser import parse_statement
        from repro.lang.formatter import format_statement
        text = format_statement(parse_statement(
            "SELECT a FROM t WHERE a IN (SELECT b FROM u)"))
        assert format_statement(parse_statement(text)) == text
        assert "IN (SELECT" in text

    def test_works_in_prediction_where(self):
        import repro
        conn = repro.connect()
        conn.execute("CREATE TABLE T (Id LONG, G TEXT, L TEXT)")
        conn.execute("INSERT INTO T VALUES (1,'a','x'), (2,'b','y')")
        conn.execute("CREATE MINING MODEL M (Id LONG KEY, G TEXT "
                     "DISCRETE, L TEXT DISCRETE PREDICT) "
                     "USING Repro_Naive_Bayes")
        conn.execute("INSERT INTO M SELECT Id, G, L FROM T")
        # content query with a scalar subquery over the same rowset space
        rowset = conn.execute(
            "SELECT NODE_CAPTION FROM M.CONTENT WHERE NODE_SUPPORT >= "
            "(SELECT MAX(NODE_SUPPORT) FROM M.CONTENT)")
        assert len(rowset) >= 1
