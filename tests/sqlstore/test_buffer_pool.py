"""BufferPool unit behaviour: LRU order, pins, dirty-victim flushing."""

from repro.sqlstore.buffer import BufferPool
from repro.sqlstore.pages import Page


def _page(page_id, dirty=False):
    page = Page(page_id, [(page_id, f"row-{page_id}")])
    page.dirty = dirty
    return page


def _fill(pool, uids):
    pages = {}
    for uid in uids:
        pages[uid] = pool.get(uid, lambda uid=uid: _page(uid))
    return pages


def test_hit_and_miss_counters():
    pool = BufferPool(budget_pages=4)
    pool.get(1, lambda: _page(1))
    pool.get(1, lambda: _page(1))
    pool.get(2, lambda: _page(2))
    assert (pool.misses, pool.hits) == (2, 1)


def test_loader_not_called_on_hit():
    pool = BufferPool(budget_pages=4)
    pool.get(1, lambda: _page(1))
    calls = []
    pool.get(1, lambda: calls.append(1) or _page(1))
    assert calls == []


def test_lru_eviction_order():
    pool = BufferPool(budget_pages=2)
    _fill(pool, [1, 2])
    pool.get(1, lambda: _page(1))       # 1 becomes most recent
    pool.get(3, lambda: _page(3))       # evicts 2, the LRU
    assert [uid for uid, _ in pool.resident()] == [1, 3]
    assert pool.evictions == 1


def test_resident_is_lru_first():
    pool = BufferPool(budget_pages=3)
    _fill(pool, [1, 2, 3])
    pool.get(1, lambda: _page(1))
    assert [uid for uid, _ in pool.resident()] == [2, 3, 1]


def test_eviction_skips_pinned_pages():
    pool = BufferPool(budget_pages=2)
    pinned = pool.get(1, lambda: _page(1), pin=True)
    pool.get(2, lambda: _page(2))
    pool.get(3, lambda: _page(3))       # LRU is 1, but it is pinned
    uids = [uid for uid, _ in pool.resident()]
    assert 1 in uids and 2 not in uids
    pool.unpin(pinned)


def test_pin_overflow_when_everything_is_pinned():
    pool = BufferPool(budget_pages=2)
    a = pool.get(1, lambda: _page(1), pin=True)
    b = pool.get(2, lambda: _page(2), pin=True)
    c = pool.get(3, lambda: _page(3), pin=True)
    assert len(pool) == 3               # over budget, but no deadlock
    assert pool.pin_overflow >= 1
    for page in (a, b, c):
        pool.unpin(page)
    assert len(pool) == 2               # unpin re-runs eviction


def test_get_with_pin_is_atomic_at_budget_one():
    """The freshly admitted page must never evict itself: pin lands before
    admission on the miss path."""
    pool = BufferPool(budget_pages=1)
    page = pool.get(1, lambda: _page(1), pin=True)
    assert page.pins == 1
    assert [uid for uid, _ in pool.resident()] == [1]
    pool.unpin(page)


def test_dirty_victim_is_flushed_before_eviction():
    flushed = []
    pool = BufferPool(budget_pages=1, flusher=flushed.append)
    dirty = pool.get(1, lambda: _page(1, dirty=True))
    pool.get(2, lambda: _page(2))
    assert flushed == [dirty]
    assert not dirty.dirty              # flush cleared the flag
    assert pool.flushes == 1


def test_clean_victim_is_not_flushed():
    flushed = []
    pool = BufferPool(budget_pages=1, flusher=flushed.append)
    pool.get(1, lambda: _page(1))
    pool.get(2, lambda: _page(2))
    assert flushed == [] and pool.evictions == 1


def test_flush_dirty_keeps_pages_resident():
    flushed = []
    pool = BufferPool(budget_pages=4, flusher=flushed.append)
    _fill(pool, [1, 2, 3])
    for uid, page in pool.resident():
        if uid != 2:
            page.dirty = True
    assert pool.flush_dirty() == 2
    assert len(flushed) == 2
    assert len(pool) == 3
    assert all(not page.dirty for _, page in pool.resident())


def test_discard_drops_without_flushing():
    flushed = []
    pool = BufferPool(budget_pages=4, flusher=flushed.append)
    page = pool.get(1, lambda: _page(1, dirty=True))
    pool.discard(1)
    assert flushed == [] and len(pool) == 0 and page.dirty


def test_put_admits_and_respects_budget():
    pool = BufferPool(budget_pages=2)
    for uid in (1, 2, 3):
        pool.put(uid, _page(uid))
    assert [uid for uid, _ in pool.resident()] == [2, 3]


def test_budget_floor_is_one_page():
    assert BufferPool(budget_pages=0).budget == 1
    assert BufferPool(budget_pages=-5).budget == 1
