"""StorageManager + PagedRowStore: packing, scan stability, commit/reopen."""

import os

import pytest

from repro.lang.parser import parse_statement
from repro.sqlstore.engine import Database
from repro.sqlstore.schema import ColumnSchema, TableSchema
from repro.sqlstore.storage import ListRowStore, StorageManager
from repro.sqlstore.types import LONG, TEXT

PAGE_BYTES = 256


def _manager(tmp_path, buffer_pages=2, **kwargs):
    return StorageManager(str(tmp_path), buffer_pages=buffer_pages,
                          page_bytes=PAGE_BYTES, **kwargs)


def _database(manager):
    database = Database()
    database.store_factory = manager.make_store
    return database


def _schema(name="T"):
    return TableSchema(name, [ColumnSchema("id", LONG),
                              ColumnSchema("name", TEXT)])


def _rows(n, tag="row"):
    return [(i, f"{tag}-{i:04d}-" + "x" * 30) for i in range(n)]


def _fill(table, n, tag="row"):
    for row in _rows(n, tag):
        table.insert(list(row))


def _page_files(root):
    found = []
    for dirpath, _, filenames in os.walk(os.path.join(root, "pages")):
        found.extend(name for name in filenames if name.endswith(".pg"))
    return sorted(found)


# -- packing and reads ---------------------------------------------------------

def test_appends_span_pages_and_snapshot_preserves_order(tmp_path):
    manager = _manager(tmp_path)
    table = _database(manager).create_table(_schema())
    _fill(table, 40)
    assert len(table.store.handles) > 3, "rows must spill across pages"
    assert table.rows == _rows(40)
    assert len(table.store) == 40


def test_pool_stays_within_budget_under_load(tmp_path):
    manager = _manager(tmp_path, buffer_pages=2)
    table = _database(manager).create_table(_schema())
    _fill(table, 60)
    assert table.rows == _rows(60)
    assert len(manager.pool) <= 2
    assert manager.pool.evictions > 0


def test_row_at_and_fetch_rows_cross_page_boundaries(tmp_path):
    manager = _manager(tmp_path)
    table = _database(manager).create_table(_schema())
    _fill(table, 35)
    store = table.store
    expected = _rows(35)
    assert store.row_at(0) == expected[0]
    assert store.row_at(34) == expected[34]
    picks = [0, 7, 8, 20, 34]
    assert store.fetch_rows(picks) == [expected[p] for p in picks]
    with pytest.raises(IndexError):
        store.row_at(35)


def test_iter_positions_batches_exactly(tmp_path):
    manager = _manager(tmp_path)
    table = _database(manager).create_table(_schema())
    _fill(table, 30)
    batches = list(table.store.iter_positions(list(range(0, 30, 2)), 4))
    assert [len(b) for b in batches] == [4, 4, 4, 3]
    assert [row[0] for batch in batches for row in batch] == \
        list(range(0, 30, 2))


def test_replace_all_repacks(tmp_path):
    manager = _manager(tmp_path)
    table = _database(manager).create_table(_schema())
    _fill(table, 30)
    replacement = _rows(9, tag="new")
    table.store.replace_all(replacement)
    assert table.rows == replacement
    assert len(table.store) == 9


# -- scan stability ------------------------------------------------------------

def test_scan_does_not_see_concurrent_appends(tmp_path):
    manager = _manager(tmp_path)
    table = _database(manager).create_table(_schema())
    _fill(table, 20)
    scan = table.store.iter_batches(6)
    collected = list(next(scan))
    _fill(table, 10, tag="late")      # arrives after the scan snapshot
    for batch in scan:
        collected.extend(batch)
    assert collected == _rows(20)
    assert len(table.store) == 30


def test_scan_survives_replace_all_mid_flight(tmp_path):
    """A scan started before DELETE/UPDATE keeps reading the pre-mutation
    rows: retired page files stay on disk until open/close GC."""
    manager = _manager(tmp_path, buffer_pages=2)
    table = _database(manager).create_table(_schema())
    _fill(table, 30)
    scan = table.store.iter_batches(6)
    collected = list(next(scan))
    table.store.replace_all(_rows(3, tag="post"))
    for batch in scan:
        collected.extend(batch)
    assert collected == _rows(30)
    assert table.rows == _rows(3, tag="post")


def test_append_survives_pin_pressure(tmp_path):
    """Append while every other frame is pinned must not lose the row.

    With a one-frame pool and a scan pinning the first page, the append's
    load of the last page overflows the budget and eviction's only
    unpinned candidate is that freshly loaded page itself.  Unpinned, it
    would be dropped clean and the append would mutate an orphan object —
    never flushed, ``row_count`` diverging from the on-disk page, and
    later scans silently skipping the phantom row.  The append must pin
    the page for the duration instead.
    """
    manager = _manager(tmp_path, buffer_pages=1)
    table = _database(manager).create_table(_schema())
    _fill(table, 21)                   # last page holds one row: has room
    scan = table.store.iter_batches(3)
    next(scan)                         # pins the first page; last is evicted
    extra = (21, "row-0021-" + "x" * 30)
    table.store.append(extra)          # loads last page under full pins
    scan.close()
    assert table.rows == _rows(21) + [extra]
    assert len(table.store) == 22


def test_abandoned_scan_releases_its_pin(tmp_path):
    manager = _manager(tmp_path, buffer_pages=2)
    table = _database(manager).create_table(_schema())
    _fill(table, 30)
    scan = table.store.iter_batches(5)
    next(scan)
    assert any(page.pins > 0 for _, page in manager.pool.resident())
    scan.close()                       # TOP / CANCEL / dropped wire session
    assert all(page.pins == 0 for _, page in manager.pool.resident())


# -- commit / reopen (shadow paging) -------------------------------------------

def test_commit_then_reopen_round_trips(tmp_path):
    manager = _manager(tmp_path)
    database = _database(manager)
    table = database.create_table(_schema())
    _fill(table, 25)
    table.create_index("IX_NAME", "name")
    database.views["V"] = parse_statement("SELECT id FROM T")
    committed_version = database.data_version
    manager.close(database)

    reopened = _manager(tmp_path)
    database2 = _database(reopened)
    reopened.open_into(database2)
    table2 = database2.table("T")
    assert table2.rows == _rows(25)
    assert "IX_NAME" in table2.indexes
    assert table2.indexes["IX_NAME"].entries == 25
    assert "V" in database2.views
    # advance_data_version is a floor: a restored catalog can never hand
    # out a data version older than the one it committed.
    assert database2.data_version >= committed_version


def test_close_sweeps_superseded_page_versions(tmp_path):
    manager = _manager(tmp_path)
    database = _database(manager)
    table = database.create_table(_schema())
    _fill(table, 30)
    manager.commit(database)
    before = _page_files(str(tmp_path))
    table.store.replace_all(_rows(30, tag="v2"))   # every page superseded
    manager.close(database)
    after = _page_files(str(tmp_path))
    assert not set(before) & set(after), \
        "close() must garbage-collect retired page versions"
    assert {h.current_file for h in table.store.handles} == set(after)


def test_dropped_table_files_are_swept_at_close(tmp_path):
    manager = _manager(tmp_path)
    database = _database(manager)
    table = database.create_table(_schema())
    _fill(table, 30)
    manager.commit(database)
    database.drop_table("T")
    manager.close(database)
    assert _page_files(str(tmp_path)) == []


def test_ephemeral_manager_wipes_and_leaves_nothing(tmp_path):
    manager = _manager(tmp_path)
    database = _database(manager)
    _fill(database.create_table(_schema()), 20)
    manager.close(database)
    assert _page_files(str(tmp_path)) != []

    ephemeral = _manager(tmp_path, ephemeral=True)
    assert _page_files(str(tmp_path)) == [], \
        "ephemeral storage is spill space only: prior contents wiped"
    database2 = _database(ephemeral)
    _fill(database2.create_table(_schema()), 20)
    ephemeral.close(database2)
    assert _page_files(str(tmp_path)) == []
    assert not os.path.exists(os.path.join(str(tmp_path), "catalog.json"))


# -- introspection -------------------------------------------------------------

def test_pool_rows_names_tables_lru_first(tmp_path):
    manager = _manager(tmp_path, buffer_pages=4)
    database = _database(manager)
    table = database.create_table(_schema())
    _fill(table, 30)
    rows = manager.pool_rows(database)
    assert rows and len(rows) <= 4
    for name, page_id, row_count, dirty, pins, size in rows:
        assert name == "T"
        assert isinstance(page_id, int) and row_count > 0
        assert isinstance(dirty, bool) and pins == 0 and size > 0


def test_seek_expectation_counts_buffered_pages(tmp_path):
    manager = _manager(tmp_path, buffer_pages=2)
    table = _database(manager).create_table(_schema())
    _fill(table, 40)
    store = table.store
    detail = store.seek_expectation(list(range(40)))
    hot, total = detail.split(" ")[0].split("/")
    assert detail.endswith("pages buffered")
    assert int(total) == len(store.handles)
    assert int(hot) <= 2
    assert ListRowStore([(1,)]).seek_expectation([0]) is None
