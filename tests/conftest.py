"""Shared fixtures: fresh providers, the paper's warehouse, trained models."""

import pytest

import repro
from repro.datagen import WarehouseConfig, load_warehouse

AGE_PREDICTION_DDL = """
CREATE MINING MODEL [Age Prediction] (
%Name of Model
    [Customer ID] LONG KEY,
    [Gender] TEXT DISCRETE,
    [Age] DOUBLE DISCRETIZED PREDICT, %prediction column
    [Product Purchases] TABLE(
        [Product Name] TEXT KEY,
        [Quantity] DOUBLE NORMAL CONTINUOUS,
        [Product Type] TEXT DISCRETE RELATED TO [Product Name]
    )
) USING [Decision_Trees_101]
%Mining Algorithm used
"""

AGE_PREDICTION_INSERT = """
INSERT INTO [Age Prediction] ([Customer ID], [Gender], [Age],
    [Product Purchases]([Product Name], [Quantity], [Product Type]))
SHAPE
    {SELECT [Customer ID], [Gender], [Age] FROM Customers
     ORDER BY [Customer ID]}
APPEND (
    {SELECT [CustID], [Product Name], [Quantity], [Product Type] FROM Sales
     ORDER BY [CustID]}
    RELATE [Customer ID] To [CustID]) AS [Product Purchases]
"""


@pytest.fixture
def conn():
    """A fresh connection to an empty provider."""
    connection = repro.connect()
    yield connection
    connection.close()


@pytest.fixture
def warehouse(conn):
    """Connection with the synthetic warehouse loaded (500 customers)."""
    data = load_warehouse(conn.database, WarehouseConfig(customers=500))
    conn.warehouse_data = data
    return conn


@pytest.fixture
def paper_tables(conn):
    """Connection holding exactly the paper's Customer ID 1 example."""
    load_warehouse(conn.database,
                   WarehouseConfig(customers=1, include_paper_customer=True))
    return conn


@pytest.fixture
def age_model(warehouse):
    """The paper's [Age Prediction] model, trained on the warehouse."""
    warehouse.execute(AGE_PREDICTION_DDL)
    warehouse.execute(AGE_PREDICTION_INSERT)
    return warehouse
