"""CI smoke check for the HTTP telemetry endpoint.

Starts ``python -m repro --metrics-port 0`` (the real CLI path) with its
stdin held open so the REPL — and with it the telemetry server — stays
alive, reads the announced endpoint URL, runs a few statements through
the REPL, then fetches ``/metrics``, ``/healthz``, ``/queries``,
``/active``, and ``/statements`` over real HTTP.  The exposition is validated with the same strict text-format
parser the test suite uses.

Exit code 0 on success; raises (non-zero exit) on any failure.

    PYTHONPATH=src python scripts/metrics_smoke.py
"""

import json
import os
import re
import subprocess
import sys
import time
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, REPO)

from tests.obs.test_export import parse_exposition  # noqa: E402

STATEMENTS = (
    "CREATE TABLE Smoke (x INT);\n"
    "INSERT INTO Smoke VALUES (1), (2), (3);\n"
    "SELECT * FROM Smoke;\n"
    "EXPLAIN ANALYZE SELECT * FROM Smoke;\n"
)


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")]))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "--metrics-port", "0"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True, cwd=REPO, env=env)
    try:
        # The CLI announces the bound ephemeral port before the banner.
        line = process.stdout.readline()
        match = re.search(r"(http://[\d.]+:(\d+))", line)
        assert match, f"no endpoint URL announced: {line!r}"
        url = match.group(1)
        # --metrics-port 0 asks for an ephemeral port; the URL must carry
        # the real bound port, never the literal 0 back.
        assert int(match.group(2)) != 0, f"announced port 0: {line!r}"

        process.stdin.write(STATEMENTS)
        process.stdin.flush()
        deadline = time.time() + 10
        while time.time() < deadline:
            status, body = fetch(url + "/queries")
            if len(json.loads(body)) >= 4:
                break
            time.sleep(0.1)

        status, body = fetch(url + "/metrics")
        assert status == 200, f"/metrics returned {status}"
        families = parse_exposition(body)
        total = families["repro_statements_total"]["samples"][0][2]
        assert total >= 4, f"statements.total={total}, expected >= 4"
        assert "repro_provider_info" in families
        latency = families["repro_statements_latency_ms"]
        count = [s for s in latency["samples"]
                 if s[0].endswith("_count")][0][2]
        assert count >= 4, f"latency histogram count={count}"

        status, body = fetch(url + "/healthz")
        assert status == 200, f"/healthz returned {status}"
        assert json.loads(body) == {"status": "ok"}

        status, body = fetch(url + "/queries?limit=2")
        assert status == 200, f"/queries returned {status}"
        records = json.loads(body)
        assert len(records) == 2 and records[-1]["status"] == "ok"

        # /active serves the live view; the REPL is idle between commands,
        # so the shape (a JSON list) is the contract being smoked.
        status, body = fetch(url + "/active")
        assert status == 200, f"/active returned {status}"
        assert isinstance(json.loads(body), list), "/active is not a list"

        # /statements serves the workload repository: the REPL statements
        # above must already have aggregated under their fingerprints.
        status, body = fetch(url + "/statements")
        assert status == 200, f"/statements returned {status}"
        workload = json.loads(body)
        stats = workload["statements"]
        assert stats, "/statements reported an empty repository"
        assert all(s["fingerprint"] for s in stats)
        select = [s for s in stats if s["kind"] == "SELECT" and s["calls"]]
        assert select, f"no retired SELECT fingerprint in {stats!r}"
        assert "plan_changes" in workload

        print(f"metrics smoke OK: {len(families)} metric families, "
              f"{total:g} statements recorded, healthz ok, active ok, "
              f"{len(stats)} statement fingerprints")
        return 0
    finally:
        try:
            process.stdin.close()
        except OSError:
            pass
        process.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
