#!/usr/bin/env python
"""Coverage ratchet: total coverage may rise, never fall.

Reads the total statement coverage from a ``coverage.py`` data file (the
``.coverage`` left behind by ``pytest --cov=repro``) and compares it to the
committed floor in ``scripts/coverage_baseline.txt``:

* below the floor -> exit 1 (the build fails; add tests or revert);
* above the floor by more than the slack -> exit 0 with a nudge to commit
  the higher floor, so gains are locked in.

Usage (CI runs exactly this)::

    python -m pytest -q --cov=repro --cov-report=
    python scripts/coverage_ratchet.py

The baseline file holds one float: the minimum acceptable percentage.
"""

import json
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_FILE = REPO_ROOT / "scripts" / "coverage_baseline.txt"
# How far above the floor coverage may drift before we ask for a bump;
# keeps the floor honest without making every test-only PR touch it.
RAISE_NUDGE = 2.0


def measured_total() -> float:
    """Total percent covered, via ``coverage json`` on the .coverage data."""
    with tempfile.NamedTemporaryFile(suffix=".json") as handle:
        subprocess.run(
            [sys.executable, "-m", "coverage", "json", "-q",
             "-o", handle.name],
            check=True, cwd=REPO_ROOT)
        report = json.loads(pathlib.Path(handle.name).read_text())
    return float(report["totals"]["percent_covered"])


def main() -> int:
    baseline = float(BASELINE_FILE.read_text().strip())
    total = measured_total()
    print(f"coverage: {total:.2f}% (committed floor: {baseline:.2f}%)")
    if total < baseline:
        print(f"FAIL: coverage fell below the ratchet floor by "
              f"{baseline - total:.2f} points; add tests for the new code "
              f"or revert the change that dropped it", file=sys.stderr)
        return 1
    if total > baseline + RAISE_NUDGE:
        print(f"note: coverage exceeds the floor by "
              f"{total - baseline:.2f} points — consider raising "
              f"{BASELINE_FILE.relative_to(REPO_ROOT)} to "
              f"{total - RAISE_NUDGE / 2:.1f} to lock in the gain")
    return 0


if __name__ == "__main__":
    sys.exit(main())
