"""CI smoke check for the DMX network server.

Exercises the real deployment path end to end: start
``python -m repro --serve 0`` (ephemeral port, announced on stdout) with
demo data preloaded, connect with the real client library, run a
statement mix (SELECT, TRAIN, PREDICTION JOIN, a stream, a deliberate
error), check ``$SYSTEM.DM_SESSIONS`` sees the session, then close stdin
and verify the server drains and exits 0.

Exit code 0 on success; raises (non-zero exit) on any failure.

    PYTHONPATH=src python scripts/server_smoke.py
"""

import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.client import connect as net_connect  # noqa: E402
from repro.errors import BindError  # noqa: E402


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")]))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "--serve", "0", "--demo", "50"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True, cwd=REPO, env=env)
    try:
        port = None
        for _ in range(20):
            line = process.stdout.readline()
            match = re.search(r"Serving DMX on [\d.]+:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        assert port, "server never announced its port"
        assert port != 0, "announced port must be the bound ephemeral one"

        with net_connect("127.0.0.1", port) as client:
            count = client.execute(
                "SELECT COUNT(*) AS n FROM Customers").rows[0][0]
            assert count == 50, f"expected 50 demo customers, got {count}"

            client.execute(
                "CREATE MINING MODEL SmokeNB ([Customer ID] LONG KEY, "
                "Gender TEXT DISCRETE PREDICT) USING Repro_Naive_Bayes")
            client.execute(
                "INSERT INTO SmokeNB ([Customer ID], Gender) "
                "SELECT [Customer ID], Gender FROM Customers")
            predicted = client.execute(
                "SELECT t.[Customer ID], SmokeNB.Gender FROM SmokeNB "
                "NATURAL PREDICTION JOIN "
                "(SELECT [Customer ID] FROM Customers) AS t")
            assert len(predicted.rows) == 50

            streamed = list(client.execute_stream(
                "SELECT [Customer ID] FROM Customers", batch_size=7))
            assert len(streamed) == 50

            try:
                client.execute("SELECT * FROM NoSuchTable")
                raise AssertionError("expected a BindError over the wire")
            except BindError:
                pass

            sessions = client.execute("SELECT * FROM $SYSTEM.DM_SESSIONS")
            states = [row[sessions.index_of("STATE")]
                      for row in sessions.rows]
            assert "active" in states, f"no active session rows: {states}"

        process.stdin.close()
        process.wait(timeout=30)
        tail = process.stdout.read()
        assert process.returncode == 0, \
            f"server exited {process.returncode}: {tail}"
        assert "Server stopped." in tail, f"no clean shutdown line: {tail}"
        print(f"server smoke OK: port {port}, 50 customers served, "
              f"TRAIN + PREDICTION JOIN + stream + typed error + "
              f"DM_SESSIONS verified, clean drain")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
