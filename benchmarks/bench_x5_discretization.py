"""Experiment X5 — ablation of the DISCRETIZED strategies (section 3.2.2).

The paper delegates bucketing of DISCRETIZED columns to the provider.  This
ablation compares the three strategies the provider ships — EQUAL_RANGE,
EQUAL_COUNT (quantiles), and CLUSTERS (1-D k-means) — on the Age-prediction
task: training time and bucket accuracy at equal bucket count.

Expected shape: EQUAL_COUNT and CLUSTERS adapt to the skewed age mixture
and beat EQUAL_RANGE, whose fixed-width buckets under-resolve the dense
young segments; timing differences are second-order.
"""

import pytest

from _helpers import AGE_MODEL_TRAIN, bucket_accuracy, make_warehouse

METHODS = ["EQUAL_RANGE", "EQUAL_COUNT", "CLUSTERS"]

DDL = """
CREATE MINING MODEL [{name}] (
    [Customer ID] LONG KEY,
    [Gender]      TEXT DISCRETE,
    [Age]         DOUBLE DISCRETIZED({method}, 3) PREDICT,
    [Product Purchases] TABLE([Product Name] TEXT KEY)
) USING Microsoft_Decision_Trees
"""


@pytest.fixture(scope="module")
def connection():
    conn, _ = make_warehouse(3000, seed=41)
    return conn


@pytest.mark.parametrize("method", METHODS)
def test_bench_x5_method(benchmark, connection, method):
    name = f"X5 {method}"
    connection.execute(DDL.format(name=name, method=method))

    def train():
        connection.execute(f"DELETE FROM MINING MODEL [{name}]")
        return connection.execute(AGE_MODEL_TRAIN.format(name=name))

    benchmark.pedantic(train, rounds=3, iterations=1)
    accuracy = bucket_accuracy(connection, name)
    target = connection.model(name).space.for_column("Age")
    benchmark.extra_info.update({
        "method": method,
        "accuracy": round(accuracy, 4),
        "bucket_edges": [round(e, 1) for e in target.discretizer.edges]})
    print(f"\nX5 {method:12s}: accuracy {accuracy:.1%}, "
          f"edges {[round(e, 1) for e in target.discretizer.edges]}")


def test_x5_adaptive_methods_beat_equal_range(connection):
    accuracies = {}
    for method in METHODS:
        name = f"X5 {method}"
        if not connection.provider.has_model(name):
            connection.execute(DDL.format(name=name, method=method))
        if not connection.model(name).is_trained:
            connection.execute(AGE_MODEL_TRAIN.format(name=name))
        accuracies[method] = bucket_accuracy(connection, name)
    print("\nX5 summary:", {m: f"{a:.1%}" for m, a in accuracies.items()})
    best_adaptive = max(accuracies["EQUAL_COUNT"], accuracies["CLUSTERS"])
    assert best_adaptive >= accuracies["EQUAL_RANGE"] - 0.02, \
        "adaptive bucketing should not lose to fixed-width buckets"
