"""Experiment X4 — the model is "much more compact than the training data".

Paper, footnote 2: a DMM's "internal structure can be more abstract, e.g.,
a decision-tree is a tree-like structure, much more compact than the
training data set used to create it."

Sweep the warehouse size, export each trained model to PMML, and compare
against the byte size of the training data (the CSV the external pipeline
would dump).  Expected shape: data grows linearly, the model plateaus (its
size tracks the learnt structure, not the caseset), so the ratio crosses
in the model's favour as data grows.
"""

import os
import shutil
import tempfile

import pytest

from _helpers import AGE_MODEL_DDL, AGE_MODEL_TRAIN, make_warehouse
from repro.baseline import ExternalMiningPipeline

SCALES = [250, 1000, 4000]


def sizes_at(customers):
    connection, _ = make_warehouse(customers)
    # MINIMUM_SUPPORT scales with the caseset (1%), the usual complexity
    # control: the learnt structure then tracks the signal, not the row
    # count, which is exactly the footnote-2 claim under test.
    minimum_support = max(10, customers // 100)
    connection.execute(AGE_MODEL_DDL.format(
        name="X4",
        algorithm=f"Microsoft_Decision_Trees("
                  f"MINIMUM_SUPPORT = {minimum_support})"))
    connection.execute(AGE_MODEL_TRAIN.format(name="X4"))
    workdir = tempfile.mkdtemp(prefix="x4_")
    try:
        pipeline = ExternalMiningPipeline(connection.database, workdir)
        pipeline.export_table(
            "SELECT [Customer ID], Gender, Age FROM Customers",
            "customers.csv")
        pipeline.export_table(
            "SELECT CustID, [Product Name], Quantity FROM Sales",
            "sales.csv")
        data_bytes = pipeline.stats.bytes_written
        model_path = os.path.join(workdir, "model.xml")
        connection.execute(f"EXPORT MINING MODEL [X4] TO '{model_path}'")
        model_bytes = os.path.getsize(model_path)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return data_bytes, model_bytes


@pytest.mark.parametrize("customers", SCALES)
def test_bench_x4_export(benchmark, customers):
    connection, _ = make_warehouse(customers)
    connection.execute(AGE_MODEL_DDL.format(
        name="X4", algorithm="Microsoft_Decision_Trees"))
    connection.execute(AGE_MODEL_TRAIN.format(name="X4"))
    workdir = tempfile.mkdtemp(prefix="x4_bench_")
    path = os.path.join(workdir, "model.xml")
    try:
        benchmark(connection.execute,
                  f"EXPORT MINING MODEL [X4] TO '{path}'")
        benchmark.extra_info.update({
            "customers": customers,
            "model_bytes": os.path.getsize(path)})
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def test_x4_model_growth_is_sublinear():
    rows = [(customers, *sizes_at(customers)) for customers in SCALES]
    print("\nX4: training-data bytes vs model (PMML) bytes")
    print(f"  {'customers':>10} {'data KiB':>10} {'model KiB':>10} "
          f"{'model/data':>10}")
    for customers, data_bytes, model_bytes in rows:
        print(f"  {customers:>10} {data_bytes / 1024:>10.0f} "
              f"{model_bytes / 1024:>10.0f} "
              f"{model_bytes / data_bytes:>10.2f}")
    data_growth = rows[-1][1] / rows[0][1]
    model_growth = rows[-1][2] / rows[0][2]
    assert data_growth > 10  # linear in customers (16x)
    assert model_growth < data_growth / 2, \
        "the model abstraction must grow much slower than the data"
