"""Fixtures for the experiment benchmarks (helpers live in _helpers.py)."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from _helpers import make_warehouse  # noqa: E402


@pytest.fixture
def warehouse_1k():
    connection, _ = make_warehouse(1000)
    yield connection
    connection.close()
