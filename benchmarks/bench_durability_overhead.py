"""Durability overhead — journal cost per statement, recovery time vs length.

Two questions the durable store must answer honestly:

1. **Write-path overhead**: how much does journal-append + fsync add to a
   mutating statement, absolute (ms/statement) and relative to the
   in-memory provider?  fsync dominates; the assertion is a generous
   absolute bound (25 ms/statement amortised) rather than a ratio, because
   an in-memory INSERT is microseconds and any fsync at all is a large
   multiple of that — the honest number to report is ms/statement.
2. **Recovery cost**: how does ``connect(durable_path=...)`` scale with
   journal length, and how much does a checkpoint cut it?  Recovery replays
   statements, so it is linear in the journal tail; the checkpointed
   variant must recover strictly faster than the full-journal one.

Run directly under pytest (no pytest-benchmark fixture needed):

    PYTHONPATH=src python -m pytest benchmarks/bench_durability_overhead.py -s

Set ``REPRO_BENCH_QUICK=1`` to shrink the workloads for CI smoke runs.
"""

import os
import time

import pytest

import repro

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
STATEMENTS = 60 if QUICK else 400
JOURNAL_LENGTHS = (20, 60) if QUICK else (50, 200, 400)
# Amortised per-statement budget for journal + fsync on CI-grade disks.
MAX_OVERHEAD_MS_PER_STATEMENT = 25.0


def _workload(n):
    statements = ["CREATE TABLE W (Id LONG, G TEXT, Age DOUBLE)"]
    statements += [
        f"INSERT INTO W VALUES ({i}, '{'m' if i % 2 else 'f'}', "
        f"{20 + i % 50}.0)" for i in range(n - 1)]
    return statements


def _run(statements, **kwargs):
    conn = repro.connect(**kwargs)
    started = time.perf_counter()
    for statement in statements:
        conn.execute(statement)
    elapsed = time.perf_counter() - started
    return conn, elapsed


def test_bench_journal_write_overhead(tmp_path):
    statements = _workload(STATEMENTS)
    memory_conn, memory_s = _run(statements)
    memory_conn.close()
    durable_conn, durable_s = _run(
        statements, durable_path=str(tmp_path / "store"),
        durable_checkpoint_interval=0)
    appends = durable_conn.provider.metrics.value("store.journal_appends")
    durable_conn.close()

    per_statement_ms = (durable_s - memory_s) / len(statements) * 1000
    print(f"\n[durability] {len(statements)} mutating statements: "
          f"in-memory {memory_s * 1000:.1f} ms, "
          f"durable {durable_s * 1000:.1f} ms "
          f"({per_statement_ms:.3f} ms/statement journal+fsync overhead, "
          f"{int(appends)} appends)")
    assert appends == len(statements)
    assert per_statement_ms < MAX_OVERHEAD_MS_PER_STATEMENT


@pytest.mark.parametrize("length", JOURNAL_LENGTHS)
def test_bench_recovery_time_vs_journal_length(tmp_path, length):
    path = str(tmp_path / f"store-{length}")
    conn, _ = _run(_workload(length), durable_path=path,
                   durable_checkpoint_interval=0)
    conn.close()

    started = time.perf_counter()
    recovered = repro.connect(durable_path=path)
    elapsed_ms = (time.perf_counter() - started) * 1000
    replayed = recovered.provider.recovery_info["replayed"]
    recovered.close()
    print(f"\n[recovery] journal length {length}: {elapsed_ms:.1f} ms "
          f"({replayed} statements replayed, "
          f"{elapsed_ms / max(1, replayed):.3f} ms/statement)")
    assert replayed == length


def test_bench_checkpoint_cuts_recovery(tmp_path):
    length = max(JOURNAL_LENGTHS)
    statements = _workload(length)

    full_path = str(tmp_path / "full")
    conn, _ = _run(statements, durable_path=full_path,
                   durable_checkpoint_interval=0)
    conn.close()

    checkpointed_path = str(tmp_path / "checkpointed")
    conn, _ = _run(statements, durable_path=checkpointed_path,
                   durable_checkpoint_interval=0)
    conn.provider.checkpoint()
    conn.close()

    def recovery_ms(path):
        started = time.perf_counter()
        recovered = repro.connect(durable_path=path)
        elapsed = (time.perf_counter() - started) * 1000
        replayed = recovered.provider.recovery_info["replayed"]
        recovered.close()
        return elapsed, replayed

    full_ms, full_replayed = recovery_ms(full_path)
    snap_ms, snap_replayed = recovery_ms(checkpointed_path)
    print(f"\n[checkpoint] recovery from {full_replayed}-statement journal "
          f"{full_ms:.1f} ms vs snapshot {snap_ms:.1f} ms "
          f"({full_ms / max(snap_ms, 0.001):.1f}x)")
    assert full_replayed == length and snap_replayed == 0
    assert snap_ms < full_ms
