"""Experiment C3 — flattened input "negatively impacts" mining quality.

Paper (section 3.1): "since the information about an entity instance is
scattered among multiple rows, the quality of output from data mining
algorithms is negatively impacted by such flattened representation."

Protocol: the same warehouse, the same algorithm, two representations.

* **nested** — one case per customer with the full purchase set
  (``TABLE([Product Name] ...)``), the paper's recommended shape;
* **flattened** — the model is trained on the Customers x Sales join, one
  row per purchase, so each customer is scattered over several rows; at
  prediction time an application must score each row and majority-vote.

Both are evaluated per *customer* on Age-bucket accuracy.  Expected shape:
nested >= flattened, because the flattened model never sees purchase
co-occurrence and over-weights heavy buyers.
"""

from collections import Counter, defaultdict

import pytest

from _helpers import AGE_MODEL_SCORE, make_warehouse

NESTED_DDL = """
CREATE MINING MODEL [C3 Nested] (
    [Customer ID] LONG KEY,
    [Gender]      TEXT DISCRETE,
    [Age]         DOUBLE DISCRETIZED(EQUAL_COUNT, 3) PREDICT,
    [Product Purchases] TABLE([Product Name] TEXT KEY)
) USING Microsoft_Decision_Trees
"""

NESTED_TRAIN = """
INSERT INTO [C3 Nested] ([Customer ID], [Gender], [Age],
    [Product Purchases]([Product Name]))
SHAPE {SELECT [Customer ID], Gender, Age FROM Customers
       ORDER BY [Customer ID]}
APPEND ({SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}
        RELATE [Customer ID] TO CustID) AS [Product Purchases]
"""

FLAT_DDL = """
CREATE MINING MODEL [C3 Flat] (
    [Row Id] LONG KEY,
    [Gender] TEXT DISCRETE,
    [Product Name] TEXT DISCRETE,
    [Age] DOUBLE DISCRETIZED(EQUAL_COUNT, 3) PREDICT
) USING Microsoft_Decision_Trees
"""

FLAT_TRAIN = """
INSERT INTO [C3 Flat] ([Row Id], [Gender], [Product Name], [Age])
SELECT s.CustID, c.Gender, s.[Product Name], c.Age
FROM Customers c JOIN Sales s ON c.[Customer ID] = s.CustID
"""

FLAT_SCORE = """
SELECT t.CustID, [C3 Flat].[Age] AS predicted
FROM [C3 Flat] NATURAL PREDICTION JOIN
    (SELECT s.CustID, c.Gender, s.[Product Name]
     FROM Customers c JOIN Sales s ON c.[Customer ID] = s.CustID) AS t
"""


@pytest.fixture(scope="module")
def prepared():
    connection, _ = make_warehouse(3000, seed=23)
    connection.execute(NESTED_DDL)
    connection.execute(FLAT_DDL)
    return connection


def per_customer_accuracy_nested(connection):
    from _helpers import bucket_accuracy
    return bucket_accuracy(connection, "C3 Nested")


def per_customer_accuracy_flat(connection):
    truth = dict(connection.execute(
        "SELECT [Customer ID], Age FROM Customers").rows)
    target = connection.model("C3 Flat").space.for_column("Age")
    scored = connection.execute(FLAT_SCORE)
    votes = defaultdict(Counter)
    for customer_id, predicted in scored.rows:
        votes[customer_id][predicted] += 1
    hits = 0
    for customer_id, counter in votes.items():
        majority = counter.most_common(1)[0][0]
        expected = target.discretizer.label(
            target.discretizer.bucket_of(truth[customer_id]))
        if majority == expected:
            hits += 1
    return hits / len(votes)


def test_bench_c3_train_nested(benchmark, prepared):
    def train():
        prepared.execute("DELETE FROM MINING MODEL [C3 Nested]")
        return prepared.execute(NESTED_TRAIN)

    cases = benchmark.pedantic(train, rounds=3, iterations=1)
    benchmark.extra_info["cases"] = cases


def test_bench_c3_train_flattened(benchmark, prepared):
    def train():
        prepared.execute("DELETE FROM MINING MODEL [C3 Flat]")
        return prepared.execute(FLAT_TRAIN)

    rows = benchmark.pedantic(train, rounds=3, iterations=1)
    benchmark.extra_info["training_rows"] = rows


def test_c3_nested_beats_flattened(prepared):
    if not prepared.model("C3 Nested").is_trained:
        prepared.execute(NESTED_TRAIN)
    if not prepared.model("C3 Flat").is_trained:
        prepared.execute(FLAT_TRAIN)
    nested = per_customer_accuracy_nested(prepared)
    flattened = per_customer_accuracy_flat(prepared)
    nested_cases = prepared.model("C3 Nested").case_count
    flat_rows = prepared.model("C3 Flat").case_count
    print("\nC3: representation vs per-customer Age-bucket accuracy")
    print(f"  nested caseset  : {nested_cases:5d} cases -> "
          f"accuracy {nested:.1%}")
    print(f"  flattened join  : {flat_rows:5d} rows  -> "
          f"accuracy {flattened:.1%} (majority vote per customer)")
    assert nested >= flattened, \
        "the paper's claim should hold on the planted-signal warehouse"
