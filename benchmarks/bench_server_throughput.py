"""Server throughput — concurrent sessions driving a mixed statement load.

The acceptance claim for the network layer: the thread-per-session server
sustains at least 8 concurrent sessions running a mixed SELECT /
PREDICTION JOIN / journaled-INSERT / streaming workload with

* zero statement errors and zero protocol-level thread errors,
* p50/p99 statement latency reported from the provider's own metrics
  registry (``statements.latency_ms`` — the same histogram operators see
  in ``$SYSTEM.DM_PROVIDER_METRICS``),
* a clean drain: no sessions left active, no ``dmx-*`` threads alive,
* and an intact durable journal — concurrent wire mutations serialize
  through the store, so recovery replays them all without corruption.

Run directly under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_server_throughput.py -s

Set ``REPRO_BENCH_QUICK=1`` to shrink the workload for CI smoke runs.
"""

import os
import threading
import time

import repro
from repro.client import connect as net_connect
from repro.server import DmxServer
from repro.store.journal import read_journal

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SESSIONS = 8
ROUNDS = 4 if QUICK else 25


def _seed(conn):
    conn.execute("CREATE TABLE Load (pid INT, sex TEXT, age INT, "
                 "buys TEXT)")
    conn.execute("INSERT INTO Load VALUES " + ", ".join(
        f"({i}, '{'m' if i % 2 else 'f'}', {20 + i % 40}, "
        f"'{'yes' if i % 3 else 'no'}')" for i in range(1, 121)))
    conn.execute("CREATE MINING MODEL LoadNB (pid LONG KEY, "
                 "sex TEXT DISCRETE, buys TEXT DISCRETE PREDICT) "
                 "USING Repro_Naive_Bayes")
    conn.execute("INSERT INTO LoadNB (pid, sex, buys) "
                 "SELECT pid, sex, buys FROM Load")
    conn.execute("CREATE TABLE Sink (worker INT, round INT)")


def _session_body(port, index, rounds, failures, counts):
    executed = 0
    try:
        with net_connect("127.0.0.1", port) as client:
            for round_no in range(rounds):
                client.execute(
                    f"SELECT pid, age FROM Load WHERE age > {round_no % 40}")
                client.execute(
                    f"SELECT t.pid, LoadNB.buys FROM LoadNB NATURAL "
                    f"PREDICTION JOIN (SELECT pid, sex FROM Load "
                    f"WHERE pid <= 25) AS t")
                client.execute(
                    f"INSERT INTO Sink VALUES ({index}, {round_no})")
                list(client.execute_stream(
                    "SELECT pid FROM Load", batch_size=16))
                executed += 4
    except BaseException as exc:  # noqa: BLE001 - reported via the assert
        failures.append((index, exc))
    counts[index] = executed


def test_bench_server_throughput(tmp_path):
    conn = repro.connect(durable_path=str(tmp_path / "store"),
                         durable_checkpoint_interval=0)
    _seed(conn)
    server = DmxServer(conn.provider, port=0,
                       max_sessions=SESSIONS + 2)
    failures, counts = [], {}
    threads = [threading.Thread(target=_session_body,
                                args=(server.port, i, ROUNDS,
                                      failures, counts))
               for i in range(SESSIONS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - started
    assert not failures, failures

    metrics = conn.provider.metrics
    latency = metrics.histogram("statements.latency_ms")
    total = sum(counts.values())
    print(f"\n[server] {SESSIONS} sessions x {ROUNDS} rounds: "
          f"{total} statements in {elapsed:.2f} s "
          f"({total / elapsed:.0f} stmt/s aggregate), "
          f"latency p50 {latency.percentile(0.5):.2f} ms / "
          f"p99 {latency.percentile(0.99):.2f} ms, "
          f"bytes in {metrics.value('server.bytes_in'):.0f} / "
          f"out {metrics.value('server.bytes_out'):.0f}")

    # No errors anywhere: statements, sessions, server threads.
    assert metrics.value("statements.errors") == 0
    assert metrics.value("server.sessions_total") >= SESSIONS
    assert latency.percentile(0.99) is not None

    server.close()
    assert server.thread_errors == []
    assert metrics.value("server.sessions_active") == 0
    leftovers = [t for t in threading.enumerate()
                 if t.name.startswith("dmx-") and t.is_alive()]
    assert leftovers == []

    # The journal survived concurrent wire mutations: every record parses
    # and a fresh provider replays to the full row count.
    records, torn, _ = read_journal(conn.provider.store.journal_path)
    assert torn == 0
    assert len(records) >= SESSIONS * ROUNDS
    conn.close()

    recovered = repro.connect(durable_path=str(tmp_path / "store"))
    try:
        rows = recovered.execute("SELECT COUNT(*) AS n FROM Sink").rows
        assert rows[0][0] == SESSIONS * ROUNDS
    finally:
        recovered.close()
