"""Streaming pipeline — peak memory and wall-clock vs. materialize-all.

The tentpole claim of the streaming refactor: a PREDICTION JOIN over a
100k-row source runs in O(batch) memory when drained through
``Connection.execute_stream``, against O(N) for the classic
materialize-everything path (emulated with one giant batch).  Measured with
``tracemalloc`` around query execution only (data loading excluded); the
acceptance bar is a >=5x peak-memory reduction with wall-clock no worse.

Run directly under pytest (no pytest-benchmark fixture needed):

    PYTHONPATH=src python -m pytest benchmarks/bench_streaming_pipeline.py -s

Set ``REPRO_BENCH_QUICK=1`` to shrink the source to 10k rows for CI smoke
runs (same assertions, ~seconds).
"""

import os
import time
import tracemalloc

import pytest

import repro

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SOURCE_ROWS = 10_000 if QUICK else 100_000
# The streaming peak is a constant ~1.4 MiB regardless of source size, so
# the achievable ratio shrinks with the quick-mode source; the 5x
# acceptance bar applies at the full 100k scale.
MIN_MEMORY_RATIO = 3.0 if QUICK else 5.0
TRAIN_ROWS = 500
STREAM_BATCH = 1024

MODEL_DDL = ("CREATE MINING MODEL Churn (cid LONG KEY, "
             "age LONG CONTINUOUS, visits LONG CONTINUOUS, "
             "grade TEXT DISCRETE PREDICT) USING Microsoft_Decision_Trees")
TRAIN = ("INSERT INTO Churn (cid, age, visits, grade) "
         "SELECT cid, age, visits, grade FROM TrainCases")
PREDICT = ("SELECT t.cid, Churn.grade FROM Churn "
           "NATURAL PREDICTION JOIN Visitors AS t")


def _case_row(index):
    age = 18 + index % 60
    visits = (index * 7) % 40
    grade = "gold" if (age + visits) % 3 == 0 else "base"
    return (index, age, visits, grade)


def _make_connection(batch_size):
    """Provider with TrainCases/Visitors loaded via direct table inserts."""
    conn = repro.connect(batch_size=batch_size, caseset_cache_capacity=0)
    conn.execute("CREATE TABLE TrainCases (cid INT, age INT, visits INT, "
                 "grade TEXT)")
    conn.execute("CREATE TABLE Visitors (cid INT, age INT, visits INT)")
    conn.database.table("TrainCases").insert_many(
        _case_row(i) for i in range(TRAIN_ROWS))
    conn.database.table("Visitors").insert_many(
        _case_row(i)[:3] for i in range(SOURCE_ROWS))
    conn.execute(MODEL_DDL)
    conn.execute(TRAIN)
    return conn


def _measure(run):
    """(peak tracemalloc bytes, wall seconds, rows produced) of run()."""
    tracemalloc.start()
    started = time.perf_counter()
    rows = run()
    elapsed = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, elapsed, rows


@pytest.fixture(scope="module")
def connections():
    streaming = _make_connection(STREAM_BATCH)
    materialized = _make_connection(10 ** 9)
    yield streaming, materialized
    streaming.close()
    materialized.close()


def test_streaming_prediction_join_memory_and_time(connections):
    streaming, materialized = connections

    def run_streaming():
        stream = streaming.execute_stream(PREDICT)
        return sum(len(batch) for batch in stream.batches())

    def run_materialized():
        return len(materialized.execute(PREDICT))

    # Warm both paths once so lazy imports/compiles don't skew either side.
    assert run_streaming() == SOURCE_ROWS
    assert run_materialized() == SOURCE_ROWS

    stream_peak, stream_time, stream_rows = _measure(run_streaming)
    mat_peak, mat_time, mat_rows = _measure(run_materialized)
    assert stream_rows == mat_rows == SOURCE_ROWS

    ratio = mat_peak / max(stream_peak, 1)
    print()
    print(f"Streaming pipeline: PREDICTION JOIN over {SOURCE_ROWS:,} rows"
          f"{' (quick mode)' if QUICK else ''}")
    print(f"  materialized peak : {mat_peak / 1024 / 1024:7.2f} MiB "
          f"in {mat_time:6.2f} s")
    print(f"  streaming peak    : {stream_peak / 1024 / 1024:7.2f} MiB "
          f"in {stream_time:6.2f} s  (batch={STREAM_BATCH})")
    print(f"  peak-memory ratio : {ratio:.1f}x")

    assert ratio >= MIN_MEMORY_RATIO, (
        f"expected >={MIN_MEMORY_RATIO}x peak-memory reduction, "
        f"got {ratio:.1f}x ({mat_peak} vs {stream_peak} bytes)")
    # Wall-clock no worse; generous slack absorbs scheduler noise.
    assert stream_time <= mat_time * 1.25, (
        f"streaming slower than materialized: "
        f"{stream_time:.2f}s vs {mat_time:.2f}s")


def test_streaming_select_scan_memory(connections):
    """Plain SELECT scans stream in O(batch) as well."""
    streaming, materialized = connections
    query = "SELECT cid, age + visits AS load FROM Visitors WHERE age > 20"

    def run_streaming():
        stream = streaming.execute_stream(query)
        return sum(len(batch) for batch in stream.batches())

    def run_materialized():
        return len(materialized.execute(query))

    expected = run_streaming()
    assert run_materialized() == expected

    stream_peak, _, _ = _measure(run_streaming)
    mat_peak, _, _ = _measure(run_materialized)
    ratio = mat_peak / max(stream_peak, 1)
    print(f"\n  SELECT scan peak-memory ratio: {ratio:.1f}x "
          f"({mat_peak / 1024:,.0f} KiB vs {stream_peak / 1024:,.0f} KiB)")
    assert ratio >= MIN_MEMORY_RATIO
