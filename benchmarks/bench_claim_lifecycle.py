"""Experiment C2 — "deployment becomes as easy as writing SQL queries".

Paper (section 2): the four key operations on a mining model — define,
populate, predict, browse — each map to one SQL-metaphor statement.  This
bench times each single-statement operation on a 2000-customer warehouse,
plus the management statements (DELETE FROM = reset, DROP), regenerating
the life-cycle table of DESIGN.md.
"""

import pytest

from _helpers import (
    AGE_MODEL_DDL,
    AGE_MODEL_SCORE,
    AGE_MODEL_TRAIN,
    make_warehouse,
)

PREDICT_ONE = """
SELECT [{name}].[Age] FROM [{name}] NATURAL PREDICTION JOIN
    (SELECT 'Male' AS Gender) AS t
"""


@pytest.fixture(scope="module")
def trained():
    connection, _ = make_warehouse(2000)
    connection.execute(AGE_MODEL_DDL.format(
        name="C2", algorithm="Microsoft_Decision_Trees"))
    connection.execute(AGE_MODEL_TRAIN.format(name="C2"))
    return connection


def test_bench_c2_define(benchmark):
    connection, _ = make_warehouse(1)
    state = {"round": 0}

    def define():
        name = f"C2 def {state['round']}"
        state["round"] += 1
        connection.execute(AGE_MODEL_DDL.format(
            name=name, algorithm="Microsoft_Decision_Trees"))

    benchmark.pedantic(define, rounds=20, iterations=1)


def test_bench_c2_populate(benchmark):
    connection, _ = make_warehouse(2000)
    connection.execute(AGE_MODEL_DDL.format(
        name="C2", algorithm="Microsoft_Decision_Trees"))

    def populate():
        connection.execute("DELETE FROM MINING MODEL [C2]")
        return connection.execute(AGE_MODEL_TRAIN.format(name="C2"))

    count = benchmark.pedantic(populate, rounds=3, iterations=1)
    assert count == 2000
    benchmark.extra_info["cases"] = count


def test_bench_c2_predict_batch(benchmark, trained):
    result = benchmark(trained.execute, AGE_MODEL_SCORE.format(name="C2"))
    assert len(result) == 2000
    benchmark.extra_info["cases"] = len(result)


def test_bench_c2_predict_singleton(benchmark, trained):
    result = benchmark(trained.execute, PREDICT_ONE.format(name="C2"))
    assert len(result) == 1


def test_bench_c2_browse_content(benchmark, trained):
    result = benchmark(trained.execute, "SELECT * FROM [C2].CONTENT")
    assert len(result) >= 2
    benchmark.extra_info["nodes"] = len(result)


def test_c2_each_operation_is_one_statement(trained):
    """The qualitative claim itself: one statement per life-cycle step."""
    operations = {
        "define": AGE_MODEL_DDL.format(name="C2 X",
                                       algorithm="Decision_Trees_101"),
        "populate": AGE_MODEL_TRAIN.format(name="C2 X"),
        "predict": AGE_MODEL_SCORE.format(name="C2 X"),
        "browse": "SELECT * FROM [C2 X].CONTENT",
        "reset": "DELETE FROM MINING MODEL [C2 X]",
        "drop": "DROP MINING MODEL [C2 X]",
    }
    from repro.core.provider import split_statements
    print("\nC2: one statement per operation")
    for operation, statement in operations.items():
        assert len(split_statements(statement)) == 1
        trained.execute(statement)
        print(f"  {operation:8s}: OK (single statement)")
