"""Parallel pipeline — partitioned training & prediction vs. serial.

The tentpole claim of the parallel execution subsystem: training a
parallelizable model (naive Bayes over an all-categorical space) and running
a PREDICTION JOIN over a 100k-row source both speed up with ``WITH MAXDOP``
workers while producing **byte-identical** output — same model content
rowset, same prediction rows in the same order.

Equivalence is asserted unconditionally on every run.  The speedup bar
(>=1.5x at 4 workers) only applies when the host actually exposes >=4 CPU
cores; on smaller machines the benchmark still runs, still proves
equivalence, and reports the measured (possibly <1x) ratio without failing.

Run directly under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_pipeline.py -s

Set ``REPRO_BENCH_QUICK=1`` to shrink the workload for CI smoke runs.
"""

import multiprocessing
import os
import time

import pytest

import repro
from repro.sqlstore.rowset import Rowset

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
TRAIN_ROWS = 10_000 if QUICK else 100_000
PREDICT_ROWS = 5_000 if QUICK else 50_000
WORKERS = 4
MIN_SPEEDUP = 1.5

try:
    CORES = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux fallback
    CORES = os.cpu_count() or 1
ENFORCE_SPEEDUP = CORES >= WORKERS
POOL_MODE = ("process"
             if "fork" in multiprocessing.get_all_start_methods()
             else "thread")

MODEL_DDL = ("CREATE MINING MODEL Upsell (cid LONG KEY, "
             "region TEXT DISCRETE, tier TEXT DISCRETE, "
             "channel TEXT DISCRETE, buys TEXT DISCRETE PREDICT) "
             "USING Repro_Naive_Bayes")
TRAIN = ("INSERT INTO Upsell (cid, region, tier, channel, buys) "
         "SELECT cid, region, tier, channel, buys FROM TrainCases")
PREDICT = ("SELECT t.cid, Upsell.buys, PredictProbability(buys) "
           "FROM Upsell NATURAL PREDICTION JOIN Prospects AS t")

REGIONS = ("north", "south", "east", "west", "central")
TIERS = ("free", "plus", "pro")
CHANNELS = ("web", "store", "phone", "partner")


def _case_row(index):
    region = REGIONS[index % len(REGIONS)]
    tier = TIERS[(index // 3) % len(TIERS)]
    channel = CHANNELS[(index * 7) % len(CHANNELS)]
    buys = "yes" if (index % 5 + index % 3) % 2 == 0 else "no"
    return (index, region, tier, channel, buys)


def _canonical(rowset):
    columns = [(c.name, c.type.name if c.type is not None else None)
               for c in rowset.columns]
    rows = [tuple(_canonical(v) if isinstance(v, Rowset) else v for v in row)
            for row in rowset.rows]
    return columns, rows


def _make_connection(max_workers):
    conn = repro.connect(max_workers=max_workers, pool_mode=POOL_MODE,
                         caseset_cache_capacity=0)
    conn.execute("CREATE TABLE TrainCases (cid INT, region TEXT, tier TEXT, "
                 "channel TEXT, buys TEXT)")
    conn.execute("CREATE TABLE Prospects (cid INT, region TEXT, tier TEXT, "
                 "channel TEXT)")
    conn.database.table("TrainCases").insert_many(
        _case_row(i) for i in range(TRAIN_ROWS))
    conn.database.table("Prospects").insert_many(
        _case_row(i)[:4] for i in range(PREDICT_ROWS))
    conn.execute(MODEL_DDL)
    return conn


def _timed(run):
    started = time.perf_counter()
    result = run()
    return time.perf_counter() - started, result


def _pool_metric(conn, name):
    rows = conn.execute(
        "SELECT METRIC, VALUE FROM $SYSTEM.DM_PROVIDER_METRICS").rows
    for metric, value in rows:
        if metric == name:
            return value
    return 0.0


@pytest.fixture(scope="module")
def connections():
    serial = _make_connection(max_workers=1)
    parallel = _make_connection(max_workers=WORKERS)
    yield serial, parallel
    serial.close()
    parallel.close()


def test_parallel_train_and_predict_equivalent_and_fast(connections):
    serial, parallel = connections

    serial_train, _ = _timed(lambda: serial.execute(TRAIN))
    parallel_train, _ = _timed(
        lambda: parallel.execute(TRAIN + f" WITH MAXDOP {WORKERS}"))
    # The parallel provider must actually have gone parallel, not fallen back.
    assert _pool_metric(parallel, "pool.parallel_statements.train") == 1.0
    assert _pool_metric(parallel, "pool.serial_fallbacks") == 0.0

    # Byte-identical model content: same rows, same order, same types.
    content_q = "SELECT * FROM Upsell.CONTENT"
    assert _canonical(serial.execute(content_q)) == \
        _canonical(parallel.execute(content_q))

    serial_predict, serial_rows = _timed(lambda: serial.execute(PREDICT))
    parallel_predict, parallel_rows = _timed(lambda: parallel.execute(PREDICT))
    assert _pool_metric(parallel, "pool.parallel_statements.predict") >= 1.0

    # Byte-identical predictions: same rows in the same order.
    assert _canonical(serial_rows) == _canonical(parallel_rows)
    assert len(serial_rows.rows) == PREDICT_ROWS

    train_ratio = serial_train / max(parallel_train, 1e-9)
    predict_ratio = serial_predict / max(parallel_predict, 1e-9)
    print()
    print(f"Parallel pipeline: {TRAIN_ROWS:,} train rows, "
          f"{PREDICT_ROWS:,} predict rows, {WORKERS} workers "
          f"({POOL_MODE} mode, {CORES} core(s) visible)"
          f"{' (quick mode)' if QUICK else ''}")
    print(f"  train   serial {serial_train:6.2f} s | "
          f"parallel {parallel_train:6.2f} s | {train_ratio:4.2f}x")
    print(f"  predict serial {serial_predict:6.2f} s | "
          f"parallel {parallel_predict:6.2f} s | {predict_ratio:4.2f}x")
    print(f"  outputs byte-identical: content + {PREDICT_ROWS:,} "
          f"prediction rows")
    if ENFORCE_SPEEDUP:
        assert max(train_ratio, predict_ratio) >= MIN_SPEEDUP, (
            f"expected >={MIN_SPEEDUP}x on a {CORES}-core host, got "
            f"train {train_ratio:.2f}x / predict {predict_ratio:.2f}x")
    else:
        print(f"  speedup bar skipped: only {CORES} core(s) visible "
              f"(needs >={WORKERS})")
