"""Experiment T1 — Table 1: nested caseset vs. flattened 3-way join.

Paper (section 3.1): joining Customers x Product Purchases x Car Ownership
for Customer ID 1 "will return a table of 12 rows" containing "lots of
replication", while the nested representation is a single case (Table 1).

Measured here: Table 1's own data (4 purchases x 2 cars x 1 customer)
actually joins to 8 rows, not 12 — the paper's only quantitative claim has
an arithmetic slip; the replication point stands (8x for this customer and
growing multiplicatively with the number of nested facts).  The bench also
times both constructions at warehouse scale.
"""

import pytest

import repro
from repro.datagen import WarehouseConfig, load_warehouse

FLATTEN_JOIN = """
    SELECT c.[Customer ID], c.Gender, c.[Hair Color], c.Age, c.[Age Prob],
           s.[Product Name], s.Quantity, s.[Product Type],
           o.Car, o.[Car Prob]
    FROM Customers c
    JOIN Sales s ON c.[Customer ID] = s.CustID
    JOIN [Car Ownership] o ON c.[Customer ID] = o.CustID
    {where}
"""

NESTED_SHAPE = """
    SHAPE {{SELECT [Customer ID], Gender, [Hair Color], Age, [Age Prob]
            FROM Customers {where}}}
    APPEND ({{SELECT CustID, [Product Name], Quantity, [Product Type]
              FROM Sales}} RELATE [Customer ID] TO CustID)
           AS [Product Purchases],
           ({{SELECT CustID, Car, [Car Prob] FROM [Car Ownership]}}
            RELATE [Customer ID] TO CustID) AS [Car Ownership]
"""


@pytest.fixture(scope="module")
def paper_connection():
    connection = repro.connect()
    load_warehouse(connection.database, WarehouseConfig(customers=1))
    return connection


@pytest.fixture(scope="module")
def scaled_connection():
    connection = repro.connect()
    load_warehouse(connection.database, WarehouseConfig(customers=2000))
    return connection


def test_table1_row_counts(paper_connection):
    """The headline numbers of Table 1, printed paper-vs-measured."""
    flattened = paper_connection.execute(
        FLATTEN_JOIN.format(where="WHERE c.[Customer ID] = 1"))
    nested = paper_connection.execute(
        NESTED_SHAPE.format(where="WHERE [Customer ID] = 1"))
    print()
    print("T1: representation of Customer ID 1 (paper Table 1)")
    print(f"  flattened 3-way join rows : measured {len(flattened):2d} "
          f"(paper claims 12; 4 purchases x 2 cars = 8)")
    print(f"  nested caseset rows       : measured {len(nested):2d} "
          f"(paper: 1 case)")
    case = dict(zip(nested.column_names(), nested.rows[0]))
    print(f"  nested purchases          : "
          f"{[r['Product Name'] for r in case['Product Purchases'].to_dicts()]}")
    print(f"  nested cars               : "
          f"{[(r['Car'], r['Car Prob']) for r in case['Car Ownership'].to_dicts()]}")
    assert len(flattened) == 8
    assert len(nested) == 1
    # Replication: every scalar of the customer is repeated 8 times.
    assert flattened.column_values("Gender") == ["Male"] * 8


def test_bench_flattened_join(benchmark, scaled_connection):
    result = benchmark(
        scaled_connection.execute, FLATTEN_JOIN.format(where=""))
    benchmark.extra_info["rows"] = len(result)


def test_bench_nested_shape(benchmark, scaled_connection):
    result = benchmark(
        scaled_connection.execute, NESTED_SHAPE.format(where=""))
    benchmark.extra_info["rows"] = len(result)


def test_replication_grows_with_nested_facts(scaled_connection):
    """The flattened form is multiplicatively larger than the caseset."""
    flattened = scaled_connection.execute(FLATTEN_JOIN.format(where=""))
    nested = scaled_connection.execute(NESTED_SHAPE.format(where=""))
    ratio = len(flattened) / len(nested)
    print(f"\nT1 at 2000 customers: {len(flattened)} flattened rows vs "
          f"{len(nested)} cases ({ratio:.1f}x replication)")
    assert ratio > 2.0
