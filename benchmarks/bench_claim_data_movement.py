"""Experiment C1 — the data-movement claim of section 1/2.

Paper: mining outside the DBMS means "data is dumped or sampled out of the
database, and then a series of Perl, Awk, and special purpose programs are
used for data preparation ... a large trail of droppings in the file
system", while in-provider mining "avoids excessive data movement ...
resulting in better performance and manageability".

This bench runs the identical define/train/predict workload both ways at
several warehouse scales:

* **in-provider** — two DMX statements, zero bytes through the file system;
* **external**    — export Customers+Sales to CSV, prepare a case file with
  line processing, train/score the same algorithm outside, write a
  predictions file and re-import it.

Reported per scale: wall-clock for each path, plus the external path's file
count and bytes moved.  The predictions are identical (same algorithm, same
data), so every byte and second of difference is pure integration overhead
— the paper's point.
"""

import shutil
import tempfile

import pytest

from repro.baseline import run_external_pipeline, run_in_provider_pipeline

from _helpers import make_warehouse

SCALES = [500, 2000, 5000]


@pytest.mark.parametrize("customers", SCALES)
def test_bench_c1_in_provider(benchmark, customers):
    connection, _ = make_warehouse(customers)

    state = {"round": 0}

    def run():
        name = f"C1 InDb {state['round']}"
        state["round"] += 1
        return run_in_provider_pipeline(connection.provider,
                                        model_name=name)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) == customers
    benchmark.extra_info.update({
        "customers": customers, "files_written": 0, "bytes_moved": 0})


@pytest.mark.parametrize("customers", SCALES)
def test_bench_c1_external_pipeline(benchmark, customers):
    connection, _ = make_warehouse(customers)
    state = {"round": 0}

    def run():
        workdir = tempfile.mkdtemp(prefix="c1_external_")
        name = f"C1 Ext {state['round']}"
        state["round"] += 1
        result, stats = run_external_pipeline(connection.provider, workdir,
                                              model_name=name)
        shutil.rmtree(workdir, ignore_errors=True)
        state["stats"] = stats
        return result

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) == customers
    stats = state["stats"]
    benchmark.extra_info.update({
        "customers": customers,
        "files_written": len(stats.files_written),
        "bytes_moved": stats.bytes_written})
    print(f"\nC1 external @ {customers} customers: "
          f"{len(stats.files_written)} file droppings, "
          f"{stats.bytes_written / 1024:.0f} KiB moved through the file "
          f"system")


def test_c1_predictions_identical_across_paths():
    """Same algorithm + same data => the comparison isolates integration."""
    connection, _ = make_warehouse(800)
    in_db = run_in_provider_pipeline(connection.provider, "C1 Same InDb")
    workdir = tempfile.mkdtemp(prefix="c1_same_")
    try:
        external, _ = run_external_pipeline(connection.provider, workdir,
                                            model_name="C1 Same Ext")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    in_db_map = {k: str(v) for k, v in in_db.rows}
    external_map = {k: str(v) for k, v in external.rows}
    assert in_db_map == external_map
