"""Shared helpers for the experiment benchmarks."""

import repro
from repro.datagen import WarehouseConfig, load_warehouse

AGE_MODEL_DDL = """
CREATE MINING MODEL [{name}] (
    [Customer ID] LONG KEY,
    [Gender]      TEXT DISCRETE,
    [Age]         DOUBLE DISCRETIZED(EQUAL_COUNT, 3) PREDICT,
    [Product Purchases] TABLE([Product Name] TEXT KEY)
) USING {algorithm}
"""

AGE_MODEL_TRAIN = """
INSERT INTO [{name}] ([Customer ID], [Gender], [Age],
    [Product Purchases]([Product Name]))
SHAPE {{SELECT [Customer ID], Gender, Age FROM Customers
        ORDER BY [Customer ID]}}
APPEND ({{SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}}
        RELATE [Customer ID] TO CustID) AS [Product Purchases]
"""

AGE_MODEL_SCORE = """
SELECT t.[Customer ID], [{name}].[Age] AS predicted
FROM [{name}] NATURAL PREDICTION JOIN
    (SHAPE {{SELECT [Customer ID], Gender FROM Customers
             ORDER BY [Customer ID]}}
     APPEND ({{SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}}
             RELATE [Customer ID] TO CustID) AS [Product Purchases]) AS t
"""


def make_warehouse(customers, seed=7, **connect_kwargs):
    """Fresh connection with a generated warehouse loaded."""
    connection = repro.connect(**connect_kwargs)
    data = load_warehouse(connection.database,
                          WarehouseConfig(customers=customers, seed=seed))
    return connection, data


def bucket_accuracy(connection, model_name):
    """Share of customers whose predicted Age bucket matches the truth."""
    truth = dict(connection.execute(
        "SELECT [Customer ID], Age FROM Customers").rows)
    target = connection.model(model_name).space.for_column("Age")
    scored = connection.execute(AGE_MODEL_SCORE.format(name=model_name))
    hits = 0
    for customer_id, predicted in scored.rows:
        expected = target.discretizer.label(
            target.discretizer.bucket_of(truth[customer_id]))
        if predicted == expected:
            hits += 1
    return hits / len(scored)
