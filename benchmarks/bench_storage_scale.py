"""Storage scale — larger-than-memory behaviour of the paged row store.

Three questions the paged store must answer honestly:

1. **Load throughput under spill**: how fast do inserts land when the
   buffer pool holds only a small fraction of the table (every page cycles
   through eviction + flush)?  Reported as rows/s, plus the eviction and
   flush counts that prove the run really was larger than memory.
2. **Scan cost under spill**: what does a full scan cost when nearly every
   page is a buffer miss, versus the in-memory list store?  Both scans
   must return identical results — the differential suites pin bytes;
   here we pin the throughput story.
3. **Seek vs scan**: an index point-seek touches O(1) pages; it must beat
   the full scan outright once the table spans many pages — this is the
   whole reason the indexes exist.

Run directly under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_storage_scale.py -s

Set ``REPRO_BENCH_QUICK=1`` to shrink the workload for CI smoke runs.
"""

import os
import time

import repro

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
ROWS = 2_000 if QUICK else 20_000
INSERT_CHUNK = 200
BUFFER_PAGES = 8
PAGE_BYTES = 4096
SEEK_PROBES = 30 if QUICK else 100


def _load(conn):
    conn.execute("CREATE TABLE Big (id INT, grp INT, payload TEXT)")
    started = time.perf_counter()
    for start in range(0, ROWS, INSERT_CHUNK):
        conn.execute("INSERT INTO Big VALUES " + ", ".join(
            f"({i}, {i % 97}, 'payload-{i:07d}-" + "x" * 40 + "')"
            for i in range(start, min(start + INSERT_CHUNK, ROWS))))
    return time.perf_counter() - started


def _scan_seconds(conn):
    started = time.perf_counter()
    rows = conn.execute("SELECT id, grp FROM Big").rows
    elapsed = time.perf_counter() - started
    return elapsed, rows


def test_bench_spill_load_and_scan(tmp_path):
    memory = repro.connect()
    memory_load_s = _load(memory)

    paged = repro.connect(storage_path=str(tmp_path / "store"),
                          buffer_pages=BUFFER_PAGES,
                          storage_page_bytes=PAGE_BYTES)
    paged_load_s = _load(paged)
    pool = paged.provider.storage.pool
    table_pages = len(paged.database.table("Big").store.handles)
    assert table_pages > 2 * BUFFER_PAGES, (
        f"benchmark is not larger-than-memory: {table_pages} pages vs "
        f"{BUFFER_PAGES}-frame pool")
    assert pool.evictions > 0 and pool.flushes > 0

    memory_scan_s, memory_rows = _scan_seconds(memory)
    paged_scan_s, paged_rows = _scan_seconds(paged)
    assert paged_rows == memory_rows

    print(f"\n[storage] {ROWS} rows, {table_pages} pages, "
          f"{BUFFER_PAGES}-frame pool "
          f"(evictions={pool.evictions}, flushes={pool.flushes})")
    print(f"[storage] load: memory {ROWS / memory_load_s:,.0f} rows/s, "
          f"paged+spill {ROWS / paged_load_s:,.0f} rows/s "
          f"({paged_load_s / memory_load_s:.1f}x)")
    print(f"[storage] scan: memory {memory_scan_s * 1000:.1f} ms, "
          f"paged+spill {paged_scan_s * 1000:.1f} ms "
          f"({paged_scan_s / max(memory_scan_s, 1e-9):.1f}x)")

    memory.close()
    paged.close()


def test_bench_index_seek_beats_scan_under_spill(tmp_path):
    paged = repro.connect(storage_path=str(tmp_path / "store"),
                          buffer_pages=BUFFER_PAGES,
                          storage_page_bytes=PAGE_BYTES)
    _load(paged)
    paged.execute("CREATE INDEX IX_ID ON Big (id)")

    scan_s, _ = _scan_seconds(paged)

    probes = [(i * 7919) % ROWS for i in range(SEEK_PROBES)]
    started = time.perf_counter()
    for probe in probes:
        rows = paged.execute(
            f"SELECT payload FROM Big WHERE id = {probe}").rows
        assert len(rows) == 1
    seek_s = (time.perf_counter() - started) / len(probes)

    seeks = paged.provider.metrics.value("index.seeks")
    print(f"\n[storage] point seek {seek_s * 1000:.3f} ms vs full scan "
          f"{scan_s * 1000:.1f} ms ({scan_s / max(seek_s, 1e-9):.0f}x, "
          f"{int(seeks)} index seeks)")
    assert seeks >= len(probes)
    # The seek touches O(1) pages; the scan touches all of them.  Even on
    # noisy CI hardware an order-of-magnitude gap is a safe floor once the
    # table spans dozens of pages.
    assert seek_s < scan_s, "index seek slower than a full spilled scan"

    paged.close()
