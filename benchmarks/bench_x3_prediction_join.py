"""Experiment X3 — PREDICTION JOIN throughput.

Times the prediction surface end-to-end (section 3.3): batch NATURAL joins,
batch explicit-ON joins (the paper's own query shape), singleton lookups,
and UDF-heavy projections.  Reported: cases/second per form.
"""

import pytest

from _helpers import AGE_MODEL_DDL, AGE_MODEL_TRAIN, make_warehouse

NATURAL_BATCH = """
SELECT t.[Customer ID], [X3].[Age]
FROM [X3] NATURAL PREDICTION JOIN
    (SHAPE {SELECT [Customer ID], Gender FROM Customers
            ORDER BY [Customer ID]}
     APPEND ({SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}
             RELATE [Customer ID] TO CustID) AS [Product Purchases]) AS t
"""

ON_BATCH = """
SELECT t.[Customer ID], [X3].[Age]
FROM [X3] PREDICTION JOIN
    (SHAPE {SELECT [Customer ID], Gender FROM Customers
            ORDER BY [Customer ID]}
     APPEND ({SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}
             RELATE [Customer ID] TO CustID) AS [Product Purchases]) AS t
ON [X3].Gender = t.Gender AND
   [X3].[Product Purchases].[Product Name] =
       t.[Product Purchases].[Product Name]
"""

SINGLETON = """
SELECT [X3].[Age] FROM [X3] NATURAL PREDICTION JOIN
    (SELECT 'Female' AS Gender) AS t
"""

UDF_HEAVY = """
SELECT t.[Customer ID], [X3].[Age], PredictProbability([Age]),
       PredictSupport([Age]), PredictHistogram([Age]),
       RangeMid([Age])
FROM [X3] NATURAL PREDICTION JOIN
    (SELECT [Customer ID], Gender FROM Customers
     ORDER BY [Customer ID]) AS t
"""


@pytest.fixture(scope="module")
def trained():
    connection, _ = make_warehouse(2000)
    connection.execute(AGE_MODEL_DDL.format(
        name="X3", algorithm="Microsoft_Decision_Trees"))
    connection.execute(AGE_MODEL_TRAIN.format(name="X3"))
    return connection


def test_bench_x3_natural_batch(benchmark, trained):
    result = benchmark(trained.execute, NATURAL_BATCH)
    assert len(result) == 2000
    benchmark.extra_info["cases"] = len(result)


def test_bench_x3_on_clause_batch(benchmark, trained):
    result = benchmark(trained.execute, ON_BATCH)
    assert len(result) == 2000
    benchmark.extra_info["cases"] = len(result)


def test_bench_x3_singleton(benchmark, trained):
    result = benchmark(trained.execute, SINGLETON)
    assert len(result) == 1


def test_bench_x3_udf_heavy_projection(benchmark, trained):
    result = benchmark(trained.execute, UDF_HEAVY)
    assert len(result) == 2000
    benchmark.extra_info["udfs_per_row"] = 4


def test_x3_natural_and_on_agree(trained):
    natural = trained.execute(NATURAL_BATCH)
    explicit = trained.execute(ON_BATCH)
    assert natural.rows == explicit.rows
    print(f"\nX3: NATURAL and explicit-ON joins agree on all "
          f"{len(natural)} cases")
