"""Experiment X2 — training scalability of the INSERT INTO path.

Sweeps the caseset size and times the full populate pipeline (SHAPE the
source tables -> bind -> encode -> train) for the two most-used services.
Expected shape: near-linear growth in the caseset size — the path streams
cases, it never materialises cross products.
"""

import pytest

from _helpers import AGE_MODEL_DDL, AGE_MODEL_TRAIN, make_warehouse

SCALES = [500, 1000, 2000, 4000, 8000]
SERVICES = ["Microsoft_Decision_Trees", "Microsoft_Naive_Bayes"]


@pytest.mark.parametrize("customers", SCALES)
@pytest.mark.parametrize("service", SERVICES)
def test_bench_x2_training(benchmark, service, customers):
    connection, _ = make_warehouse(customers)
    name = f"X2 {service} {customers}"
    connection.execute(AGE_MODEL_DDL.format(name=name, algorithm=service))

    def train():
        connection.execute(f"DELETE FROM MINING MODEL [{name}]")
        return connection.execute(AGE_MODEL_TRAIN.format(name=name))

    rounds = 3 if customers <= 2000 else 1
    cases = benchmark.pedantic(train, rounds=rounds, iterations=1)
    assert cases == customers
    benchmark.extra_info.update({"service": service,
                                 "customers": customers})


def test_x2_shape_scales_linearly():
    """Doubling the caseset should not quadruple SHAPE time."""
    import time

    timings = {}
    for customers in (1000, 4000):
        connection, _ = make_warehouse(customers)
        start = time.perf_counter()
        rowset = connection.execute("""
            SHAPE {SELECT [Customer ID], Gender, Age FROM Customers
                   ORDER BY [Customer ID]}
            APPEND ({SELECT CustID, [Product Name] FROM Sales
                     ORDER BY CustID}
                    RELATE [Customer ID] TO CustID) AS P
        """)
        timings[customers] = time.perf_counter() - start
        assert len(rowset) == customers
    ratio = timings[4000] / timings[1000]
    print(f"\nX2 SHAPE scaling: 1000 -> {timings[1000]*1e3:.0f} ms, "
          f"4000 -> {timings[4000]*1e3:.0f} ms (x{ratio:.1f} for 4x data)")
    assert ratio < 10.0  # generous bound: no quadratic blow-up
