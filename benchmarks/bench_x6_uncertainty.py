"""Experiment X6 — PROBABILITY qualifiers on uncertain training data.

Section 3.2.1(d) of the paper: qualifiers "apply only if the data has
uncertainties attached to it or if the output of previous predictions is
being chained as input to a subsequent DMM training step."  This ablation
quantifies that design: labels produced by a noisy upstream stage carry a
PROBABILITY OF qualifier, and we train the same model twice —

* **honoured** — the qualifier column is bound, so low-confidence labels
  contribute fractional weight (the OLE DB DM path);
* **ignored** — the qualifier column is SKIPped, so every label counts
  fully (what a qualifier-less API forces you to do).

Setup: the true label is a deterministic function of the inputs; 45% of
the *positive* training labels are flipped to negative (asymmetric noise —
think an upstream detector with poor recall), and flipped labels carry
probability 0.2 while clean ones carry 0.95.  Expected shape: honouring
the qualifier largely recovers the clean-label accuracy; ignoring it
learns the biased noise and collapses toward the majority class.
"""

import numpy as np
import pytest

import repro

DDL = """
CREATE MINING MODEL [{name}] (
    [Id] LONG KEY,
    [F1] TEXT DISCRETE,
    [F2] DOUBLE CONTINUOUS,
    [Label] TEXT DISCRETE PREDICT{qualifier}
) USING Repro_Naive_Bayes
"""

QUALIFIER_COLUMN = ",\n    [Label Prob] DOUBLE PROBABILITY OF [Label]"

TRAIN_HONOURED = ("INSERT INTO [{name}] ([Id], [F1], [F2], [Label], "
                  "[Label Prob]) SELECT Id, F1, F2, Label, LabelProb "
                  "FROM TrainData")
TRAIN_IGNORED = ("INSERT INTO [{name}] ([Id], [F1], [F2], [Label]) "
                 "SELECT Id, F1, F2, Label FROM TrainData")

SCORE = """
SELECT t.Id, [{name}].[Label] FROM [{name}] NATURAL PREDICTION JOIN
    (SELECT Id, F1, F2 FROM TestData) AS t
"""


def build_data(conn, n_train=1200, n_test=600, noise=0.45, seed=17):
    rng = np.random.RandomState(seed)
    conn.execute("CREATE TABLE TrainData (Id LONG, F1 TEXT, F2 DOUBLE, "
                 "Label TEXT, LabelProb DOUBLE)")
    conn.execute("CREATE TABLE TestData (Id LONG, F1 TEXT, F2 DOUBLE, "
                 "Label TEXT)")
    truth = {}

    def true_label(f1, f2):
        return "pos" if (f1 == "a") == (f2 > 0.0) else "neg"

    train_rows = []
    for i in range(n_train):
        f1 = "a" if rng.random_sample() < 0.5 else "b"
        f2 = float(rng.normal(1.0 if f1 == "a" else -1.0, 1.2))
        label = true_label(f1, f2)
        probability = 0.95
        if label == "pos" and rng.random_sample() < noise:
            label = "neg"       # asymmetric: positives get suppressed
            probability = 0.2
        train_rows.append(f"({i}, '{f1}', {f2!r}, '{label}', "
                          f"{probability})")
    conn.execute("INSERT INTO TrainData VALUES " + ", ".join(train_rows))

    test_rows = []
    for i in range(n_test):
        f1 = "a" if rng.random_sample() < 0.5 else "b"
        f2 = float(rng.normal(1.0 if f1 == "a" else -1.0, 1.2))
        truth[i] = true_label(f1, f2)
        test_rows.append(f"({i}, '{f1}', {f2!r}, '{truth[i]}')")
    conn.execute("INSERT INTO TestData VALUES " + ", ".join(test_rows))
    return truth


def accuracy(conn, name, truth):
    scored = conn.execute(SCORE.format(name=name))
    return sum(1 for i, predicted in scored.rows
               if predicted == truth[i]) / len(scored)


@pytest.fixture(scope="module")
def prepared():
    conn = repro.connect()
    truth = build_data(conn)
    conn.execute(DDL.format(name="X6 Honoured",
                            qualifier=QUALIFIER_COLUMN))
    conn.execute(DDL.format(name="X6 Ignored", qualifier=""))
    return conn, truth


def test_bench_x6_train_honoured(benchmark, prepared):
    conn, _ = prepared

    def train():
        conn.execute("DELETE FROM MINING MODEL [X6 Honoured]")
        return conn.execute(TRAIN_HONOURED.format(name="X6 Honoured"))

    benchmark.pedantic(train, rounds=3, iterations=1)


def test_bench_x6_train_ignored(benchmark, prepared):
    conn, _ = prepared

    def train():
        conn.execute("DELETE FROM MINING MODEL [X6 Ignored]")
        return conn.execute(TRAIN_IGNORED.format(name="X6 Ignored"))

    benchmark.pedantic(train, rounds=3, iterations=1)


def test_x6_qualifier_recovers_accuracy(prepared):
    conn, truth = prepared
    for name, statement in (("X6 Honoured", TRAIN_HONOURED),
                            ("X6 Ignored", TRAIN_IGNORED)):
        if not conn.model(name).is_trained:
            conn.execute(statement.format(name=name))
    honoured = accuracy(conn, "X6 Honoured", truth)
    ignored = accuracy(conn, "X6 Ignored", truth)
    print("\nX6: 45% of positive labels flipped; upstream confidence as "
          "PROBABILITY OF [Label]")
    print(f"  qualifier honoured : accuracy {honoured:.1%}")
    print(f"  qualifier ignored  : accuracy {ignored:.1%}")
    assert honoured >= ignored, \
        "weighting by the stated confidence should never hurt"
    assert honoured - ignored > 0.10, \
        "expected a substantial gain from honouring the qualifier"
