"""Observability overhead — instrumented dispatch must stay cheap.

The trace layer is on every statement's hot path, so its disabled-state
cost matters.  Three configurations of the same SELECT workload:

* ``recording off`` — the tracer short-circuits to a null record; the
  closest available stand-in for the pre-instrumentation provider;
* ``default`` — statement log on, span capture off (shipping default);
* ``TRACE ON`` — full span-tree capture.

Reported: statements/second per configuration.  A plain (non-benchmark)
test asserts default dispatch stays within a generous factor of the
recording-off baseline using min-of-N timing, so the suite fails if the
disabled path ever grows a real cost.

``EXPLAIN ANALYZE`` repeats the comparison for the plan profiler: it
forces span capture on and reconciles the plan afterwards, so its cost
over plain execution is the price of profiling a statement.  That ratio
is reported and (generously) bounded too.

The workload-introspection layer (DM_ACTIVE_STATEMENTS, cancellation
checkpoints, per-statement resource accounting) rides the same hot path:
a registry entry per statement and a checkpoint per scan batch.  Its
gate compares a row-heavy streaming scan with the registry on (shipping
default) against ``provider.workload.enabled = False`` and bounds the
added cost at 10%.

The workload repository (DM_STATEMENT_STATS fingerprinting + plan
capture) also rides the dispatch path.  Its steady state is two memo
hits (text -> fingerprint, plan key -> hash) plus one locked aggregate
fold per statement, so its gate is the tightest: a streaming scan with
the repository on vs ``connect(repository=False)`` must stay under 5%.

Set ``REPRO_BENCH_QUICK=1`` to shrink the timing loops for CI smoke runs;
the overhead bounds are asserted either way, which is what the CI
quick-bench gate relies on.
"""

import os
import time

import pytest

from _helpers import make_warehouse

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
REPEATS = 3 if QUICK else 5
BATCH = 15 if QUICK else 40

WORKLOAD = "SELECT Gender, AVG(Age) FROM Customers GROUP BY Gender"


def _fresh_connection(customers=200):
    connection, _ = make_warehouse(customers)
    return connection


@pytest.fixture(scope="module")
def conn_recording_off():
    connection = _fresh_connection()
    connection.provider.tracer.recording = False
    return connection


@pytest.fixture(scope="module")
def conn_default():
    return _fresh_connection()


@pytest.fixture(scope="module")
def conn_tracing_on():
    connection = _fresh_connection()
    connection.provider.tracer.enabled = True
    return connection


def test_bench_dispatch_recording_off(benchmark, conn_recording_off):
    result = benchmark(conn_recording_off.execute, WORKLOAD)
    assert len(result) == 2


def test_bench_dispatch_default(benchmark, conn_default):
    result = benchmark(conn_default.execute, WORKLOAD)
    assert len(result) == 2


def test_bench_dispatch_tracing_on(benchmark, conn_tracing_on):
    result = benchmark(conn_tracing_on.execute, WORKLOAD)
    assert len(result) == 2


def _min_time(connection, statement=WORKLOAD, repeats=REPEATS, batch=BATCH):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(batch):
            connection.execute(statement)
        best = min(best, time.perf_counter() - start)
    return best


def test_default_dispatch_overhead_is_bounded():
    """Shipping default (log on, spans off) vs recording fully off."""
    baseline_conn = _fresh_connection()
    baseline_conn.provider.tracer.recording = False
    default_conn = _fresh_connection()

    # Warm both paths before timing.
    for connection in (baseline_conn, default_conn):
        for _ in range(10):
            connection.execute(WORKLOAD)

    baseline = _min_time(baseline_conn)
    default = _min_time(default_conn)
    ratio = default / baseline
    print(f"\nobs overhead: recording-off {baseline:.4f}s, "
          f"default {default:.4f}s, ratio {ratio:.2f}x")
    # Generous bound: the statement-log path adds a record + a few
    # thread-local reads per statement, nowhere near 2x even on CI noise.
    assert ratio < 2.0, (
        f"default dispatch is {ratio:.2f}x slower than recording-off; "
        f"the disabled-tracing path has grown a real cost")


def test_workload_accounting_overhead_is_bounded():
    """Per-statement accounting vs the registry disabled, on a scan whose
    batch count makes the per-checkpoint cost visible if it ever grows."""
    scan = "SELECT * FROM Customers"
    accounted = _fresh_connection(customers=2000)
    unaccounted = _fresh_connection(customers=2000)
    unaccounted.provider.workload.enabled = False

    for connection in (accounted, unaccounted):
        for _ in range(10):
            connection.execute(scan)

    baseline = _min_time(unaccounted, scan)
    accounted_time = _min_time(accounted, scan)
    ratio = accounted_time / baseline
    print(f"\nworkload accounting overhead: registry-off {baseline:.4f}s, "
          f"default {accounted_time:.4f}s, ratio {ratio:.2f}x")
    # The per-batch checkpoint is a thread-local read plus three integer
    # adds; the per-statement cost is one registry entry.  10% is the gate
    # the introspection layer ships under.
    assert ratio < 1.10, (
        f"workload accounting adds {(ratio - 1) * 100:.0f}% to a streaming "
        f"scan; the checkpoint/accounting hot path has grown a real cost")


def test_repository_overhead_is_bounded():
    """Fingerprinting + plan capture vs ``connect(repository=False)``.

    The repeated-statement steady state is the case that matters: after
    the first execution the fingerprint and plan memos are warm, so each
    statement should pay two dict hits and one locked aggregate fold.
    """
    scan = "SELECT * FROM Customers"
    observed = _fresh_connection(customers=2000)
    unobserved, _ = make_warehouse(2000, repository=False)

    for connection in (observed, unobserved):
        for _ in range(10):
            connection.execute(scan)

    # Interleave the timing rounds: a 5% gate is inside the drift two
    # back-to-back min-of-N blocks can show on a busy CI machine.
    baseline = observed_time = float("inf")
    for _ in range(2 * REPEATS):
        baseline = min(baseline, _min_time(unobserved, scan, repeats=1))
        observed_time = min(observed_time, _min_time(observed, scan,
                                                     repeats=1))
    ratio = observed_time / baseline
    print(f"\nrepository overhead: repository-off {baseline:.4f}s, "
          f"default {observed_time:.4f}s, ratio {ratio:.2f}x")
    assert ratio < 1.05, (
        f"the workload repository adds {(ratio - 1) * 100:.0f}% to a "
        f"streaming scan; annotate/observe has grown a real per-statement "
        f"cost (memo miss on the hot path?)")


def test_bench_explain_analyze(benchmark, conn_default):
    result = benchmark(conn_default.execute, f"EXPLAIN ANALYZE {WORKLOAD}")
    assert len(result) >= 2  # plan rows, not result rows


def test_explain_analyze_overhead_is_bounded():
    """Profiling a statement (EXPLAIN ANALYZE) vs just running it.

    ANALYZE pays for: the planner pass, forced span capture during the
    run, and the reconciliation walk.  On a real workload that should be
    a small constant on top of execution, not a multiple of it.
    """
    connection = _fresh_connection()
    for _ in range(10):
        connection.execute(WORKLOAD)
        connection.execute(f"EXPLAIN ANALYZE {WORKLOAD}")

    plain = _min_time(connection)
    analyzed = _min_time(connection, f"EXPLAIN ANALYZE {WORKLOAD}")
    ratio = analyzed / plain
    print(f"\nexplain-analyze overhead: plain {plain:.4f}s, "
          f"analyze {analyzed:.4f}s, ratio {ratio:.2f}x")
    # Span capture plus plan reconciliation; generous for CI noise on a
    # millisecond-scale workload.
    assert ratio < 3.0, (
        f"EXPLAIN ANALYZE is {ratio:.2f}x plain execution; the profiler "
        f"has grown a real cost beyond span capture + reconciliation")


def test_plain_explain_is_cheaper_than_execution():
    """Plain EXPLAIN never touches the data path, so it must not scale
    with data volume — pin it under direct execution of the workload."""
    connection = _fresh_connection(customers=2000)
    for _ in range(5):
        connection.execute(WORKLOAD)
        connection.execute(f"EXPLAIN {WORKLOAD}")
    plain = _min_time(connection)
    explained = _min_time(connection, f"EXPLAIN {WORKLOAD}")
    print(f"\nplain-explain: execute {plain:.4f}s, "
          f"explain {explained:.4f}s")
    assert explained < plain, (
        "plain EXPLAIN took longer than executing the statement; the "
        "planner pass is touching the data path")
