"""Observability overhead — instrumented dispatch must stay cheap.

The trace layer is on every statement's hot path, so its disabled-state
cost matters.  Three configurations of the same SELECT workload:

* ``recording off`` — the tracer short-circuits to a null record; the
  closest available stand-in for the pre-instrumentation provider;
* ``default`` — statement log on, span capture off (shipping default);
* ``TRACE ON`` — full span-tree capture.

Reported: statements/second per configuration.  A plain (non-benchmark)
test asserts default dispatch stays within a generous factor of the
recording-off baseline using min-of-N timing, so the suite fails if the
disabled path ever grows a real cost.
"""

import time

import pytest

from _helpers import make_warehouse

WORKLOAD = "SELECT Gender, AVG(Age) FROM Customers GROUP BY Gender"


def _fresh_connection(customers=200):
    connection, _ = make_warehouse(customers)
    return connection


@pytest.fixture(scope="module")
def conn_recording_off():
    connection = _fresh_connection()
    connection.provider.tracer.recording = False
    return connection


@pytest.fixture(scope="module")
def conn_default():
    return _fresh_connection()


@pytest.fixture(scope="module")
def conn_tracing_on():
    connection = _fresh_connection()
    connection.provider.tracer.enabled = True
    return connection


def test_bench_dispatch_recording_off(benchmark, conn_recording_off):
    result = benchmark(conn_recording_off.execute, WORKLOAD)
    assert len(result) == 2


def test_bench_dispatch_default(benchmark, conn_default):
    result = benchmark(conn_default.execute, WORKLOAD)
    assert len(result) == 2


def test_bench_dispatch_tracing_on(benchmark, conn_tracing_on):
    result = benchmark(conn_tracing_on.execute, WORKLOAD)
    assert len(result) == 2


def _min_time(connection, repeats=5, batch=40):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(batch):
            connection.execute(WORKLOAD)
        best = min(best, time.perf_counter() - start)
    return best


def test_default_dispatch_overhead_is_bounded():
    """Shipping default (log on, spans off) vs recording fully off."""
    baseline_conn = _fresh_connection()
    baseline_conn.provider.tracer.recording = False
    default_conn = _fresh_connection()

    # Warm both paths before timing.
    for connection in (baseline_conn, default_conn):
        for _ in range(10):
            connection.execute(WORKLOAD)

    baseline = _min_time(baseline_conn)
    default = _min_time(default_conn)
    ratio = default / baseline
    print(f"\nobs overhead: recording-off {baseline:.4f}s, "
          f"default {default:.4f}s, ratio {ratio:.2f}x")
    # Generous bound: the statement-log path adds a record + a few
    # thread-local reads per statement, nowhere near 2x even on CI noise.
    assert ratio < 2.0, (
        f"default dispatch is {ratio:.2f}x slower than recording-off; "
        f"the disabled-tracing path has grown a real cost")
