"""Experiment X1 — algorithm pluggability through the USING clause.

Paper (section 1): the API "is not specialized to any specific mining model
but is structured to cater to all well-known mining models ... a system
infrastructure that makes it possible to 'plug in' any algorithm".

The same CREATE MINING MODEL definition is trained under every registered
service that can predict a DISCRETIZED target, changing nothing but the
USING clause.  Reported: training time and Age-bucket accuracy per service
— the definition, training statement, and prediction query are byte-for-
byte identical.
"""

import pytest

from _helpers import (
    AGE_MODEL_DDL,
    AGE_MODEL_TRAIN,
    bucket_accuracy,
    make_warehouse,
)

SERVICES = [
    "Microsoft_Decision_Trees",
    "Microsoft_Naive_Bayes",
    "Microsoft_Clustering",
    "Repro_KMeans",
    "Microsoft_Logistic_Regression",
]


@pytest.fixture(scope="module")
def connection():
    conn, _ = make_warehouse(2000, seed=31)
    return conn


@pytest.mark.parametrize("service", SERVICES)
def test_bench_x1_train(benchmark, connection, service):
    name = f"X1 {service}"
    connection.execute(AGE_MODEL_DDL.format(name=name, algorithm=service))

    def train():
        connection.execute(f"DELETE FROM MINING MODEL [{name}]")
        return connection.execute(AGE_MODEL_TRAIN.format(name=name))

    cases = benchmark.pedantic(train, rounds=3, iterations=1)
    accuracy = bucket_accuracy(connection, name)
    benchmark.extra_info.update({"service": service,
                                 "accuracy": round(accuracy, 4)})
    print(f"\nX1 {service:28s}: {cases} cases, "
          f"bucket accuracy {accuracy:.1%}")
    assert accuracy > 0.40  # all services beat the ~0.40 majority baseline


def test_x1_statements_identical_across_services(connection):
    """The pluggability claim: only the USING clause changes."""
    ddls = {service: AGE_MODEL_DDL.format(name="N", algorithm=service)
            for service in SERVICES}
    bodies = {ddl.replace(service, "<SERVICE>")
              for service, ddl in ddls.items()}
    assert len(bodies) == 1
    trains = {AGE_MODEL_TRAIN.format(name="N") for _ in SERVICES}
    assert len(trains) == 1
    print("\nX1: definition/training/prediction statements are identical "
          "across services; only USING differs")
