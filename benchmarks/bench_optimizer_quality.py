"""Optimizer quality — cardinality q-error and the misordered-join case.

Two questions the cost-based planner must answer honestly:

1. **Estimation quality**: across the full differential statement grid,
   how far off are the root-node cardinality estimates?  The standard
   metric is the *q-error* — ``max(est/actual, actual/est)``, clamped to
   1 when both sides agree — and the gate is relative: the median q-error
   with statistics must be no worse than the heuristic defaults produce.
   Statistics that estimate *worse* than guessing would be a regression
   the differential suite cannot see (rows stay identical either way).
2. **Misordered-join cost**: a hash join written with the tiny table on
   the left and the big one on the right.  The heuristic always builds
   the right side — here the expensive choice; statistics swap the build
   to the estimated-smaller left side.  The swap is asserted from the
   plan (deterministic); wall-clock is reported and loosely gated.

Run directly under pytest (no pytest-benchmark fixture needed):

    PYTHONPATH=src python -m pytest benchmarks/bench_optimizer_quality.py -s

Set ``REPRO_BENCH_QUICK=1`` to shrink the workloads for CI smoke runs.
"""

import os
import statistics as pystats
import time

import repro
from repro.obs.explain import is_plan_rowset

from tests.differential.test_stream_vs_materialize import (
    STATEMENTS,
    _load,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
BIG_ROWS = 2_000 if QUICK else 20_000
SMALL_ROWS = 40
REPEATS = 3 if QUICK else 5
# Wall-clock gate for the misordered join: generous because the absolute
# times are milliseconds and CI machines are noisy.  The deterministic
# assertion is the plan swap itself.
MAX_SLOWDOWN = 1.5


def _root(conn, statement):
    rowset = conn.execute(f"EXPLAIN ANALYZE {statement}")
    assert is_plan_rowset(rowset)
    names = [c.name for c in rowset.columns]
    return dict(zip(names, rowset.rows[0]))


def _q_error(estimate, actual):
    estimate = max(float(estimate), 1.0)
    actual = max(float(actual), 1.0)
    return max(estimate / actual, actual / estimate)


def _grid_conn(**kwargs):
    conn = repro.connect(caseset_cache_capacity=0, **kwargs)
    _load(conn)
    return conn


def test_bench_grid_q_error():
    with_stats = _grid_conn()
    without = _grid_conn(statistics=False)
    errors = {"stats": [], "default": []}
    for statement in STATEMENTS:
        for label, conn in (("stats", with_stats), ("default", without)):
            root = _root(conn, statement)
            if root["EST_ROWS"] is None or root["ACTUAL_ROWS"] is None:
                continue
            errors[label].append(_q_error(root["EST_ROWS"],
                                          root["ACTUAL_ROWS"]))
    with_stats.close()
    without.close()

    medians = {label: pystats.median(values)
               for label, values in errors.items()}
    worst = {label: max(values) for label, values in errors.items()}
    print(f"\n[q-error] {len(errors['stats'])} grid statements: "
          f"median {medians['stats']:.2f} with statistics vs "
          f"{medians['default']:.2f} heuristic defaults "
          f"(worst {worst['stats']:.1f} vs {worst['default']:.1f})")
    assert errors["stats"], "grid produced no measurable estimates"
    assert medians["stats"] <= medians["default"], (
        "statistics estimate worse than guessing")


def _join_workload(conn):
    conn.execute("CREATE TABLE Tiny (k INT, tag TEXT)")
    conn.execute("CREATE TABLE Huge (k INT, payload TEXT)")
    tiny = ", ".join(f"({i}, 't{i}')" for i in range(SMALL_ROWS))
    conn.execute(f"INSERT INTO Tiny VALUES {tiny}")
    for start in range(0, BIG_ROWS, 1000):
        chunk = ", ".join(
            f"({i % 500}, 'p{i:05d}')"
            for i in range(start, min(start + 1000, BIG_ROWS)))
        conn.execute(f"INSERT INTO Huge VALUES {chunk}")


MISORDERED = ("SELECT t.tag, COUNT(*) AS n FROM Tiny AS t "
              "JOIN Huge AS h ON t.k = h.k GROUP BY t.tag")


def test_bench_misordered_join_speedup():
    with_stats = repro.connect()
    without = repro.connect(statistics=False)
    for conn in (with_stats, without):
        _join_workload(conn)

    def join_strategy(conn):
        plan = conn.execute(f"EXPLAIN {MISORDERED}")
        names = [c.name for c in plan.columns]
        rows = [dict(zip(names, row)) for row in plan.rows]
        return next(r["STRATEGY"] for r in rows if r["OPERATOR"] == "join")

    assert "left side build" in join_strategy(with_stats)
    assert "right side build" in join_strategy(without)

    def best_of(conn):
        elapsed = []
        for _ in range(REPEATS):
            started = time.perf_counter()
            conn.execute(MISORDERED)
            elapsed.append(time.perf_counter() - started)
        return min(elapsed)

    stats_s = best_of(with_stats)
    default_s = best_of(without)
    with_stats.close()
    without.close()

    print(f"\n[misordered join] Tiny({SMALL_ROWS}) x Huge({BIG_ROWS}): "
          f"left-build {stats_s * 1000:.1f} ms vs "
          f"right-build {default_s * 1000:.1f} ms "
          f"({default_s / max(stats_s, 1e-9):.2f}x)")
    assert stats_s <= default_s * MAX_SLOWDOWN, (
        "cost-chosen build side slower than the misordered heuristic plan")
