"""Experiment F1 — Figure 1: the layered provider architecture.

Paper Figure 1: the "core" relational engine exposes plain OLE DB (SQL);
the analysis server exposes OLE DB DM on top of it.  This experiment checks
the layering *structurally* — the relational engine alone speaks SQL but
refuses DMX; the provider accepts both and routes mining names through its
own catalog — and measures the dispatch overhead the mining layer adds to
plain SQL (it should be negligible).
"""

import pytest

import repro
from repro.errors import Error
from repro.sqlstore import Database


@pytest.fixture(scope="module")
def layered():
    connection = repro.connect()
    connection.execute("CREATE TABLE T (a LONG, b TEXT)")
    connection.execute("INSERT INTO T VALUES " + ", ".join(
        f"({i}, 'x{i % 7}')" for i in range(500)))
    return connection


def test_figure1_layering():
    """The structural claim: DMX lives above, not inside, the SQL engine."""
    engine = Database()
    engine.execute("CREATE TABLE T (a LONG)")
    engine.execute("INSERT INTO T VALUES (1)")
    assert engine.execute("SELECT COUNT(*) FROM T").single_value() == 1

    # The bare engine refuses mining statements...
    with pytest.raises(Error):
        engine.execute("DROP MINING MODEL m")

    # ...while the provider exposes both surfaces over the same engine.
    connection = repro.connect()
    connection.execute("CREATE TABLE T (a LONG, b TEXT)")
    connection.execute("CREATE MINING MODEL M (a LONG KEY, b TEXT "
                       "DISCRETE) USING Repro_Decision_Trees")
    models = connection.execute(
        "SELECT MODEL_NAME FROM $SYSTEM.MINING_MODELS")
    assert models.column_values("MODEL_NAME") == ["M"]
    # The engine underneath is still the plain SQL engine.
    assert connection.execute("SELECT COUNT(*) FROM T").single_value() == 0
    print("\nF1: engine=SQL-only, provider=SQL+DMX over the same engine "
          "(Figure 1 layering holds)")


def test_bench_sql_through_bare_engine(benchmark):
    engine = Database()
    engine.execute("CREATE TABLE T (a LONG, b TEXT)")
    for i in range(500):
        engine.table("T").insert((i, f"x{i % 7}"))
    result = benchmark(
        engine.execute,
        "SELECT b, COUNT(*) AS n FROM T GROUP BY b ORDER BY n DESC")
    assert len(result) == 7


def test_bench_sql_through_provider(benchmark, layered):
    result = benchmark(
        layered.execute,
        "SELECT b, COUNT(*) AS n FROM T GROUP BY b ORDER BY n DESC")
    assert len(result) == 7


def test_bench_schema_rowset_query(benchmark, layered):
    result = benchmark(
        layered.execute, "SELECT * FROM $SYSTEM.MINING_SERVICES")
    assert len(result) == 8
