"""Experiment X7 — incremental model maintenance vs. full refresh.

Paper section 2 lists "support for incremental model maintenance" among
the capabilities a provider advertises through its schema rowsets.  This
ablation measures what the capability buys: a model is refreshed with
daily batches of new cases via repeated INSERT INTO —

* **naive Bayes** declares SUPPORTS_INCREMENTAL, so each batch folds into
  the existing counts (cost proportional to the *batch*);
* **decision trees** do not, so each INSERT retrains on the accumulated
  caseset (cost proportional to the *total history*).

Expected shape: the k-th refresh is flat for the incremental service and
grows linearly with k for the full-refit service — while predictions under
the incremental path stay exactly equal to a from-scratch retrain
(asserted in tests/core/test_incremental.py).
"""

import time

import pytest

import repro
from repro.datagen import WarehouseConfig, generate_warehouse

BATCH = 400
BATCHES = 5

DDL = """
CREATE MINING MODEL [{name}] (
    [Customer ID] LONG KEY,
    [Gender] TEXT DISCRETE,
    [Hair Color] TEXT DISCRETE,
    [Bucket] TEXT DISCRETE PREDICT
) USING {algorithm}
"""

TRAIN = """
INSERT INTO [{name}]
SELECT [Customer ID], Gender, [Hair Color], Bucket FROM Stream
WHERE Batch = {batch}
"""


def build_stream(conn):
    """A customer stream with a precomputed age bucket per batch."""
    data = generate_warehouse(WarehouseConfig(
        customers=BATCH * BATCHES, include_paper_customer=False))
    conn.execute("CREATE TABLE Stream ([Customer ID] LONG, Gender TEXT, "
                 "[Hair Color] TEXT, Bucket TEXT, Batch LONG)")
    table = conn.database.table("Stream")
    for position, (cid, gender, hair, age, _) in enumerate(data.customers):
        bucket = "young" if age < 35 else "mid" if age < 55 else "senior"
        table.insert((cid, gender, hair, bucket, position // BATCH))


def refresh_timings(conn, name):
    timings = []
    for batch in range(BATCHES):
        start = time.perf_counter()
        conn.execute(TRAIN.format(name=name, batch=batch))
        timings.append(time.perf_counter() - start)
    return timings


@pytest.fixture(scope="module")
def stream_conn():
    conn = repro.connect()
    build_stream(conn)
    return conn


def test_bench_x7_incremental_refresh(benchmark, stream_conn):
    """Time of the LAST batch under naive Bayes (incremental)."""
    def run():
        stream_conn.execute("DROP MINING MODEL IF EXISTS [X7 NB]")
        stream_conn.execute(DDL.format(name="X7 NB",
                                       algorithm="Repro_Naive_Bayes"))
        for batch in range(BATCHES - 1):
            stream_conn.execute(TRAIN.format(name="X7 NB", batch=batch))
        start = time.perf_counter()
        stream_conn.execute(TRAIN.format(name="X7 NB",
                                         batch=BATCHES - 1))
        return time.perf_counter() - start

    last = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["last_batch_seconds"] = last


def test_bench_x7_full_refit_refresh(benchmark, stream_conn):
    """Time of the LAST batch under decision trees (full refit)."""
    def run():
        stream_conn.execute("DROP MINING MODEL IF EXISTS [X7 DT]")
        stream_conn.execute(DDL.format(
            name="X7 DT", algorithm="Repro_Decision_Trees"))
        for batch in range(BATCHES - 1):
            stream_conn.execute(TRAIN.format(name="X7 DT", batch=batch))
        start = time.perf_counter()
        stream_conn.execute(TRAIN.format(name="X7 DT",
                                         batch=BATCHES - 1))
        return time.perf_counter() - start

    last = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["last_batch_seconds"] = last


def test_x7_incremental_refreshes_stay_flat(stream_conn):
    stream_conn.execute("DROP MINING MODEL IF EXISTS [X7 Flat]")
    stream_conn.execute(DDL.format(name="X7 Flat",
                                   algorithm="Repro_Naive_Bayes"))
    timings = refresh_timings(stream_conn, "X7 Flat")
    print("\nX7 naive Bayes (incremental) per-batch refresh seconds:",
          [f"{t:.3f}" for t in timings])
    # The model really did take the incremental path every time.
    model = stream_conn.model("X7 Flat")
    assert model.case_count == BATCH * BATCHES
    # Last refresh must not cost dramatically more than the first.
    assert timings[-1] < timings[0] * 3 + 0.05


def test_x7_full_refit_cost_grows(stream_conn):
    stream_conn.execute("DROP MINING MODEL IF EXISTS [X7 Grow]")
    stream_conn.execute(DDL.format(name="X7 Grow",
                                   algorithm="Repro_Decision_Trees"))
    timings = refresh_timings(stream_conn, "X7 Grow")
    print("\nX7 decision trees (full refit) per-batch refresh seconds:",
          [f"{t:.3f}" for t in timings])
    # Refitting over 5x the history costs visibly more than batch 1.
    assert timings[-1] > timings[0] * 1.5
