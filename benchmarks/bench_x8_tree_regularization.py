"""Experiment X8 — ablation of the tree regularisation knobs.

DESIGN.md calls for ablation benches on design choices; the decision-tree
service exposes two growth controls through the USING clause —
MINIMUM_SUPPORT (smallest admissible child) and COMPLEXITY_PENALTY (gain
tax per extra child).  This sweep quantifies the accuracy/size trade-off
they buy on the warehouse task, and verifies the monotone shape: looser
settings grow strictly larger trees, and extreme regularisation collapses
to the prior (majority bucket).
"""

import pytest

from _helpers import (
    AGE_MODEL_DDL,
    AGE_MODEL_TRAIN,
    bucket_accuracy,
    make_warehouse,
)

SETTINGS = [
    ("loose", "MINIMUM_SUPPORT = 5,  COMPLEXITY_PENALTY = 0.0"),
    ("default", "MINIMUM_SUPPORT = 10, COMPLEXITY_PENALTY = 0.1"),
    ("tight", "MINIMUM_SUPPORT = 80, COMPLEXITY_PENALTY = 0.5"),
    ("extreme", "MINIMUM_SUPPORT = 5000, COMPLEXITY_PENALTY = 10.0"),
]


@pytest.fixture(scope="module")
def connection():
    conn, _ = make_warehouse(3000, seed=47)
    return conn


def tree_leaves(connection, name):
    rowset = connection.execute(
        f"SELECT COUNT(*) FROM [{name}].CONTENT "
        f"WHERE CHILDREN_CARDINALITY = 0")
    return rowset.single_value()


@pytest.mark.parametrize("label,parameters", SETTINGS,
                         ids=[s[0] for s in SETTINGS])
def test_bench_x8_setting(benchmark, connection, label, parameters):
    name = f"X8 {label}"
    connection.execute(AGE_MODEL_DDL.format(
        name=name,
        algorithm=f"Microsoft_Decision_Trees({parameters})"))

    def train():
        connection.execute(f"DELETE FROM MINING MODEL [{name}]")
        return connection.execute(AGE_MODEL_TRAIN.format(name=name))

    benchmark.pedantic(train, rounds=3, iterations=1)
    accuracy = bucket_accuracy(connection, name)
    leaves = tree_leaves(connection, name)
    benchmark.extra_info.update({"setting": label,
                                 "accuracy": round(accuracy, 4),
                                 "leaves": leaves})
    print(f"\nX8 {label:8s} ({parameters}): {leaves:4d} leaves, "
          f"accuracy {accuracy:.1%}")


def test_x8_regularisation_shapes_hold(connection):
    results = {}
    for label, parameters in SETTINGS:
        name = f"X8 {label}"
        if not connection.provider.has_model(name):
            connection.execute(AGE_MODEL_DDL.format(
                name=name,
                algorithm=f"Microsoft_Decision_Trees({parameters})"))
        if not connection.model(name).is_trained:
            connection.execute(AGE_MODEL_TRAIN.format(name=name))
        results[label] = (tree_leaves(connection, name),
                          bucket_accuracy(connection, name))
    print("\nX8 summary:", {k: f"{l} leaves / {a:.1%}"
                            for k, (l, a) in results.items()})
    # Monotone tree size under tightening regularisation.
    assert results["loose"][0] >= results["default"][0] >= \
        results["tight"][0] >= results["extreme"][0]
    # Extreme regularisation collapses to a stump (root only).
    assert results["extreme"][0] <= 2
    # The defaults must not lose badly to the loose setting (no heavy
    # underfit) and must beat the collapsed stump.
    assert results["default"][1] >= results["loose"][1] - 0.05
    assert results["default"][1] > results["extreme"][1]
