"""Tokenizer shared by the SQL and DMX parsers.

Identifier syntax follows the paper's examples: bare identifiers
(``Customers``) and bracket-delimited identifiers that may contain spaces
(``[Age Prediction]``, ``[Product Purchases]``).  Keywords are not reserved at
the lexer level; the parsers compare identifier spellings case-insensitively,
which keeps contextual keywords (KEY, TABLE, PREDICT, ...) usable as column
names when bracketed.

Comment forms: ``--`` and ``//`` and ``%`` to end of line (the paper annotates
its examples with ``%``), and ``/* ... */`` blocks.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Optional

from repro.errors import ParseError


class TokenKind(enum.Enum):
    IDENT = "IDENT"            # bare identifier (or contextual keyword)
    BRACKET_IDENT = "BRACKET"  # [delimited identifier]
    NUMBER = "NUMBER"
    STRING = "STRING"
    SYMBOL = "SYMBOL"
    EOF = "EOF"


# Multi-character symbols first so maximal munch works.
_SYMBOLS = ("<>", "!=", "<=", ">=", "||",
            "(", ")", "{", "}", ",", ".", ";", "=", "<", ">", "+", "-",
            "*", "/", "$")


class Token:
    """One lexical token with its source position (1-based line/column)."""

    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind: TokenKind, value, line: int, column: int):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    @property
    def upper(self) -> str:
        """Case-folded spelling; used for keyword comparison."""
        return self.value.upper() if isinstance(self.value, str) else ""

    def is_keyword(self, *words: str) -> bool:
        """True if this is a bare identifier spelling any of ``words``."""
        return self.kind is TokenKind.IDENT and self.upper in words

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind is TokenKind.SYMBOL and self.value in symbols

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Single-pass tokenizer with position tracking."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self.line, self.column)

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "%" or (ch == "-" and self._peek(1) == "-") or \
                    (ch == "/" and self._peek(1) == "/"):
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated /* comment")
            else:
                return

    def next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, "", line, column)
        ch = self._peek()

        if ch == "[":
            return self._bracket_ident(line, column)
        if ch in "'\"":
            return self._string(ch, line, column)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, column)
        if ch.isalpha() or ch == "_" or ch == "@":
            return self._ident(line, column)
        for symbol in _SYMBOLS:
            if self.text.startswith(symbol, self.pos):
                self._advance(len(symbol))
                return Token(TokenKind.SYMBOL, symbol, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def _bracket_ident(self, line: int, column: int) -> Token:
        self._advance()  # consume [
        parts: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self._error("unterminated [identifier")
            ch = self._peek()
            if ch == "]":
                if self._peek(1) == "]":  # escaped ]] inside identifier
                    parts.append("]")
                    self._advance(2)
                    continue
                self._advance()
                break
            parts.append(ch)
            self._advance()
        name = "".join(parts)
        if not name.strip():
            raise ParseError("empty [identifier]", line, column)
        return Token(TokenKind.BRACKET_IDENT, name, line, column)

    def _string(self, quote: str, line: int, column: int) -> Token:
        self._advance()
        parts: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self._error("unterminated string literal")
            ch = self._peek()
            if ch == quote:
                if self._peek(1) == quote:  # doubled quote escape
                    parts.append(quote)
                    self._advance(2)
                    continue
                self._advance()
                break
            parts.append(ch)
            self._advance()
        return Token(TokenKind.STRING, "".join(parts), line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self.pos
        seen_dot = False
        seen_exp = False
        while self.pos < len(self.text):
            ch = self._peek()
            if ch.isdigit():
                self._advance()
            elif ch == "." and not seen_dot and not seen_exp and \
                    self._peek(1).isdigit():
                seen_dot = True
                self._advance()
            elif ch in "eE" and not seen_exp and (
                    self._peek(1).isdigit() or
                    (self._peek(1) in "+-" and self._peek(2).isdigit())):
                seen_exp = True
                self._advance(2 if self._peek(1) in "+-" else 1)
            else:
                break
        text = self.text[start:self.pos]
        value = float(text) if (seen_dot or seen_exp) else int(text)
        return Token(TokenKind.NUMBER, value, line, column)

    def _ident(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.text) and (
                self._peek().isalnum() or self._peek() in "_@#"):
            self._advance()
        return Token(TokenKind.IDENT, self.text[start:self.pos], line, column)

    def tokens(self) -> Iterator[Token]:
        """Yield every token, ending with a single EOF token."""
        while True:
            token = self.next_token()
            yield token
            if token.kind is TokenKind.EOF:
                return


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` fully (EOF token included)."""
    return list(Lexer(text).tokens())
