"""Render AST nodes back to canonical DMX/SQL text.

The formatter brackets every identifier, so its output is unambiguous and
re-parses to an equal AST — the property the hypothesis round-trip tests
lock in (``parse(format(parse(x))) == parse(x)``).
"""

from __future__ import annotations

from typing import Union

from repro.errors import Error
from repro.lang import ast_nodes as ast


def quote_ident(name: str) -> str:
    """Bracket-quote an identifier, escaping embedded ``]``."""
    return "[" + name.replace("]", "]]") + "]"


def quote_string(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def format_literal(value) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        return quote_string(value)
    if isinstance(value, float):
        return repr(value)
    return str(value)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

def format_expression(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Literal):
        return format_literal(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return ".".join(quote_ident(p) for p in expr.parts)
    if isinstance(expr, ast.Star):
        return f"{quote_ident(expr.qualifier)}.*" if expr.qualifier else "*"
    if isinstance(expr, ast.FuncCall):
        prefix = "DISTINCT " if expr.distinct else ""
        args = ", ".join(format_expression(a) for a in expr.args)
        return f"{expr.name}({prefix}{args})"
    if isinstance(expr, ast.BinaryOp):
        return (f"({format_expression(expr.left)} {expr.op} "
                f"{format_expression(expr.right)})")
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return f"(NOT {format_expression(expr.operand)})"
        # The space matters: "(--1)" would lex as a line comment.
        return f"(- {format_expression(expr.operand)})"
    if isinstance(expr, ast.IsNull):
        op = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({format_expression(expr.operand)} {op})"
    if isinstance(expr, ast.InList):
        op = "NOT IN" if expr.negated else "IN"
        items = ", ".join(format_expression(i) for i in expr.items)
        return f"({format_expression(expr.operand)} {op} ({items}))"
    if isinstance(expr, ast.InSelect):
        op = "NOT IN" if expr.negated else "IN"
        return (f"({format_expression(expr.operand)} {op} "
                f"({format_select(expr.select)}))")
    if isinstance(expr, ast.Between):
        op = "NOT BETWEEN" if expr.negated else "BETWEEN"
        return (f"({format_expression(expr.operand)} {op} "
                f"{format_expression(expr.low)} AND "
                f"{format_expression(expr.high)})")
    if isinstance(expr, ast.Like):
        op = "NOT LIKE" if expr.negated else "LIKE"
        return (f"({format_expression(expr.operand)} {op} "
                f"{format_expression(expr.pattern)})")
    if isinstance(expr, ast.Case):
        parts = ["CASE"]
        for condition, result in expr.whens:
            parts.append(f"WHEN {format_expression(condition)} "
                         f"THEN {format_expression(result)}")
        if expr.else_result is not None:
            parts.append(f"ELSE {format_expression(expr.else_result)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, ast.SubSelect):
        return f"({format_select(expr.select)})"
    raise Error(f"cannot format expression node {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Table refs and SHAPE
# ---------------------------------------------------------------------------

def format_table_ref(ref: ast.TableRef) -> str:
    if isinstance(ref, ast.NamedTable):
        return quote_ident(ref.name) + _alias(ref.alias)
    if isinstance(ref, ast.ModelContentRef):
        return f"{quote_ident(ref.model)}.{ref.facet}" + _alias(ref.alias)
    if isinstance(ref, ast.SystemRowsetRef):
        return f"$SYSTEM.{ref.rowset}" + _alias(ref.alias)
    if isinstance(ref, ast.SubquerySource):
        return f"({format_select(ref.select)})" + _alias(ref.alias)
    if isinstance(ref, ast.ShapeSource):
        return f"({format_shape(ref.shape)})" + _alias(ref.alias)
    if isinstance(ref, ast.Join):
        left = format_table_ref(ref.left)
        right = format_table_ref(ref.right)
        if ref.kind == "CROSS":
            return f"{left} CROSS JOIN {right}"
        return (f"{left} {ref.kind} JOIN {right} "
                f"ON {format_expression(ref.condition)}")
    if isinstance(ref, ast.PredictionJoin):
        natural = "NATURAL " if ref.natural else ""
        text = (f"{quote_ident(ref.model)} {natural}PREDICTION JOIN "
                f"{format_table_ref(ref.source)}")
        if ref.condition is not None:
            text += f" ON {format_expression(ref.condition)}"
        return text
    raise Error(f"cannot format table ref {type(ref).__name__}")


def _alias(alias) -> str:
    return f" AS {quote_ident(alias)}" if alias else ""


def format_shape(shape: ast.ShapeExpr) -> str:
    master = _format_shape_source(shape.master)
    parts = [f"SHAPE {master}"]
    arms = []
    for append in shape.appends:
        child = _format_shape_source(append.child)
        arms.append(f"({child} RELATE {quote_ident(append.relate_master)} "
                    f"TO {quote_ident(append.relate_child)}) "
                    f"AS {quote_ident(append.alias)}")
    if arms:
        parts.append("APPEND " + ", ".join(arms))
    return " ".join(parts)


def _format_shape_source(source: Union[ast.SelectStatement, ast.ShapeExpr]) -> str:
    if isinstance(source, ast.ShapeExpr):
        return "{" + format_shape(source) + "}"
    return "{" + format_select(source) + "}"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

def format_select(statement: ast.SelectStatement) -> str:
    parts = ["SELECT"]
    if statement.flattened:
        parts.append("FLATTENED")
    if statement.top is not None:
        parts.append(f"TOP {statement.top}")
    if statement.distinct:
        parts.append("DISTINCT")
    items = []
    for item in statement.select_list:
        text = format_expression(item.expr)
        if item.alias:
            text += f" AS {quote_ident(item.alias)}"
        items.append(text)
    parts.append(", ".join(items))
    if statement.from_clause is not None:
        parts.append("FROM " + format_table_ref(statement.from_clause))
    if statement.where is not None:
        parts.append("WHERE " + format_expression(statement.where))
    if statement.group_by:
        parts.append("GROUP BY " + ", ".join(
            format_expression(e) for e in statement.group_by))
    if statement.having is not None:
        parts.append("HAVING " + format_expression(statement.having))
    if statement.order_by:
        orders = []
        for item in statement.order_by:
            text = format_expression(item.expr)
            if not item.ascending:
                text += " DESC"
            orders.append(text)
        parts.append("ORDER BY " + ", ".join(orders))
    if statement.maxdop is not None:
        parts.append(f"WITH MAXDOP {statement.maxdop}")
    return " ".join(parts)


def format_model_column(column: ast.ModelColumnDef) -> str:
    if column.is_table:
        inner = ", ".join(format_model_column(c)
                          for c in column.nested_columns)
        text = f"{quote_ident(column.name)} TABLE({inner})"
    else:
        text = f"{quote_ident(column.name)} {column.data_type}"
        if column.sequence_time and column.content_type != "SEQUENCE_TIME":
            text += " SEQUENCE_TIME"
        if column.distribution:
            text += f" {column.distribution}"
        if column.content_type:
            text += f" {column.content_type}"
            if column.content_type == "DISCRETIZED" and \
                    column.discretization_method:
                text += f"({column.discretization_method}"
                if column.discretization_buckets is not None:
                    text += f", {column.discretization_buckets}"
                text += ")"
        if column.qualifier:
            text += f" {column.qualifier} OF {quote_ident(column.qualifier_of)}"
        if column.model_existence_only:
            text += " MODEL_EXISTENCE_ONLY"
        if column.not_null:
            text += " NOT NULL"
        if column.related_to:
            text += f" RELATED TO {quote_ident(column.related_to)}"
    if column.predict_only:
        text += " PREDICT_ONLY"
    elif column.predict:
        text += " PREDICT"
    return text


def _format_bindings(bindings) -> str:
    parts = []
    for binding in bindings:
        if isinstance(binding, ast.BindingSkip):
            parts.append("SKIP")
        elif isinstance(binding, ast.BindingTable):
            parts.append(f"{quote_ident(binding.name)}"
                         f"({_format_bindings(binding.children)})")
        else:
            parts.append(quote_ident(binding.name))
    return ", ".join(parts)


def format_statement(statement: ast.Statement) -> str:
    """Render any statement node back to canonical text."""
    if isinstance(statement, ast.SelectStatement):
        return format_select(statement)
    if isinstance(statement, ast.UnionStatement):
        parts = [format_select(statement.branches[0])]
        for keep_all, branch in zip(statement.all_rows,
                                    statement.branches[1:]):
            parts.append("UNION ALL" if keep_all else "UNION")
            parts.append(format_select(branch))
        return " ".join(parts)
    if isinstance(statement, ast.CreateTableStatement):
        columns = []
        for column in statement.columns:
            text = f"{quote_ident(column.name)} {column.type_name}"
            if column.primary_key:
                text += " PRIMARY KEY"
            elif not column.nullable:
                text += " NOT NULL"
            columns.append(text)
        return (f"CREATE TABLE {quote_ident(statement.name)} "
                f"({', '.join(columns)})")
    if isinstance(statement, ast.CreateViewStatement):
        return (f"CREATE VIEW {quote_ident(statement.name)} AS "
                f"{format_select(statement.select)}")
    if isinstance(statement, ast.InsertValuesStatement):
        text = f"INSERT INTO {quote_ident(statement.table)}"
        if statement.columns:
            text += " (" + ", ".join(
                quote_ident(c) for c in statement.columns) + ")"
        if statement.select is not None:
            return f"{text} {format_select(statement.select)}"
        rows = ", ".join(
            "(" + ", ".join(format_expression(e) for e in row) + ")"
            for row in statement.rows)
        return f"{text} VALUES {rows}"
    if isinstance(statement, ast.DeleteStatement):
        text = f"DELETE FROM {quote_ident(statement.table)}"
        if statement.where is not None:
            text += f" WHERE {format_expression(statement.where)}"
        return text
    if isinstance(statement, ast.UpdateStatement):
        sets = ", ".join(f"{quote_ident(c)} = {format_expression(e)}"
                         for c, e in statement.assignments)
        text = f"UPDATE {quote_ident(statement.table)} SET {sets}"
        if statement.where is not None:
            text += f" WHERE {format_expression(statement.where)}"
        return text
    if isinstance(statement, ast.UpdateStatisticsStatement):
        if statement.table is None:
            return "UPDATE STATISTICS"
        return f"UPDATE STATISTICS {quote_ident(statement.table)}"
    if isinstance(statement, ast.DropTableStatement):
        exists = "IF EXISTS " if statement.if_exists else ""
        return f"DROP TABLE {exists}{quote_ident(statement.name)}"
    if isinstance(statement, ast.CreateIndexStatement):
        return (f"CREATE INDEX {quote_ident(statement.name)} "
                f"ON {quote_ident(statement.table)} "
                f"({quote_ident(statement.column)})")
    if isinstance(statement, ast.DropIndexStatement):
        exists = "IF EXISTS " if statement.if_exists else ""
        return (f"DROP INDEX {exists}{quote_ident(statement.name)} "
                f"ON {quote_ident(statement.table)}")
    if isinstance(statement, ast.CreateMiningModelStatement):
        columns = ", ".join(format_model_column(c) for c in statement.columns)
        text = (f"CREATE MINING MODEL {quote_ident(statement.name)} "
                f"({columns}) USING {quote_ident(statement.algorithm)}")
        if statement.parameters:
            params = ", ".join(f"{n} = {format_literal(v)}"
                               for n, v in statement.parameters)
            text += f"({params})"
        return text
    if isinstance(statement, ast.InsertModelStatement):
        text = f"INSERT INTO {quote_ident(statement.model)}"
        if statement.bindings:
            text += f" ({_format_bindings(statement.bindings)})"
        if isinstance(statement.source, ast.ShapeExpr):
            text = f"{text} {format_shape(statement.source)}"
        else:
            text = f"{text} {format_select(statement.source)}"
        if statement.maxdop is not None:
            text += f" WITH MAXDOP {statement.maxdop}"
        return text
    if isinstance(statement, ast.DeleteModelStatement):
        return f"DELETE FROM MINING MODEL {quote_ident(statement.name)}"
    if isinstance(statement, ast.DropMiningModelStatement):
        exists = "IF EXISTS " if statement.if_exists else ""
        return f"DROP MINING MODEL {exists}{quote_ident(statement.name)}"
    if isinstance(statement, ast.ExportModelStatement):
        return (f"EXPORT MINING MODEL {quote_ident(statement.name)} "
                f"TO {quote_string(statement.path)}")
    if isinstance(statement, ast.ImportModelStatement):
        text = f"IMPORT MINING MODEL FROM {quote_string(statement.path)}"
        if statement.rename_to:
            text += f" AS {quote_ident(statement.rename_to)}"
        return text
    if isinstance(statement, ast.TraceStatement):
        return f"TRACE {statement.mode.upper()}"
    if isinstance(statement, ast.CancelStatement):
        return f"CANCEL {statement.statement_id}"
    if isinstance(statement, ast.ExplainStatement):
        verb = "EXPLAIN ANALYZE" if statement.analyze else "EXPLAIN"
        return f"{verb} {format_statement(statement.statement)}"
    raise Error(f"cannot format statement {type(statement).__name__}")
