"""AST node definitions for the SQL core and the DMX extensions.

All nodes are frozen-ish dataclasses (mutable for parser convenience but
treated as immutable downstream).  Expression nodes are shared between the two
dialects; statement nodes split into plain-SQL statements (executed by
``repro.sqlstore.engine``) and DMX statements (executed by
``repro.core.provider``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class for expression nodes."""


@dataclass
class Literal(Expr):
    """A constant: number, string, boolean, or NULL (value=None)."""
    value: Any


@dataclass
class ColumnRef(Expr):
    """A possibly-qualified column reference.

    ``parts`` holds each dotted component, e.g. ``("t", "Age")`` for
    ``t.[Age]`` or ``("Age Prediction", "Product Purchases", "Quantity")`` for
    a nested-table reference through a model alias.
    """
    parts: Tuple[str, ...]

    @property
    def name(self) -> str:
        """The final (column) component."""
        return self.parts[-1]


@dataclass
class Star(Expr):
    """``*`` or ``alias.*`` in a select list or COUNT(*)."""
    qualifier: Optional[str] = None


@dataclass
class FuncCall(Expr):
    """A function application — SQL scalar/aggregate or DMX prediction UDF."""
    name: str
    args: List[Expr] = field(default_factory=list)
    distinct: bool = False  # COUNT(DISTINCT x)


@dataclass
class BinaryOp(Expr):
    """Binary operator: AND OR = <> < <= > >= + - * / ||."""
    op: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    """Unary operator: NOT or numeric negation ('-')."""
    op: str
    operand: Expr


@dataclass
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""
    operand: Expr
    negated: bool = False


@dataclass
class InList(Expr):
    """``expr [NOT] IN (item, ...)``."""
    operand: Expr
    items: List[Expr] = field(default_factory=list)
    negated: bool = False


@dataclass
class InSelect(Expr):
    """``expr [NOT] IN (SELECT ...)`` — membership in a subquery column."""
    operand: Expr
    select: "SelectStatement" = None
    negated: bool = False


@dataclass
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""
    operand: Expr
    low: Expr = None
    high: Expr = None
    negated: bool = False


@dataclass
class Like(Expr):
    """``expr [NOT] LIKE pattern`` with % and _ wildcards."""
    operand: Expr
    pattern: Expr = None
    negated: bool = False


@dataclass
class Case(Expr):
    """Searched CASE: ``CASE WHEN cond THEN value ... [ELSE value] END``."""
    whens: List[Tuple[Expr, Expr]] = field(default_factory=list)
    else_result: Optional[Expr] = None


@dataclass
class SubSelect(Expr):
    """A parenthesised scalar sub-select used as an expression.

    DMX also allows ``(SELECT ... FROM PredictHistogram([Age]))`` style
    sub-selects over table-valued prediction functions; the prediction layer
    evaluates those against nested rowsets.
    """
    select: "SelectStatement" = None


# ---------------------------------------------------------------------------
# Table references (FROM clause sources)
# ---------------------------------------------------------------------------

class TableRef:
    """Base class for FROM-clause sources."""


@dataclass
class NamedTable(TableRef):
    """A base table, view, or mining model referenced by name."""
    name: str
    alias: Optional[str] = None


@dataclass
class ModelContentRef(TableRef):
    """``<model>.CONTENT`` or ``<model>.PMML`` in table position (section 3.3)."""
    model: str
    facet: str = "CONTENT"  # CONTENT | PMML | CASES
    alias: Optional[str] = None


@dataclass
class SystemRowsetRef(TableRef):
    """``$SYSTEM.<rowset>``: the OLE DB DM schema rowsets (section 2)."""
    rowset: str
    alias: Optional[str] = None


@dataclass
class SubquerySource(TableRef):
    """A parenthesised derived table: ``(SELECT ...) AS alias``."""
    select: "SelectStatement" = None
    alias: Optional[str] = None


@dataclass
class Join(TableRef):
    """INNER/LEFT/CROSS join between two table refs."""
    kind: str  # INNER | LEFT | CROSS
    left: TableRef = None
    right: TableRef = None
    condition: Optional[Expr] = None


@dataclass
class ShapeSource(TableRef):
    """A SHAPE expression used as a rowset source (hierarchical caseset)."""
    shape: "ShapeExpr" = None
    alias: Optional[str] = None


@dataclass
class PredictionJoin(TableRef):
    """``FROM <model> [NATURAL] PREDICTION JOIN <source> [AS alias] [ON cond]``."""
    model: str
    source: TableRef = None
    natural: bool = False
    condition: Optional[Expr] = None


# ---------------------------------------------------------------------------
# SHAPE (Data Shaping Service)
# ---------------------------------------------------------------------------

@dataclass
class ShapeAppend:
    """One APPEND arm: child query related to the master, named ``alias``."""
    child: Union["SelectStatement", "ShapeExpr"]
    relate_master: str
    relate_child: str
    alias: str


@dataclass
class ShapeExpr:
    """``SHAPE {master} APPEND ({child} RELATE m TO c) AS name, ...``."""
    master: Union["SelectStatement", "ShapeExpr"]
    appends: List[ShapeAppend] = field(default_factory=list)


# ---------------------------------------------------------------------------
# SQL statements
# ---------------------------------------------------------------------------

class Statement:
    """Base class for all statements."""


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass
class SelectStatement(Statement):
    select_list: List[SelectItem] = field(default_factory=list)
    from_clause: Optional[TableRef] = None
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    distinct: bool = False
    top: Optional[int] = None
    flattened: bool = False  # DMX SELECT FLATTENED: un-nest TABLE columns
    maxdop: Optional[int] = None  # WITH MAXDOP n; 0 = provider maximum


@dataclass
class UnionStatement(Statement):
    """``<select> UNION [ALL] <select> [UNION ...]``.

    Branches are full SelectStatements; ``all_rows[i]`` records whether the
    i-th UNION keyword carried ALL.  ORDER BY/TOP of the final branch apply
    to the combined result (the usual SQL reading).
    """
    branches: List[SelectStatement] = field(default_factory=list)
    all_rows: List[bool] = field(default_factory=list)


@dataclass
class ColumnDef:
    """Column of CREATE TABLE."""
    name: str
    type_name: str
    nullable: bool = True
    primary_key: bool = False


@dataclass
class CreateTableStatement(Statement):
    name: str
    columns: List[ColumnDef] = field(default_factory=list)


@dataclass
class CreateViewStatement(Statement):
    name: str
    select: SelectStatement = None


@dataclass
class InsertValuesStatement(Statement):
    """``INSERT INTO t [(cols)] VALUES (...), (...)`` or ``... SELECT ...``.

    Plain-SQL insert into a base table.  Inserts whose target resolves to a
    mining model are represented by :class:`InsertModelStatement` instead; the
    dispatcher decides by catalog lookup.
    """
    table: str
    columns: List[str] = field(default_factory=list)
    rows: List[List[Expr]] = field(default_factory=list)
    select: Optional[SelectStatement] = None


@dataclass
class DeleteStatement(Statement):
    table: str
    where: Optional[Expr] = None


@dataclass
class UpdateStatement(Statement):
    table: str
    assignments: List[Tuple[str, Expr]] = field(default_factory=list)
    where: Optional[Expr] = None


@dataclass
class UpdateStatisticsStatement(Statement):
    """``UPDATE STATISTICS [<table>]`` — rebuild optimizer statistics from
    the stored rows; with no table, every base table is refreshed."""
    table: Optional[str] = None


@dataclass
class DropTableStatement(Statement):
    name: str
    if_exists: bool = False


@dataclass
class CreateIndexStatement(Statement):
    """``CREATE INDEX <name> ON <table> (<column>)`` — a named secondary
    index (hash + sorted) the engine uses for WHERE seeks and join builds."""
    name: str
    table: str = ""
    column: str = ""


@dataclass
class DropIndexStatement(Statement):
    """``DROP INDEX [IF EXISTS] <name> ON <table>``."""
    name: str
    table: str = ""
    if_exists: bool = False


# ---------------------------------------------------------------------------
# DMX statements
# ---------------------------------------------------------------------------

@dataclass
class ModelColumnDef:
    """One column of CREATE MINING MODEL (section 3.2 of the paper).

    ``content_type`` is one of KEY, DISCRETE, CONTINUOUS, DISCRETIZED,
    ORDERED, CYCLICAL, SEQUENCE_TIME (None for nested TABLE columns).
    ``qualifier``/``qualifier_of`` represent the ``PROBABILITY OF [Age]``
    style modifier columns; ``related_to`` the RELATED TO clause;
    ``distribution`` the hint keywords (NORMAL, UNIFORM, LOG_NORMAL,
    BINOMIAL, MULTINOMIAL, POISSON, MIXTURE).
    """
    name: str
    data_type: Optional[str] = None      # LONG / DOUBLE / TEXT / DATE / BOOLEAN
    content_type: Optional[str] = None
    predict: bool = False
    predict_only: bool = False
    related_to: Optional[str] = None
    qualifier: Optional[str] = None      # PROBABILITY | VARIANCE | SUPPORT | ...
    qualifier_of: Optional[str] = None
    distribution: Optional[str] = None
    model_existence_only: bool = False
    not_null: bool = False
    discretization_method: Optional[str] = None  # EQUAL_RANGE/EQUAL_COUNT/CLUSTERS
    discretization_buckets: Optional[int] = None
    sequence_time: bool = False  # KEY SEQUENCE_TIME combination
    nested_columns: Optional[List["ModelColumnDef"]] = None

    @property
    def is_table(self) -> bool:
        return self.nested_columns is not None


@dataclass
class CreateMiningModelStatement(Statement):
    name: str
    columns: List[ModelColumnDef] = field(default_factory=list)
    algorithm: str = ""
    parameters: List[Tuple[str, Any]] = field(default_factory=list)


# Column-binding tree of INSERT INTO <model> (...): names, SKIP markers, and
# nested table bindings.

@dataclass
class BindingColumn:
    name: str


@dataclass
class BindingSkip:
    """The DMX SKIP keyword: source column present but not mapped."""


@dataclass
class BindingTable:
    name: str
    children: List[Union[BindingColumn, BindingSkip, "BindingTable"]] = \
        field(default_factory=list)


@dataclass
class InsertModelStatement(Statement):
    """``INSERT INTO <model> [(bindings)] <source>`` — trains the model."""
    model: str
    bindings: List[Union[BindingColumn, BindingSkip, BindingTable]] = \
        field(default_factory=list)
    source: Union[SelectStatement, ShapeExpr, None] = None
    maxdop: Optional[int] = None  # WITH MAXDOP n; 0 = provider maximum


@dataclass
class DropMiningModelStatement(Statement):
    name: str
    if_exists: bool = False


@dataclass
class DeleteModelStatement(Statement):
    """``DELETE FROM MINING MODEL <name>`` — resets the trained content."""
    name: str


@dataclass
class ExportModelStatement(Statement):
    """``EXPORT MINING MODEL <name> TO '<path>'`` (PMML persistence)."""
    name: str
    path: str = ""


@dataclass
class ImportModelStatement(Statement):
    """``IMPORT MINING MODEL FROM '<path>'``."""
    path: str = ""
    rename_to: Optional[str] = None


@dataclass
class TraceStatement(Statement):
    """``TRACE ON | OFF | LAST | STATUS`` — the shell-level observability verb.

    ON/OFF toggle span capture on the provider's tracer; LAST renders the
    span tree of the most recent statement; STATUS reports the tracer state.
    TRACE statements are themselves excluded from the query log.
    """
    mode: str = "STATUS"


@dataclass
class CancelStatement(Statement):
    """``CANCEL <statement-id>`` — cooperative cancellation of a live statement.

    The id is the shared statement id visible in both
    ``$SYSTEM.DM_ACTIVE_STATEMENTS`` and ``$SYSTEM.DM_QUERY_LOG``.  The
    target unwinds at its next checkpoint (batch, partition, or training
    iteration boundary) with a ``cancelled`` status in the query log.
    """
    statement_id: int = 0


@dataclass
class ExplainStatement(Statement):
    """``EXPLAIN [ANALYZE] <statement>`` — the per-statement plan profiler.

    Plain EXPLAIN runs only the planner pass (no data-path work) and
    returns the operator tree as a rowset with strategy and row estimates;
    EXPLAIN ANALYZE also executes the wrapped statement with span capture
    forced on and annotates each operator with actuals reconciled from the
    span tree.  EXPLAIN and TRACE cannot themselves be wrapped.
    """
    statement: Optional[Statement] = None
    analyze: bool = False
