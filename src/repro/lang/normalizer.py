"""Statement normalization and fingerprinting for the workload repository.

Two statements that differ only in their constants are the same *shape* of
work — ``SELECT * FROM T WHERE id = 5`` and ``... WHERE id = 7`` should
aggregate into one row of ``$SYSTEM.DM_STATEMENT_STATS``.  The normalizer
produces that shape deterministically:

* every :class:`~repro.lang.ast_nodes.Literal` (and literal-like parameter
  such as EXPORT/IMPORT paths or the CANCEL target id) is blanked to the
  placeholder literal ``'?'``;
* every identifier (table, column, alias, function, model, facet) is
  case-folded to upper case;
* the mutated tree is rendered back through the canonical formatter
  (:func:`repro.lang.formatter.format_statement`), whose bracket-quoted
  output re-parses to an equal AST.

The fingerprint is a short SHA-256 of that normalized text.  Normalization
is idempotent — parsing the normalized text and normalizing again yields
the same text and fingerprint (the property suite pins this) — because
``'?'`` parses back to a string literal and upper-case identifiers are
fixed points of the fold.

The input AST is never mutated: the walk rebuilds every dataclass node.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.lang import ast_nodes as ast
from repro.lang.formatter import format_statement

#: Every blanked literal renders as this exact token in normalized text.
PLACEHOLDER = "?"

#: Hex digits kept from the SHA-256 — 64 bits, plenty for a workload ring.
FINGERPRINT_HEX = 16


def _normalize_node(node):
    """Rebuild ``node`` with literals blanked and identifiers case-folded."""
    if isinstance(node, ast.Literal):
        return ast.Literal(PLACEHOLDER)
    if isinstance(node, ast.ColumnRef):
        return ast.ColumnRef(tuple(part.upper() for part in node.parts))
    if isinstance(node, ast.CancelStatement):
        # The target id is a parameter, not structure: every CANCEL is the
        # same shape of work.
        return ast.CancelStatement(statement_id=0)
    if isinstance(node, (ast.ExportModelStatement, ast.ImportModelStatement)):
        rebuilt = _normalize_dataclass(node)
        rebuilt.path = PLACEHOLDER
        return rebuilt
    if dataclasses.is_dataclass(node):
        return _normalize_dataclass(node)
    if isinstance(node, list):
        return [_normalize_node(item) for item in node]
    if isinstance(node, tuple):
        return tuple(_normalize_node(item) for item in node)
    if isinstance(node, str):
        # Any bare string reaching the generic walk is an identifier or a
        # keyword-ish token (table names, aliases, operators, facets);
        # keywords and operators are already upper/symbolic, so folding is
        # a no-op for them and the case-fold for identifiers.
        return node.upper()
    return node


def _normalize_dataclass(node):
    values = {
        field.name: _normalize_node(getattr(node, field.name))
        for field in dataclasses.fields(node)
    }
    return type(node)(**values)


def normalize_statement(statement: ast.Statement) -> str:
    """The canonical normalized text of a parsed statement."""
    return format_statement(_normalize_node(statement))


def statement_fingerprint(statement: ast.Statement) -> str:
    """Short stable hash of the normalized statement text."""
    return fingerprint_text(normalize_statement(statement))


def fingerprint_text(normalized: str) -> str:
    """Hash an already-normalized text (exposed for the repository loader)."""
    digest = hashlib.sha256(normalized.encode("utf-8")).hexdigest()
    return digest[:FINGERPRINT_HEX]
