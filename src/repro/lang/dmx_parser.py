"""DMX statement parsing: the OLE DB DM language extensions of section 3.

These functions take the shared :class:`repro.lang.parser.Parser` instance
and consume from its token stream, so DMX statements reuse the same
expression, SELECT, and SHAPE machinery as plain SQL.
"""

from __future__ import annotations

from typing import List, Union

from repro.lang import ast_nodes as ast
from repro.lang.lexer import TokenKind

# Column specifiers of section 3.2.1 / 3.2.2 of the paper.
CONTENT_TYPES = ("KEY", "DISCRETE", "CONTINUOUS", "ORDERED", "CYCLICAL",
                 "DISCRETIZED", "SEQUENCE_TIME")
QUALIFIERS = ("PROBABILITY", "VARIANCE", "SUPPORT", "PROBABILITY_VARIANCE",
              "STDEV", "ORDER")
DISTRIBUTIONS = ("NORMAL", "UNIFORM", "LOG_NORMAL", "BINOMIAL", "MULTINOMIAL",
                 "POISSON", "MIXTURE")
DATA_TYPES = ("LONG", "DOUBLE", "TEXT", "DATE", "BOOLEAN")
DISCRETIZATION_METHODS = ("EQUAL_RANGE", "EQUAL_COUNT", "CLUSTERS",
                          "AUTOMATIC")


def parse_create_mining_model(parser) -> ast.CreateMiningModelStatement:
    """``CREATE MINING MODEL <name> ( <columns> ) USING <algo> [(params)]``."""
    parser.expect_keyword("CREATE")
    parser.expect_keyword("MINING")
    parser.expect_keyword("MODEL")
    name = parser.expect_identifier("model name")
    parser.expect_symbol("(")
    columns = [parse_model_column(parser)]
    while parser.accept_symbol(","):
        columns.append(parse_model_column(parser))
    parser.expect_symbol(")")
    parser.expect_keyword("USING")
    algorithm = parser.expect_identifier("algorithm name")
    parameters = []
    if parser.accept_symbol("("):
        if not parser.peek().is_symbol(")"):
            parameters.append(_parse_parameter(parser))
            while parser.accept_symbol(","):
                parameters.append(_parse_parameter(parser))
        parser.expect_symbol(")")
    return ast.CreateMiningModelStatement(
        name=name, columns=columns, algorithm=algorithm,
        parameters=parameters)


def _parse_parameter(parser):
    name = parser.expect_identifier("parameter name")
    parser.expect_symbol("=")
    token = parser.peek()
    if token.kind is TokenKind.NUMBER:
        parser.advance()
        return (name.upper(), token.value)
    if token.kind is TokenKind.STRING:
        parser.advance()
        return (name.upper(), token.value)
    if token.is_keyword("TRUE", "FALSE"):
        parser.advance()
        return (name.upper(), token.upper == "TRUE")
    value = parser.expect_identifier("parameter value")
    return (name.upper(), value)


def parse_model_column(parser) -> ast.ModelColumnDef:
    """One column definition, scalar or nested TABLE (section 3.2)."""
    parser._enter()  # nested TABLE(...) columns recurse
    try:
        return _parse_model_column_body(parser)
    finally:
        parser._leave()


def _parse_model_column_body(parser) -> ast.ModelColumnDef:
    name = parser.expect_identifier("column name")
    if parser.peek().is_keyword("TABLE"):
        parser.advance()
        parser.expect_symbol("(")
        nested = [parse_model_column(parser)]
        while parser.accept_symbol(","):
            nested.append(parse_model_column(parser))
        parser.expect_symbol(")")
        column = ast.ModelColumnDef(name=name, nested_columns=nested)
        _parse_column_flags(parser, column, nested_table=True)
        return column
    data_type = parser.expect_identifier("data type").upper()
    if data_type not in DATA_TYPES:
        raise parser.error(
            f"unknown mining column data type {data_type!r} "
            f"(expected one of {', '.join(DATA_TYPES)})")
    column = ast.ModelColumnDef(name=name, data_type=data_type)
    _parse_column_flags(parser, column, nested_table=False)
    return column


def _parse_column_flags(parser, column: ast.ModelColumnDef,
                        nested_table: bool) -> None:
    """Consume content type, qualifiers, hints and flags in any order."""
    while True:
        token = parser.peek()
        if token.is_keyword("SEQUENCE_TIME"):
            parser.advance()
            column.sequence_time = True
            if column.content_type is None:
                column.content_type = "SEQUENCE_TIME"
        elif token.is_keyword(*CONTENT_TYPES):
            parser.advance()
            if token.upper == "KEY" and column.content_type == "SEQUENCE_TIME":
                column.content_type = "KEY"
            else:
                column.content_type = token.upper
            if token.upper == "DISCRETIZED" and parser.accept_symbol("("):
                method = parser.expect_identifier("discretization method")
                if method.upper() not in DISCRETIZATION_METHODS:
                    raise parser.error(
                        f"unknown discretization method {method!r}")
                column.discretization_method = method.upper()
                if parser.accept_symbol(","):
                    bucket_token = parser.peek()
                    if bucket_token.kind is not TokenKind.NUMBER:
                        raise parser.error("expected bucket count")
                    parser.advance()
                    column.discretization_buckets = int(bucket_token.value)
                parser.expect_symbol(")")
        elif token.is_keyword(*QUALIFIERS) and parser.peek(1).is_keyword("OF"):
            parser.advance()
            parser.expect_keyword("OF")
            column.qualifier = token.upper
            column.qualifier_of = parser.expect_identifier("qualified column")
        elif token.is_keyword(*DISTRIBUTIONS):
            parser.advance()
            if token.upper == "LOG" :  # pragma: no cover - defensive
                raise parser.error("use LOG_NORMAL")
            column.distribution = token.upper
        elif token.is_keyword("LOG") and parser.peek(1).is_keyword("NORMAL"):
            parser.advance()
            parser.advance()
            column.distribution = "LOG_NORMAL"
        elif token.is_keyword("PREDICT"):
            parser.advance()
            column.predict = True
        elif token.is_keyword("PREDICT_ONLY"):
            parser.advance()
            column.predict = True
            column.predict_only = True
        elif token.is_keyword("RELATED"):
            parser.advance()
            parser.expect_keyword("TO")
            column.related_to = parser.expect_identifier("related column")
        elif token.is_keyword("NOT") and parser.peek(1).is_keyword("NULL"):
            parser.advance()
            parser.advance()
            column.not_null = True
        elif token.is_keyword("MODEL_EXISTENCE_ONLY"):
            parser.advance()
            column.model_existence_only = True
        else:
            return


# ---------------------------------------------------------------------------
# INSERT INTO — base table or mining model
# ---------------------------------------------------------------------------

def parse_insert(parser) -> ast.Statement:
    """Parse ``INSERT INTO <target> ...``.

    The grammar decides between a plain-table insert and a model-training
    insert by the *source*: VALUES always means a base table; a SHAPE source
    or a nested column-binding list always means a mining model; a flat
    binding list with a SELECT source is returned as a table insert and
    re-dispatched by the provider if the target is actually a model.
    """
    parser.expect_keyword("INSERT")
    parser.expect_keyword("INTO")
    parser.accept_keyword("MINING")  # optional "INSERT INTO MINING MODEL m"
    parser.accept_keyword("MODEL")
    target = parser.expect_identifier("target name")

    bindings: List[Union[ast.BindingColumn, ast.BindingSkip, ast.BindingTable]] = []
    if parser.peek().is_symbol("("):
        bindings = _parse_binding_list(parser)

    token = parser.peek()
    if token.is_keyword("VALUES"):
        parser.advance()
        rows = [_parse_value_row(parser)]
        while parser.accept_symbol(","):
            rows.append(_parse_value_row(parser))
        columns = _flat_binding_names(parser, bindings)
        return ast.InsertValuesStatement(table=target, columns=columns,
                                         rows=rows)
    if token.is_keyword("SHAPE") or (
            token.is_symbol("(") and parser.peek(1).is_keyword("SHAPE")):
        wrapped = parser.accept_symbol("(")
        shape = parser.parse_shape()
        if wrapped:
            parser.expect_symbol(")")
        return ast.InsertModelStatement(model=target, bindings=bindings,
                                        source=shape,
                                        maxdop=parser.parse_maxdop_option())
    if token.is_keyword("SELECT") or (
            token.is_symbol("(") and parser.peek(1).is_keyword("SELECT")):
        wrapped = parser.accept_symbol("(")
        select = parser.parse_select()
        if wrapped:
            parser.expect_symbol(")")
        if any(isinstance(b, (ast.BindingTable, ast.BindingSkip))
               for b in bindings):
            # An unwrapped SELECT source consumes WITH MAXDOP itself (it
            # lands on select.maxdop); a wrapped one leaves it out here.
            return ast.InsertModelStatement(model=target, bindings=bindings,
                                            source=select,
                                            maxdop=parser.parse_maxdop_option())
        columns = _flat_binding_names(parser, bindings)
        return ast.InsertValuesStatement(table=target, columns=columns,
                                         select=select)
    raise parser.error("expected VALUES, SELECT, or SHAPE after INSERT INTO")


def _parse_binding_list(parser):
    parser.expect_symbol("(")
    bindings = [_parse_binding(parser)]
    while parser.accept_symbol(","):
        bindings.append(_parse_binding(parser))
    parser.expect_symbol(")")
    return bindings


def _parse_binding(parser):
    parser._enter()  # nested binding lists recurse; bound like expressions
    try:
        if parser.peek().is_keyword("SKIP"):
            parser.advance()
            return ast.BindingSkip()
        name = parser.expect_identifier("column name")
        if parser.peek().is_symbol("("):
            children = _parse_binding_list(parser)
            return ast.BindingTable(name=name, children=children)
        return ast.BindingColumn(name=name)
    finally:
        parser._leave()


def _flat_binding_names(parser, bindings) -> List[str]:
    names = []
    for binding in bindings:
        if not isinstance(binding, ast.BindingColumn):
            raise parser.error(
                "nested or SKIP bindings are only valid for mining models")
        names.append(binding.name)
    return names


def _parse_value_row(parser) -> List[ast.Expr]:
    parser.expect_symbol("(")
    row = [parser.parse_expression()]
    while parser.accept_symbol(","):
        row.append(parser.parse_expression())
    parser.expect_symbol(")")
    return row


# ---------------------------------------------------------------------------
# DELETE / DROP / EXPORT / IMPORT
# ---------------------------------------------------------------------------

def parse_delete(parser) -> ast.Statement:
    parser.expect_keyword("DELETE")
    parser.expect_keyword("FROM")
    if parser.peek().is_keyword("MINING") and parser.peek(1).is_keyword("MODEL"):
        parser.advance()
        parser.advance()
        name = parser.expect_identifier("model name")
        return ast.DeleteModelStatement(name=name)
    name = parser.expect_identifier("table name")
    where = None
    if parser.accept_keyword("WHERE"):
        where = parser.parse_expression()
    return ast.DeleteStatement(table=name, where=where)


def parse_drop(parser) -> ast.Statement:
    parser.expect_keyword("DROP")
    if parser.peek().is_keyword("MINING"):
        parser.advance()
        parser.expect_keyword("MODEL")
        if_exists = _accept_if_exists(parser)
        name = parser.expect_identifier("model name")
        return ast.DropMiningModelStatement(name=name, if_exists=if_exists)
    if parser.peek().is_keyword("INDEX"):
        parser.advance()
        if_exists = _accept_if_exists(parser)
        name = parser.expect_identifier("index name")
        parser.expect_keyword("ON")
        table = parser.expect_identifier("table name")
        return ast.DropIndexStatement(name=name, table=table,
                                      if_exists=if_exists)
    parser.expect_keyword("TABLE", "VIEW")
    if_exists = _accept_if_exists(parser)
    name = parser.expect_identifier("table name")
    return ast.DropTableStatement(name=name, if_exists=if_exists)


def _accept_if_exists(parser) -> bool:
    if parser.peek().is_keyword("IF") and parser.peek(1).is_keyword("EXISTS"):
        parser.advance()
        parser.advance()
        return True
    return False


def parse_export(parser) -> ast.ExportModelStatement:
    parser.expect_keyword("EXPORT")
    parser.expect_keyword("MINING")
    parser.expect_keyword("MODEL")
    name = parser.expect_identifier("model name")
    parser.expect_keyword("TO")
    token = parser.peek()
    if token.kind is not TokenKind.STRING:
        raise parser.error("expected a quoted file path")
    parser.advance()
    return ast.ExportModelStatement(name=name, path=token.value)


def parse_import(parser) -> ast.ImportModelStatement:
    parser.expect_keyword("IMPORT")
    parser.expect_keyword("MINING")
    parser.expect_keyword("MODEL")
    parser.expect_keyword("FROM")
    token = parser.peek()
    if token.kind is not TokenKind.STRING:
        raise parser.error("expected a quoted file path")
    parser.advance()
    rename_to = None
    if parser.accept_keyword("AS"):
        rename_to = parser.expect_identifier("model name")
    return ast.ImportModelStatement(path=token.value, rename_to=rename_to)
