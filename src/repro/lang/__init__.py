"""Lexer, AST, parser and formatter for the SQL core and the DMX extensions.

One grammar serves both layers: the relational engine executes the SQL subset,
and the mining provider executes the DMX statements (CREATE MINING MODEL,
INSERT INTO ... SHAPE, PREDICTION JOIN, content queries).  The paper's own
example statements from section 3 parse verbatim, including its ``%`` line
comments.
"""

from repro.lang.lexer import Lexer, Token, TokenKind, tokenize
from repro.lang.parser import Parser, parse_statement, parse_expression
from repro.lang.formatter import format_statement, format_expression

__all__ = [
    "Lexer",
    "Token",
    "TokenKind",
    "tokenize",
    "Parser",
    "parse_statement",
    "parse_expression",
    "format_statement",
    "format_expression",
]
