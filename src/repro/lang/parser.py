"""Recursive-descent parser for the SQL core and shared expression grammar.

DMX-specific statements (CREATE MINING MODEL, INSERT INTO model, EXPORT /
IMPORT) live in :mod:`repro.lang.dmx_parser`; this module owns the token
stream, expressions, SELECT (including PREDICTION JOIN and SHAPE sources),
and the plain-SQL statements.

Operator precedence, loosest to tightest::

    OR < AND < NOT < comparison/IS/IN/BETWEEN/LIKE < + - || < * / < unary -
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.lexer import Lexer, Token, TokenKind
from repro.obs import trace as obs_trace

# Keywords that terminate an expression or clause; a bare identifier in an
# alias position must not be one of these.
_CLAUSE_KEYWORDS = {
    "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "ON", "JOIN", "INNER",
    "LEFT", "CROSS", "NATURAL", "PREDICTION", "AND", "OR", "NOT", "AS",
    "APPEND", "RELATE", "USING", "VALUES", "SET", "TO", "BY", "ASC", "DESC",
    "UNION", "THEN", "ELSE", "END", "WHEN", "LIMIT", "TOP", "WITH", "MAXDOP",
}

# Nesting ceiling for recursive constructs (parenthesised expressions,
# subqueries, SHAPE trees).  Each level costs ~9 Python frames, so a hostile
# input could otherwise blow the interpreter recursion limit into a
# RecursionError — which is not our error type and not catchable as one.
MAX_NESTING = 64


class Parser:
    """One-statement-at-a-time parser over a token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens: List[Token] = list(Lexer(text).tokens())
        self.pos = 0
        self.depth = 0

    def _enter(self) -> None:
        self.depth += 1
        if self.depth > MAX_NESTING:
            token = self.peek()
            raise ParseError(
                f"statement nesting exceeds the supported depth "
                f"({MAX_NESTING})", token.line, token.column)

    def _leave(self) -> None:
        self.depth -= 1

    # -- token-stream helpers -------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self.peek()
        return ParseError(f"{message}, found {token.value!r}",
                          token.line, token.column)

    def accept_keyword(self, *words: str) -> bool:
        if self.peek().is_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, *words: str) -> Token:
        if not self.peek().is_keyword(*words):
            raise self.error(f"expected {' or '.join(words)}")
        return self.advance()

    def accept_symbol(self, *symbols: str) -> bool:
        if self.peek().is_symbol(*symbols):
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> Token:
        if not self.peek().is_symbol(symbol):
            raise self.error(f"expected {symbol!r}")
        return self.advance()

    def at_identifier(self) -> bool:
        return self.peek().kind in (TokenKind.IDENT, TokenKind.BRACKET_IDENT)

    def expect_identifier(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.kind not in (TokenKind.IDENT, TokenKind.BRACKET_IDENT):
            raise self.error(f"expected {what}")
        self.advance()
        return token.value

    def at_end(self) -> bool:
        return self.peek().kind is TokenKind.EOF or self.peek().is_symbol(";")

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        """Parse one statement (SQL or DMX) and its optional ';'."""
        statement = self._parse_statement_body()
        self.accept_symbol(";")
        if not (self.peek().kind is TokenKind.EOF):
            raise self.error("unexpected trailing input")
        return statement

    def _parse_statement_body(self) -> ast.Statement:
        """The statement dispatch, without the ';'/EOF bookkeeping.

        Factored out so EXPLAIN can wrap any statement form the dispatcher
        knows about.
        """
        from repro.lang import dmx_parser

        token = self.peek()
        if token.is_keyword("SELECT"):
            statement = self.parse_select()
            if self.peek().is_keyword("UNION"):
                statement = self._parse_union_tail(statement)
        elif token.is_keyword("SHAPE"):
            # A bare SHAPE command materialises the hierarchical rowset.
            shape = self.parse_shape()
            statement = ast.SelectStatement(
                select_list=[ast.SelectItem(ast.Star())],
                from_clause=ast.ShapeSource(shape=shape))
        elif token.is_keyword("CREATE"):
            if self.peek(1).is_keyword("MINING"):
                statement = dmx_parser.parse_create_mining_model(self)
            elif self.peek(1).is_keyword("VIEW"):
                statement = self.parse_create_view()
            elif self.peek(1).is_keyword("INDEX"):
                statement = self.parse_create_index()
            else:
                statement = self.parse_create_table()
        elif token.is_keyword("INSERT"):
            statement = dmx_parser.parse_insert(self)
        elif token.is_keyword("DELETE"):
            statement = dmx_parser.parse_delete(self)
        elif token.is_keyword("UPDATE"):
            if self.peek(1).is_keyword("STATISTICS"):
                statement = self.parse_update_statistics()
            else:
                statement = self.parse_update()
        elif token.is_keyword("DROP"):
            statement = dmx_parser.parse_drop(self)
        elif token.is_keyword("EXPORT"):
            statement = dmx_parser.parse_export(self)
        elif token.is_keyword("IMPORT"):
            statement = dmx_parser.parse_import(self)
        elif token.is_keyword("TRACE"):
            statement = self.parse_trace()
        elif token.is_keyword("CANCEL"):
            statement = self.parse_cancel()
        elif token.is_keyword("EXPLAIN"):
            statement = self.parse_explain()
        else:
            raise self.error("expected a statement")
        return statement

    def parse_trace(self) -> ast.TraceStatement:
        """``TRACE ON | OFF | LAST | STATUS`` (STATUS if bare)."""
        self.expect_keyword("TRACE")
        if self.at_end():
            return ast.TraceStatement(mode="STATUS")
        token = self.expect_keyword("ON", "OFF", "LAST", "STATUS")
        return ast.TraceStatement(mode=token.upper)

    def parse_cancel(self) -> ast.CancelStatement:
        """``CANCEL <statement-id>`` — the id from DM_ACTIVE_STATEMENTS."""
        self.expect_keyword("CANCEL")
        token = self.peek()
        if token.kind is not TokenKind.NUMBER or \
                not isinstance(token.value, int) or token.value <= 0:
            raise self.error("expected a positive statement id after CANCEL "
                             "(see $SYSTEM.DM_ACTIVE_STATEMENTS)")
        self.advance()
        return ast.CancelStatement(statement_id=token.value)

    def parse_explain(self) -> ast.ExplainStatement:
        """``EXPLAIN [ANALYZE] <statement>`` — wraps any plannable statement."""
        self.expect_keyword("EXPLAIN")
        analyze = self.accept_keyword("ANALYZE")
        token = self.peek()
        if token.is_keyword("EXPLAIN"):
            raise self.error("EXPLAIN cannot be nested")
        if token.is_keyword("TRACE"):
            raise self.error("EXPLAIN cannot wrap the TRACE verb")
        if token.is_keyword("CANCEL"):
            raise self.error("EXPLAIN cannot wrap the CANCEL verb")
        if self.at_end():
            raise self.error("expected a statement after EXPLAIN")
        inner = self._parse_statement_body()
        return ast.ExplainStatement(statement=inner, analyze=analyze)

    # -- SELECT ---------------------------------------------------------------

    def parse_select(self) -> ast.SelectStatement:
        self._enter()
        try:
            return self._parse_select_body()
        finally:
            self._leave()

    def _parse_select_body(self) -> ast.SelectStatement:
        self.expect_keyword("SELECT")
        statement = ast.SelectStatement()
        # FLATTENED / TOP n / DISTINCT may appear in any order.
        while True:
            if self.accept_keyword("FLATTENED"):
                statement.flattened = True
            elif self.accept_keyword("TOP"):
                token = self.peek()
                if token.kind is not TokenKind.NUMBER or \
                        not isinstance(token.value, int):
                    raise self.error("expected integer after TOP")
                self.advance()
                statement.top = token.value
            elif self.accept_keyword("DISTINCT"):
                statement.distinct = True
            else:
                break
        statement.select_list = self._parse_select_list()
        if self.accept_keyword("FROM"):
            statement.from_clause = self._parse_from()
        if self.accept_keyword("WHERE"):
            statement.where = self.parse_expression()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            statement.group_by = [self.parse_expression()]
            while self.accept_symbol(","):
                statement.group_by.append(self.parse_expression())
        if self.accept_keyword("HAVING"):
            statement.having = self.parse_expression()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            statement.order_by = [self._parse_order_item()]
            while self.accept_symbol(","):
                statement.order_by.append(self._parse_order_item())
        statement.maxdop = self.parse_maxdop_option()
        return statement

    def parse_maxdop_option(self) -> Optional[int]:
        """``WITH MAXDOP n`` — per-statement degree-of-parallelism cap.

        ``0`` means "use the provider's configured maximum" (SQL Server
        semantics); the option can only lower ``connect(max_workers=N)``,
        never raise it.
        """
        if not self.accept_keyword("WITH"):
            return None
        self.expect_keyword("MAXDOP")
        token = self.peek()
        if token.kind is not TokenKind.NUMBER or \
                not isinstance(token.value, int) or token.value < 0:
            raise self.error("expected a non-negative integer after MAXDOP")
        self.advance()
        return token.value

    def _parse_union_tail(self, first: ast.SelectStatement) -> ast.Statement:
        branches = [first]
        all_rows: List[bool] = []
        while self.accept_keyword("UNION"):
            all_rows.append(self.accept_keyword("ALL"))
            branches.append(self.parse_select())
        return ast.UnionStatement(branches=branches, all_rows=all_rows)

    def _parse_select_list(self) -> List[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self.accept_symbol(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        if self.peek().is_symbol("*"):
            self.advance()
            return ast.SelectItem(ast.Star())
        # alias.* form
        if self.at_identifier() and self.peek(1).is_symbol(".") and \
                self.peek(2).is_symbol("*"):
            qualifier = self.expect_identifier()
            self.advance()  # .
            self.advance()  # *
            return ast.SelectItem(ast.Star(qualifier=qualifier))
        expr = self.parse_expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.at_identifier() and self.peek().upper not in _CLAUSE_KEYWORDS:
            alias = self.expect_identifier()
        return ast.SelectItem(expr, alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expression()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr, ascending)

    # -- FROM / table refs ----------------------------------------------------

    def _parse_from(self) -> ast.TableRef:
        ref = self._parse_joined_table()
        while self.accept_symbol(","):  # implicit cross join
            right = self._parse_joined_table()
            ref = ast.Join(kind="CROSS", left=ref, right=right)
        return ref

    def _parse_joined_table(self) -> ast.TableRef:
        ref = self._parse_primary_table()
        while True:
            token = self.peek()
            if token.is_keyword("PREDICTION") or (
                    token.is_keyword("NATURAL") and
                    self.peek(1).is_keyword("PREDICTION")):
                ref = self._parse_prediction_join(ref)
            elif token.is_keyword("JOIN", "INNER", "LEFT", "CROSS"):
                ref = self._parse_relational_join(ref)
            else:
                return ref

    def _parse_prediction_join(self, left: ast.TableRef) -> ast.TableRef:
        natural = self.accept_keyword("NATURAL")
        self.expect_keyword("PREDICTION")
        self.expect_keyword("JOIN")
        if not isinstance(left, ast.NamedTable):
            raise self.error("PREDICTION JOIN requires a mining model on the left")
        source = self._parse_primary_table()
        condition = None
        if self.accept_keyword("ON"):
            condition = self.parse_expression()
        if condition is None and not natural:
            raise self.error(
                "PREDICTION JOIN requires an ON clause (or use NATURAL)")
        return ast.PredictionJoin(model=left.name, source=source,
                                  natural=natural, condition=condition)

    def _parse_relational_join(self, left: ast.TableRef) -> ast.TableRef:
        kind = "INNER"
        if self.accept_keyword("INNER"):
            kind = "INNER"
        elif self.accept_keyword("LEFT"):
            kind = "LEFT"
            self.accept_keyword("OUTER")
        elif self.accept_keyword("CROSS"):
            kind = "CROSS"
        self.expect_keyword("JOIN")
        right = self._parse_primary_table()
        condition = None
        if kind != "CROSS":
            self.expect_keyword("ON")
            condition = self.parse_expression()
        return ast.Join(kind=kind, left=left, right=right, condition=condition)

    def _parse_primary_table(self) -> ast.TableRef:
        token = self.peek()
        if token.is_symbol("("):
            self._enter()
            try:
                return self._parse_paren_table()
            finally:
                self._leave()
        if token.is_keyword("SHAPE"):
            shape = self.parse_shape()
            return ast.ShapeSource(shape=shape, alias=self._parse_alias())
        if token.is_symbol("$"):
            self.advance()
            system = self.expect_identifier("SYSTEM")
            if system.upper() != "SYSTEM":
                raise self.error("expected $SYSTEM.<rowset>")
            self.expect_symbol(".")
            rowset = self.expect_identifier("schema rowset name")
            return ast.SystemRowsetRef(rowset=rowset.upper(),
                                       alias=self._parse_alias())
        name = self.expect_identifier("table or model name")
        if self.peek().is_symbol(".") and self.peek(1).kind in (
                TokenKind.IDENT, TokenKind.BRACKET_IDENT) and \
                self.peek(1).upper in ("CONTENT", "PMML", "CASES"):
            self.advance()
            facet = self.expect_identifier().upper()
            return ast.ModelContentRef(model=name, facet=facet,
                                       alias=self._parse_alias())
        return ast.NamedTable(name=name, alias=self._parse_alias())

    def _parse_paren_table(self) -> ast.TableRef:
        self.advance()  # consume "("
        if self.peek().is_keyword("SHAPE"):
            shape = self.parse_shape()
            self.expect_symbol(")")
            return ast.ShapeSource(shape=shape, alias=self._parse_alias())
        if self.peek().is_keyword("SELECT"):
            select = self.parse_select()
            self.expect_symbol(")")
            return ast.SubquerySource(select=select,
                                      alias=self._parse_alias())
        # Parenthesised table reference.
        ref = self._parse_from()
        self.expect_symbol(")")
        return ref

    def _parse_alias(self) -> Optional[str]:
        if self.accept_keyword("AS"):
            return self.expect_identifier("alias")
        if self.at_identifier() and self.peek().upper not in _CLAUSE_KEYWORDS:
            return self.expect_identifier()
        return None

    # -- SHAPE ----------------------------------------------------------------

    def parse_shape(self) -> ast.ShapeExpr:
        """``SHAPE {master} APPEND ({child} RELATE m TO c) AS name, ...``."""
        self._enter()
        try:
            return self._parse_shape_body()
        finally:
            self._leave()

    def _parse_shape_body(self) -> ast.ShapeExpr:
        self.expect_keyword("SHAPE")
        master = self._parse_shape_source()
        shape = ast.ShapeExpr(master=master)
        if self.accept_keyword("APPEND"):
            shape.appends.append(self._parse_shape_append())
            while self.accept_symbol(","):
                shape.appends.append(self._parse_shape_append())
        return shape

    def _parse_shape_source(self) -> Union[ast.SelectStatement, ast.ShapeExpr]:
        if self.accept_symbol("{"):
            if self.peek().is_keyword("SHAPE"):
                inner = self.parse_shape()
            else:
                inner = self.parse_select()
            self.expect_symbol("}")
            return inner
        if self.peek().is_keyword("SHAPE"):
            return self.parse_shape()
        raise self.error("expected {query} or SHAPE in SHAPE clause")

    def _parse_shape_append(self) -> ast.ShapeAppend:
        self.expect_symbol("(")
        child = self._parse_shape_source()
        self.expect_keyword("RELATE")
        relate_master = self.expect_identifier("master column")
        self.expect_keyword("TO")
        relate_child = self.expect_identifier("child column")
        self.expect_symbol(")")
        self.expect_keyword("AS")
        alias = self.expect_identifier("nested table name")
        return ast.ShapeAppend(child=child, relate_master=relate_master,
                               relate_child=relate_child, alias=alias)

    # -- plain SQL DDL/DML ----------------------------------------------------

    def parse_create_table(self) -> ast.CreateTableStatement:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        name = self.expect_identifier("table name")
        self.expect_symbol("(")
        columns = [self._parse_column_def()]
        while self.accept_symbol(","):
            columns.append(self._parse_column_def())
        self.expect_symbol(")")
        return ast.CreateTableStatement(name=name, columns=columns)

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self.expect_identifier("column name")
        type_name = self.expect_identifier("type name")
        column = ast.ColumnDef(name=name, type_name=type_name.upper())
        while True:
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                column.nullable = False
            elif self.accept_keyword("NULL"):
                column.nullable = True
            elif self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                column.primary_key = True
                column.nullable = False
            else:
                return column

    def parse_create_index(self) -> ast.CreateIndexStatement:
        """``CREATE INDEX <name> ON <table> (<column>)``."""
        self.expect_keyword("CREATE")
        self.expect_keyword("INDEX")
        name = self.expect_identifier("index name")
        self.expect_keyword("ON")
        table = self.expect_identifier("table name")
        self.expect_symbol("(")
        column = self.expect_identifier("column name")
        self.expect_symbol(")")
        return ast.CreateIndexStatement(name=name, table=table, column=column)

    def parse_create_view(self) -> ast.CreateViewStatement:
        self.expect_keyword("CREATE")
        self.expect_keyword("VIEW")
        name = self.expect_identifier("view name")
        self.expect_keyword("AS")
        return ast.CreateViewStatement(name=name, select=self.parse_select())

    def parse_update(self) -> ast.UpdateStatement:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier("table name")
        self.expect_keyword("SET")
        assignments = []
        while True:
            column = self.expect_identifier("column name")
            self.expect_symbol("=")
            assignments.append((column, self.parse_expression()))
            if not self.accept_symbol(","):
                break
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return ast.UpdateStatement(table=table, assignments=assignments,
                                   where=where)

    def parse_update_statistics(self) -> ast.UpdateStatisticsStatement:
        """``UPDATE STATISTICS [<table>]`` (bare form refreshes every table)."""
        self.expect_keyword("UPDATE")
        self.expect_keyword("STATISTICS")
        table = None
        if not self.at_end():
            table = self.expect_identifier("table name")
        return ast.UpdateStatisticsStatement(table=table)

    # -- expressions ----------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        self._enter()
        try:
            return self._parse_or()
        finally:
            self._leave()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.peek().is_keyword("OR"):
            self.advance()
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self.peek().is_keyword("AND"):
            self.advance()
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        token = self.peek()
        if token.is_symbol("=", "<>", "!=", "<", "<=", ">", ">="):
            op = "<>" if token.value == "!=" else token.value
            self.advance()
            return ast.BinaryOp(op, left, self._parse_additive())
        negated = False
        if token.is_keyword("NOT") and self.peek(1).is_keyword(
                "IN", "BETWEEN", "LIKE"):
            self.advance()
            negated = True
            token = self.peek()
        if token.is_keyword("IS"):
            self.advance()
            is_not = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated=is_not)
        if token.is_keyword("IN"):
            self.advance()
            self.expect_symbol("(")
            if self.peek().is_keyword("SELECT"):
                select = self.parse_select()
                self.expect_symbol(")")
                return ast.InSelect(left, select=select, negated=negated)
            items = [self.parse_expression()]
            while self.accept_symbol(","):
                items.append(self.parse_expression())
            self.expect_symbol(")")
            return ast.InList(left, items=items, negated=negated)
        if token.is_keyword("BETWEEN"):
            self.advance()
            low = self._parse_additive()
            self.expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(left, low=low, high=high, negated=negated)
        if token.is_keyword("LIKE"):
            self.advance()
            return ast.Like(left, pattern=self._parse_additive(),
                            negated=negated)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self.peek().is_symbol("+", "-", "||"):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self.peek().is_symbol("*", "/"):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expr:
        if self.peek().is_symbol("-"):
            self.advance()
            return ast.UnaryOp("-", self._parse_unary())
        if self.peek().is_symbol("+"):
            self.advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return ast.Literal(token.value)
        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_symbol("("):
            self.advance()
            if self.peek().is_keyword("SELECT"):
                select = self.parse_select()
                self.expect_symbol(")")
                return ast.SubSelect(select=select)
            expr = self.parse_expression()
            self.expect_symbol(")")
            return expr
        if token.is_symbol("*"):
            self.advance()
            return ast.Star()
        if token.kind in (TokenKind.IDENT, TokenKind.BRACKET_IDENT):
            return self._parse_name_or_call()
        raise self.error("expected an expression")

    def _parse_case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        whens = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expression()
            self.expect_keyword("THEN")
            whens.append((condition, self.parse_expression()))
        else_result = None
        if self.accept_keyword("ELSE"):
            else_result = self.parse_expression()
        self.expect_keyword("END")
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        return ast.Case(whens=whens, else_result=else_result)

    def _parse_name_or_call(self) -> ast.Expr:
        first = self.expect_identifier()
        # Function call: a single bare name directly followed by '('.
        if self.peek().is_symbol("("):
            self.advance()
            distinct = False
            args: List[ast.Expr] = []
            if not self.peek().is_symbol(")"):
                if self.accept_keyword("DISTINCT"):
                    distinct = True
                args.append(self._parse_func_arg())
                while self.accept_symbol(","):
                    args.append(self._parse_func_arg())
            self.expect_symbol(")")
            return ast.FuncCall(name=first, args=args, distinct=distinct)
        parts = [first]
        while self.peek().is_symbol(".") and self.peek(1).kind in (
                TokenKind.IDENT, TokenKind.BRACKET_IDENT):
            self.advance()
            parts.append(self.expect_identifier())
        return ast.ColumnRef(parts=tuple(parts))

    def _parse_func_arg(self) -> ast.Expr:
        if self.peek().is_symbol("*"):
            self.advance()
            return ast.Star()
        return self.parse_expression()


def parse_statement(text: str) -> ast.Statement:
    """Parse a single SQL or DMX statement from ``text``."""
    with obs_trace.span("parse"):
        parser = Parser(text)
        statement = parser.parse_statement()
        obs_trace.add("tokens", len(parser.tokens))
        return statement


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and the REPL)."""
    parser = Parser(text)
    expr = parser.parse_expression()
    if not parser.at_end():
        raise parser.error("unexpected trailing input after expression")
    return expr
