"""The DMX wire protocol: length-prefixed JSON frames and codecs.

Every message on the wire is one *frame*: a 4-byte big-endian unsigned
length followed by that many bytes of UTF-8 JSON encoding a single object.
The framing is the whole transport contract — everything above it (hello,
execute, streams, cancel) is plain JSON, so any language with sockets and
a JSON parser can speak it.

::

    +----------------+---------------------------------------------+
    | length (4, BE) | UTF-8 JSON object, exactly `length` bytes   |
    +----------------+---------------------------------------------+

Rowsets travel as ``{"columns": [...], "rows": [...]}`` with column type
names from :mod:`repro.sqlstore.types` and scalar values tagged with the
same ``$date``/``$datetime`` scheme the persistence layer uses, so a
rowset read back from the wire is *byte-identical* (under
:func:`rowset_dump`) to the one the embedded API returns — the invariant
the wire-vs-embedded differential grid pins.  Nested TABLE cells recurse
as ``{"$rowset": {...}}``.

Errors travel as ``{"type": <class name>, "message": <str>}`` and are
reconstructed client-side into the matching :mod:`repro.errors` class, so
``except BindError:`` works identically over the wire.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro import errors as errors_module
from repro.errors import Error, ParseError, ProtocolError
from repro.core.persistence import decode_value, encode_value
from repro.sqlstore.rowset import Rowset, RowsetColumn
from repro.sqlstore.types import type_from_name

#: Protocol revision; the hello handshake rejects mismatches up front.
PROTOCOL_VERSION = 1

#: Refuse frames above this size (a corrupt or hostile length prefix
#: must not make the receiver allocate gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


# ---------------------------------------------------------------------------
# Frame I/O
# ---------------------------------------------------------------------------

def _recv_exact(sock, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on clean EOF before any byte.

    EOF *after* the first byte is a torn frame and raises — the peer died
    mid-message and the stream can never resynchronise.
    """
    chunks: List[bytes] = []
    received = 0
    while received < count:
        chunk = sock.recv(min(65536, count - received))
        if not chunk:
            if received == 0:
                return None
            raise ProtocolError(
                f"torn frame: peer closed after {received} of {count} bytes")
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def send_frame(sock, message: Dict[str, Any]) -> int:
    """Serialize and send one frame; returns the bytes written."""
    payload = json.dumps(message, separators=(",", ":"),
                         default=str).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    sock.sendall(_HEADER.pack(len(payload)) + payload)
    return _HEADER.size + len(payload)


def recv_frame(sock,
               max_bytes: int = MAX_FRAME_BYTES
               ) -> Tuple[Optional[Dict[str, Any]], int]:
    """Read one frame; ``(None, 0)`` on clean EOF at a frame boundary.

    Raises :class:`ProtocolError` for torn frames, oversize length
    prefixes, undecodable payloads, and payloads that are not JSON
    objects.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None, 0
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            f"oversize frame: length prefix {length} exceeds the "
            f"{max_bytes}-byte limit")
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise ProtocolError("torn frame: peer closed before the payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got "
            f"{type(message).__name__}")
    return message, _HEADER.size + length


# ---------------------------------------------------------------------------
# Rowset codec
# ---------------------------------------------------------------------------

def _column_to_wire(column: RowsetColumn) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "name": column.name,
        "type": None if column.type is None else column.type.name,
    }
    if column.nested_columns is not None:
        out["nested"] = [_column_to_wire(c) for c in column.nested_columns]
    return out


def _column_from_wire(entry: Dict[str, Any]) -> RowsetColumn:
    nested = entry.get("nested")
    if nested is not None:
        return RowsetColumn(entry["name"],
                            nested_columns=[_column_from_wire(c)
                                            for c in nested])
    name = entry.get("type")
    return RowsetColumn(entry["name"],
                        None if name is None else type_from_name(name))


def columns_to_wire(columns) -> List[Dict[str, Any]]:
    return [_column_to_wire(column) for column in columns]


def columns_from_wire(entries) -> List[RowsetColumn]:
    return [_column_from_wire(entry) for entry in entries]


def encode_cell(value: Any) -> Any:
    if isinstance(value, Rowset):
        return {"$rowset": rowset_to_wire(value)}
    return encode_value(value)


def decode_cell(value: Any) -> Any:
    if isinstance(value, dict) and "$rowset" in value:
        return rowset_from_wire(value["$rowset"])
    return decode_value(value)


def encode_rows(rows) -> List[List[Any]]:
    return [[encode_cell(value) for value in row] for row in rows]


def decode_rows(rows) -> List[tuple]:
    return [tuple(decode_cell(value) for value in row) for row in rows]


def rowset_to_wire(rowset: Rowset) -> Dict[str, Any]:
    return {"columns": columns_to_wire(rowset.columns),
            "rows": encode_rows(rowset.rows)}


def rowset_from_wire(entry: Dict[str, Any]) -> Rowset:
    return Rowset(columns_from_wire(entry["columns"]),
                  decode_rows(entry["rows"]))


def rowset_dump(rowset: Rowset) -> str:
    """Canonical byte-exact dump of a rowset (the differential contract).

    Two rowsets are considered wire-equal iff their dumps are equal as
    strings: same column names, same type names, same nesting, same row
    values in the same order.
    """
    return json.dumps(rowset_to_wire(rowset), sort_keys=True,
                      separators=(",", ":"), default=str)


# ---------------------------------------------------------------------------
# Result and error codecs
# ---------------------------------------------------------------------------

def result_to_wire(result: Any) -> Dict[str, Any]:
    """Encode an ``execute`` result (Rowset | int | str | None)."""
    if isinstance(result, Rowset):
        return {"type": "rowset", "rowset": rowset_to_wire(result)}
    if isinstance(result, bool) or not isinstance(result, (int, str)):
        if result is None:
            return {"type": "none"}
        raise ProtocolError(
            f"unencodable result type {type(result).__name__}")
    if isinstance(result, int):
        return {"type": "rowcount", "value": result}
    return {"type": "text", "value": result}


def result_from_wire(entry: Dict[str, Any]) -> Any:
    kind = entry.get("type")
    if kind == "rowset":
        return rowset_from_wire(entry["rowset"])
    if kind == "rowcount":
        return int(entry["value"])
    if kind == "text":
        return entry["value"]
    if kind == "none":
        return None
    raise ProtocolError(f"unknown result type {kind!r} in reply")


def error_to_wire(exc: BaseException) -> Dict[str, Any]:
    """Encode an exception; non-provider errors degrade to plain Error."""
    out: Dict[str, Any] = {
        "type": type(exc).__name__ if isinstance(exc, Error) else "Error",
        "message": str(exc),
    }
    if isinstance(exc, ParseError):
        out["line"] = exc.line
        out["column"] = exc.column
    return out


def error_from_wire(entry: Dict[str, Any]) -> Error:
    """Rebuild the concrete :mod:`repro.errors` class from a wire error.

    The message is carried verbatim (ParseError's position suffix is
    already baked in, so the class is constructed without re-appending it)
    and ``line``/``column`` are restored as attributes.
    """
    name = entry.get("type") or "Error"
    cls = getattr(errors_module, name, None)
    if not (isinstance(cls, type) and issubclass(cls, Error)):
        cls = Error
    message = entry.get("message", "")
    if cls is ParseError:
        exc = ParseError(message)
        exc.line = entry.get("line")
        exc.column = entry.get("column")
        return exc
    return cls(message)
