"""DMX over the wire: the network server for a provider.

``repro.server`` turns the embedded provider into a multi-session network
service: :class:`DmxServer` listens on TCP, admits sessions (with bounded
queueing and typed backpressure), and executes each session's statements
on a dedicated thread through the ordinary embedded paths — which is why
results over the wire are byte-identical to embedded ones.  The matching
client lives in :mod:`repro.client`; the frame protocol both sides speak
is :mod:`repro.server.protocol`.
"""

from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    recv_frame,
    rowset_dump,
    send_frame,
)
from repro.server.server import DmxServer, serve

__all__ = [
    "DmxServer",
    "serve",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "send_frame",
    "recv_frame",
    "rowset_dump",
]
