"""The DMX network server: multi-session statement serving over TCP.

:class:`DmxServer` wraps one :class:`~repro.core.provider.Provider` and
serves it to concurrent clients over the frame protocol of
:mod:`repro.server.protocol`.  The design is deliberately boring:

* **Thread per session.**  Each admitted connection gets its own thread,
  and statements execute *on that thread* through the ordinary embedded
  ``Provider.execute`` / ``execute_stream`` paths.  All of the provider's
  thread-local machinery — tracer activation, active-statement
  registration, cancel-token checkpoints, the session DOP cap — therefore
  works over the wire exactly as it does embedded, which is what lets the
  wire-vs-embedded differential grid demand byte-identical results.

* **Handshake-first admission.**  A connection's first frame decides what
  it is: ``hello`` starts a session, ``cancel`` is a short-lived control
  connection (see below).  Session admission is gated by ``max_sessions``
  with a bounded wait queue of ``queue_limit`` handshaked connections;
  beyond that the server answers a typed :class:`ServerBusyError` frame
  instead of letting clients hang — backpressure you can catch.

* **Out-of-band CANCEL.**  While a session's socket is busy carrying a
  statement, the client cannot ask *that* socket to cancel it.  Following
  the Postgres convention, ``Connection.cancel`` opens a second, throwaway
  connection authenticated by the session id plus a per-session secret
  issued at hello time.  The cancel is scoped: a session may only cancel
  its own statements (:meth:`WorkloadRegistry.cancel` enforces ownership).

* **Statement gate.**  Every wire statement runs inside an admission gate
  that :meth:`quiesce` can pause: in-flight statements finish, new ones
  queue briefly, and the caller (``Provider.checkpoint``) runs with the
  wire quiet — so a checkpoint always lands on a statement boundary.
  :meth:`close` drains the same way, then tears sessions down.
"""

from __future__ import annotations

import contextlib
import secrets
import socket
import threading
import time
from collections import deque
from typing import List, Optional

from repro.errors import Error, ProtocolError, ServerBusyError
from repro.exec.pool import set_session_dop_cap
from repro.obs import workload as obs_workload
from repro.server import protocol
from repro.sqlstore.rowset import Rowset, RowStream

#: How long a freshly accepted connection may dawdle before its first
#: frame; afterwards sessions may idle indefinitely.
HANDSHAKE_TIMEOUT = 10.0

#: How long close() waits for in-flight statements before cancelling them.
DRAIN_TIMEOUT = 5.0

DEFAULT_MAX_SESSIONS = 16
DEFAULT_QUEUE_LIMIT = 8


class _StatementGate:
    """Counts in-flight wire statements and supports pause-and-drain."""

    def __init__(self):
        self._cond = threading.Condition()
        self.in_flight = 0
        self._paused = False

    @contextlib.contextmanager
    def admit(self):
        with self._cond:
            while self._paused:
                self._cond.wait()
            self.in_flight += 1
        try:
            yield
        finally:
            with self._cond:
                self.in_flight -= 1
                self._cond.notify_all()

    @contextlib.contextmanager
    def quiesce(self):
        """Pause admission, wait the wire quiet, run the body, resume."""
        with self._cond:
            while self._paused:  # one quiescer at a time
                self._cond.wait()
            self._paused = True
            while self.in_flight:
                self._cond.wait()
        try:
            yield
        finally:
            with self._cond:
                self._paused = False
                self._cond.notify_all()

    def wait_idle(self, timeout: float) -> bool:
        """Wait up to ``timeout`` seconds for zero in-flight statements."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self.in_flight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True


class Session:
    """Book-keeping for one wire session (a row of ``DM_SESSIONS``)."""

    __slots__ = ("session_id", "secret", "remote", "state", "connected_at",
                 "statements", "rows_sent", "bytes_in", "bytes_out",
                 "batch_size", "max_dop", "last_statement", "sock", "thread")

    def __init__(self, session_id: int, sock, remote: str,
                 batch_size: Optional[int], max_dop: Optional[int]):
        self.session_id = session_id
        self.secret = secrets.token_hex(16)
        self.remote = remote
        self.state = "active"
        self.connected_at = time.time()
        self.statements = 0
        self.rows_sent = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.batch_size = batch_size
        self.max_dop = max_dop
        self.last_statement = None
        self.sock = sock
        self.thread = None


def _condense(text: str, limit: int = 120) -> str:
    text = " ".join((text or "").split())
    return text if len(text) <= limit else text[:limit - 3] + "..."


class DmxServer:
    """Serve one provider's DMX surface to concurrent network sessions.

    ``port=0`` binds an ephemeral port — read the real one back from
    ``server.port`` (and it is reported in the ``serving`` log line of
    ``dmxsh --serve``).  ``checkpoint_on_close`` snapshots an attached
    durable store after the drain, so a served provider shuts down with
    an empty journal.
    """

    def __init__(self, provider, host: str = "127.0.0.1", port: int = 0,
                 max_sessions: int = DEFAULT_MAX_SESSIONS,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 checkpoint_on_close: bool = False):
        self.provider = provider
        self.host = host
        self.max_sessions = max(1, int(max_sessions))
        self.queue_limit = max(0, int(queue_limit))
        self.checkpoint_on_close = bool(checkpoint_on_close)
        self.closed = False
        self.gate = _StatementGate()
        self.metrics = provider.metrics
        # Unexpected (non-Error) exceptions from connection threads land
        # here; the fuzz suite asserts this stays empty — a malformed
        # client must never crash a server thread.
        self.thread_errors: List[BaseException] = []
        self._lock = threading.Condition()
        self._sessions: dict = {}          # session_id -> Session
        self._closed_sessions: deque = deque(maxlen=64)
        self._waiting = 0                  # handshaked hellos queued for a slot
        self._next_session_id = 1
        self._conn_threads: List[threading.Thread] = []

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, int(port)))
        self._listener.listen(self.max_sessions + self.queue_limit)
        self.port = self._listener.getsockname()[1]

        self.metrics.gauge("server.sessions_active").set(0)
        self.metrics.gauge("server.queue_depth").set(0)
        provider.dmx_server = self
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dmx-accept", daemon=True)
        self._accept_thread.start()

    # -- introspection --------------------------------------------------------

    def sessions(self) -> List[Session]:
        """Active sessions plus the recently-closed ring (DM_SESSIONS)."""
        with self._lock:
            active = sorted(self._sessions.values(),
                            key=lambda s: s.session_id)
            return active + list(self._closed_sessions)

    def quiesce(self):
        """Pause wire-statement admission and drain in-flight statements."""
        return self.gate.quiesce()

    # -- accept / admission ---------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return  # listener closed by close()
            if self.closed:
                self._reject(sock, ServerBusyError(
                    "server is shutting down"))
                continue
            thread = threading.Thread(
                target=self._serve_connection, args=(sock, addr),
                name="dmx-conn", daemon=True)
            with self._lock:
                self._conn_threads.append(thread)
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()]
            thread.start()

    def _reject(self, sock, exc: Error) -> None:
        self.metrics.counter("server.rejections").inc()
        try:
            sock.settimeout(HANDSHAKE_TIMEOUT)
            protocol.send_frame(sock, {"error": protocol.error_to_wire(exc)})
        except OSError:
            pass
        finally:
            _close_socket(sock)

    def _admit(self, sock, remote: str, hello: dict) -> Optional[Session]:
        """Apply the admission policy to a handshaked hello.

        Returns the new :class:`Session`, or None after sending a typed
        rejection.  Blocks (bounded by ``queue_limit``) while all session
        slots are busy — the queued client simply sees a slow welcome.
        """
        batch_size = hello.get("batch_size")
        max_dop = hello.get("max_dop")
        session = None
        rejection = None
        with self._lock:
            while True:
                if self.closed:
                    rejection = ServerBusyError("server is shutting down")
                    break
                if len(self._sessions) < self.max_sessions:
                    session = Session(self._next_session_id, sock, remote,
                                      batch_size, max_dop)
                    self._next_session_id += 1
                    self._sessions[session.session_id] = session
                    session.thread = threading.current_thread()
                    self.metrics.counter("server.sessions_total").inc()
                    self.metrics.gauge("server.sessions_active").set(
                        len(self._sessions))
                    break
                if self._waiting >= self.queue_limit:
                    rejection = ServerBusyError(
                        f"server at capacity: {len(self._sessions)} "
                        f"sessions active and {self._waiting} queued "
                        f"(max_sessions={self.max_sessions}, "
                        f"queue_limit={self.queue_limit})")
                    break
                self._waiting += 1
                self.metrics.gauge("server.queue_depth").set(self._waiting)
                try:
                    self._lock.wait()
                finally:
                    self._waiting -= 1
                    self.metrics.gauge("server.queue_depth").set(
                        self._waiting)
        if rejection is not None:
            self._reject(sock, rejection)
            return None
        return session

    def _retire(self, session: Session) -> None:
        with self._lock:
            self._sessions.pop(session.session_id, None)
            session.state = "closed"
            session.sock = None
            session.thread = None
            self._closed_sessions.append(session)
            self.metrics.gauge("server.sessions_active").set(
                len(self._sessions))
            self._lock.notify_all()  # wake queued hellos and close()

    # -- connection handling --------------------------------------------------

    def _serve_connection(self, sock, addr) -> None:
        remote = f"{addr[0]}:{addr[1]}"
        session = None
        try:
            sock.settimeout(HANDSHAKE_TIMEOUT)
            try:
                hello, nbytes = protocol.recv_frame(sock)
            except (ProtocolError, OSError):
                _close_socket(sock)
                return
            if hello is None:  # connected and left without a word
                _close_socket(sock)
                return
            self.metrics.counter("server.bytes_in").inc(nbytes)
            op = hello.get("op")
            if op == "cancel":
                self._handle_cancel(sock, hello)
                return
            if op != "hello":
                self._reject_protocol(sock, ProtocolError(
                    f"expected a hello or cancel frame, got op={op!r}"))
                return
            version = hello.get("protocol")
            if version != protocol.PROTOCOL_VERSION:
                self._reject_protocol(sock, ProtocolError(
                    f"protocol version mismatch: client speaks {version!r}, "
                    f"server speaks {protocol.PROTOCOL_VERSION}"))
                return
            session = self._admit(sock, remote, hello)
            if session is None:
                return
            session.bytes_in += nbytes
            sock.settimeout(None)  # sessions may idle; close() unblocks us
            self._send(session, {
                "ok": True,
                "session": session.session_id,
                "secret": session.secret,
                "protocol": protocol.PROTOCOL_VERSION,
                "batch_size": session.batch_size,
                "max_dop": session.max_dop,
            })
            self._session_loop(session)
        except (ProtocolError, OSError):
            pass  # torn peer or racing teardown: nothing left to tell it
        except Exception as exc:  # noqa: BLE001 - the fuzz invariant
            self.thread_errors.append(exc)
        finally:
            if session is not None:
                self._retire(session)
            _close_socket(sock)

    def _reject_protocol(self, sock, exc: ProtocolError) -> None:
        try:
            protocol.send_frame(sock, {"error": protocol.error_to_wire(exc)})
        except OSError:
            pass
        finally:
            _close_socket(sock)

    def _handle_cancel(self, sock, frame: dict) -> None:
        """A control connection: cancel one statement of one session."""
        try:
            session_id = frame.get("session")
            with self._lock:
                session = self._sessions.get(session_id)
            if session is None or frame.get("secret") != session.secret:
                raise Error(f"no session {session_id!r} with that secret")
            target = self.provider.workload.cancel(
                int(frame.get("statement", 0)), session=session.session_id)
            reply = {"ok": True,
                     "message": f"cancel requested for statement "
                                f"{target.statement_id} ({target.kind}, "
                                f"phase {target.phase})"}
        except Error as exc:
            reply = {"error": protocol.error_to_wire(exc)}
        try:
            protocol.send_frame(sock, reply)
        except OSError:
            pass
        finally:
            _close_socket(sock)

    # -- the session loop -----------------------------------------------------

    def _send(self, session: Session, message: dict) -> None:
        nbytes = protocol.send_frame(session.sock, message)
        session.bytes_out += nbytes
        self.metrics.counter("server.bytes_out").inc(nbytes)

    def _session_loop(self, session: Session) -> None:
        """Bind the session's thread-locals and serve frames until EOF.

        Statements execute on this thread, so the provider's tracer,
        active-statement registry, and pool all see the session exactly as
        they would an embedded caller thread.
        """
        obs_workload.set_session(session.session_id)
        set_session_dop_cap(session.max_dop)
        try:
            while True:
                try:
                    frame, nbytes = protocol.recv_frame(session.sock)
                except ProtocolError as exc:
                    # The stream cannot resynchronise after a framing
                    # error: answer (best effort) and tear down.
                    with contextlib.suppress(OSError, ProtocolError):
                        self._send(session, {
                            "error": protocol.error_to_wire(exc)})
                    return
                if frame is None:
                    return  # clean EOF at a frame boundary
                session.bytes_in += nbytes
                self.metrics.counter("server.bytes_in").inc(nbytes)
                op = frame.get("op")
                if op == "goodbye":
                    self._send(session, {"ok": True})
                    return
                if op == "ping":
                    self._send(session, {"ok": True, "pong": True})
                    continue
                if op == "execute":
                    self._handle_execute(session, frame)
                    continue
                if op == "execute_stream":
                    self._handle_execute_stream(session, frame)
                    continue
                self._send(session, {"error": protocol.error_to_wire(
                    ProtocolError(f"unknown op {op!r}"))})
        finally:
            obs_workload.set_session(None)
            set_session_dop_cap(None)

    def _note_statement(self, session: Session, text: str) -> None:
        session.statements += 1
        session.last_statement = _condense(text)
        self.metrics.counter("server.statements").inc()

    def _handle_execute(self, session: Session, frame: dict) -> None:
        text = frame.get("statement", "")
        self._note_statement(session, text)
        try:
            with self.gate.admit():
                result = self.provider.execute(text)
            if isinstance(result, RowStream):  # defensive: execute() never
                result = result.materialize()  # streams today
            if isinstance(result, Rowset):
                session.rows_sent += len(result.rows)
            reply = {"ok": True, "result": protocol.result_to_wire(result)}
        except Error as exc:
            reply = {"error": protocol.error_to_wire(exc)}
        self._send(session, reply)

    def _handle_execute_stream(self, session: Session, frame: dict) -> None:
        """execute_stream: a columns frame, then batch frames, then end.

        Mid-stream errors (a cancel landing between batches, a lazy bind
        failure) arrive as an error frame *instead of* the end frame; the
        client re-raises at that point in its batch iterator, matching
        where the embedded stream would have raised.
        """
        text = frame.get("statement", "")
        self._note_statement(session, text)
        batch_size = frame.get("batch_size")
        if batch_size is None:
            batch_size = session.batch_size
        try:
            with self.gate.admit():
                stream = self.provider.execute_stream(text, batch_size)
                self._send(session, {
                    "ok": True,
                    "columns": protocol.columns_to_wire(stream.columns)})
                for batch in stream.batches():
                    session.rows_sent += len(batch)
                    self._send(session, {
                        "batch": protocol.encode_rows(batch)})
                self._send(session, {"end": True})
        except Error as exc:
            with contextlib.suppress(OSError, ProtocolError):
                self._send(session, {"error": protocol.error_to_wire(exc)})

    # -- shutdown -------------------------------------------------------------

    def close(self) -> None:
        """Drain and stop: finish in-flight statements (up to
        ``DRAIN_TIMEOUT``, then cancel stragglers), tear down sessions,
        optionally checkpoint the durable store, detach from the provider.
        Idempotent."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            self._lock.notify_all()  # queued hellos re-check and bail
        _close_socket(self._listener)

        if not self.gate.wait_idle(DRAIN_TIMEOUT):
            # Politely ask stragglers to stop at their next checkpoint,
            # then give them one more drain window.
            for statement in self.provider.workload.active():
                if statement.session is not None:
                    with contextlib.suppress(Error):
                        self.provider.workload.cancel(
                            statement.statement_id,
                            reason="server shutting down")
            self.gate.wait_idle(DRAIN_TIMEOUT)

        with self._lock:
            sessions = list(self._sessions.values())
            threads = [s.thread for s in sessions if s.thread is not None]
            threads += [t for t in self._conn_threads if t.is_alive()]
        for session in sessions:
            _close_socket(session.sock)  # unblocks recv/sendall
        for thread in threads:
            if thread is not threading.current_thread():
                thread.join(timeout=DRAIN_TIMEOUT)
        self._accept_thread.join(timeout=DRAIN_TIMEOUT)

        if self.checkpoint_on_close and self.provider.store is not None:
            # closed is already True, so Provider.checkpoint takes the
            # plain (un-gated) path; the wire is quiet by now.
            self.provider.checkpoint()
        if self.provider.dmx_server is self:
            self.provider.dmx_server = None

    def __enter__(self) -> "DmxServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _close_socket(sock) -> None:
    if sock is None:
        return
    with contextlib.suppress(OSError):
        sock.shutdown(socket.SHUT_RDWR)
    with contextlib.suppress(OSError):
        sock.close()


def serve(provider, host: str = "127.0.0.1", port: int = 0,
          **kwargs) -> DmxServer:
    """Start a :class:`DmxServer` for ``provider`` and return it."""
    return DmxServer(provider, host=host, port=port, **kwargs)
