"""The Data Shaping Service (system S3): hierarchical rowsets from SHAPE.

The paper (section 3.1) uses Microsoft's Data Shaping Service to build
*casesets*: one row per entity with nested TABLE columns for one-to-many
facts.  ``execute_shape`` evaluates a parsed SHAPE expression against the
relational engine and returns the hierarchical rowset; ``Caseset`` offers a
convenient case-at-a-time view over any such rowset.
"""

from repro.shaping.shape import execute_shape, flatten_rowset
from repro.shaping.caseset import Case, Caseset

__all__ = ["execute_shape", "flatten_rowset", "Case", "Caseset"]
