"""SHAPE execution: turn SHAPE/APPEND/RELATE trees into nested rowsets.

Semantics follow the MDAC Data Shaping Service the paper relies on:

* the master query produces one output row per case;
* each APPEND arm adds one TABLE-typed column, whose cell for a master row
  holds the child rows whose ``relate_child`` value equals the master row's
  ``relate_master`` value;
* arms and SHAPEs nest arbitrarily.

Shaping is *logical* (paper, section 3.1): storage stays flat; nesting is
materialised only here, on the way into training or prediction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import BindError
from repro.lang import ast_nodes as ast
from repro.obs import trace as obs_trace
from repro.sqlstore.rowset import Rowset, RowsetColumn, RowStream
from repro.sqlstore.values import group_key


def execute_shape(shape: ast.ShapeExpr, database) -> Rowset:
    """Evaluate a SHAPE expression against ``database`` (a Database)."""
    return execute_shape_stream(shape, database).materialize()


def execute_shape_stream(shape: ast.ShapeExpr, database,
                         batch_size: Optional[int] = None) -> RowStream:
    """Evaluate a SHAPE expression as a stream of nested-case batches.

    Child (APPEND) queries must run to completion up front — every child row
    is hashed into per-RELATE-key buckets — but the *master* side streams:
    nested rowsets are attached batch by batch, so a consumer that processes
    cases incrementally (training, PREDICTION JOIN) never holds the whole
    shaped caseset.  Bucket lists are shared between the hash table and the
    emitted nested rowsets; per-case nested ``Rowset`` wrappers are the only
    per-row allocation and die with their batch.
    """
    batch_size = batch_size or getattr(database, "batch_size", 1024)
    span = obs_trace.span("shape", appends=len(shape.appends))
    with span:
        master = _execute_source_stream(shape.master, database, batch_size)
        columns = list(master.columns)
        plans = []  # (master_index, buckets, nested_schema)

        for append in shape.appends:
            child = _execute_source(append.child, database)
            obs_trace.add_to(span, "shape_child_rows", len(child.rows))
            child_index = _require_column(child, append.relate_child,
                                          "RELATE child")
            master_index = _require_column_list(columns, append.relate_master,
                                                "RELATE master")
            buckets: Dict[object, List[tuple]] = {}
            for child_row in child.rows:
                buckets.setdefault(
                    group_key(child_row[child_index]), []).append(child_row)
            nested_schema = list(child.columns)
            plans.append((master_index, buckets, nested_schema))
            columns.append(
                RowsetColumn(append.alias, nested_columns=nested_schema))

    def produce():
        for batch in master.batches():
            obs_trace.add_to(span, "shape_master_rows", len(batch))
            out = []
            for row in batch:
                shaped = list(row)
                for master_index, buckets, nested_schema in plans:
                    key = group_key(shaped[master_index])
                    shaped.append(
                        Rowset(nested_schema, buckets.get(key, [])))
                out.append(tuple(shaped))
            obs_trace.add_to(span, "shape_cases_out", len(out))
            yield out
    return RowStream(columns, produce())


def plan_shape(shape: ast.ShapeExpr, database, external_planner=None):
    """Describe a SHAPE expression's plan for EXPLAIN, without executing it.

    Mirrors :func:`execute_shape_stream`: the master streams, every APPEND
    child materializes up front into RELATE-key buckets.
    """
    from repro.obs.explain import PlanNode

    node = PlanNode("shape",
                    strategy=f"master streamed, {len(shape.appends)} "
                             f"append(s) materialized",
                    span_name="shape", rows_counter="shape_cases_out")
    master = _plan_source(shape.master, database, external_planner)
    master.target = master.target or "master"
    node.add(master)
    node.est_rows = master.est_rows
    cost = master.cost or 0.0
    for append in shape.appends:
        child = _plan_source(append.child, database, external_planner)
        child.operator = f"append [{append.alias}]"
        child.strategy = (f"{child.strategy}; bucketed on "
                          f"{append.relate_child}")
        node.add(child)
        cost += (child.cost or 0.0) + float(child.est_rows or 0)
    node.cost = cost
    return node


def _plan_source(source: Union[ast.SelectStatement, ast.ShapeExpr],
                 database, external_planner):
    if isinstance(source, ast.ShapeExpr):
        return plan_shape(source, database, external_planner)
    return database.plan_select(source, external_planner)


def _execute_source(source: Union[ast.SelectStatement, ast.ShapeExpr],
                    database) -> Rowset:
    if isinstance(source, ast.ShapeExpr):
        return execute_shape(source, database)
    return database.execute_select(source)


def _execute_source_stream(source: Union[ast.SelectStatement, ast.ShapeExpr],
                           database, batch_size: int) -> RowStream:
    if isinstance(source, ast.ShapeExpr):
        return execute_shape_stream(source, database, batch_size)
    return database.execute_select_stream(source, batch_size)


def _require_column(rowset: Rowset, name: str, what: str) -> int:
    if not rowset.has_column(name):
        raise BindError(
            f"{what} column {name!r} not found "
            f"(available: {', '.join(rowset.column_names())})")
    return rowset.index_of(name)


def _require_column_list(columns: List[RowsetColumn], name: str,
                         what: str) -> int:
    for index, column in enumerate(columns):
        if column.name.upper() == name.upper():
            return index
    raise BindError(
        f"{what} column {name!r} not found "
        f"(available: {', '.join(c.name for c in columns)})")


def _flatten_plan(columns: List[RowsetColumn]):
    """Output columns + per-row expansion plan for one flatten level."""
    flat_columns: List[RowsetColumn] = []
    plans = []  # (is_table, source_index, nested_width)
    for index, column in enumerate(columns):
        if column.nested_columns is not None:
            for nested in column.nested_columns:
                flat_columns.append(RowsetColumn(
                    f"{column.name}.{nested.name}", nested.type,
                    nested_columns=nested.nested_columns))
            plans.append((True, index, len(column.nested_columns)))
        else:
            flat_columns.append(RowsetColumn(column.name, column.type))
            plans.append((False, index, 1))
    return flat_columns, plans


def _flatten_row(row: tuple, plans) -> List[tuple]:
    """Cross-product expansion of one row's nested tables."""
    partials: List[List[object]] = [[]]
    for is_table, index, width in plans:
        if not is_table:
            partials = [p + [row[index]] for p in partials]
            continue
        nested = row[index]
        nested_rows = list(nested.rows) if isinstance(nested, Rowset) else []
        if not nested_rows:
            partials = [p + [None] * width for p in partials]
        else:
            partials = [p + list(nested_row)
                        for p in partials for nested_row in nested_rows]
    return [tuple(p) for p in partials]


def flatten_rowset(rowset: Rowset) -> Rowset:
    """Un-nest TABLE columns (the DMX SELECT FLATTENED transform).

    Each row is expanded into the cross product of its nested tables' rows;
    a case with an empty nested table keeps one output row with NULLs in
    that table's columns (so no case silently disappears).  Nested column
    names are prefixed with the table column's name to stay unambiguous.
    """
    flat_columns, plans = _flatten_plan(rowset.columns)
    flat_rows: List[tuple] = []
    for row in rowset.rows:
        flat_rows.extend(_flatten_row(row, plans))
    result = Rowset(flat_columns, flat_rows)
    if any(c.nested_columns is not None for c in flat_columns):
        return flatten_rowset(result)  # handle nested-within-nested
    return result


def flatten_stream(stream: RowStream) -> RowStream:
    """Streaming FLATTENED: expand each batch independently.

    Row expansion depends only on the row itself, so flattening pipelines
    cleanly; output batch sizes grow with the nested fan-out but stay
    proportional to the input batch.  The expansion plan comes from column
    metadata alone, applied recursively for nested-within-nested schemas.
    """
    flat_columns, plans = _flatten_plan(stream.columns)

    def produce():
        for batch in stream.batches():
            out: List[tuple] = []
            for row in batch:
                out.extend(_flatten_row(row, plans))
            if out:
                yield out
    result = RowStream(flat_columns, produce())
    if any(c.nested_columns is not None for c in flat_columns):
        return flatten_stream(result)
    return result
