"""SHAPE execution: turn SHAPE/APPEND/RELATE trees into nested rowsets.

Semantics follow the MDAC Data Shaping Service the paper relies on:

* the master query produces one output row per case;
* each APPEND arm adds one TABLE-typed column, whose cell for a master row
  holds the child rows whose ``relate_child`` value equals the master row's
  ``relate_master`` value;
* arms and SHAPEs nest arbitrarily.

Shaping is *logical* (paper, section 3.1): storage stays flat; nesting is
materialised only here, on the way into training or prediction.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.errors import BindError
from repro.lang import ast_nodes as ast
from repro.obs import trace as obs_trace
from repro.sqlstore.rowset import Rowset, RowsetColumn
from repro.sqlstore.values import group_key


def execute_shape(shape: ast.ShapeExpr, database) -> Rowset:
    """Evaluate a SHAPE expression against ``database`` (a Database)."""
    with obs_trace.span("shape", appends=len(shape.appends)):
        result = _execute_shape(shape, database)
        obs_trace.add("shape_cases_out", len(result.rows))
        return result


def _execute_shape(shape: ast.ShapeExpr, database) -> Rowset:
    master = _execute_source(shape.master, database)
    obs_trace.add("shape_master_rows", len(master.rows))
    columns = list(master.columns)
    rows = [list(row) for row in master.rows]

    for append in shape.appends:
        child = _execute_source(append.child, database)
        obs_trace.add("shape_child_rows", len(child.rows))
        child_index = _require_column(child, append.relate_child,
                                      "RELATE child")
        master_index = _require_column_list(columns, append.relate_master,
                                            "RELATE master")
        buckets: Dict[object, List[tuple]] = {}
        for child_row in child.rows:
            buckets.setdefault(
                group_key(child_row[child_index]), []).append(child_row)
        nested_schema = list(child.columns)
        for row in rows:
            key = group_key(row[master_index])
            row.append(Rowset(nested_schema, buckets.get(key, [])))
        columns.append(RowsetColumn(append.alias, nested_columns=nested_schema))

    return Rowset(columns, [tuple(row) for row in rows])


def _execute_source(source: Union[ast.SelectStatement, ast.ShapeExpr],
                    database) -> Rowset:
    if isinstance(source, ast.ShapeExpr):
        return execute_shape(source, database)
    return database.execute_select(source)


def _require_column(rowset: Rowset, name: str, what: str) -> int:
    if not rowset.has_column(name):
        raise BindError(
            f"{what} column {name!r} not found "
            f"(available: {', '.join(rowset.column_names())})")
    return rowset.index_of(name)


def _require_column_list(columns: List[RowsetColumn], name: str,
                         what: str) -> int:
    for index, column in enumerate(columns):
        if column.name.upper() == name.upper():
            return index
    raise BindError(
        f"{what} column {name!r} not found "
        f"(available: {', '.join(c.name for c in columns)})")


def flatten_rowset(rowset: Rowset) -> Rowset:
    """Un-nest TABLE columns (the DMX SELECT FLATTENED transform).

    Each row is expanded into the cross product of its nested tables' rows;
    a case with an empty nested table keeps one output row with NULLs in
    that table's columns (so no case silently disappears).  Nested column
    names are prefixed with the table column's name to stay unambiguous.
    """
    flat_columns: List[RowsetColumn] = []
    plans = []  # (is_table, source_index, nested_width)
    for index, column in enumerate(rowset.columns):
        if column.nested_columns is not None:
            for nested in column.nested_columns:
                flat_columns.append(RowsetColumn(
                    f"{column.name}.{nested.name}", nested.type,
                    nested_columns=nested.nested_columns))
            plans.append((True, index, len(column.nested_columns)))
        else:
            flat_columns.append(RowsetColumn(column.name, column.type))
            plans.append((False, index, 1))

    flat_rows: List[tuple] = []
    for row in rowset.rows:
        partials: List[List[object]] = [[]]
        for is_table, index, width in plans:
            if not is_table:
                partials = [p + [row[index]] for p in partials]
                continue
            nested = row[index]
            nested_rows = list(nested.rows) if isinstance(nested, Rowset) else []
            if not nested_rows:
                partials = [p + [None] * width for p in partials]
            else:
                partials = [p + list(nested_row)
                            for p in partials for nested_row in nested_rows]
        flat_rows.extend(tuple(p) for p in partials)

    result = Rowset(flat_columns, flat_rows)
    if any(c.nested_columns is not None for c in flat_columns):
        return flatten_rowset(result)  # handle nested-within-nested
    return result
