"""Case-oriented view over hierarchical rowsets.

A *case* (paper, section 3.1) is "all information known about a basic entity
being analyzed for mining": scalar columns plus zero or more nested tables.
:class:`Caseset` wraps any rowset — shaped or flat — and iterates
:class:`Case` objects, which the training and prediction layers consume one
at a time, exactly as the paper says mining algorithms are designed to do.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.errors import BindError
from repro.obs import trace as obs_trace
from repro.sqlstore.rowset import Rowset


class Case:
    """One entity instance: scalar values plus named nested tables."""

    def __init__(self, scalars: Dict[str, Any],
                 tables: Dict[str, List[Dict[str, Any]]]):
        self._scalars = {k.upper(): (k, v) for k, v in scalars.items()}
        self._tables = {k.upper(): (k, v) for k, v in tables.items()}

    def get(self, name: str, default: Any = None) -> Any:
        """Scalar value by (case-insensitive) column name."""
        entry = self._scalars.get(name.upper())
        return default if entry is None else entry[1]

    def __getitem__(self, name: str) -> Any:
        entry = self._scalars.get(name.upper())
        if entry is None:
            raise BindError(f"case has no scalar column {name!r}")
        return entry[1]

    def has_scalar(self, name: str) -> bool:
        return name.upper() in self._scalars

    def nested(self, name: str) -> List[Dict[str, Any]]:
        """Rows of one nested table as dicts (empty list if absent)."""
        entry = self._tables.get(name.upper())
        return [] if entry is None else entry[1]

    def has_table(self, name: str) -> bool:
        return name.upper() in self._tables

    def scalar_names(self) -> List[str]:
        return [original for original, _ in self._scalars.values()]

    def table_names(self) -> List[str]:
        return [original for original, _ in self._tables.values()]

    def __repr__(self) -> str:
        scalars = {k: v for k, (_, v) in zip(self._scalars, self._scalars.values())}
        return f"Case({scalars}, tables={self.table_names()})"


class Caseset:
    """Iterates a rowset as cases; TABLE columns become nested dict rows."""

    def __init__(self, rowset: Rowset):
        self.rowset = rowset
        self._scalar_indexes = []
        self._table_indexes = []
        for index, column in enumerate(rowset.columns):
            if column.nested_columns is not None:
                self._table_indexes.append((index, column))
            else:
                self._scalar_indexes.append((index, column))

    def __len__(self) -> int:
        return len(self.rowset)

    def __iter__(self) -> Iterator[Case]:
        shaped = 0
        try:
            for row in self.rowset.rows:
                scalars = {column.name: row[index]
                           for index, column in self._scalar_indexes}
                tables = {}
                for index, column in self._table_indexes:
                    nested = row[index]
                    tables[column.name] = (
                        nested.to_dicts() if isinstance(nested, Rowset) else [])
                shaped += 1
                yield Case(scalars, tables)
        finally:
            if shaped:
                obs_trace.add("cases_shaped", shaped)

    def scalar_columns(self) -> List[str]:
        return [column.name for _, column in self._scalar_indexes]

    def table_columns(self) -> List[str]:
        return [column.name for _, column in self._table_indexes]

    def column_for_table(self, name: str):
        for _, column in self._table_indexes:
            if column.name.upper() == name.upper():
                return column
        return None
