"""Case-oriented view over hierarchical rowsets.

A *case* (paper, section 3.1) is "all information known about a basic entity
being analyzed for mining": scalar columns plus zero or more nested tables.
:class:`Caseset` wraps any rowset — shaped or flat — and iterates
:class:`Case` objects, which the training and prediction layers consume one
at a time, exactly as the paper says mining algorithms are designed to do.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.errors import BindError
from repro.obs import trace as obs_trace
from repro.sqlstore.rowset import Rowset


class Case:
    """One entity instance: scalar values plus named nested tables."""

    def __init__(self, scalars: Dict[str, Any],
                 tables: Dict[str, List[Dict[str, Any]]]):
        self._scalars = {k.upper(): (k, v) for k, v in scalars.items()}
        self._tables = {k.upper(): (k, v) for k, v in tables.items()}

    def get(self, name: str, default: Any = None) -> Any:
        """Scalar value by (case-insensitive) column name."""
        entry = self._scalars.get(name.upper())
        return default if entry is None else entry[1]

    def __getitem__(self, name: str) -> Any:
        entry = self._scalars.get(name.upper())
        if entry is None:
            raise BindError(f"case has no scalar column {name!r}")
        return entry[1]

    def has_scalar(self, name: str) -> bool:
        return name.upper() in self._scalars

    def nested(self, name: str) -> List[Dict[str, Any]]:
        """Rows of one nested table as dicts (empty list if absent)."""
        entry = self._tables.get(name.upper())
        return [] if entry is None else entry[1]

    def has_table(self, name: str) -> bool:
        return name.upper() in self._tables

    def scalar_names(self) -> List[str]:
        return [original for original, _ in self._scalars.values()]

    def table_names(self) -> List[str]:
        return [original for original, _ in self._tables.values()]

    def __repr__(self) -> str:
        scalars = {k: v for k, (_, v) in zip(self._scalars, self._scalars.values())}
        return f"Case({scalars}, tables={self.table_names()})"


class Caseset:
    """Iterates a rowset as cases; TABLE columns become nested dict rows.

    The source may be a materialised :class:`Rowset` or a single-use
    :class:`~repro.sqlstore.rowset.RowStream`; with a stream, cases are
    built lazily per batch, so only one batch of nested structures is alive
    at a time (the paper's "consume cases one at a time" contract made
    memory-real).
    """

    def __init__(self, rowset):
        self.rowset = rowset
        self._scalar_indexes = []
        self._table_indexes = []
        for index, column in enumerate(rowset.columns):
            if column.nested_columns is not None:
                self._table_indexes.append((index, column))
            else:
                self._scalar_indexes.append((index, column))

    def __len__(self) -> int:
        if isinstance(self.rowset, Rowset):
            return len(self.rowset)
        raise BindError(
            "a streaming caseset has no length until consumed; "
            "materialize() the stream first if you need len()")

    def case_of(self, row: tuple) -> Case:
        """Shape one source row into a :class:`Case`."""
        scalars = {column.name: row[index]
                   for index, column in self._scalar_indexes}
        tables = {}
        for index, column in self._table_indexes:
            nested = row[index]
            tables[column.name] = (
                nested.to_dicts() if isinstance(nested, Rowset) else [])
        return Case(scalars, tables)

    def _row_batches(self, batch_size: int = 1024) -> Iterator[List[tuple]]:
        if isinstance(self.rowset, Rowset):
            rows = self.rowset.rows
            for start in range(0, len(rows), batch_size):
                yield rows[start:start + batch_size]
        else:
            yield from self.rowset.batches()

    def iter_batches(self) -> Iterator[List[Case]]:
        """Yield lists of cases, one per source batch."""
        for batch in self._row_batches():
            cases = [self.case_of(row) for row in batch]
            if cases:
                obs_trace.add("cases_shaped", len(cases))
                yield cases

    def __iter__(self) -> Iterator[Case]:
        for cases in self.iter_batches():
            yield from cases

    def scalar_columns(self) -> List[str]:
        return [column.name for _, column in self._scalar_indexes]

    def table_columns(self) -> List[str]:
        return [column.name for _, column in self._table_indexes]

    def column_for_table(self, name: str):
        for _, column in self._table_indexes:
            if column.name.upper() == name.upper():
                return column
        return None
