"""Whole-provider persistence: tables, views, and trained models.

The paper motivates OLE DB DM with the model *life cycle* — "how to store,
maintain, and refresh" models.  PMML (``repro.pmml``) covers single-model
interchange; this module snapshots an entire provider — base tables, views,
and every mining model with its trained state — to one JSON document, so a
warehouse-plus-models deployment can be saved and restored.

The format is plain JSON (no pickle): table rows are serialised with a
small type-tag scheme (dates/ISO), views as canonical SQL text, and models
as their PMML documents.  ``load_provider`` rebuilds everything through the
public construction paths, so a snapshot from one process version restores
cleanly in another as long as the formats match (a ``format`` field is
checked).
"""

from __future__ import annotations

import datetime
import json
from typing import Any, Dict, List

from repro.errors import Error
from repro.lang.formatter import format_statement
from repro.lang.parser import parse_statement
from repro.sqlstore.engine import Database
from repro.sqlstore.schema import ColumnSchema, TableSchema
from repro.sqlstore.types import type_from_name

FORMAT_VERSION = 1


def _encode_value(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "$date" in value:
        return datetime.date.fromisoformat(value["$date"])
    return value


def dump_provider(provider) -> str:
    """Serialise a provider (tables + views + models) to a JSON string."""
    from repro.pmml.writer import to_pmml

    tables: List[dict] = []
    for key in sorted(provider.database.tables):
        table = provider.database.tables[key]
        tables.append({
            "name": table.schema.name,
            "columns": [
                {"name": column.name, "type": column.type.name,
                 "nullable": column.nullable,
                 "primary_key": column.primary_key}
                for column in table.schema.columns],
            "rows": [[_encode_value(v) for v in row]
                     for row in table.rows],
        })
    views = {key: format_statement(select)
             for key, select in sorted(provider.database.views.items())}
    models = []
    for model in provider.list_models():
        if model.is_trained:
            models.append({"trained": True, "pmml": to_pmml(model)})
        else:
            from repro.pmml.writer import definition_to_ddl
            models.append({"trained": False,
                           "ddl": definition_to_ddl(model.definition)})
    return json.dumps({
        "format": FORMAT_VERSION,
        "kind": "repro-provider-snapshot",
        "tables": tables,
        "views": views,
        "models": models,
    })


def load_provider(text: str):
    """Rebuild a provider from :func:`dump_provider` output."""
    from repro.core.provider import Provider
    from repro.pmml.reader import read_pmml

    try:
        snapshot = json.loads(text)
    except json.JSONDecodeError as exc:
        raise Error(f"invalid provider snapshot: {exc}") from exc
    if snapshot.get("kind") != "repro-provider-snapshot":
        raise Error("not a provider snapshot document")
    if snapshot.get("format") != FORMAT_VERSION:
        raise Error(
            f"snapshot format {snapshot.get('format')!r} is not supported "
            f"(this build reads format {FORMAT_VERSION})")

    provider = Provider()
    for entry in snapshot["tables"]:
        schema = TableSchema(entry["name"], [
            ColumnSchema(column["name"], type_from_name(column["type"]),
                         nullable=column["nullable"],
                         primary_key=column["primary_key"])
            for column in entry["columns"]])
        table = provider.database.create_table(schema)
        for row in entry["rows"]:
            table.insert([_decode_value(v) for v in row])
    for key, text_sql in snapshot["views"].items():
        statement = parse_statement(text_sql)
        provider.database.views[key.upper()] = statement
    for entry in snapshot["models"]:
        if entry["trained"]:
            model = read_pmml(entry["pmml"])
        else:
            from repro.core.columns import compile_model_definition
            from repro.core.model import MiningModel
            definition = compile_model_definition(
                parse_statement(entry["ddl"]))
            model = MiningModel(definition)
        provider.models[model.name.upper()] = model
    return provider


def save_provider(provider, path: str) -> None:
    """Write a provider snapshot to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_provider(provider))


def open_provider(path: str):
    """Load a provider snapshot from ``path``."""
    with open(path, encoding="utf-8") as handle:
        return load_provider(handle.read())
