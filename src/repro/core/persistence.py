"""Whole-provider persistence: tables, views, and trained models.

The paper motivates OLE DB DM with the model *life cycle* — "how to store,
maintain, and refresh" models.  PMML (``repro.pmml``) covers single-model
interchange; this module snapshots an entire provider — base tables, views,
and every mining model with its trained state — to one JSON document, so a
warehouse-plus-models deployment can be saved and restored.

The format is plain JSON (no pickle): table rows are serialised with a
small type-tag scheme (``$date``/``$datetime``, ISO strings), views as
canonical SQL text, and models as their PMML documents plus the life-cycle
metadata PMML alone does not carry (``insert_count`` and the accumulated
training caseset, so a post-restore INSERT INTO still refreshes over the
full history).  ``load_provider`` rebuilds everything through the public
construction paths, so a snapshot from one process version restores
cleanly in another as long as the formats match (a ``format`` field is
checked; format 1 snapshots from older builds still load).

Snapshots are written atomically (:func:`repro.store.atomic.atomic_write_text`:
temp file + fsync + ``os.replace``), so a crash mid-``save_provider`` never
destroys the previous good snapshot.  :class:`repro.store.durable.DurableStore`
uses the same document as its checkpoint format, adding ``last_seq`` for
journal-replay continuity.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import Error, NotTrainedError
from repro.lang.formatter import format_statement
from repro.lang.parser import parse_statement
from repro.sqlstore.engine import Database
from repro.sqlstore.schema import ColumnSchema, TableSchema
from repro.sqlstore.types import type_from_name
from repro.store.atomic import atomic_write_text

# Format 3 added the optional per-table "statistics" flag (cost-model
# statistics re-derive from rows on load); 2 added durability metadata.
# Older formats stay readable: absent keys simply mean the feature was off.
FORMAT_VERSION = 3
SUPPORTED_FORMATS = (1, 2, FORMAT_VERSION)


# The scalar tag scheme lives in repro.sqlstore.pages (the leaf of the
# module graph) and is shared with the wire protocol and page payloads, so
# snapshots, network frames, and spilled pages round-trip temporal values
# identically.
from repro.sqlstore.pages import (  # noqa: E402  (re-export)
    decode_scalar as _decode_value,
    encode_scalar as _encode_value,
)

encode_value = _encode_value
decode_value = _decode_value


def _encode_case(case) -> Dict[str, Any]:
    return {
        "scalars": {name: _encode_value(value)
                    for name, value in case.scalars.items()},
        "tables": {name: [{key: _encode_value(v) for key, v in row.items()}
                          for row in rows]
                   for name, rows in case.tables.items()},
        "qualifiers": {name: dict(kinds)
                       for name, kinds in case.qualifiers.items()},
    }


def _decode_case(entry: Dict[str, Any]):
    from repro.core.bindings import MappedCase
    case = MappedCase()
    case.scalars = {name: _decode_value(value)
                    for name, value in entry.get("scalars", {}).items()}
    case.tables = {name: [{key: _decode_value(v) for key, v in row.items()}
                          for row in rows]
                   for name, rows in entry.get("tables", {}).items()}
    case.qualifiers = {name: dict(kinds)
                       for name, kinds in entry.get("qualifiers", {}).items()}
    return case


def dump_provider(provider, last_seq: int = 0) -> str:
    """Serialise a provider (tables + views + models) to a JSON string.

    ``last_seq`` is the durable store's journal high-water mark covered by
    this snapshot; plain API snapshots leave it 0.
    """
    from repro.pmml.writer import to_pmml

    tables: List[dict] = []
    for key in sorted(provider.database.tables):
        table = provider.database.tables[key]
        tables.append({
            "name": table.schema.name,
            "columns": [
                {"name": column.name, "type": column.type.name,
                 "nullable": column.nullable,
                 "primary_key": column.primary_key}
                for column in table.schema.columns],
            "rows": [[_encode_value(v) for v in row]
                     for row in table.rows],
        })
        if table.indexes:
            tables[-1]["indexes"] = [
                {"name": index.name, "column": index.column_name}
                for index in table.indexes.values()]
        if table.stats is not None:
            # Flag only — statistics content re-derives deterministically
            # from the restored rows (restore_into inserts row by row, so
            # the incremental path rebuilds them as a side effect).
            tables[-1]["statistics"] = True
    views = {key: format_statement(select)
             for key, select in sorted(provider.database.views.items())}
    models = []
    for model in provider.list_models():
        if model.is_trained:
            models.append({
                "trained": True,
                "pmml": to_pmml(model),
                "insert_count": model.insert_count,
                "cases": [_encode_case(case)
                          for case in model.training_cases],
            })
        else:
            from repro.pmml.writer import definition_to_ddl
            models.append({"trained": False,
                           "ddl": definition_to_ddl(model.definition)})
    return json.dumps({
        "format": FORMAT_VERSION,
        "kind": "repro-provider-snapshot",
        "last_seq": last_seq,
        "data_version": provider.database.data_version,
        "tables": tables,
        "views": views,
        "models": models,
    })


def _parse_snapshot(text: str) -> Dict[str, Any]:
    try:
        snapshot = json.loads(text)
    except json.JSONDecodeError as exc:
        raise Error(f"invalid provider snapshot: {exc}") from exc
    if not isinstance(snapshot, dict) or \
            snapshot.get("kind") != "repro-provider-snapshot":
        raise Error("not a provider snapshot document")
    if snapshot.get("format") not in SUPPORTED_FORMATS:
        raise Error(
            f"snapshot format {snapshot.get('format')!r} is not supported "
            f"(this build reads formats "
            f"{', '.join(str(v) for v in SUPPORTED_FORMATS)})")
    return snapshot


def restore_into(provider, text: str) -> int:
    """Restore a snapshot into an existing (empty) provider.

    Returns the snapshot's ``last_seq`` journal high-water mark.  The
    provider keeps its own configuration (batch size, pool, metrics,
    durability); only catalog state — tables, views, models — is loaded.
    Each restored view is validated against the restored schema here, so a
    snapshot referencing a missing table fails at load time naming the
    view, instead of exploding at first query.
    """
    from repro.pmml.reader import read_pmml
    from repro.core.columns import compile_model_definition
    from repro.core.model import MiningModel

    snapshot = _parse_snapshot(text)
    database = provider.database
    for entry in snapshot["tables"]:
        schema = TableSchema(entry["name"], [
            ColumnSchema(column["name"], type_from_name(column["type"]),
                         nullable=column["nullable"],
                         primary_key=column["primary_key"])
            for column in entry["columns"]])
        table = database.create_table(schema)
        if entry.get("statistics") and table.stats is None:
            # Snapshot came from a statistics-enabled catalog; honour it
            # even if this provider was opened with statistics=False.
            table.rebuild_statistics()
        for row in entry["rows"]:
            table.insert([_decode_value(v) for v in row])
        for index in entry.get("indexes", []):
            table.create_index(index["name"], index["column"])
    # Install every view before validating any: views may reference views.
    view_statements = {}
    for key, text_sql in snapshot["views"].items():
        statement = parse_statement(text_sql)
        database.views[key.upper()] = statement
        view_statements[key] = statement
    for entry in snapshot["models"]:
        if entry["trained"]:
            model = read_pmml(entry["pmml"])
            if "insert_count" in entry:
                model.insert_count = entry["insert_count"]
            if entry.get("cases"):
                model.adopt_cases(
                    [_decode_case(case) for case in entry["cases"]])
        else:
            definition = compile_model_definition(
                parse_statement(entry["ddl"]))
            model = MiningModel(definition)
        provider.models[model.name.upper()] = model
    # Views are validated after models so a view over <model>.CONTENT or
    # $SYSTEM resolves; NotTrainedError is not a resolution failure.
    for key, statement in view_statements.items():
        try:
            database.execute_select_stream(statement)
        except NotTrainedError:
            pass
        except Error as exc:
            raise Error(
                f"snapshot view {key!r} does not resolve against the "
                f"restored schema: {exc}") from exc
    database.advance_data_version(snapshot.get("data_version", 0))
    return int(snapshot.get("last_seq", 0))


def load_provider(text: str):
    """Rebuild a fresh provider from :func:`dump_provider` output."""
    from repro.core.provider import Provider

    provider = Provider()
    restore_into(provider, text)
    return provider


def save_provider(provider, path: str, faults=None) -> None:
    """Atomically write a provider snapshot to ``path``.

    The write goes through the shared temp-file + fsync + ``os.replace``
    helper: interrupting it never destroys an existing snapshot at ``path``.
    """
    atomic_write_text(path, dump_provider(provider), faults=faults,
                      fault_prefix="snapshot")


def open_provider(path: str):
    """Load a provider snapshot from ``path``."""
    with open(path, encoding="utf-8") as handle:
        return load_provider(handle.read())
