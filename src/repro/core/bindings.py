"""Binding source rowsets to mining-model columns.

Three binding modes feed cases into a model, mirroring the paper's usage:

* **positional** — the column list of ``INSERT INTO <model> (...)`` is
  matched position-by-position against the source rowset (SHAPE output),
  with ``SKIP`` discarding source columns and nested binding lists matching
  nested rowsets;
* **by name** — when no column list is given (and for NATURAL PREDICTION
  JOIN), source columns map to same-named model columns;
* **by pairs** — the ON clause of PREDICTION JOIN supplies explicit
  ``model path = source path`` equalities.

The output of every mode is a list of :class:`MappedCase`: values keyed by
*model* column names, with qualifier columns (PROBABILITY OF, SUPPORT OF,
...) folded into per-attribute qualifier dicts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import BindError, SchemaError
from repro.lang import ast_nodes as ast
from repro.obs import trace as obs_trace
from repro.core.columns import ContentRole, ModelColumn, ModelDefinition
from repro.sqlstore.rowset import Rowset


class MappedCase:
    """One input case, normalised to the model's column names.

    ``scalars`` maps upper-cased model column names to values.
    ``tables`` maps upper-cased nested-table names to lists of row dicts
    (each keyed by upper-cased nested column names).
    ``qualifiers`` maps upper-cased attribute names to ``{kind: value}``
    dicts, e.g. ``{"AGE": {"PROBABILITY": 1.0}}``.
    """

    __slots__ = ("scalars", "tables", "qualifiers")

    def __init__(self):
        self.scalars: Dict[str, Any] = {}
        self.tables: Dict[str, List[Dict[str, Any]]] = {}
        self.qualifiers: Dict[str, Dict[str, Any]] = {}

    def qualifier(self, attribute: str, kind: str,
                  default: Any = None) -> Any:
        return self.qualifiers.get(attribute.upper(), {}).get(kind, default)

    def weight(self) -> float:
        """Case replication factor: the SUPPORT qualifier of any attribute.

        The paper defines SUPPORT as "a weight (case replication factor) to
        be associated with the value"; we take the case weight to be the
        first SUPPORT qualifier present, defaulting to 1.0.
        """
        for kinds in self.qualifiers.values():
            if "SUPPORT" in kinds and kinds["SUPPORT"] is not None:
                return float(kinds["SUPPORT"])
        return 1.0

    def __repr__(self) -> str:
        return f"MappedCase({self.scalars}, tables={list(self.tables)})"


Binding = Union[ast.BindingColumn, ast.BindingSkip, ast.BindingTable]


def map_rowset(definition: ModelDefinition, rowset: Rowset,
               bindings: Optional[Sequence[Binding]] = None) -> List[MappedCase]:
    """Map a source rowset to cases, positionally if bindings are given."""
    with obs_trace.span("bind", model=definition.name):
        mapper = case_mapper(definition, rowset, bindings)
        cases = [mapper(row) for row in rowset.rows]
        obs_trace.add("cases_bound", len(cases))
        return cases


def case_mapper(definition: ModelDefinition, source,
                bindings: Optional[Sequence[Binding]] = None):
    """Compile a ``row -> MappedCase`` function for a source's columns.

    ``source`` is anything with rowset column metadata (a :class:`Rowset`
    or a :class:`~repro.sqlstore.rowset.RowStream`).  The returned mapper
    carries no reference to the source rows, so the streaming pipeline can
    apply it batch by batch and let each batch die.
    """
    if bindings:
        plan = _positional_plan(definition, bindings, source)
    else:
        plan = _name_plan(definition, source)
    return lambda row: _map_row(row, plan)


def iter_mapped_cases(definition: ModelDefinition, stream,
                      bindings: Optional[Sequence[Binding]] = None):
    """Lazily map a row stream (or rowset) to cases, batch by batch.

    The ``bind`` span covers plan compilation; batches bound later pin
    their counters back onto it.
    """
    span = obs_trace.span("bind", model=definition.name)
    with span:
        mapper = case_mapper(definition, stream, bindings)
        source = stream.batches() if hasattr(stream, "batches") \
            else [stream.rows]

    def produce():
        for batch in source:
            cases = [mapper(row) for row in batch]
            obs_trace.add_to(span, "cases_bound", len(cases))
            yield cases
    return produce()


# A plan is a list of (source_index, target) where target is either
# ("scalar", ModelColumn) or ("table", ModelColumn, nested_plan).

def _positional_plan(definition: ModelDefinition,
                     bindings: Sequence[Binding], rowset: Rowset):
    if len(bindings) > len(rowset.columns):
        raise SchemaError(
            f"INSERT INTO {definition.name!r} binds {len(bindings)} columns "
            f"but the source produces only {len(rowset.columns)}")
    plan = []
    for index, binding in enumerate(bindings):
        if isinstance(binding, ast.BindingSkip):
            continue
        if isinstance(binding, ast.BindingTable):
            column = definition.find(binding.name)
            if column is None or not column.is_table:
                raise BindError(
                    f"model {definition.name!r} has no nested table "
                    f"{binding.name!r}")
            source_column = rowset.columns[index]
            if source_column.nested_columns is None:
                raise SchemaError(
                    f"binding {binding.name!r} expects a nested rowset but "
                    f"source column {source_column.name!r} is scalar "
                    f"(did the INSERT use SHAPE?)")
            nested_plan = _positional_nested_plan(column, binding.children,
                                                  source_column.nested_columns)
            plan.append((index, ("table", column, nested_plan)))
            continue
        column = definition.find(binding.name)
        if column is None:
            raise BindError(
                f"model {definition.name!r} has no column {binding.name!r}")
        if column.is_table:
            raise SchemaError(
                f"column {binding.name!r} is a nested table; bind it with "
                f"{binding.name}(<columns>)")
        plan.append((index, ("scalar", column)))
    return plan


def _positional_nested_plan(table_column: ModelColumn,
                            bindings: Sequence[Binding], nested_columns):
    """Positional mapping within a nested table.

    The SHAPE child keeps its RELATE column (e.g. CustID) which the binding
    list does not mention; bindings therefore consume source columns
    left-to-right but may skip over the relate column.  We align by name
    when possible, falling back to position among the unbound columns.
    """
    plan = []
    used = set()
    available = list(range(len(nested_columns)))
    for binding in bindings:
        if isinstance(binding, ast.BindingSkip):
            # Skip the next unused source column.
            for candidate in available:
                if candidate not in used:
                    used.add(candidate)
                    break
            continue
        if isinstance(binding, ast.BindingTable):
            raise SchemaError(
                "nested tables may not contain further nested tables")
        column = table_column.find_nested(binding.name)
        if column is None:
            raise BindError(
                f"nested table {table_column.name!r} has no column "
                f"{binding.name!r}")
        # Prefer a same-named source column; otherwise next unused.
        source_index = None
        for candidate in available:
            if candidate not in used and \
                    nested_columns[candidate].name.upper() == \
                    binding.name.upper():
                source_index = candidate
                break
        if source_index is None:
            for candidate in available:
                if candidate not in used:
                    source_index = candidate
                    break
        if source_index is None:
            raise SchemaError(
                f"not enough source columns for nested table "
                f"{table_column.name!r}")
        used.add(source_index)
        plan.append((source_index, ("scalar", column)))
    return plan


def _name_plan(definition: ModelDefinition, rowset: Rowset):
    plan = []
    for index, source_column in enumerate(rowset.columns):
        column = definition.find(source_column.name)
        if column is None:
            continue  # extra source columns are ignored
        if column.is_table:
            if source_column.nested_columns is None:
                continue
            nested_plan = []
            for nested_index, nested_source in enumerate(
                    source_column.nested_columns):
                nested_column = column.find_nested(nested_source.name)
                if nested_column is not None:
                    nested_plan.append(
                        (nested_index, ("scalar", nested_column)))
            plan.append((index, ("table", column, nested_plan)))
        else:
            plan.append((index, ("scalar", column)))
    return plan


def _map_row(row: tuple, plan) -> MappedCase:
    case = MappedCase()
    for source_index, target in plan:
        if target[0] == "scalar":
            column = target[1]
            value = row[source_index]
            _store_scalar(case, column, value)
        else:
            column, nested_plan = target[1], target[2]
            nested = row[source_index]
            rows_out: List[Dict[str, Any]] = []
            if isinstance(nested, Rowset):
                for nested_row in nested.rows:
                    row_dict: Dict[str, Any] = {}
                    for nested_index, nested_target in nested_plan:
                        nested_column = nested_target[1]
                        value = nested_row[nested_index]
                        if nested_column.role is ContentRole.QUALIFIER:
                            target_key = nested_column.qualifier_of.upper()
                            row_dict.setdefault(
                                "__QUALIFIERS__", {}).setdefault(
                                target_key, {})[
                                nested_column.qualifier] = value
                        else:
                            row_dict[nested_column.name.upper()] = \
                                _coerce(nested_column, value)
                    rows_out.append(row_dict)
            case.tables[column.name.upper()] = rows_out
    return case


def _store_scalar(case: MappedCase, column: ModelColumn, value: Any) -> None:
    if column.role is ContentRole.QUALIFIER:
        case.qualifiers.setdefault(
            column.qualifier_of.upper(), {})[column.qualifier] = value
    else:
        case.scalars[column.name.upper()] = _coerce(column, value)


def _coerce(column: ModelColumn, value: Any) -> Any:
    if value is None or column.data_type is None:
        return value
    return column.data_type.coerce(value)


# ---------------------------------------------------------------------------
# ON-clause pair mapping for PREDICTION JOIN
# ---------------------------------------------------------------------------

def map_rowset_with_pairs(
        definition: ModelDefinition, rowset: Rowset,
        pairs: List[Tuple[Tuple[str, ...], Tuple[str, ...]]],
        source_alias: Optional[str]) -> List[MappedCase]:
    """Map cases using explicit (model_path, source_path) equalities."""
    mapper = pair_mapper(definition, rowset, pairs, source_alias)
    cases = [mapper(row) for row in rowset.rows]
    obs_trace.add("cases_bound", len(cases))
    return cases


def pair_mapper(definition: ModelDefinition, source,
                pairs: List[Tuple[Tuple[str, ...], Tuple[str, ...]]],
                source_alias: Optional[str]):
    """Compile a ``row -> MappedCase`` mapper from ON-clause equalities.

    ``model_path`` is ``(column,)`` or ``(table, column)`` after stripping
    the model name; ``source_path`` likewise after stripping the source
    alias.  Nested paths require the source column of the same table name
    to exist in the shaped source.  ``source`` supplies column metadata
    only (a :class:`Rowset` or row stream).
    """
    rowset = source
    scalar_map: List[Tuple[int, ModelColumn]] = []
    nested_map: Dict[str, List[Tuple[int, ModelColumn]]] = {}
    nested_source: Dict[str, int] = {}

    for model_path, source_path in pairs:
        if len(model_path) == 1:
            column = definition.find(model_path[0])
            if column is None or column.is_table:
                raise BindError(
                    f"model {definition.name!r} has no scalar column "
                    f"{model_path[0]!r}")
            source_index = _resolve_source_scalar(rowset, source_path)
            scalar_map.append((source_index, column))
        elif len(model_path) == 2:
            table = definition.find(model_path[0])
            if table is None or not table.is_table:
                raise BindError(
                    f"model {definition.name!r} has no nested table "
                    f"{model_path[0]!r}")
            nested_column = table.find_nested(model_path[1])
            if nested_column is None:
                raise BindError(
                    f"nested table {model_path[0]!r} has no column "
                    f"{model_path[1]!r}")
            if len(source_path) != 2:
                raise BindError(
                    f"nested model column {'.'.join(model_path)} must be "
                    f"joined to a nested source column, got "
                    f"{'.'.join(source_path)}")
            source_table_index = rowset.index_of(source_path[0])
            source_table = rowset.columns[source_table_index]
            if source_table.nested_columns is None:
                raise BindError(
                    f"source column {source_path[0]!r} is not a nested table")
            inner_index = next(
                (i for i, c in enumerate(source_table.nested_columns)
                 if c.name.upper() == source_path[1].upper()), None)
            if inner_index is None:
                raise BindError(
                    f"nested source table {source_path[0]!r} has no column "
                    f"{source_path[1]!r}")
            key = table.name.upper()
            nested_source[key] = source_table_index
            nested_map.setdefault(key, []).append((inner_index, nested_column))
        else:
            raise BindError(
                f"unsupported model path {'.'.join(model_path)!r} in ON "
                f"clause")

    def mapper(row: tuple) -> MappedCase:
        case = MappedCase()
        for source_index, column in scalar_map:
            _store_scalar(case, column, row[source_index])
        for key, mappings in nested_map.items():
            nested = row[nested_source[key]]
            rows_out = []
            if isinstance(nested, Rowset):
                for nested_row in nested.rows:
                    row_dict = {}
                    for inner_index, nested_column in mappings:
                        if nested_column.role is ContentRole.QUALIFIER:
                            row_dict.setdefault("__QUALIFIERS__", {}) \
                                .setdefault(
                                    nested_column.qualifier_of.upper(), {})[
                                    nested_column.qualifier] = \
                                nested_row[inner_index]
                        else:
                            row_dict[nested_column.name.upper()] = _coerce(
                                nested_column, nested_row[inner_index])
                    rows_out.append(row_dict)
            case.tables[key] = rows_out
        return case
    return mapper


def _resolve_source_scalar(rowset: Rowset, path: Tuple[str, ...]) -> int:
    name = path[-1]
    if not rowset.has_column(name):
        raise BindError(
            f"source has no column {name!r} "
            f"(columns: {', '.join(rowset.column_names())})")
    return rowset.index_of(name)
