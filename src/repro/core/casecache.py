"""LRU cache for shaped casesets.

Shaping and binding dominate the cost of the populate/predict pipeline:
a PREDICTION JOIN over the same SHAPE as the previous one re-executes the
master and child queries, re-hashes the child rows, and re-binds every case.
This cache keys the *bound* result — (source rows, mapped cases) — on the
statement's source AST, the binding mode, the model-definition fingerprint,
and the database's :attr:`data_version`, so a hit is guaranteed fresh: any
INSERT/UPDATE/DELETE/DDL bumps the version and naturally retires stale
entries through LRU pressure.

Two knobs bound memory:

* ``capacity`` — number of entries (LRU eviction beyond it; 0 disables);
* ``max_rows`` — casesets larger than this are never cached, so the
  streaming pipeline keeps its O(batch) footprint on huge sources instead
  of accumulating a copy it may never reuse.

Hit/miss/eviction counters are folded into the provider's
:class:`~repro.obs.metrics.MetricsRegistry` and therefore show up in
``SELECT * FROM $SYSTEM.DM_PROVIDER_METRICS`` like every other provider
statistic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple


class CasesetCache:
    """Thread-safe LRU mapping of caseset keys to shaped/bound results."""

    def __init__(self, capacity: int = 8, max_rows: int = 50_000,
                 metrics=None):
        self.capacity = max(0, int(capacity))
        self.max_rows = max(0, int(max_rows))
        self._entries: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self._lock = threading.Lock()
        self._metrics = metrics

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def _count(self, name: str, amount: float = 1) -> None:
        if self._metrics is not None:
            self._metrics.counter(f"caseset_cache.{name}").inc(amount)

    def _gauge_entries(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("caseset_cache.entries").set(
                len(self._entries))

    def get(self, key: Hashable) -> Optional[Any]:
        """Cached value for ``key``, bumping recency; None on miss."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._count("misses")
                return None
            self._entries.move_to_end(key)
            self._count("hits")
            return entry[0]

    def contains(self, key: Hashable) -> bool:
        """Non-mutating membership probe for the EXPLAIN planner.

        Unlike :meth:`get` this bumps no recency and records no hit/miss
        metric, so planning a statement never changes how it would execute.
        """
        if not self.enabled:
            return False
        with self._lock:
            return key in self._entries

    def put(self, key: Hashable, value: Any, rows: int) -> bool:
        """Insert ``value`` (a caseset of ``rows`` rows); False if skipped."""
        if not self.enabled or rows > self.max_rows:
            if self.enabled:
                self._count("skipped_too_large")
            return False
        with self._lock:
            self._entries[key] = (value, rows)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._count("evictions")
            self._gauge_entries()
        return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._gauge_entries()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Current counter values (reads the metrics registry)."""
        if self._metrics is None:
            return {}
        out = {}
        for name in ("hits", "misses", "evictions", "skipped_too_large"):
            metric = self._metrics.get(f"caseset_cache.{name}")
            out[name] = metric.value if metric is not None else 0.0
        return out


def definition_fingerprint(definition) -> Tuple:
    """A hashable, structural identity for a model definition.

    Cache entries hold cases keyed by *model column names*, so two models
    whose definitions map sources identically may share entries; a model
    dropped and re-created with different columns must not.  The
    fingerprint captures exactly what binding depends on: column names,
    table-ness, nested column names, and qualifier wiring.
    """
    parts = []
    for column in definition.columns:
        if column.is_table:
            nested = tuple(
                (c.name.upper(), getattr(c, "qualifier", None),
                 (c.qualifier_of or "").upper() if getattr(
                     c, "qualifier_of", None) else None)
                for c in column.nested_columns)
            parts.append((column.name.upper(), "TABLE", nested))
        else:
            parts.append((column.name.upper(), "SCALAR",
                          getattr(column, "qualifier", None),
                          (column.qualifier_of or "").upper() if getattr(
                              column, "qualifier_of", None) else None))
    return tuple(parts)
