"""Model content as a directed graph of typed nodes (paper section 3.3).

"The most popular way to express DMM content is by viewing it as a directed
graph" — decision trees, cluster sets, and rule sets all render into
:class:`ContentNode` trees.  ``SELECT * FROM <model>.CONTENT`` exposes this
graph through the MINING_MODEL_CONTENT schema rowset, and each node carries
a PMML-inspired XML fragment, as the paper's reference provider did.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple
from xml.sax.saxutils import escape as _escape


def escape(text: str) -> str:
    """XML-escape including double quotes (values go into attributes)."""
    return _escape(text, {'"': "&quot;"})

# NODE_TYPE codes follow the OLE DB DM specification's enumeration.
NODE_MODEL = 1
NODE_TREE = 2
NODE_INTERIOR = 3
NODE_DISTRIBUTION = 4
NODE_CLUSTER = 5
NODE_UNKNOWN = 6
NODE_ITEMSET = 7
NODE_RULE = 8
NODE_PREDICTABLE = 9
NODE_REGRESSION_ROOT = 10
NODE_SEQUENCE = 13

NODE_TYPE_NAMES = {
    NODE_MODEL: "Model",
    NODE_TREE: "Tree",
    NODE_INTERIOR: "Interior",
    NODE_DISTRIBUTION: "Distribution",
    NODE_CLUSTER: "Cluster",
    NODE_UNKNOWN: "Unknown",
    NODE_ITEMSET: "ItemSet",
    NODE_RULE: "Rule",
    NODE_PREDICTABLE: "PredictableAttribute",
    NODE_REGRESSION_ROOT: "RegressionTreeRoot",
    NODE_SEQUENCE: "Sequence",
}


class DistributionRow:
    """One row of a node's NODE_DISTRIBUTION nested table."""

    __slots__ = ("attribute", "value", "support", "probability", "variance")

    def __init__(self, attribute: str, value: Any, support: float,
                 probability: float, variance: Optional[float] = None):
        self.attribute = attribute
        self.value = value
        self.support = support
        self.probability = probability
        self.variance = variance

    def as_tuple(self) -> Tuple:
        return (self.attribute, self.value, self.support, self.probability,
                self.variance)


class ContentNode:
    """One node of the model content graph."""

    def __init__(self, node_id: str, node_type: int, caption: str,
                 description: str = "", support: float = 0.0,
                 probability: float = 0.0,
                 marginal_rule: str = "",
                 distribution: Optional[List[DistributionRow]] = None):
        self.node_id = node_id
        self.node_type = node_type
        self.caption = caption
        self.description = description
        self.support = support
        self.probability = probability
        self.marginal_rule = marginal_rule
        self.distribution: List[DistributionRow] = distribution or []
        self.children: List["ContentNode"] = []
        self.parent: Optional["ContentNode"] = None

    def add_child(self, child: "ContentNode") -> "ContentNode":
        child.parent = self
        self.children.append(child)
        return child

    @property
    def parent_id(self) -> str:
        return self.parent.node_id if self.parent is not None else ""

    @property
    def node_type_name(self) -> str:
        return NODE_TYPE_NAMES.get(self.node_type, "Unknown")

    def walk(self) -> Iterator["ContentNode"]:
        """Pre-order traversal of this node and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, node_id: str) -> Optional["ContentNode"]:
        for node in self.walk():
            if node.node_id == node_id:
                return node
        return None

    def leaf_count(self) -> int:
        if not self.children:
            return 1
        return sum(child.leaf_count() for child in self.children)

    def to_xml(self) -> str:
        """PMML-inspired XML string for this node (paper section 4)."""
        parts = [
            f'<Node id="{escape(self.node_id)}" '
            f'type="{self.node_type_name}" '
            f'caption="{escape(self.caption)}" '
            f'support="{self.support:g}" '
            f'probability="{self.probability:g}">']
        if self.description:
            parts.append(f"  <Description>{escape(self.description)}"
                         f"</Description>")
        for row in self.distribution:
            value = "" if row.value is None else str(row.value)
            variance = "" if row.variance is None else f'{row.variance:g}'
            parts.append(
                f'  <Distribution attribute="{escape(row.attribute)}" '
                f'value="{escape(value)}" support="{row.support:g}" '
                f'probability="{row.probability:g}" '
                f'variance="{variance}"/>')
        parts.append("</Node>")
        return "\n".join(parts)

    def __repr__(self) -> str:
        return (f"ContentNode({self.node_id!r}, {self.node_type_name}, "
                f"{self.caption!r}, {len(self.children)} children)")
