"""OLE DB DM schema rowsets: the provider's self-description (section 2).

"Schema rowsets specify the capabilities of an OLE DB DM provider ...
supported capabilities (e.g. prediction, segmentation, sequence analysis,
etc.), types of data distributions supported, limitations of the provider
... Other schema rowsets provide metadata on the columns of a mining model,
on its contents, and the supported services."

Queryable as ``SELECT * FROM $SYSTEM.<rowset>``:

* MINING_MODELS, MINING_COLUMNS — catalog metadata;
* MINING_SERVICES, SERVICE_PARAMETERS — registered algorithm capabilities;
* MINING_FUNCTIONS — the prediction UDF surface;
* MINING_MODEL_CONTENT — the content graph of every populated model (also
  reachable per-model as ``SELECT * FROM <model>.CONTENT``);
* DM_QUERY_LOG, DM_TRACE_EVENTS, DM_PROVIDER_METRICS — the provider's own
  telemetry (statement log, span trees, metric snapshot), applying the
  schema-rowset idea to the provider's runtime behaviour;
* DM_ACTIVE_STATEMENTS, DM_STATEMENT_RESOURCES, DM_LOCK_WAITS — the live
  workload view (what is running now, what it cost, where locks blocked),
  backing the ``CANCEL <id>`` verb;
* DM_SESSIONS — the network sessions connected through the DMX server
  (:mod:`repro.server`): one row per live or recently-closed session with
  its negotiated knobs and traffic accounting;
* DM_BUFFER_POOL, DM_INDEXES — the paged row store's buffer residency
  (one row per cached page, LRU-first) and every user index with its
  usage counters (:mod:`repro.sqlstore.storage`);
* DM_STATEMENT_STATS, DM_PLAN_HISTORY, DM_PLAN_CHANGES — the workload
  repository (:mod:`repro.obs.repository`): per-fingerprint statement
  aggregates, captured plan skeletons with q-error, and plan-change
  events.
"""

from __future__ import annotations

import difflib
from datetime import datetime
from typing import List, Optional

from repro.errors import BindError
from repro.sqlstore.rowset import Rowset, RowsetColumn
from repro.sqlstore.types import BOOLEAN, DOUBLE, LONG, TEXT
from repro.core.columns import ContentRole, ModelColumn
from repro.core.content import ContentNode
from repro.core.functions import PREDICTION_FUNCTIONS
from repro.algorithms.registry import algorithm_services


def mining_models_rowset(provider) -> Rowset:
    columns = [
        RowsetColumn("MODEL_NAME", TEXT),
        RowsetColumn("SERVICE_NAME", TEXT),
        RowsetColumn("IS_POPULATED", BOOLEAN),
        RowsetColumn("CASE_COUNT", LONG),
        RowsetColumn("INSERT_COUNT", LONG),
        RowsetColumn("PREDICTION_ENTITIES", TEXT),
    ]
    rows = []
    for model in provider.list_models():
        outputs = ", ".join(c.name for c in
                            model.definition.output_columns())
        rows.append((model.name, model.algorithm.SERVICE_NAME,
                     model.is_trained, model.case_count,
                     model.insert_count, outputs))
    return Rowset(columns, rows)


def mining_columns_rowset(provider) -> Rowset:
    columns = [
        RowsetColumn("MODEL_NAME", TEXT),
        RowsetColumn("COLUMN_NAME", TEXT),
        RowsetColumn("NESTED_TABLE", TEXT),
        RowsetColumn("DATA_TYPE", TEXT),
        RowsetColumn("CONTENT_TYPE", TEXT),
        RowsetColumn("IS_PREDICTABLE", BOOLEAN),
        RowsetColumn("IS_INPUT", BOOLEAN),
        RowsetColumn("IS_KEY", BOOLEAN),
        RowsetColumn("RELATED_ATTRIBUTE", TEXT),
        RowsetColumn("QUALIFIER", TEXT),
        RowsetColumn("QUALIFIER_OF", TEXT),
        RowsetColumn("DISTRIBUTION_HINT", TEXT),
    ]
    rows: List[tuple] = []
    for model in provider.list_models():
        for column in model.definition.columns:
            rows.extend(_column_rows(model.name, column, None))
    return Rowset(columns, rows)


def _column_rows(model_name: str, column: ModelColumn,
                 parent: Optional[str]) -> List[tuple]:
    if column.is_table:
        rows = [(model_name, column.name, parent, "TABLE", "TABLE",
                 column.predict, column.is_input, False, None, None, None,
                 None)]
        for nested in column.nested_columns:
            rows.extend(_column_rows(model_name, nested, column.name))
        return rows
    content = column.attribute_type.value if column.attribute_type else \
        column.role.value
    return [(model_name, column.name, parent,
             column.data_type.name if column.data_type else None,
             content if column.role is not ContentRole.KEY else "KEY",
             column.predict, column.is_input,
             column.role is ContentRole.KEY,
             column.related_to, column.qualifier, column.qualifier_of,
             column.distribution)]


def mining_services_rowset(provider=None) -> Rowset:
    columns = [
        RowsetColumn("SERVICE_NAME", TEXT),
        RowsetColumn("SERVICE_DISPLAY_NAME", TEXT),
        RowsetColumn("PREDICTS_DISCRETE", BOOLEAN),
        RowsetColumn("PREDICTS_CONTINUOUS", BOOLEAN),
        RowsetColumn("SUPPORTS_NESTED_TABLES", BOOLEAN),
        RowsetColumn("SUPPORTS_INCREMENTAL", BOOLEAN),
        RowsetColumn("SUPPORTS_PARALLEL_TRAINING", BOOLEAN),
        RowsetColumn("ALIASES", TEXT),
    ]
    rows = []
    for service in algorithm_services():
        rows.append((service.SERVICE_NAME,
                     service.DISPLAY_NAME or service.SERVICE_NAME,
                     service.PREDICTS_DISCRETE,
                     service.PREDICTS_CONTINUOUS,
                     service.SUPPORTS_NESTED_TABLES,
                     service.SUPPORTS_INCREMENTAL,
                     service.PARALLELIZABLE,
                     ", ".join(service.ALIASES)))
    return Rowset(columns, rows)


def service_parameters_rowset(provider=None) -> Rowset:
    columns = [
        RowsetColumn("SERVICE_NAME", TEXT),
        RowsetColumn("PARAMETER_NAME", TEXT),
        RowsetColumn("DEFAULT_VALUE", TEXT),
    ]
    rows = []
    for service in algorithm_services():
        for name, default in sorted(service.SUPPORTED_PARAMETERS.items()):
            rows.append((service.SERVICE_NAME, name, str(default)))
    return Rowset(columns, rows)


_FUNCTION_DESCRIPTIONS = {
    "PREDICT": ("scalar/table", "Best estimate of a model column; "
                                "recommendations for TABLE columns"),
    "PREDICTPROBABILITY": ("scalar", "Probability of the predicted (or a "
                                     "given) value"),
    "PREDICTSUPPORT": ("scalar", "Training support behind the prediction"),
    "PREDICTVARIANCE": ("scalar", "Variance of a continuous prediction"),
    "PREDICTSTDEV": ("scalar", "Standard deviation of a continuous "
                               "prediction"),
    "PREDICTHISTOGRAM": ("table", "Histogram of candidate values with "
                                  "probability/support/variance"),
    "PREDICTASSOCIATION": ("table", "Top recommended nested-table items"),
    "CLUSTER": ("scalar", "1-based id of the most probable cluster"),
    "CLUSTERPROBABILITY": ("scalar", "Posterior probability of a cluster"),
    "CLUSTERDISTANCE": ("scalar", "Distance to a cluster"),
    "RANGEMIN": ("scalar", "Lower bound of the predicted DISCRETIZED "
                           "bucket"),
    "RANGEMID": ("scalar", "Midpoint of the predicted DISCRETIZED bucket"),
    "RANGEMAX": ("scalar", "Upper bound of the predicted DISCRETIZED "
                           "bucket"),
    "TOPCOUNT": ("table", "N rows with the largest rank value"),
    "TOPSUM": ("table", "Smallest rank-sorted prefix summing past a "
                        "threshold"),
    "TOPPERCENT": ("table", "Smallest rank-sorted prefix covering a "
                            "percentage of the total"),
}


def mining_functions_rowset(provider=None) -> Rowset:
    columns = [
        RowsetColumn("FUNCTION_NAME", TEXT),
        RowsetColumn("RETURN_KIND", TEXT),
        RowsetColumn("DESCRIPTION", TEXT),
    ]
    rows = []
    for name in sorted(PREDICTION_FUNCTIONS):
        kind, description = _FUNCTION_DESCRIPTIONS.get(
            name, ("scalar", ""))
        rows.append((name, kind, description))
    return Rowset(columns, rows)


# ---------------------------------------------------------------------------
# MINING_MODEL_CONTENT
# ---------------------------------------------------------------------------

def _content_columns() -> List[RowsetColumn]:
    distribution_columns = [
        RowsetColumn("ATTRIBUTE_NAME", TEXT),
        RowsetColumn("ATTRIBUTE_VALUE", TEXT),
        RowsetColumn("SUPPORT", DOUBLE),
        RowsetColumn("PROBABILITY", DOUBLE),
        RowsetColumn("VARIANCE", DOUBLE),
    ]
    return [
        RowsetColumn("MODEL_NAME", TEXT),
        RowsetColumn("NODE_UNIQUE_NAME", TEXT),
        RowsetColumn("PARENT_UNIQUE_NAME", TEXT),
        RowsetColumn("NODE_TYPE", LONG),
        RowsetColumn("NODE_TYPE_NAME", TEXT),
        RowsetColumn("NODE_CAPTION", TEXT),
        RowsetColumn("NODE_DESCRIPTION", TEXT),
        RowsetColumn("CHILDREN_CARDINALITY", LONG),
        RowsetColumn("NODE_SUPPORT", DOUBLE),
        RowsetColumn("NODE_PROBABILITY", DOUBLE),
        RowsetColumn("NODE_RULE", TEXT),
        RowsetColumn("NODE_DISTRIBUTION",
                     nested_columns=distribution_columns),
    ]


def _content_rows(model_name: str, root: ContentNode) -> List[tuple]:
    distribution_columns = _content_columns()[-1].nested_columns
    rows = []
    for node in root.walk():
        distribution = Rowset(
            distribution_columns,
            [(r.attribute,
              None if r.value is None else str(r.value),
              r.support, r.probability, r.variance)
             for r in node.distribution])
        rows.append((model_name, node.node_id, node.parent_id,
                     node.node_type, node.node_type_name, node.caption,
                     node.description, len(node.children), node.support,
                     node.probability, node.to_xml(), distribution))
    return rows


def model_content_rowset(model) -> Rowset:
    """``SELECT * FROM <model>.CONTENT``."""
    return Rowset(_content_columns(),
                  _content_rows(model.name, model.content_root()))


def mining_model_content_rowset(provider) -> Rowset:
    """``$SYSTEM.MINING_MODEL_CONTENT``: all populated models' graphs."""
    rows: List[tuple] = []
    for model in provider.list_models():
        if model.is_trained:
            rows.extend(_content_rows(model.name, model.content_root()))
    return Rowset(_content_columns(), rows)


# ---------------------------------------------------------------------------
# Telemetry rowsets (DM_QUERY_LOG / DM_TRACE_EVENTS / DM_PROVIDER_METRICS)
# ---------------------------------------------------------------------------

def _format_pairs(pairs) -> Optional[str]:
    if not pairs:
        return None
    return ", ".join(f"{name}={value:g}" if isinstance(value, float)
                     else f"{name}={value}"
                     for name, value in sorted(pairs.items()))


def dm_query_log_rowset(provider) -> Rowset:
    """``$SYSTEM.DM_QUERY_LOG``: one row per executed statement."""
    columns = [
        RowsetColumn("STATEMENT_ID", LONG),
        RowsetColumn("STATEMENT", TEXT),
        RowsetColumn("KIND", TEXT),
        RowsetColumn("STATUS", TEXT),
        RowsetColumn("ERROR", TEXT),
        RowsetColumn("STARTED_AT", TEXT),
        RowsetColumn("DURATION_MS", DOUBLE),
        RowsetColumn("ROWS_SCANNED", LONG),
        RowsetColumn("ROWS_OUT", LONG),
        RowsetColumn("CASES", LONG),
        RowsetColumn("SPAN_COUNT", LONG),
        RowsetColumn("THREAD", TEXT),
        RowsetColumn("SESSION", LONG),
    ]
    rows = []
    for record in provider.tracer.statements():
        totals = record.totals()
        cases = int(totals.get("cases_bound", 0) or
                    totals.get("cases_shaped", 0))
        rows.append((
            record.statement_id,
            " ".join(record.text.split()),
            record.kind,
            record.status,
            record.error,
            datetime.fromtimestamp(record.started_at).isoformat(
                timespec="milliseconds"),
            None if record.duration_ms is None
            else round(record.duration_ms, 3),
            int(totals.get("rows_scanned", 0)),
            int(totals.get("rows_out", 0)),
            cases,
            record.root.span_count() if record.root is not None else 0,
            record.thread,
            getattr(record, "session", None),
        ))
    return Rowset(columns, rows)


def dm_trace_events_rowset(provider) -> Rowset:
    """``$SYSTEM.DM_TRACE_EVENTS``: flattened span trees of ringed statements."""
    columns = [
        RowsetColumn("STATEMENT_ID", LONG),
        RowsetColumn("SPAN_ID", TEXT),
        RowsetColumn("PARENT_SPAN_ID", TEXT),
        RowsetColumn("DEPTH", LONG),
        RowsetColumn("SPAN", TEXT),
        RowsetColumn("DURATION_MS", DOUBLE),
        RowsetColumn("COUNTERS", TEXT),
        RowsetColumn("ATTRIBUTES", TEXT),
    ]
    rows: List[tuple] = []
    for record in provider.tracer.statements():
        if record.root is None:
            continue

        def visit(span, path):
            span_id = ".".join(str(step) for step in path)
            parent_id = ".".join(str(step) for step in path[:-1]) or None
            rows.append((
                record.statement_id, span_id, parent_id, len(path) - 1,
                span.name,
                None if span.duration_ms is None
                else round(span.duration_ms, 3),
                _format_pairs(span.counters),
                _format_pairs(span.attributes),
            ))
            for position, child in enumerate(span.children, start=1):
                visit(child, path + (position,))

        visit(record.root, (1,))
    return Rowset(columns, rows)


def dm_provider_metrics_rowset(provider) -> Rowset:
    """``$SYSTEM.DM_PROVIDER_METRICS``: the current metric snapshot."""
    columns = [
        RowsetColumn("METRIC", TEXT),
        RowsetColumn("KIND", TEXT),
        RowsetColumn("COUNT", LONG),
        RowsetColumn("VALUE", DOUBLE),
        RowsetColumn("SUM", DOUBLE),
        RowsetColumn("MIN", DOUBLE),
        RowsetColumn("MAX", DOUBLE),
        RowsetColumn("MEAN", DOUBLE),
        RowsetColumn("P50", DOUBLE),
        RowsetColumn("P95", DOUBLE),
        RowsetColumn("P99", DOUBLE),
    ]

    def fmt(value):
        return None if value is None else round(float(value), 4)

    rows = []
    for entry in provider.metrics.snapshot():
        rows.append((
            entry["name"], entry["kind"], entry.get("count"),
            fmt(entry.get("value")), fmt(entry.get("sum")),
            fmt(entry.get("min")),
            fmt(entry.get("max")), fmt(entry.get("mean")),
            fmt(entry.get("p50")), fmt(entry.get("p95")),
            fmt(entry.get("p99")),
        ))
    return Rowset(columns, rows)


def dm_active_statements_rowset(provider) -> Rowset:
    """``$SYSTEM.DM_ACTIVE_STATEMENTS``: statements executing right now.

    The live counterpart to ``DM_QUERY_LOG`` (same statement-id space):
    phase, progress, lock waits, and whether a ``CANCEL`` is pending.  A
    statement querying this rowset sees itself, in phase ``scan``.
    """
    columns = [
        RowsetColumn("STATEMENT_ID", LONG),
        RowsetColumn("STATEMENT", TEXT),
        RowsetColumn("KIND", TEXT),
        RowsetColumn("PHASE", TEXT),
        RowsetColumn("STARTED_AT", TEXT),
        RowsetColumn("ELAPSED_MS", DOUBLE),
        RowsetColumn("ROWS_PROCESSED", LONG),
        RowsetColumn("BATCHES", LONG),
        RowsetColumn("PARTITIONS_DONE", LONG),
        RowsetColumn("PARTITIONS_TOTAL", LONG),
        RowsetColumn("POOL_TASKS_IN_FLIGHT", LONG),
        RowsetColumn("LOCK_WAIT_MS", DOUBLE),
        RowsetColumn("THREAD", TEXT),
        RowsetColumn("SESSION", LONG),
        RowsetColumn("CANCEL_REQUESTED", BOOLEAN),
    ]
    rows = []
    for statement in provider.workload.active():
        rows.append((
            statement.statement_id,
            " ".join(statement.text.split()),
            statement.kind,
            statement.phase,
            datetime.fromtimestamp(statement.started_at).isoformat(
                timespec="milliseconds"),
            round(statement.elapsed_ms(), 3),
            statement.rows_processed,
            statement.batches,
            statement.partitions_done,
            statement.partitions_total,
            statement.pool_tasks_in_flight,
            round(statement.lock_wait_ms, 3),
            statement.thread,
            statement.session,
            statement.token.cancelled,
        ))
    return Rowset(columns, rows)


def dm_statement_resources_rowset(provider) -> Rowset:
    """``$SYSTEM.DM_STATEMENT_RESOURCES``: per-statement resource accounting.

    Live statements first (CPU still accumulating), then the finished ring.
    CPU_MS is statement-thread CPU plus worker CPU shipped back from the
    pool; LOCK_WAIT_MS is time blocked in RWLock acquires.
    """
    columns = [
        RowsetColumn("STATEMENT_ID", LONG),
        RowsetColumn("STATEMENT", TEXT),
        RowsetColumn("KIND", TEXT),
        RowsetColumn("STATUS", TEXT),
        RowsetColumn("DURATION_MS", DOUBLE),
        RowsetColumn("CPU_MS", DOUBLE),
        RowsetColumn("POOL_CPU_MS", DOUBLE),
        RowsetColumn("LOCK_WAIT_MS", DOUBLE),
        RowsetColumn("LOCK_WAITS", LONG),
        RowsetColumn("ROWS_PROCESSED", LONG),
        RowsetColumn("PEAK_BATCH_ROWS", LONG),
        RowsetColumn("BATCHES", LONG),
        RowsetColumn("POOL_TASKS", LONG),
        RowsetColumn("CACHE_HITS", LONG),
        RowsetColumn("CACHE_MISSES", LONG),
    ]
    rows = []
    for statement in provider.workload.resource_records():
        rows.append((
            statement.statement_id,
            " ".join(statement.text.split()),
            statement.kind,
            statement.status,
            None if statement.duration_ms is None
            else round(statement.duration_ms, 3),
            round(statement.total_cpu_ms(), 3),
            round(statement.pool_cpu_ms, 3),
            round(statement.lock_wait_ms, 3),
            statement.lock_waits,
            statement.rows_processed,
            statement.peak_batch_rows,
            statement.batches,
            statement.pool_tasks,
            statement.cache_hits,
            statement.cache_misses,
        ))
    return Rowset(columns, rows)


def dm_lock_waits_rowset(provider) -> Rowset:
    """``$SYSTEM.DM_LOCK_WAITS``: contended-lock aggregate, per (lock, mode).

    Only *contended* acquisitions register — an uncontended fast-path
    acquire is never counted — so a nonempty rowset means real blocking.
    """
    columns = [
        RowsetColumn("LOCK", TEXT),
        RowsetColumn("MODE", TEXT),
        RowsetColumn("WAITS", LONG),
        RowsetColumn("TOTAL_WAIT_MS", DOUBLE),
        RowsetColumn("MAX_WAIT_MS", DOUBLE),
        RowsetColumn("LAST_WAIT_AT", TEXT),
    ]
    rows = []
    for entry in provider.workload.contention():
        rows.append((
            entry.lock,
            entry.mode,
            entry.waits,
            round(entry.total_wait_ms, 3),
            round(entry.max_wait_ms, 3),
            None if entry.last_wait_at is None
            else datetime.fromtimestamp(entry.last_wait_at).isoformat(
                timespec="milliseconds"),
        ))
    return Rowset(columns, rows)


def dm_sessions_rowset(provider) -> Rowset:
    """``$SYSTEM.DM_SESSIONS``: network sessions on the attached DMX server.

    One row per live session (state ``active``) plus a bounded ring of
    recently closed ones (state ``closed``).  Empty when no server is
    attached — the embedded library has no session concept.
    """
    columns = [
        RowsetColumn("SESSION_ID", LONG),
        RowsetColumn("REMOTE", TEXT),
        RowsetColumn("STATE", TEXT),
        RowsetColumn("CONNECTED_AT", TEXT),
        RowsetColumn("STATEMENTS", LONG),
        RowsetColumn("ROWS_SENT", LONG),
        RowsetColumn("BYTES_IN", LONG),
        RowsetColumn("BYTES_OUT", LONG),
        RowsetColumn("BATCH_SIZE", LONG),
        RowsetColumn("MAX_DOP", LONG),
        RowsetColumn("LAST_STATEMENT", TEXT),
    ]
    server = getattr(provider, "dmx_server", None)
    rows = []
    if server is not None:
        for session in server.sessions():
            rows.append((
                session.session_id,
                session.remote,
                session.state,
                datetime.fromtimestamp(session.connected_at).isoformat(
                    timespec="milliseconds"),
                session.statements,
                session.rows_sent,
                session.bytes_in,
                session.bytes_out,
                session.batch_size,
                session.max_dop,
                session.last_statement,
            ))
    return Rowset(columns, rows)


def dm_buffer_pool_rowset(provider) -> Rowset:
    """``$SYSTEM.DM_BUFFER_POOL``: resident pages of the paged row store.

    One row per buffered page, LRU-first (the first row is the next
    eviction victim), plus the pool counters exposed through
    ``DM_PROVIDER_METRICS`` as ``buffer.*``.  Empty when the provider runs
    purely in memory (no ``storage_path``).
    """
    columns = [
        RowsetColumn("TABLE_NAME", TEXT),
        RowsetColumn("PAGE_ID", LONG),
        RowsetColumn("ROWS", LONG),
        RowsetColumn("DIRTY", BOOLEAN),
        RowsetColumn("PINS", LONG),
        RowsetColumn("SIZE_BYTES", LONG),
    ]
    storage = getattr(provider, "storage", None)
    rows = [] if storage is None else storage.pool_rows(provider.database)
    return Rowset(columns, rows)


def dm_indexes_rowset(provider) -> Rowset:
    """``$SYSTEM.DM_INDEXES``: every user index (CREATE INDEX) with its
    shape and usage counters — seeks, range seeks, and join builds."""
    columns = [
        RowsetColumn("TABLE_NAME", TEXT),
        RowsetColumn("INDEX_NAME", TEXT),
        RowsetColumn("COLUMN_NAME", TEXT),
        RowsetColumn("KIND", TEXT),
        RowsetColumn("KEYS", LONG),
        RowsetColumn("ENTRIES", LONG),
        RowsetColumn("SEEKS", LONG),
        RowsetColumn("RANGE_SEEKS", LONG),
        RowsetColumn("JOIN_PROBES", LONG),
    ]
    rows = []
    database = provider.database
    for key in sorted(database.tables):
        table = database.tables[key]
        for index in table.indexes.values():
            rows.append((
                table.schema.name,
                index.name,
                index.column_name,
                index.kind,
                index.keys,
                index.entries,
                index.seeks,
                index.range_seeks,
                index.join_probes,
            ))
    return Rowset(columns, rows)


def dm_column_statistics_rowset(provider) -> Rowset:
    """``$SYSTEM.DM_COLUMN_STATISTICS``: optimizer statistics per column —
    row count, NDV, null fraction, min/max, and the equi-depth histogram
    (rendered as ``lo..hi:rows/ndv`` bucket triples)."""
    columns = [
        RowsetColumn("TABLE_NAME", TEXT),
        RowsetColumn("COLUMN_NAME", TEXT),
        RowsetColumn("ROW_COUNT", LONG),
        RowsetColumn("NDV", LONG),
        RowsetColumn("NULL_COUNT", LONG),
        RowsetColumn("NULL_FRACTION", DOUBLE),
        RowsetColumn("MIN_VALUE", TEXT),
        RowsetColumn("MAX_VALUE", TEXT),
        RowsetColumn("HISTOGRAM_BUCKETS", LONG),
        RowsetColumn("HISTOGRAM", TEXT),
    ]

    def render(value):
        return None if value is None else str(value)

    rows = []
    database = provider.database
    for key in sorted(database.tables):
        table = database.tables[key]
        table_stats = table.statistics()   # lazily rebuilt after reopen
        if table_stats is None:
            continue
        for stats in table_stats.columns:
            histogram = stats.histogram
            rows.append((
                table.schema.name,
                stats.name,
                table_stats.row_count,
                stats.ndv,
                stats.null_count,
                round(stats.null_fraction(table_stats.row_count), 6),
                render(stats.min_value),
                render(stats.max_value),
                len(histogram),
                "; ".join(f"{render(lo)}..{render(hi)}:{bucket_rows}/{ndv}"
                          for lo, hi, bucket_rows, ndv in histogram),
            ))
    return Rowset(columns, rows)


def _timestamp(value) -> Optional[str]:
    if value is None:
        return None
    return datetime.fromtimestamp(value).isoformat(timespec="milliseconds")


def _rounded(value, digits: int = 3):
    return None if value is None else round(value, digits)


def dm_statement_stats_rowset(provider) -> Rowset:
    """``$SYSTEM.DM_STATEMENT_STATS``: per-fingerprint workload aggregates.

    One row per statement *shape* (literals blanked, identifiers
    case-folded), hottest by total time first: call/error/cancel counts,
    latency aggregates with sketched p50/p95/p99, rows returned, CPU,
    cache and buffer traffic, and the currently active plan hash.
    """
    columns = [
        RowsetColumn("FINGERPRINT", TEXT),
        RowsetColumn("STATEMENT", TEXT),
        RowsetColumn("EXEMPLAR", TEXT),
        RowsetColumn("KIND", TEXT),
        RowsetColumn("CALLS", LONG),
        RowsetColumn("ERRORS", LONG),
        RowsetColumn("CANCELS", LONG),
        RowsetColumn("TOTAL_MS", DOUBLE),
        RowsetColumn("MEAN_MS", DOUBLE),
        RowsetColumn("MIN_MS", DOUBLE),
        RowsetColumn("MAX_MS", DOUBLE),
        RowsetColumn("P50_MS", DOUBLE),
        RowsetColumn("P95_MS", DOUBLE),
        RowsetColumn("P99_MS", DOUBLE),
        RowsetColumn("ROWS_RETURNED", LONG),
        RowsetColumn("CPU_MS", DOUBLE),
        RowsetColumn("CACHE_HITS", LONG),
        RowsetColumn("CACHE_MISSES", LONG),
        RowsetColumn("BUFFER_READS", LONG),
        RowsetColumn("POOL_TASKS", LONG),
        RowsetColumn("PLANS", LONG),
        RowsetColumn("PLAN_HASH", TEXT),
        RowsetColumn("FIRST_AT", TEXT),
        RowsetColumn("LAST_AT", TEXT),
    ]
    rows = []
    for stat in provider.repository.statement_stats():
        rows.append((
            stat["fingerprint"], stat["statement"], stat["exemplar"],
            stat["kind"], stat["calls"], stat["errors"], stat["cancels"],
            _rounded(stat["total_ms"]), _rounded(stat["mean_ms"]),
            _rounded(stat["min_ms"]), _rounded(stat["max_ms"]),
            _rounded(stat["p50_ms"]), _rounded(stat["p95_ms"]),
            _rounded(stat["p99_ms"]), stat["rows_returned"],
            _rounded(stat["cpu_ms"]), stat["cache_hits"],
            stat["cache_misses"], stat["buffer_reads"], stat["pool_tasks"],
            stat["plans"], stat["plan_hash"],
            _timestamp(stat["first_at"]), _timestamp(stat["last_at"]),
        ))
    return Rowset(columns, rows)


def dm_plan_history_rowset(provider) -> Rowset:
    """``$SYSTEM.DM_PLAN_HISTORY``: captured plans per fingerprint.

    One row per (fingerprint, plan hash) with execution counts, mean
    latency, est-vs-actual q-error aggregates, and the plan skeleton
    (operator/target/strategy tree, actuals excluded).
    """
    columns = [
        RowsetColumn("FINGERPRINT", TEXT),
        RowsetColumn("PLAN_HASH", TEXT),
        RowsetColumn("IS_ACTIVE", BOOLEAN),
        RowsetColumn("FIRST_SEEN", TEXT),
        RowsetColumn("LAST_SEEN", TEXT),
        RowsetColumn("EXECUTIONS", LONG),
        RowsetColumn("MEAN_MS", DOUBLE),
        RowsetColumn("Q_SAMPLES", LONG),
        RowsetColumn("MEAN_Q_ERROR", DOUBLE),
        RowsetColumn("MAX_Q_ERROR", DOUBLE),
        RowsetColumn("SKELETON", TEXT),
    ]
    rows = []
    for plan in provider.repository.plan_history_rows():
        rows.append((
            plan["fingerprint"], plan["plan_hash"], plan["active"],
            _timestamp(plan["first_seen"]), _timestamp(plan["last_seen"]),
            plan["executions"], _rounded(plan["mean_ms"]),
            plan["q_count"], _rounded(plan["mean_q_error"]),
            _rounded(plan["max_q_error"]), plan["skeleton"],
        ))
    return Rowset(columns, rows)


def dm_plan_changes_rowset(provider) -> Rowset:
    """``$SYSTEM.DM_PLAN_CHANGES``: plan-regression events, oldest first.

    One row each time a fingerprint's active plan hash moved: old and new
    hash, the most recent schema-affecting statement (the likely trigger),
    the old plan's mean latency frozen at the change, and the new plan's
    current mean latency.
    """
    columns = [
        RowsetColumn("CHANGE_ID", LONG),
        RowsetColumn("FINGERPRINT", TEXT),
        RowsetColumn("STATEMENT", TEXT),
        RowsetColumn("CHANGED_AT", TEXT),
        RowsetColumn("OLD_PLAN_HASH", TEXT),
        RowsetColumn("NEW_PLAN_HASH", TEXT),
        RowsetColumn("TRIGGER_STATEMENT", TEXT),
        RowsetColumn("BEFORE_MEAN_MS", DOUBLE),
        RowsetColumn("AFTER_MEAN_MS", DOUBLE),
    ]
    rows = []
    for change in provider.repository.plan_changes():
        rows.append((
            change["change_id"], change["fingerprint"],
            change["statement"], _timestamp(change["changed_at"]),
            change["old_plan_hash"], change["new_plan_hash"],
            change["trigger"], _rounded(change["before_mean_ms"]),
            _rounded(change["after_mean_ms"]),
        ))
    return Rowset(columns, rows)


SYSTEM_ROWSETS = {
    "MINING_MODELS": mining_models_rowset,
    "MINING_COLUMNS": mining_columns_rowset,
    "MINING_SERVICES": mining_services_rowset,
    "SERVICE_PARAMETERS": service_parameters_rowset,
    "MINING_FUNCTIONS": mining_functions_rowset,
    "MINING_MODEL_CONTENT": mining_model_content_rowset,
    "DM_QUERY_LOG": dm_query_log_rowset,
    "DM_TRACE_EVENTS": dm_trace_events_rowset,
    "DM_PROVIDER_METRICS": dm_provider_metrics_rowset,
    "DM_ACTIVE_STATEMENTS": dm_active_statements_rowset,
    "DM_STATEMENT_RESOURCES": dm_statement_resources_rowset,
    "DM_LOCK_WAITS": dm_lock_waits_rowset,
    "DM_SESSIONS": dm_sessions_rowset,
    "DM_BUFFER_POOL": dm_buffer_pool_rowset,
    "DM_INDEXES": dm_indexes_rowset,
    "DM_COLUMN_STATISTICS": dm_column_statistics_rowset,
    "DM_STATEMENT_STATS": dm_statement_stats_rowset,
    "DM_PLAN_HISTORY": dm_plan_history_rowset,
    "DM_PLAN_CHANGES": dm_plan_changes_rowset,
}


def system_rowset(provider, name: str) -> Rowset:
    handler = SYSTEM_ROWSETS.get(name.upper())
    if handler is None:
        close = difflib.get_close_matches(
            name.upper(), list(SYSTEM_ROWSETS), n=1, cutoff=0.6)
        hint = f"; did you mean {close[0]}?" if close else ""
        raise BindError(
            f"unknown schema rowset $SYSTEM.{name} (available: "
            f"{', '.join(sorted(SYSTEM_ROWSETS))}){hint}")
    return handler(provider)
