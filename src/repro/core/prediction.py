"""PREDICTION JOIN execution (paper section 3.3).

"The basic operation of obtaining prediction on a dataset D using a DMM M is
modeled as a 'prediction join' between D and M."  Execution:

1. evaluate the source (a SHAPE block, sub-select, or table) into a rowset;
2. bind each source row to a :class:`MappedCase` — by the ON clause's
   equalities, or by column name for NATURAL PREDICTION JOIN;
3. evaluate the select list per case: model-qualified column references
   yield predicted values ("look up predicted values ... using the attribute
   values of a case as a key for the join"), prediction UDFs run against the
   case's :class:`CasePrediction`, and source-qualified references come from
   the source row;
4. apply WHERE / ORDER BY / TOP / DISTINCT, and FLATTENED if requested.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import BindError, PredictionError
from repro.lang import ast_nodes as ast
from repro.obs import trace as obs_trace
from repro.shaping.shape import (
    execute_shape_stream,
    flatten_rowset,
    flatten_stream,
)
from repro.sqlstore.expressions import EvalContext, evaluate
from repro.sqlstore.rowset import Rowset, RowsetColumn, RowStream
from repro.sqlstore.types import TABLE, infer_type
from repro.sqlstore.values import group_key, sort_key
from repro.core.bindings import (
    MappedCase,
    case_mapper,
    pair_mapper,
)
from repro.core.casecache import definition_fingerprint
from repro.core.functions import PREDICTION_FUNCTIONS, PredictionScope


class PredictionEvalContext(EvalContext):
    """Expression context inside a prediction query.

    Resolution order for column references:

    1. ``<model>.<column>`` (or ``<model>.<table>.<column>``) — predicted
       value of a model column;
    2. ``<alias>.<column>`` / bare names — the source row;
    3. bare names matching a model PREDICT column — predicted value.
    """

    def __init__(self, model, source_context: EvalContext,
                 source_row: tuple, case: MappedCase):
        super().__init__(source_context.columns, source_row)
        self.subquery_executor = source_context.subquery_executor
        self._subquery_cache = source_context._subquery_cache
        self.model = model
        self.scope = PredictionScope(
            model, case, evaluator=lambda e: evaluate(e, self))

    def resolve_column(self, ref: ast.ColumnRef) -> Any:
        parts = ref.parts
        if parts[0].upper() == self.model.name.upper():
            if len(parts) == 1:
                raise BindError(
                    f"select a column of model {self.model.name!r}, e.g. "
                    f"[{self.model.name}].[{self._first_output_name()}]")
            return self._predicted_value(tuple(parts[1:]))
        index = self.resolve_index(parts)
        if index is not None:
            return self.row[index]
        if len(parts) == 1:
            column = self.model.definition.find(parts[0])
            if column is not None and not column.is_table:
                return self._predicted_value((parts[0],))
        raise BindError(
            f"cannot resolve column {'.'.join(parts)!r} in prediction query")

    def _first_output_name(self) -> str:
        outputs = self.model.definition.output_columns()
        return outputs[0].name if outputs else "<column>"

    def _predicted_value(self, parts: Tuple[str, ...]) -> Any:
        if len(parts) == 1:
            column = self.model.definition.find(parts[0])
            if column is None:
                raise BindError(
                    f"model {self.model.name!r} has no column {parts[0]!r}")
            if column.is_table:
                from repro.core.functions import fn_predict_association
                return fn_predict_association(
                    self.scope, [ast.ColumnRef(parts=(column.name,))])
            attribute = self.model.space.for_column(column.name)
            if attribute is None:
                raise BindError(
                    f"column {parts[0]!r} is not part of the trained "
                    f"attribute space")
            prediction = self.scope.prediction.get(attribute)
            if prediction is None:
                prediction = self.model.algorithm.marginal_prediction(
                    attribute)
            return prediction.value
        raise BindError(
            f"unsupported model column path "
            f"{'.'.join((self.model.name,) + parts)!r} in a select list; "
            f"use prediction functions for nested results")

    def call_function(self, call: ast.FuncCall, evaluator) -> Any:
        handler = PREDICTION_FUNCTIONS.get(call.name.upper())
        if handler is not None:
            return handler(self.scope, call.args)
        return super().call_function(call, evaluator)


def _source_alias(source: ast.TableRef) -> Optional[str]:
    if isinstance(source, ast.ShapeSource):
        return source.alias
    if isinstance(source, ast.SubquerySource):
        return source.alias
    if isinstance(source, ast.NamedTable):
        return source.alias or source.name
    raise PredictionError(
        f"unsupported PREDICTION JOIN source {type(source).__name__}")


def resolve_prediction_source_stream(provider, source: ast.TableRef,
                                     batch_size: Optional[int] = None) \
        -> Tuple[RowStream, Optional[str]]:
    """Evaluate the right-hand side of PREDICTION JOIN as a row stream."""
    database = provider.database
    batch_size = batch_size or getattr(database, "batch_size", 1024)
    alias = _source_alias(source)
    if isinstance(source, ast.ShapeSource):
        return execute_shape_stream(source.shape, database, batch_size), alias
    if isinstance(source, ast.SubquerySource):
        return database.execute_select_stream(source.select,
                                              batch_size), alias
    relation = database.resolve_table_ref(source, batch_size)
    columns = [column for _, column in relation.columns]
    return RowStream(columns, relation.batches(batch_size)), alias


def resolve_prediction_source(provider, source: ast.TableRef) \
        -> Tuple[Rowset, Optional[str]]:
    """Evaluate the right-hand side of PREDICTION JOIN into a rowset."""
    stream, alias = resolve_prediction_source_stream(provider, source)
    return stream.materialize(), alias


def split_on_condition(model_name: str, alias: Optional[str],
                       condition: ast.Expr) \
        -> List[Tuple[Tuple[str, ...], Tuple[str, ...]]]:
    """Decompose the ON clause into (model_path, source_path) pairs."""
    pairs = []

    def strip(parts: Tuple[str, ...], head: Optional[str]) -> Tuple[str, ...]:
        if head and parts and parts[0].upper() == head.upper():
            return tuple(parts[1:])
        return tuple(parts)

    def walk(expr: ast.Expr) -> None:
        if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
            walk(expr.left)
            walk(expr.right)
            return
        if isinstance(expr, ast.BinaryOp) and expr.op == "=" and \
                isinstance(expr.left, ast.ColumnRef) and \
                isinstance(expr.right, ast.ColumnRef):
            left, right = expr.left.parts, expr.right.parts
            left_is_model = left[0].upper() == model_name.upper()
            right_is_model = right[0].upper() == model_name.upper()
            if left_is_model == right_is_model:
                raise PredictionError(
                    f"each ON equality must relate a model column to a "
                    f"source column; got "
                    f"{'.'.join(left)} = {'.'.join(right)}")
            model_parts = left if left_is_model else right
            source_parts = right if left_is_model else left
            pairs.append((strip(model_parts, model_name),
                          strip(source_parts, alias)))
            return
        raise PredictionError(
            "the ON clause of PREDICTION JOIN must be a conjunction of "
            "column equalities")

    walk(condition)
    return pairs


#: Expression nodes a pushed-down source predicate may contain.  Function
#: calls are excluded (prediction functions evaluate against the bound
#: case, not the source row) and so are subqueries of either kind.
_PUSHABLE_NODES = (ast.BinaryOp, ast.UnaryOp, ast.IsNull, ast.InList,
                   ast.Between, ast.Like, ast.Literal, ast.ColumnRef)


def _source_only_conjuncts(where: Optional[ast.Expr],
                           alias: Optional[str]) -> List[ast.Expr]:
    """Top-level WHERE conjuncts decidable from the join source row alone.

    A conjunct qualifies when every column reference is explicitly
    qualified by the source alias and the expression stays within a
    whitelist of row-local node types.  Decidability is judged from the
    AST alone, so the EXPLAIN mirror and the executor can never diverge.
    Dropping source rows where such a conjunct is not True is exact:
    the full WHERE is an AND over the conjuncts, and an AND with a
    False/NULL operand can never evaluate to True.
    """
    from repro.sqlstore.engine import _children

    if where is None or not alias:
        return []
    conjuncts: List[ast.Expr] = []

    def split(expr: ast.Expr) -> None:
        if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
            split(expr.left)
            split(expr.right)
        else:
            conjuncts.append(expr)
    split(where)

    def pushable(expr: ast.Expr) -> bool:
        if isinstance(expr, ast.ColumnRef):
            return len(expr.parts) > 1 and \
                expr.parts[0].upper() == alias.upper()
        if not isinstance(expr, _PUSHABLE_NODES):
            return False
        return all(pushable(child) for child in _children(expr))
    return [conjunct for conjunct in conjuncts if pushable(conjunct)]


def _pushdown_conjuncts(provider, statement: ast.SelectStatement,
                        alias: Optional[str]) -> List[ast.Expr]:
    """The source predicates this statement will push below case binding.
    Cost-based planning only — without statistics the original bind-all
    path is kept (the differential suite's baseline)."""
    if not getattr(provider.database, "stats_enabled", False):
        return []
    return _source_only_conjuncts(statement.where, alias)


def _prediction_case_batches(provider, statement: ast.SelectStatement,
                             batch_size: Optional[int] = None):
    """Resolve the join source and compile binding; stream (row, case) pairs.

    Returns ``(model, alias, source_columns, batches)`` where ``batches``
    yields lists of ``(source_row, MappedCase)``.  When the provider's
    caseset cache is enabled, a hit replays the bound caseset without
    re-executing the source; a miss accumulates up to ``max_rows`` pairs
    alongside the stream and caches them on completion, so huge sources
    keep the O(batch) footprint and are simply never cached.
    """
    join: ast.PredictionJoin = statement.from_clause
    model = provider.model(join.model)
    model.require_trained()
    database = provider.database
    batch_size = batch_size or getattr(database, "batch_size", 1024)
    alias = _source_alias(join.source)

    # Pin counters onto the enclosing span (the ``predict`` span) so they
    # stay attributed to it even when batches are consumed after it closes.
    pin = obs_trace.current_span()
    pushed = _pushdown_conjuncts(provider, statement, alias)
    cache = getattr(provider, "caseset_cache", None)
    key = None
    if cache is not None and cache.enabled:
        key = ("prediction", model.name.upper(),
               definition_fingerprint(model.definition),
               repr(join.source), bool(join.natural), repr(join.condition),
               tuple(repr(conjunct) for conjunct in pushed),
               database.data_version)
        hit = cache.get(key)
        if hit is not None:
            columns, rows, cases = hit
            obs_trace.add_to(pin, "cache_hit", 1)
            obs_trace.add_to(pin, "prediction_cases", len(rows))
            provider.metrics.histogram("prediction.join_fanout").observe(
                len(rows))

            def replay():
                for start in range(0, len(rows), batch_size):
                    yield list(zip(rows[start:start + batch_size],
                                   cases[start:start + batch_size]))
            return model, alias, columns, replay()

    if key is not None:
        obs_trace.add_to(pin, "cache_miss", 1)
    stream, alias = resolve_prediction_source_stream(
        provider, join.source, batch_size)
    if join.natural or join.condition is None:
        mapper = case_mapper(model.definition, stream)
    else:
        pairs = split_on_condition(model.name, alias, join.condition)
        mapper = pair_mapper(model.definition, stream, pairs, alias)
    columns = list(stream.columns)
    push_context = _source_context(columns, alias) if pushed else None

    def survives_pushdown(row):
        return all(
            evaluate(conjunct, push_context.with_row(row)) is True
            for conjunct in pushed)

    def produce():
        collected = ([], []) if key is not None else None
        total = 0
        for batch in stream.batches():
            if pushed:
                # Filter before binding: the full WHERE is still applied
                # per case downstream, so output rows are unchanged — only
                # the binding work for doomed rows is saved.
                batch = [row for row in batch if survives_pushdown(row)]
            mapped = [(row, mapper(row)) for row in batch]
            total += len(mapped)
            obs_trace.add_to(pin, "cases_bound", len(mapped))
            if collected is not None:
                if total <= cache.max_rows:
                    collected[0].extend(batch)
                    collected[1].extend(case for _, case in mapped)
                else:
                    collected = None  # too large: stop accumulating a copy
            yield mapped
        obs_trace.add_to(pin, "prediction_cases", total)
        provider.metrics.histogram("prediction.join_fanout").observe(total)
        if collected is not None:
            cache.put(key, (columns, collected[0], collected[1]), total)
        elif key is not None:
            cache.put(key, None, cache.max_rows + 1)  # count the skip
    return model, alias, columns, produce()


def _parallel_plan(provider, statement: ast.SelectStatement,
                   batch_size: Optional[int] = None):
    """The parallel PREDICTION JOIN plan, or None to run serially.

    Cheap pre-gates live here (no pool, effective dop of 1); the soundness
    gates (blocking clauses, subqueries, pickling) live in
    :func:`repro.exec.partition.parallel_prediction_plan`, which records a
    ``pool.serial_fallbacks.*`` metric when it declines.
    """
    pool = getattr(provider, "pool", None)
    if pool is None:
        return None
    if pool.effective_dop(statement.maxdop) <= 1:
        return None
    from repro.exec.partition import parallel_prediction_plan
    return parallel_prediction_plan(provider, statement,
                                    pool.effective_dop(statement.maxdop),
                                    batch_size)


class _ReadLease:
    """A one-shot, idempotent hold on a model's read lock.

    Streaming predictions outlive the statement call, so the read side of
    the model lock must be released wherever consumption actually ends —
    normal exhaustion, an error mid-stream, or the consumer abandoning the
    generator.  Idempotence makes every such path safe to run.
    """

    __slots__ = ("_lock", "_held")

    def __init__(self, lock):
        self._lock = lock
        lock.acquire_read()
        self._held = True

    def release(self) -> None:
        if self._held:
            self._held = False
            self._lock.release_read()


def _released_when_done(batches, lease: _ReadLease):
    try:
        yield from batches
    finally:
        lease.release()


def plan_prediction(provider, statement: ast.SelectStatement):
    """Describe a PREDICTION JOIN's plan for EXPLAIN, without executing it.

    Mirrors the strategy gates of :func:`execute_prediction_stream`
    read-only: parallel eligibility via the side-effect-free preview,
    caseset-cache expectation via a non-mutating membership probe.
    """
    from repro.obs.explain import PlanNode
    from repro.exec.partition import prediction_parallelism_preview

    join: ast.PredictionJoin = statement.from_clause
    model = provider.model(join.model)
    database = provider.database
    pool = getattr(provider, "pool", None)
    dop = pool.effective_dop(statement.maxdop) if pool is not None else 1
    parallelism, reason = prediction_parallelism_preview(
        provider, statement, dop)
    blockers = []
    if statement.order_by:
        blockers.append("order by")
    if statement.distinct:
        blockers.append("distinct")
    flow = (f"materialized ({', '.join(blockers)})" if blockers
            else f"streamed (batch {getattr(database, 'batch_size', 1024)})")
    details = ["natural join" if join.natural
               else ("ON join" if join.condition is not None
                     else "positional join")]
    if not model.is_trained:
        details.append("model not trained")
    pushed = _pushdown_conjuncts(provider, statement,
                                 _source_alias(join.source))
    if pushed:
        details.append(
            f"pushed {len(pushed)} source predicate(s) below binding")
    node = PlanNode("prediction join", target=model.name,
                    strategy=f"{flow}; {parallelism} ({reason})",
                    span_name="predict", rows_counter="rows_out",
                    detail=", ".join(details))

    if isinstance(join.source, ast.ShapeSource):
        from repro.shaping.shape import plan_shape
        source = plan_shape(join.source.shape, database,
                            getattr(provider, "plan_external_source", None))
    elif isinstance(join.source, ast.SubquerySource):
        source = database.plan_select(
            join.source.select,
            getattr(provider, "plan_external_source", None))
    else:
        source = database.plan_table_ref(
            join.source, getattr(provider, "plan_external_source", None))

    if parallelism == "parallel":
        node.cache = "bypassed (parallel path)"
        stage = node.add(PlanNode("parallel predict", target=model.name,
                                  strategy=f"dop={dop}",
                                  span_name="predict.parallel",
                                  rows_counter="prediction_cases"))
    else:
        cache = getattr(provider, "caseset_cache", None)
        if cache is None or not cache.enabled:
            node.cache = "disabled"
        else:
            key = ("prediction", model.name.upper(),
                   definition_fingerprint(model.definition),
                   repr(join.source), bool(join.natural),
                   repr(join.condition),
                   tuple(repr(conjunct) for conjunct in pushed),
                   database.data_version)
            node.cache = ("hit expected" if cache.contains(key)
                          else "miss expected")
        stage = node.add(PlanNode("bind cases", target=model.name,
                                  strategy="serial",
                                  match="parent",
                                  rows_counter="cases_bound"))
    stage.add(source)
    stage.est_rows = source.est_rows
    stage.cost = float(source.est_rows or 0) + (source.cost or 0.0)
    est = source.est_rows
    if est is not None and statement.where is not None:
        # Estimate WHERE selectivity from the source table's statistics;
        # conjuncts over predicted values fall back to the default
        # constant inside estimate_selectivity.
        from repro.sqlstore import stats as stats_mod
        resolver = database._stats_resolver(join.source) \
            if isinstance(join.source, ast.TableRef) else None
        est = max(0, int(round(est * stats_mod.estimate_selectivity(
            statement.where, resolver))))
    if statement.top is not None:
        est = statement.top if est is None and statement.where is None \
            else est
        if est is not None:
            est = min(est, statement.top)
    node.est_rows = est
    node.cost = stage.cost
    return node


def execute_prediction_select(provider,
                              statement: ast.SelectStatement) -> Rowset:
    join: ast.PredictionJoin = statement.from_clause
    model = provider.model(join.model)
    with model.lock.read():
        with obs_trace.span("predict", model=join.model):
            plan = _parallel_plan(provider, statement)
            if plan is not None:
                expanded, batches = plan
                rows = [values for batch in batches for values in batch]
                columns = _column_metadata(expanded, rows,
                                           lambda entry: entry)
                result = Rowset(columns, rows)
                if statement.flattened:
                    result = flatten_rowset(result)
            else:
                result = _execute_prediction_select(provider, statement)
            obs_trace.add("rows_out", len(result.rows))
            return result


def execute_prediction_stream(provider, statement: ast.SelectStatement,
                              batch_size: Optional[int] = None) -> RowStream:
    """Streaming PREDICTION JOIN: memory stays O(batch) for pipelined shapes.

    ORDER BY and DISTINCT are blocking and fall back to the materializing
    path; WHERE, the select list, TOP (early stop), and FLATTENED all
    pipeline.  Output column metadata is inferred from a buffered prefix
    that grows only until every column has produced a non-NULL sample (the
    same first-non-NULL rule the materializing path applies to the full
    result).
    """
    batch_size = batch_size or getattr(provider.database, "batch_size", 1024)
    if statement.order_by or statement.distinct:
        return RowStream.from_rowset(
            execute_prediction_select(provider, statement), batch_size)

    join: ast.PredictionJoin = statement.from_clause
    lease = _ReadLease(provider.model(join.model).lock)
    try:
        with obs_trace.span("predict", model=join.model,
                            streaming=True) as pspan:
            plan = _parallel_plan(provider, statement, batch_size)
            if plan is not None:
                expanded, raw_batches = plan

                def value_batches():
                    for values in raw_batches:
                        obs_trace.add_to(pspan, "rows_out", len(values))
                        yield values
            else:
                model, alias, source_columns, case_batches = \
                    _prediction_case_batches(provider, statement, batch_size)
                source_context = _source_context(source_columns, alias)
                source_context.subquery_executor = \
                    provider.database.execute_select
                expanded = _expand_select_list(statement, model,
                                               source_columns, alias)

                def value_batches():
                    remaining = statement.top
                    for batch in case_batches:
                        out = []
                        for row, case in batch:
                            context = PredictionEvalContext(
                                model, source_context, row, case)
                            if statement.where is not None and \
                                    evaluate(statement.where,
                                             context) is not True:
                                continue
                            out.append(tuple(evaluate(expr, context)
                                             for expr, _ in expanded))
                        if remaining is not None:
                            if len(out) >= remaining:
                                if out[:remaining]:
                                    obs_trace.add_to(pspan, "rows_out",
                                                     remaining)
                                    yield out[:remaining]
                                return
                            remaining -= len(out)
                        if out:
                            obs_trace.add_to(pspan, "rows_out", len(out))
                            yield out

            # Buffer a prefix until every output column has a sample value
            # (or the stream ends), then replay it ahead of the live tail.
            produced = _released_when_done(value_batches(), lease)
            head: List[List[tuple]] = []
            sample_rows: List[tuple] = []
            needed = len(expanded)
            while needed:
                batch = next(produced, None)
                if batch is None:
                    break
                head.append(batch)
                sample_rows.extend(batch)
                needed = sum(
                    1 for position in range(len(expanded))
                    if not any(row[position] is not None
                               for row in sample_rows))
            columns = _column_metadata(expanded, sample_rows,
                                       lambda entry: entry)
            result = RowStream(columns, _chain_batches(head, produced))
            if statement.flattened:
                result = flatten_stream(result)
            return result
    except BaseException:
        lease.release()
        raise


def _chain_batches(head, tail):
    yield from head
    yield from tail


def _execute_prediction_select(provider,
                               statement: ast.SelectStatement) -> Rowset:
    model, alias, source_columns, case_batches = \
        _prediction_case_batches(provider, statement)
    source_context = _source_context(source_columns, alias)
    source_context.subquery_executor = provider.database.execute_select
    expanded = _expand_select_list(statement, model, source_columns, alias)

    # ORDER BY may sort on expressions over the source row/case, so only
    # then do we retain (values, row, case) triples; otherwise values-only
    # entries keep the materialized footprint to the output itself.
    keep_sources = bool(statement.order_by)
    values_of = (lambda entry: entry[0]) if keep_sources \
        else (lambda entry: entry)
    can_stop_early = statement.top is not None and \
        not statement.order_by and not statement.distinct

    output_rows: List[tuple] = []
    for batch in case_batches:
        for row, case in batch:
            context = PredictionEvalContext(model, source_context, row, case)
            if statement.where is not None and \
                    evaluate(statement.where, context) is not True:
                continue
            values = tuple(evaluate(expr, context) for expr, _ in expanded)
            output_rows.append((values, row, case) if keep_sources
                               else values)
        if can_stop_early and len(output_rows) >= statement.top:
            break

    columns = _column_metadata(expanded, output_rows, values_of)

    if statement.distinct:
        seen = set()
        unique = []
        for entry in output_rows:
            key = tuple(group_key(v) if not isinstance(v, Rowset) else id(v)
                        for v in values_of(entry))
            if key not in seen:
                seen.add(key)
                unique.append(entry)
        output_rows = unique

    if statement.order_by:
        names = [c.name.upper() for c in columns]

        def order_key(entry):
            values, row, case = entry
            context = PredictionEvalContext(model, source_context, row, case)
            key = []
            for item in statement.order_by:
                if isinstance(item.expr, ast.ColumnRef) and \
                        len(item.expr.parts) == 1 and \
                        item.expr.parts[0].upper() in names:
                    value = values[names.index(item.expr.parts[0].upper())]
                else:
                    value = evaluate(item.expr, context)
                key.append(sort_key(value))
            return tuple(key)

        keys = [order_key(entry) for entry in output_rows]
        indexed = sorted(range(len(output_rows)),
                         key=lambda i: _directional(keys[i],
                                                    statement.order_by))
        output_rows = [output_rows[i] for i in indexed]

    rows = [values_of(entry) for entry in output_rows]
    if statement.top is not None:
        rows = rows[:statement.top]
    result = Rowset(columns, rows)
    if statement.flattened:
        result = flatten_rowset(result)
    return result


def _directional(key: tuple, order_by) -> tuple:
    adjusted = []
    for part, item in zip(key, order_by):
        if item.ascending:
            adjusted.append(part)
        else:
            adjusted.append(_Reversed(part))
    return tuple(adjusted)


class _Reversed:
    """Inverts comparison for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        return self.value == other.value


def _source_context(source_columns: List[RowsetColumn],
                    alias: Optional[str]) -> EvalContext:
    mapping: Dict[Tuple[str, ...], int] = {}
    for index, column in enumerate(source_columns):
        mapping.setdefault((column.name.upper(),), index)
        if alias:
            mapping.setdefault((alias.upper(), column.name.upper()), index)
    return EvalContext(mapping)


def _expand_select_list(statement, model, source_columns,
                        alias) -> List[Tuple[ast.Expr, str]]:
    expanded: List[Tuple[ast.Expr, str]] = []
    for position, item in enumerate(statement.select_list):
        if isinstance(item.expr, ast.Star):
            qualifier = item.expr.qualifier
            if qualifier is None or (
                    alias and qualifier.upper() == alias.upper()):
                for column in source_columns:
                    if column.nested_columns is None:
                        expanded.append(
                            (ast.ColumnRef(parts=(column.name,)),
                             column.name))
            if qualifier is None or \
                    qualifier.upper() == model.name.upper():
                for column in model.definition.output_columns():
                    if not column.is_table:
                        expanded.append(
                            (ast.ColumnRef(parts=(model.name, column.name)),
                             column.name))
            continue
        name = item.alias or _default_name(item.expr, position)
        expanded.append((item.expr, name))
    return expanded


def _default_name(expr: ast.Expr, position: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.parts[-1]
    if isinstance(expr, ast.FuncCall):
        return expr.name
    return f"Expr{position + 1}"


def _column_metadata(expanded, output_rows,
                     values_of) -> List[RowsetColumn]:
    columns = []
    for position, (_, name) in enumerate(expanded):
        sample = None
        for entry in output_rows:
            value = values_of(entry)[position]
            if value is not None:
                sample = value
                break
        if isinstance(sample, Rowset):
            columns.append(RowsetColumn(name, TABLE,
                                        nested_columns=list(sample.columns)))
        else:
            columns.append(RowsetColumn(name, infer_type(sample)))
    return columns
