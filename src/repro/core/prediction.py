"""PREDICTION JOIN execution (paper section 3.3).

"The basic operation of obtaining prediction on a dataset D using a DMM M is
modeled as a 'prediction join' between D and M."  Execution:

1. evaluate the source (a SHAPE block, sub-select, or table) into a rowset;
2. bind each source row to a :class:`MappedCase` — by the ON clause's
   equalities, or by column name for NATURAL PREDICTION JOIN;
3. evaluate the select list per case: model-qualified column references
   yield predicted values ("look up predicted values ... using the attribute
   values of a case as a key for the join"), prediction UDFs run against the
   case's :class:`CasePrediction`, and source-qualified references come from
   the source row;
4. apply WHERE / ORDER BY / TOP / DISTINCT, and FLATTENED if requested.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import BindError, PredictionError
from repro.lang import ast_nodes as ast
from repro.obs import trace as obs_trace
from repro.shaping.shape import execute_shape, flatten_rowset
from repro.sqlstore.expressions import EvalContext, evaluate
from repro.sqlstore.rowset import Rowset, RowsetColumn
from repro.sqlstore.types import TABLE, infer_type
from repro.sqlstore.values import group_key, sort_key
from repro.core.bindings import (
    MappedCase,
    map_rowset,
    map_rowset_with_pairs,
)
from repro.core.functions import PREDICTION_FUNCTIONS, PredictionScope


class PredictionEvalContext(EvalContext):
    """Expression context inside a prediction query.

    Resolution order for column references:

    1. ``<model>.<column>`` (or ``<model>.<table>.<column>``) — predicted
       value of a model column;
    2. ``<alias>.<column>`` / bare names — the source row;
    3. bare names matching a model PREDICT column — predicted value.
    """

    def __init__(self, model, source_context: EvalContext,
                 source_row: tuple, case: MappedCase):
        super().__init__(source_context.columns, source_row)
        self.subquery_executor = source_context.subquery_executor
        self._subquery_cache = source_context._subquery_cache
        self.model = model
        self.scope = PredictionScope(
            model, case, evaluator=lambda e: evaluate(e, self))

    def resolve_column(self, ref: ast.ColumnRef) -> Any:
        parts = ref.parts
        if parts[0].upper() == self.model.name.upper():
            if len(parts) == 1:
                raise BindError(
                    f"select a column of model {self.model.name!r}, e.g. "
                    f"[{self.model.name}].[{self._first_output_name()}]")
            return self._predicted_value(tuple(parts[1:]))
        index = self.resolve_index(parts)
        if index is not None:
            return self.row[index]
        if len(parts) == 1:
            column = self.model.definition.find(parts[0])
            if column is not None and not column.is_table:
                return self._predicted_value((parts[0],))
        raise BindError(
            f"cannot resolve column {'.'.join(parts)!r} in prediction query")

    def _first_output_name(self) -> str:
        outputs = self.model.definition.output_columns()
        return outputs[0].name if outputs else "<column>"

    def _predicted_value(self, parts: Tuple[str, ...]) -> Any:
        if len(parts) == 1:
            column = self.model.definition.find(parts[0])
            if column is None:
                raise BindError(
                    f"model {self.model.name!r} has no column {parts[0]!r}")
            if column.is_table:
                from repro.core.functions import fn_predict_association
                return fn_predict_association(
                    self.scope, [ast.ColumnRef(parts=(column.name,))])
            attribute = self.model.space.for_column(column.name)
            if attribute is None:
                raise BindError(
                    f"column {parts[0]!r} is not part of the trained "
                    f"attribute space")
            prediction = self.scope.prediction.get(attribute)
            if prediction is None:
                prediction = self.model.algorithm.marginal_prediction(
                    attribute)
            return prediction.value
        raise BindError(
            f"unsupported model column path "
            f"{'.'.join((self.model.name,) + parts)!r} in a select list; "
            f"use prediction functions for nested results")

    def call_function(self, call: ast.FuncCall, evaluator) -> Any:
        handler = PREDICTION_FUNCTIONS.get(call.name.upper())
        if handler is not None:
            return handler(self.scope, call.args)
        return super().call_function(call, evaluator)


def resolve_prediction_source(provider, source: ast.TableRef) \
        -> Tuple[Rowset, Optional[str]]:
    """Evaluate the right-hand side of PREDICTION JOIN into a rowset."""
    if isinstance(source, ast.ShapeSource):
        return execute_shape(source.shape, provider.database), source.alias
    if isinstance(source, ast.SubquerySource):
        return provider.database.execute_select(source.select), source.alias
    if isinstance(source, ast.NamedTable):
        relation = provider.database.resolve_table_ref(source)
        columns = [column for _, column in relation.columns]
        return Rowset(columns, relation.rows), source.alias or source.name
    raise PredictionError(
        f"unsupported PREDICTION JOIN source {type(source).__name__}")


def split_on_condition(model_name: str, alias: Optional[str],
                       condition: ast.Expr) \
        -> List[Tuple[Tuple[str, ...], Tuple[str, ...]]]:
    """Decompose the ON clause into (model_path, source_path) pairs."""
    pairs = []

    def strip(parts: Tuple[str, ...], head: Optional[str]) -> Tuple[str, ...]:
        if head and parts and parts[0].upper() == head.upper():
            return tuple(parts[1:])
        return tuple(parts)

    def walk(expr: ast.Expr) -> None:
        if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
            walk(expr.left)
            walk(expr.right)
            return
        if isinstance(expr, ast.BinaryOp) and expr.op == "=" and \
                isinstance(expr.left, ast.ColumnRef) and \
                isinstance(expr.right, ast.ColumnRef):
            left, right = expr.left.parts, expr.right.parts
            left_is_model = left[0].upper() == model_name.upper()
            right_is_model = right[0].upper() == model_name.upper()
            if left_is_model == right_is_model:
                raise PredictionError(
                    f"each ON equality must relate a model column to a "
                    f"source column; got "
                    f"{'.'.join(left)} = {'.'.join(right)}")
            model_parts = left if left_is_model else right
            source_parts = right if left_is_model else left
            pairs.append((strip(model_parts, model_name),
                          strip(source_parts, alias)))
            return
        raise PredictionError(
            "the ON clause of PREDICTION JOIN must be a conjunction of "
            "column equalities")

    walk(condition)
    return pairs


def execute_prediction_select(provider,
                              statement: ast.SelectStatement) -> Rowset:
    join: ast.PredictionJoin = statement.from_clause
    with obs_trace.span("predict", model=join.model):
        result = _execute_prediction_select(provider, statement)
        obs_trace.add("rows_out", len(result.rows))
        return result


def _execute_prediction_select(provider,
                               statement: ast.SelectStatement) -> Rowset:
    join: ast.PredictionJoin = statement.from_clause
    model = provider.model(join.model)
    model.require_trained()
    source_rowset, alias = resolve_prediction_source(provider, join.source)
    obs_trace.add("prediction_cases", len(source_rowset.rows))
    provider.metrics.histogram("prediction.join_fanout").observe(
        len(source_rowset.rows))

    if join.natural or join.condition is None:
        cases = map_rowset(model.definition, source_rowset)
    else:
        pairs = split_on_condition(model.name, alias, join.condition)
        cases = map_rowset_with_pairs(model.definition, source_rowset, pairs,
                                      alias)

    source_context = _source_context(source_rowset, alias)
    source_context.subquery_executor = provider.database.execute_select
    expanded = _expand_select_list(statement, model, source_rowset, alias)

    output_rows: List[tuple] = []
    for row, case in zip(source_rowset.rows, cases):
        context = PredictionEvalContext(model, source_context, row, case)
        if statement.where is not None and \
                evaluate(statement.where, context) is not True:
            continue
        output_rows.append((
            tuple(evaluate(expr, context) for expr, _ in expanded),
            row, case))

    columns = _column_metadata(expanded, output_rows)

    if statement.distinct:
        seen = set()
        unique = []
        for entry in output_rows:
            key = tuple(group_key(v) if not isinstance(v, Rowset) else id(v)
                        for v in entry[0])
            if key not in seen:
                seen.add(key)
                unique.append(entry)
        output_rows = unique

    if statement.order_by:
        names = [c.name.upper() for c in columns]

        def order_key(entry):
            values, row, case = entry
            context = PredictionEvalContext(model, source_context, row, case)
            key = []
            for item in statement.order_by:
                if isinstance(item.expr, ast.ColumnRef) and \
                        len(item.expr.parts) == 1 and \
                        item.expr.parts[0].upper() in names:
                    value = values[names.index(item.expr.parts[0].upper())]
                else:
                    value = evaluate(item.expr, context)
                key.append(sort_key(value))
            return tuple(key)

        keys = [order_key(entry) for entry in output_rows]
        indexed = sorted(range(len(output_rows)),
                         key=lambda i: _directional(keys[i],
                                                    statement.order_by))
        output_rows = [output_rows[i] for i in indexed]

    rows = [entry[0] for entry in output_rows]
    if statement.top is not None:
        rows = rows[:statement.top]
    result = Rowset(columns, rows)
    if statement.flattened:
        result = flatten_rowset(result)
    return result


def _directional(key: tuple, order_by) -> tuple:
    adjusted = []
    for part, item in zip(key, order_by):
        if item.ascending:
            adjusted.append(part)
        else:
            adjusted.append(_Reversed(part))
    return tuple(adjusted)


class _Reversed:
    """Inverts comparison for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        return self.value == other.value


def _source_context(rowset: Rowset, alias: Optional[str]) -> EvalContext:
    mapping: Dict[Tuple[str, ...], int] = {}
    for index, column in enumerate(rowset.columns):
        mapping.setdefault((column.name.upper(),), index)
        if alias:
            mapping.setdefault((alias.upper(), column.name.upper()), index)
    return EvalContext(mapping)


def _expand_select_list(statement, model, source_rowset,
                        alias) -> List[Tuple[ast.Expr, str]]:
    expanded: List[Tuple[ast.Expr, str]] = []
    for position, item in enumerate(statement.select_list):
        if isinstance(item.expr, ast.Star):
            qualifier = item.expr.qualifier
            if qualifier is None or (
                    alias and qualifier.upper() == alias.upper()):
                for column in source_rowset.columns:
                    if column.nested_columns is None:
                        expanded.append(
                            (ast.ColumnRef(parts=(column.name,)),
                             column.name))
            if qualifier is None or \
                    qualifier.upper() == model.name.upper():
                for column in model.definition.output_columns():
                    if not column.is_table:
                        expanded.append(
                            (ast.ColumnRef(parts=(model.name, column.name)),
                             column.name))
            continue
        name = item.alias or _default_name(item.expr, position)
        expanded.append((item.expr, name))
    return expanded


def _default_name(expr: ast.Expr, position: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.parts[-1]
    if isinstance(expr, ast.FuncCall):
        return expr.name
    return f"Expr{position + 1}"


def _column_metadata(expanded, output_rows) -> List[RowsetColumn]:
    columns = []
    for position, (_, name) in enumerate(expanded):
        sample = None
        for entry in output_rows:
            value = entry[0][position]
            if value is not None:
                sample = value
                break
        if isinstance(sample, Rowset):
            columns.append(RowsetColumn(name, TABLE,
                                        nested_columns=list(sample.columns)))
        else:
            columns.append(RowsetColumn(name, infer_type(sample)))
    return columns
